"""Tests for the SMTP state machine, servers, transport, and client."""

import pytest

from repro.dnssim import (
    DomainRegistry,
    Registration,
    Resolver,
    collection_zone,
)
from repro.smtpsim import (
    ConnectOutcome,
    EmailMessage,
    HostBehavior,
    Network,
    SendStatus,
    SmtpClient,
    SmtpServer,
    SmtpSession,
    SmtpState,
    domain_policy,
)
from repro.util import SeededRng


class TestSmtpSession:
    def _greeted(self):
        session = SmtpSession("mx.exampel.com")
        session.banner()
        session.command("EHLO client.org")
        return session

    def test_banner(self):
        session = SmtpSession("mx.exampel.com")
        reply = session.banner()
        assert reply.code == 220
        assert "mx.exampel.com" in reply.text

    def test_happy_path(self):
        session = self._greeted()
        assert session.command("MAIL FROM:<a@b.com>").code == 250
        assert session.command("RCPT TO:<x@exampel.com>").code == 250
        assert session.command("DATA").code == 354
        assert session.data_payload("body").code == 250
        assert session.state is SmtpState.DONE

    def test_mail_before_helo_rejected(self):
        session = SmtpSession("mx.exampel.com")
        session.banner()
        assert session.command("MAIL FROM:<a@b.com>").code == 503

    def test_rcpt_before_mail_rejected(self):
        session = self._greeted()
        assert session.command("RCPT TO:<x@y.com>").code == 503

    def test_data_before_rcpt_rejected(self):
        session = self._greeted()
        session.command("MAIL FROM:<a@b.com>")
        assert session.command("DATA").code == 503

    def test_unknown_command(self):
        assert self._greeted().command("VRFY foo").code == 502

    def test_bad_mail_syntax(self):
        assert self._greeted().command("MAIL FRM:<a@b.com>").code == 501

    def test_null_reverse_path_allowed(self):
        # bounce messages use MAIL FROM:<>
        session = self._greeted()
        assert session.command("MAIL FROM:<>").code == 250
        assert session.envelope_from == ""

    def test_rcpt_policy_rejection(self):
        session = SmtpSession("mx.x.com",
                              rcpt_policy=domain_policy(["x.com"]))
        session.banner()
        session.command("EHLO c.org")
        session.command("MAIL FROM:<a@b.com>")
        assert session.command("RCPT TO:<u@x.com>").code == 250
        assert session.command("RCPT TO:<u@other.com>").code == 550

    def test_multiple_recipients(self):
        session = self._greeted()
        session.command("MAIL FROM:<a@b.com>")
        session.command("RCPT TO:<x@c.com>")
        session.command("RCPT TO:<y@c.com>")
        assert session.envelope_to == ["x@c.com", "y@c.com"]

    def test_max_recipients(self):
        session = SmtpSession("mx.x.com", max_recipients=1)
        session.banner()
        session.command("EHLO c.org")
        session.command("MAIL FROM:<a@b.com>")
        session.command("RCPT TO:<x@c.com>")
        assert session.command("RCPT TO:<y@c.com>").code == 452

    def test_rset_clears_envelope(self):
        session = self._greeted()
        session.command("MAIL FROM:<a@b.com>")
        session.command("RCPT TO:<x@c.com>")
        session.command("RSET")
        assert session.envelope_from is None
        assert session.envelope_to == []
        assert session.state is SmtpState.GREETED

    def test_quit_closes(self):
        session = self._greeted()
        assert session.command("QUIT").code == 221
        with pytest.raises(RuntimeError):
            session.command("NOOP")

    def test_starttls_flow(self):
        session = self._greeted()
        assert session.command("STARTTLS").code == 220
        assert session.tls_active

    def test_starttls_broken(self):
        session = SmtpSession("mx.x.com", starttls_broken=True)
        session.banner()
        session.command("EHLO c.org")
        assert session.command("STARTTLS").code == 454

    def test_starttls_not_offered(self):
        session = SmtpSession("mx.x.com", supports_starttls=False)
        session.banner()
        session.command("EHLO c.org")
        assert session.command("STARTTLS").code == 502

    def test_ehlo_advertises_starttls(self):
        session = SmtpSession("mx.x.com")
        session.banner()
        reply = session.command("EHLO c.org")
        assert "STARTTLS" in reply.text

    def test_transcript_recorded(self):
        session = self._greeted()
        assert len(session.transcript) >= 2


class TestServerAndNetwork:
    def _collector(self):
        received = []
        server = SmtpServer(hostname="gmial.com", ip="1.1.1.1",
                            on_delivery=received.append)
        return server, received

    def test_receive_stamps_and_delivers(self):
        server, received = self._collector()
        session = server.open_session()
        session.banner()
        session.command("EHLO sender.org")
        session.command("MAIL FROM:<a@sender.org>")
        session.command("RCPT TO:<bob@gmial.com>")
        session.command("DATA")
        msg = EmailMessage.create("a@sender.org", "bob@gmial.com", "s", "b")
        reply = server.receive(session, msg, timestamp=123.0)
        assert reply.code == 250
        assert len(received) == 1
        assert received[0].received_by_ip == "1.1.1.1"
        assert received[0].received_at == 123.0
        assert "by gmial.com" in received[0].get_header("Received")
        assert server.accepted_count == 1

    def test_receive_out_of_sequence_rejected(self):
        server, received = self._collector()
        session = server.open_session()
        session.banner()
        msg = EmailMessage.create("a@b.com", "c@d.com", "s", "b")
        reply = server.receive(session, msg)
        assert reply.code == 503
        assert received == []
        assert server.rejected_count == 1

    def test_network_attach_and_connect(self):
        network = Network(SeededRng(1))
        server, _ = self._collector()
        network.attach("1.1.1.1", server)
        result = network.connect("1.1.1.1")
        assert result.ok
        assert result.server is server

    def test_network_refused_when_empty(self):
        network = Network(SeededRng(1))
        assert network.connect("9.9.9.9").outcome is ConnectOutcome.REFUSED

    def test_network_refused_on_closed_port(self):
        network = Network(SeededRng(1))
        server = SmtpServer(hostname="x.com", ip="1.1.1.1", ports={25})
        network.attach("1.1.1.1", server)
        assert network.connect("1.1.1.1", port=465).outcome is ConnectOutcome.REFUSED

    def test_duplicate_ip_rejected(self):
        network = Network(SeededRng(1))
        server, _ = self._collector()
        network.attach("1.1.1.1", server)
        with pytest.raises(ValueError):
            network.attach("1.1.1.1", server)

    def test_timeout_behavior(self):
        network = Network(SeededRng(2))
        server, _ = self._collector()
        network.attach("1.1.1.1", server,
                       behavior=HostBehavior(timeout_probability=1.0))
        assert network.connect("1.1.1.1").outcome is ConnectOutcome.TIMEOUT

    def test_behavior_probabilities_validated(self):
        with pytest.raises(ValueError):
            HostBehavior(timeout_probability=0.7, network_error_probability=0.6)

    def test_listening_ports_scan(self):
        network = Network(SeededRng(1))
        server = SmtpServer(hostname="x.com", ip="1.1.1.1", ports={25, 587})
        network.attach("1.1.1.1", server)
        assert network.listening_ports("1.1.1.1") == (25, 587)
        assert network.listening_ports("8.8.8.8") == ()


class TestSmtpClient:
    def _world(self):
        registry = DomainRegistry()
        registry.register(Registration(
            domain="gmial.com", zone=collection_zone("gmial.com", "1.1.1.1")))
        network = Network(SeededRng(3))
        received = []
        server = SmtpServer(hostname="gmial.com", ip="1.1.1.1",
                            on_delivery=received.append)
        network.attach("1.1.1.1", server)
        client = SmtpClient(Resolver(registry), network,
                            helo_hostname="sender.org")
        return client, received, network

    def test_end_to_end_delivery(self):
        client, received, _ = self._world()
        msg = EmailMessage.create("alice@sender.org", "bob@gmial.com",
                                  "hi", "typo mail")
        result = client.send(msg, timestamp=42.0)
        assert result.status is SendStatus.DELIVERED
        assert result.accepted
        assert len(received) == 1
        assert received[0].envelope_to == ["bob@gmial.com"]
        assert received[0].received_at == 42.0

    def test_no_route_for_unregistered_domain(self):
        client, _, _ = self._world()
        msg = EmailMessage.create("a@b.org", "x@not-registered.com", "s", "b")
        assert client.send(msg).status is SendStatus.NO_ROUTE

    def test_subdomain_delivery_via_wildcard(self):
        client, received, _ = self._world()
        msg = EmailMessage.create("a@b.org", "x@smtp.gmial.com", "s", "b")
        assert client.send(msg).status is SendStatus.DELIVERED
        assert received[0].envelope_to == ["x@smtp.gmial.com"]

    def test_bounce_on_rejecting_policy(self):
        client, _, network = self._world()
        network.detach("1.1.1.1")
        server = SmtpServer(hostname="gmial.com", ip="1.1.1.1",
                            rcpt_policy=domain_policy(["other.com"]))
        network.attach("1.1.1.1", server)
        msg = EmailMessage.create("a@b.org", "x@gmial.com", "s", "b")
        assert client.send(msg).status is SendStatus.BOUNCED

    def test_timeout_reported(self):
        client, _, network = self._world()
        network.set_behavior("1.1.1.1", HostBehavior(timeout_probability=1.0))
        msg = EmailMessage.create("a@b.org", "x@gmial.com", "s", "b")
        assert client.send(msg).status is SendStatus.TIMEOUT

    def test_explicit_recipient_overrides_header(self):
        client, received, _ = self._world()
        msg = EmailMessage.create("a@b.org", "x@elsewhere.com", "s", "b")
        result = client.send(msg, recipient="y@gmial.com")
        assert result.status is SendStatus.DELIVERED
        assert received[0].envelope_to == ["y@gmial.com"]

    def test_missing_recipient_raises(self):
        client, _, _ = self._world()
        with pytest.raises(ValueError):
            client.send(EmailMessage())
