"""Tests for the IRB surrender protocol (paper §4.1)."""

import pytest

from repro.core import build_study_corpus
from repro.dnssim import DomainRegistry, Resolver
from repro.infra import provision_study, surrender_domain
from repro.smtpsim import EmailMessage, Network, SendStatus, SmtpClient
from repro.util import SeededRng


@pytest.fixture()
def world():
    corpus = build_study_corpus()
    registry = DomainRegistry()
    network = Network(SeededRng(55))
    infra = provision_study(corpus, registry, network)
    client = SmtpClient(Resolver(registry), network)
    return registry, network, infra, client


class TestSurrender:
    def test_surrendered_domain_leaves_the_study(self, world):
        registry, network, infra, _ = world
        assert surrender_domain(infra, registry, network,
                                "gmaiql.com", "google-legal")
        assert infra.ip_for("gmaiql.com") is None
        assert "gmaiql.com" not in infra.servers

    def test_new_owner_recorded(self, world):
        registry, network, infra, _ = world
        surrender_domain(infra, registry, network, "gmaiql.com",
                         "google-legal")
        registration = registry.get("gmaiql.com")
        assert registration is not None
        assert registration.registrant_id == "google-legal"

    def test_mail_no_longer_collected(self, world):
        registry, network, infra, client = world
        surrender_domain(infra, registry, network, "gmaiql.com",
                         "google-legal")
        message = EmailMessage.create("a@b.org", "x@gmaiql.com", "s", "b")
        result = client.send(message)
        # the surrendered zone is empty: no mail route, nothing collected
        assert result.status is SendStatus.NO_ROUTE
        assert len(infra.collector) == 0

    def test_other_domains_unaffected(self, world):
        registry, network, infra, client = world
        surrender_domain(infra, registry, network, "gmaiql.com",
                         "google-legal")
        message = EmailMessage.create("a@b.org", "x@ohtlook.com", "s", "b")
        assert client.send(message).status is SendStatus.DELIVERED
        assert len(infra.collector) == 1

    def test_unknown_domain_returns_false(self, world):
        registry, network, infra, _ = world
        assert not surrender_domain(infra, registry, network,
                                    "not-ours.com", "whoever")

    def test_case_insensitive(self, world):
        registry, network, infra, _ = world
        assert surrender_domain(infra, registry, network, "GMAIQL.COM",
                                "google-legal")
