"""Tests for the traffic generators: receiver, reflection, SMTP typo, spam."""

import pytest

from repro.core import TypoEmailKind, build_study_corpus
from repro.util import SeededRng
from repro.workloads import (
    ReceiverTypoGenerator,
    ReflectionTypoGenerator,
    SmtpTypoGenerator,
    SpamConfig,
    SpamGenerator,
)


@pytest.fixture(scope="module")
def corpus():
    return build_study_corpus()


class TestReceiverTypoGenerator:
    @pytest.fixture(scope="class")
    def generator(self, corpus):
        return ReceiverTypoGenerator(corpus, SeededRng(11))

    def test_yearly_calibration(self, generator):
        yearly = generator.total_daily_rate() * 365
        # 5300 calibrated + 700 smtp-domain leak
        assert yearly == pytest.approx(6000, rel=0.02)

    def test_events_have_receiver_kind(self, generator):
        for request in generator.emails_for_day(0):
            assert request.true_kind is TypoEmailKind.RECEIVER

    def test_recipient_at_study_domain(self, generator, corpus):
        domains = set(corpus.domain_names())
        for request in generator.emails_for_day(1):
            domain = request.recipient.rpartition("@")[2]
            assert domain in domains
            assert request.study_domain == domain

    def test_popular_targets_attract_more(self, generator):
        """gmail/outlook typos must dominate hushmail typos."""
        gmail_typo = generator.expected_daily_rate("gnail.com")
        hushmail_typo = generator.expected_daily_rate("hushmaul.com")
        assert gmail_typo > 10 * hushmail_typo

    def test_visual_distance_matters_within_target(self, generator):
        """outlo0k (invisible edit) out-earns outmook (visible edit)."""
        assert generator.expected_daily_rate("outlo0k.com") > \
            generator.expected_daily_rate("outmook.com")

    def test_timestamps_within_day(self, generator):
        for request in generator.emails_for_day(5):
            assert request.day == 5

    def test_deterministic_given_seed(self, corpus):
        a = ReceiverTypoGenerator(corpus, SeededRng(3))
        b = ReceiverTypoGenerator(corpus, SeededRng(3))
        reqs_a = a.emails_for_day(0)
        reqs_b = b.emails_for_day(0)
        assert [r.recipient for r in reqs_a] == [r.recipient for r in reqs_b]
        assert [r.message.body for r in reqs_a] == [r.message.body for r in reqs_b]

    def test_volume_scale(self, corpus):
        full = ReceiverTypoGenerator(corpus, SeededRng(4), volume_scale=1.0)
        tenth = ReceiverTypoGenerator(corpus, SeededRng(4), volume_scale=0.1)
        assert tenth.total_daily_rate() == pytest.approx(
            full.total_daily_rate() * 0.1)

    def test_smtp_purpose_domains_get_leak_traffic(self, generator):
        assert generator.expected_daily_rate("mx4hotmail.com") > 0

    def test_from_header_parses(self, generator):
        for request in generator.emails_for_day(2):
            assert request.message.sender is not None

    def test_weekly_seasonality_mean_preserving(self):
        """The weekday factors average to 1.0, so the yearly calibration
        is untouched by the weekly dip."""
        factors = ReceiverTypoGenerator.WEEKDAY_FACTORS
        assert sum(factors) / len(factors) == pytest.approx(1.0)

    def test_weekends_quieter(self, corpus):
        generator = ReceiverTypoGenerator(corpus, SeededRng(99))
        weekday_counts = []
        weekend_counts = []
        for day in range(140):
            count = len(generator.emails_for_day(day))
            if day % 7 in (5, 6):
                weekend_counts.append(count)
            else:
                weekday_counts.append(count)
        weekday_mean = sum(weekday_counts) / len(weekday_counts)
        weekend_mean = sum(weekend_counts) / len(weekend_counts)
        assert weekend_mean < weekday_mean


class TestReflectionTypoGenerator:
    @pytest.fixture(scope="class")
    def generator(self, corpus):
        return ReflectionTypoGenerator(corpus, SeededRng(21))

    def test_kind(self, generator):
        for request in generator.emails_for_day(0):
            assert request.true_kind is TypoEmailKind.REFLECTION

    def test_service_mail_has_automation_fingerprints(self, generator):
        service_mails = [r for r in generator.emails_for_day(0)
                         if "application" not in r.message.subject]
        assert service_mails, "expected some service mail on day 0"
        for request in service_mails:
            has_unsub = request.message.has_header("List-Unsubscribe")
            sender = request.message.get_header("From") or ""
            assert has_unsub or "noreply" in sender

    def test_job_posting_anecdote_cvs(self, corpus):
        generator = ReflectionTypoGenerator(corpus, SeededRng(22),
                                            job_posting_daily_rate=5.0)
        requests = []
        for day in range(5):
            requests.extend(generator.emails_for_day(day))
        cvs = [r for r in requests if r.message.attachments
               and r.message.attachments[0].filename.startswith("cv_")]
        assert len(cvs) > 5
        # all CVs go to the same mistyped address at zohomil.com
        addresses = {r.recipient for r in cvs}
        assert len(addresses) == 1
        assert addresses.pop().endswith("@zohomil.com")

    def test_signups_accumulate_on_reflection_domains(self, generator):
        assert generator.standing_signups >= 6 * 6  # 6 reflection domains


class TestSmtpTypoGenerator:
    def _collect(self, seed, days=120, **kwargs):
        corpus = build_study_corpus()
        generator = SmtpTypoGenerator(corpus, SeededRng(seed), **kwargs)
        requests = []
        for day in range(days):
            requests.extend(generator.emails_for_day(day))
        return generator, requests

    def test_kind_and_domain(self):
        generator, requests = self._collect(31)
        corpus_domains = {d.domain for d in build_study_corpus().by_purpose("smtp")}
        for request in requests:
            assert request.true_kind is TypoEmailKind.SMTP
            assert request.study_domain in corpus_domains

    def test_recipient_is_third_party(self):
        _, requests = self._collect(32)
        for request in requests:
            assert not request.recipient.endswith(
                tuple(d.domain for d in build_study_corpus().domains))

    def test_bursty_sparse_pattern(self):
        """Figure 4 shape: most days are silent, traffic comes in bursts."""
        corpus = build_study_corpus()
        generator = SmtpTypoGenerator(corpus, SeededRng(33),
                                      events_per_year=80.0)
        daily = [len(generator.emails_for_day(day)) for day in range(200)]
        silent_days = sum(1 for d in daily if d == 0)
        assert silent_days > 100

    def test_persistence_distribution(self):
        generator, _ = self._collect(34, days=400,
                                     events_per_year=1200.0)
        events = generator.completed_events
        assert len(events) > 100
        single = sum(1 for e in events if e.persistence_days == 0.0)
        under_day = sum(1 for e in events if e.persistence_days <= 1.0)
        under_week = sum(1 for e in events if e.persistence_days <= 7.0)
        n = len(events)
        assert 0.60 < single / n < 0.80          # paper: 70% single email
        assert 0.75 < under_day / n < 0.92       # paper: 83% under a day
        assert under_week / n > 0.85             # paper: 90% under a week
        assert max(e.persistence_days for e in events) <= 209.0

    def test_sender_stable_within_event(self):
        generator, requests = self._collect(35, days=200,
                                            events_per_year=400.0)
        by_sender = {}
        for request in requests:
            sender = request.message.sender.bare
            by_sender.setdefault(sender, []).append(request)
        # some victim sent multiple emails, all to the same study domain
        multi = [reqs for reqs in by_sender.values() if len(reqs) > 1]
        assert multi
        for reqs in multi:
            assert len({r.study_domain for r in reqs}) == 1

    def test_requires_smtp_domains(self):
        from repro.core.targets import StudyCorpus
        with pytest.raises(ValueError):
            SmtpTypoGenerator(StudyCorpus(domains=[]), SeededRng(1))


class TestSpamGenerator:
    @pytest.fixture(scope="class")
    def generator(self, corpus):
        return SpamGenerator(corpus, SeededRng(41), volume_scale=2e-4)

    def test_kind(self, generator):
        for request in generator.emails_for_day(0):
            assert request.true_kind is TypoEmailKind.SPAM

    def test_volume_near_expected(self, generator):
        total = sum(len(generator.emails_for_day(day)) for day in range(10))
        expected = generator.expected_daily_total * 10
        assert expected * 0.8 < total < expected * 1.2

    def test_mixes_receiver_and_smtp_streams(self, corpus):
        generator = SpamGenerator(corpus, SeededRng(42), volume_scale=2e-4)
        requests = generator.emails_for_day(0)
        domains = set(corpus.domain_names())
        to_ours = [r for r in requests
                   if r.recipient.rpartition("@")[2] in domains]
        to_third_parties = [r for r in requests
                            if r.recipient.rpartition("@")[2] not in domains]
        assert to_ours and to_third_parties
        # SMTP-candidate stream dominates, as in the paper (102.7M vs 16.2M)
        assert len(to_third_parties) > 2 * len(to_ours)

    def test_campaigns_repeat_senders(self, corpus):
        generator = SpamGenerator(corpus, SeededRng(43), volume_scale=3e-4)
        senders = []
        for day in range(3):
            senders.extend(r.message.envelope_from
                           for r in generator.emails_for_day(day))
        assert len(set(senders)) < len(senders) * 0.7

    def test_malware_hashes_recorded(self, corpus):
        config = SpamConfig(attachment_probability=1.0,
                            malware_fraction_of_attachments=0.5)
        generator = SpamGenerator(corpus, SeededRng(44), config=config,
                                  volume_scale=1e-4)
        requests = generator.emails_for_day(0)
        assert generator.malicious_hashes
        attached_hashes = {a.sha256() for r in requests
                           for a in r.message.attachments}
        assert generator.malicious_hashes <= attached_hashes
