"""Tests for honey emails, squatter behaviour, and the two campaigns."""

import pytest

from repro.ecosystem import (
    EcosystemScanner,
    InternetConfig,
    SmtpSupport,
    build_internet,
)
from repro.honey import (
    HONEY_DESIGNS,
    AccessKind,
    AccessMonitor,
    HoneyCampaign,
    SquatterBehaviorConfig,
    SquatterBehaviorModel,
    make_honey_email,
    make_probe_email,
)
from repro.honey.monitor import AccessEvent
from repro.util import SeededRng


@pytest.fixture(scope="module")
def internet():
    return build_internet(SeededRng(404),
                          InternetConfig(num_filler_targets=25))


@pytest.fixture(scope="module")
def scan(internet):
    return EcosystemScanner(internet).scan()


@pytest.fixture(scope="module")
def probe_result(internet, scan):
    campaign = HoneyCampaign(internet, SeededRng(405))
    targets = campaign.probe_targets_from_scan(scan)
    return campaign.run_probe_campaign(targets)


class TestHoneyEmails:
    def test_four_designs(self):
        assert len(HONEY_DESIGNS) == 4

    def test_all_designs_have_pixel(self):
        for design in HONEY_DESIGNS:
            message, bait = make_honey_email(design, "user@gmial.com")
            assert bait.pixel_url in message.body

    def test_bait_ids_stable(self):
        _, bait_a = make_honey_email("document_link", "u@gmial.com")
        _, bait_b = make_honey_email("document_link", "v@gmial.com")
        assert bait_a.token_id == bait_b.token_id  # same domain
        _, bait_c = make_honey_email("document_link", "u@other.com")
        assert bait_a.token_id != bait_c.token_id

    def test_credential_designs_carry_credentials(self):
        for design in ("email_credentials", "shell_credentials"):
            message, bait = make_honey_email(design, "u@gmial.com")
            assert bait.credential_id is not None
            assert "password" in message.body.lower() or "pass" in message.body

    def test_docx_design_attaches_token(self):
        message, bait = make_honey_email("docx_payment", "u@gmial.com")
        assert len(message.attachments) == 1
        assert message.attachments[0].extension == "docx"
        assert bait.token_id in message.attachments[0].content.decode()

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            make_honey_email("bogus", "u@gmial.com")

    def test_probe_email_is_benign(self):
        message = make_probe_email("test@x.com")
        assert "password" not in message.body.lower()
        assert message.attachments == []

    def test_honey_email_passes_spam_filter(self):
        """The paper piloted designs to make sure they dodge spam filters."""
        from repro.pipeline import tokenize
        from repro.spamfilter import SpamAssassinScorer
        scorer = SpamAssassinScorer()
        for design in HONEY_DESIGNS:
            message, _ = make_honey_email(design, "u@gmial.com")
            assert not scorer.is_spam(tokenize(message)), design


class TestMonitor:
    def test_record_and_query(self):
        monitor = AccessMonitor()
        monitor.record(AccessEvent(AccessKind.PIXEL_FETCH, "p1", 100.0,
                                   "Warsaw, PL", "a.com"))
        monitor.record(AccessEvent(AccessKind.SHELL_LOGIN, "c1", 200.0,
                                   "Warsaw, PL", "a.com"))
        assert monitor.domains_with_reads() == ["a.com"]
        assert monitor.domains_with_token_access() == ["a.com"]
        assert monitor.first_access_lag("a.com") == 100.0
        assert monitor.first_access_lag("b.com") is None
        assert len(monitor) == 2

    def test_pixel_only_is_not_token_access(self):
        monitor = AccessMonitor()
        monitor.record(AccessEvent(AccessKind.PIXEL_FETCH, "p1", 50.0,
                                   "Kyiv, UA", "x.com"))
        assert monitor.domains_with_reads() == ["x.com"]
        assert monitor.domains_with_token_access() == []


class TestSquatterBehavior:
    def test_reads_are_rare(self, internet):
        model = SquatterBehaviorModel(internet, SeededRng(42))
        monitor = AccessMonitor()
        opened = 0
        domains = [w.domain for w in internet.wild_domains[:2000]]
        for domain in domains:
            _, bait = make_honey_email("document_link", f"u@{domain}")
            if model.process_accepted_email(bait, monitor):
                opened += 1
        assert opened < len(domains) * 0.05

    def test_reader_decision_stable_per_owner(self, internet):
        model = SquatterBehaviorModel(internet, SeededRng(43))
        wild = internet.wild_domains[0]
        first = model._owner_is_reader(wild.domain)
        second = model._owner_is_reader(wild.domain)
        assert first == second

    def test_human_lags_hours_scale(self, internet):
        config = SquatterBehaviorConfig(reader_rate_bulk=1.0,
                                        reader_rate_medium=1.0,
                                        reader_rate_small=1.0,
                                        reader_rate_legitimate=1.0,
                                        open_probability=1.0,
                                        image_load_probability=1.0)
        model = SquatterBehaviorModel(internet, SeededRng(44), config=config)
        monitor = AccessMonitor()
        for wild in internet.wild_domains[:50]:
            _, bait = make_honey_email("email_credentials", f"u@{wild.domain}")
            model.process_accepted_email(bait, monitor)
        lags = [e.timestamp for e in monitor.events]
        assert lags
        assert min(lags) > 1800  # at least half an hour: humans, not bots

    def test_unknown_domain_never_read(self, internet):
        model = SquatterBehaviorModel(internet, SeededRng(45))
        _, bait = make_honey_email("document_link", "u@unknown-domain.example")
        assert not model.process_accepted_email(bait, AccessMonitor())


class TestProbeCampaign:
    def test_probe_targets_exclude_dns_dead(self, internet, scan):
        campaign = HoneyCampaign(internet, SeededRng(1))
        targets = campaign.probe_targets_from_scan(scan)
        assert targets
        for result in targets:
            assert result.support is not SmtpSupport.NO_DNS

    def test_table5_shape(self, probe_result):
        """Private registrations accept more; errors dominate overall."""
        table = probe_result.table
        assert table.private["no_error"] > table.public["no_error"]
        errors_public = (table.public["timeout"] + table.public["network_error"]
                         + table.public["bounce"])
        assert errors_public > table.public["no_error"]

    def test_accepting_domains_recorded(self, probe_result):
        assert probe_result.accepting_domains
        assert len(probe_result.accepting_domains) < probe_result.domains_probed

    def test_table6_concentration(self, probe_result):
        """Paper: ~95% of accepters rely on eight (private) mail hosts."""
        rows = probe_result.mx_table()
        top8 = sum(count for _, count, _ in rows[:8])
        assert top8 > 0.6 * len(probe_result.accepting_domains)
        from repro.ecosystem import SQUATTER_MX_POOL
        pool = {host for host, _, _ in SQUATTER_MX_POOL}
        top_hosts = {host for host, _, _ in rows[:8]}
        assert len(pool & top_hosts) >= 5


class TestTokenCampaign:
    def test_pilot_respects_per_registrant_cap(self, internet, probe_result):
        campaign = HoneyCampaign(internet, SeededRng(2))
        pilot = campaign.select_pilot_domains(probe_result.accepting_domains,
                                              max_per_registrant=4)
        per_owner = {}
        for domain in pilot:
            wild = internet.ground_truth(domain)
            owner = wild.owner_id if wild else domain
            per_owner[owner] = per_owner.get(owner, 0) + 1
        assert max(per_owner.values()) <= 4

    def test_full_campaign_negative_result(self, internet, probe_result):
        """The paper's headline: accepted en masse, read almost never."""
        campaign = HoneyCampaign(internet, SeededRng(3))
        result = campaign.run_token_campaign(probe_result.accepting_domains)
        assert result.emails_sent == 4 * len(probe_result.accepting_domains)
        assert result.emails_accepted > 0.5 * result.emails_sent
        assert result.emails_opened < 0.05 * result.emails_accepted
        assert len(result.domains_acted) <= len(result.domains_read) + 1

    def test_one_design_each(self, internet, probe_result):
        campaign = HoneyCampaign(internet, SeededRng(4))
        subset = probe_result.accepting_domains[:10]
        result = campaign.run_token_campaign(subset,
                                             designs=["document_link"])
        assert result.emails_sent == 10
