"""Wire-boundary integration: serialise → parse → process → classify.

Everything the collection server stores and everything the pipeline
consumes crosses the RFC 5322-ish wire format at least once in a real
deployment.  These tests push complete messages through a serialisation
round trip *before* the processing pipeline and the funnel, proving that
classification outcomes do not depend on in-memory object identity.
"""

import pytest

from repro.pipeline import EmailProcessor, tokenize
from repro.smtpsim import Attachment, EmailMessage
from repro.spamfilter import FilterFunnel, Verdict
from repro.workloads.textgen import make_attachment_payload

OUR = ["gmial.com"]


def _roundtrip(message: EmailMessage) -> EmailMessage:
    parsed = EmailMessage.from_wire(message.to_wire())
    # the envelope travels out of band (SMTP, not RFC 5322): re-attach
    parsed.envelope_from = message.envelope_from
    parsed.envelope_to = list(message.envelope_to)
    parsed.received_by_ip = message.received_by_ip
    parsed.received_at = message.received_at
    return parsed


class TestWireThenPipeline:
    def test_scrubbing_after_roundtrip(self):
        message = EmailMessage.create(
            "alice@real.org", "bob@gmial.com", "payment",
            "charge my card 4111111111111111 please")
        processed = EmailProcessor().process(_roundtrip(message))
        assert "4111111111111111" not in processed.scrubbed_body
        assert processed.body_sensitive_labels == ("visa",)

    def test_attachment_extraction_after_roundtrip(self):
        payload = make_attachment_payload("docx", "ssn 078-05-1120 enclosed")
        message = EmailMessage.create(
            "alice@real.org", "bob@gmial.com", "forms", "see attached",
            attachments=[Attachment("forms.docx", payload)])
        processed = EmailProcessor().process(_roundtrip(message))
        attachment = processed.attachments[0]
        assert attachment.extracted
        assert attachment.sensitive_labels == ("ssn",)
        assert "078-05-1120" not in attachment.scrubbed_text

    def test_binary_attachment_hash_stable_across_wire(self):
        binary = bytes(range(256))
        message = EmailMessage.create(
            "alice@real.org", "bob@gmial.com", "blob", "binary attached",
            attachments=[Attachment("data.bin", binary)])
        original_hash = message.attachments[0].sha256()
        parsed = _roundtrip(message)
        assert parsed.attachments[0].sha256() == original_hash


class TestWireThenFunnel:
    def _classify(self, message: EmailMessage):
        message.headers.insert(
            0, ("Received", "from sender by gmial.com (198.51.100.1)"))
        funnel = FilterFunnel(OUR)
        return funnel.classify(tokenize(_roundtrip(message)))

    def test_genuine_typo_survives_roundtrip(self):
        message = EmailMessage.create(
            "alice@real.org", "bob@gmial.com", "lunch",
            "see you at noon, bob")
        assert self._classify(message).verdict is Verdict.TRUE_TYPO

    def test_spam_still_spam_after_roundtrip(self):
        message = EmailMessage.create(
            "win@lucky.top", "bob@gmial.com", "YOU HAVE WON!!!",
            "dear friend, claim your prize now! act now risk free "
            "http://a.top http://b.top http://c.top")
        result = self._classify(message)
        assert result.verdict is Verdict.SPAM
        assert result.layer == 2

    def test_zip_rule_survives_roundtrip(self):
        message = EmailMessage.create(
            "docs@corp.org", "bob@gmial.com", "files", "attached",
            attachments=[Attachment("archive.zip", b"PK\x03\x04")])
        result = self._classify(message)
        assert result.verdict is Verdict.SPAM
        assert "ZIP/RAR" in result.reason

    def test_reflection_markers_survive_roundtrip(self):
        message = EmailMessage.create(
            "noreply@deals.example", "bob@gmial.com", "deals #12",
            "big savings. to unsubscribe reply stop.",
            extra_headers={"List-Unsubscribe": "<mailto:u@deals.example>"})
        assert self._classify(message).verdict is Verdict.REFLECTION

    def test_smtp_kind_preserved(self):
        message = EmailMessage.create(
            "victim@verizon.net", "friend@elsewhere.org", "note",
            "a personal note")
        message.envelope_to = ["friend@elsewhere.org"]
        message.headers.insert(
            0, ("Received", "from victim by gmial.com (198.51.100.1)"))
        funnel = FilterFunnel(OUR)
        result = funnel.classify(tokenize(_roundtrip(message)))
        assert result.kind == "smtp"
