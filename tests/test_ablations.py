"""Ablation studies over the design choices DESIGN.md calls out.

These are not paper experiments — they probe *why* the system is built
the way it is: what each funnel layer uniquely contributes, how sensitive
Layer 5 is to its thresholds, what the retroactive collaborative pass
buys, and how the typing model's fat-finger/visual knobs drive the
traffic shape the paper observed.
"""

import pytest

from repro.core import TypoEmailKind, TypoGenerator, build_study_corpus
from repro.pipeline import tokenize
from repro.spamfilter import FilterFunnel, FunnelConfig, Verdict
from repro.util import SeededRng
from repro.workloads import (
    ReceiverTypoGenerator,
    SpamGenerator,
    TypingMistakeModel,
    TypoModelConfig,
)


@pytest.fixture(scope="module")
def traffic():
    """A compact labelled mixed-traffic corpus (spam + genuine typos)."""
    corpus = build_study_corpus()
    rng = SeededRng(555)
    spam = SpamGenerator(corpus, rng.child("spam"), volume_scale=2e-4)
    ham = ReceiverTypoGenerator(corpus, rng.child("ham"))
    requests = []
    for day in range(40):
        requests.extend(spam.emails_for_day(day))
        requests.extend(ham.emails_for_day(day))
    emails = []
    labels = []
    for request in requests:
        message = request.message
        message.headers.insert(
            0, ("Received",
                f"from x by {request.study_domain} (198.51.100.9)"))
        message.envelope_to = [request.recipient]
        emails.append(tokenize(message))
        labels.append(request.true_kind)
    return corpus, emails, labels


def _spam_leak(corpus, emails, labels, **funnel_kwargs) -> int:
    """Ground-truth spam emails that survive to the true-typo bin."""
    funnel = FilterFunnel(corpus.domain_names(), **funnel_kwargs)
    results = funnel.classify_corpus(emails)
    return sum(1 for result, label in zip(results, labels)
               if label is TypoEmailKind.SPAM and result.is_true_typo)


class TestLayerKnockouts:
    def test_full_funnel_baseline(self, traffic):
        corpus, emails, labels = traffic
        leak = _spam_leak(corpus, emails, labels)
        spam_total = sum(1 for label in labels
                         if label is TypoEmailKind.SPAM)
        assert leak < 0.05 * spam_total

    def test_each_layer_contributes(self, traffic):
        """Removing any spam-facing layer must not reduce the leak."""
        corpus, emails, labels = traffic
        baseline = _spam_leak(corpus, emails, labels)
        for removed in (1, 2, 3, 5):
            layers = {1, 2, 3, 4, 5} - {removed}
            leak = _spam_leak(corpus, emails, labels,
                              enabled_layers=layers)
            assert leak >= baseline, f"layer {removed} made things worse?"

    def test_spamassassin_is_the_workhorse(self, traffic):
        """Without Layer 2, the funnel leaks dramatically more."""
        corpus, emails, labels = traffic
        baseline = _spam_leak(corpus, emails, labels)
        without_l2 = _spam_leak(corpus, emails, labels,
                                enabled_layers={1, 3, 4, 5})
        assert without_l2 > 3 * max(1, baseline)

    def test_genuine_typos_unharmed_by_full_funnel(self, traffic):
        corpus, emails, labels = traffic
        funnel = FilterFunnel(corpus.domain_names())
        results = funnel.classify_corpus(emails)
        genuine = [(result, label) for result, label in zip(results, labels)
                   if label is TypoEmailKind.RECEIVER]
        survived = sum(1 for result, _ in genuine if result.is_true_typo)
        assert survived > 0.8 * len(genuine)

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            FilterFunnel(["a.com"], enabled_layers={1, 9})


class TestFrequencyThresholdSensitivity:
    def test_tighter_thresholds_filter_more(self, traffic):
        corpus, emails, labels = traffic

        def frequency_count(threshold):
            config = FunnelConfig(
                recipient_frequency_threshold=threshold,
                sender_frequency_threshold=threshold,
                content_frequency_threshold=threshold)
            funnel = FilterFunnel(corpus.domain_names(), config=config)
            results = funnel.classify_corpus(emails)
            return sum(1 for r in results
                       if r.verdict is Verdict.FREQUENCY_FILTERED)

        tight = frequency_count(3)
        paper = frequency_count(20)
        loose = frequency_count(500)
        assert tight > paper > loose

    def test_overtight_threshold_hurts_genuine_mail(self, traffic):
        """The paper chose 20/10/10 to 'exclude outliers' — a threshold
        of 2 starts eating genuine typos."""
        corpus, emails, labels = traffic
        config = FunnelConfig(recipient_frequency_threshold=2,
                              sender_frequency_threshold=2,
                              content_frequency_threshold=2)
        funnel = FilterFunnel(corpus.domain_names(), config=config)
        results = funnel.classify_corpus(emails)
        genuine_filtered = sum(
            1 for result, label in zip(results, labels)
            if label is TypoEmailKind.RECEIVER
            and result.verdict is Verdict.FREQUENCY_FILTERED)
        assert genuine_filtered > 0


class TestRetroactiveCollaborative:
    def test_batch_beats_streaming_on_campaign_order(self, traffic):
        """classify_corpus retroactively condemns a campaign's early mail;
        streaming lets the pre-detection prefix through."""
        corpus, emails, labels = traffic
        batch_funnel = FilterFunnel(corpus.domain_names())
        batch = batch_funnel.classify_corpus(emails)
        stream_funnel = FilterFunnel(corpus.domain_names())
        stream = [stream_funnel.classify(email) for email in emails]
        batch_leak = sum(1 for result, label in zip(batch, labels)
                         if label is TypoEmailKind.SPAM and result.is_true_typo)
        stream_leak = sum(1 for result, label in zip(stream, labels)
                          if label is TypoEmailKind.SPAM and result.is_true_typo)
        assert batch_leak <= stream_leak


class TestTypingModelKnobs:
    def test_fat_finger_multiplier_shapes_traffic(self):
        generator = TypoGenerator()
        candidates = [c for c in generator.generate("gmail.com")
                      if c.edit_type == "substitution"]
        ff = next(c for c in candidates if c.is_fat_finger)
        boosted = TypingMistakeModel(TypoModelConfig(fat_finger_multiplier=10.0))
        flat = TypingMistakeModel(TypoModelConfig(fat_finger_multiplier=1.0))
        assert boosted.mistype_probability(ff) > flat.mistype_probability(ff)

    def test_correction_steepness_drives_visual_effect(self):
        generator = TypoGenerator()
        visible = generator.annotate("outlook.com", "oxtlook.com")
        steep = TypingMistakeModel(TypoModelConfig(correction_steepness=30.0))
        shallow = TypingMistakeModel(TypoModelConfig(correction_steepness=1.0))
        assert steep.correction_probability(visible) > \
            shallow.correction_probability(visible)

    def test_visual_effect_disappears_without_steepness(self):
        """With steepness ~0 every typo is corrected at the floor rate:
        the paper's visual-distance finding requires the knob."""
        generator = TypoGenerator()
        invisible = generator.annotate("outlook.com", "outlo0k.com")
        visible = generator.annotate("outlook.com", "oxtlook.com")
        flat_model = TypingMistakeModel(
            TypoModelConfig(correction_steepness=1e-9))
        gap = (flat_model.correction_probability(visible)
               - flat_model.correction_probability(invisible))
        assert gap == pytest.approx(0.0, abs=1e-6)
