"""Drift-resilient model lifecycle: detect → shadow-retrain → gated swap.

The acceptance bar mirrors the hot-swap suite's: the whole cycle is a
pure fold over ``(seed, incumbent model, campaign window)`` — replays
are byte-identical; an adaptive campaign degrades recall past the trip
threshold and the healed model wins it back without regressing the
baseline distribution; and a real SIGKILL at *every* promote/rollback
phase boundary leaves only doctor-valid artifacts from which a reset
replay converges on the crash-free bytes.
"""

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.doctor import diagnose_file
from repro.learned import (
    DriftMonitor,
    ModelLifecycle,
    campaign_message_window,
    gate_candidate,
    run_drift_drill,
    shadow_retrain,
    train_typo_model,
)
from repro.learned.lifecycle import _recall
from repro.util.errors import ConfigError

SEED = 41
CHEAP = dict(train_ranks=300, train_dataset_size=40)
CAMPAIGN = dict(pool_size=400, evasion_bias=0.9)


@pytest.fixture(scope="module")
def model():
    trained, _ = train_typo_model(SEED, ranks=300, dataset_size=40)
    return trained


@pytest.fixture(scope="module")
def campaign_window(model):
    return campaign_message_window(model, SEED, "adaptive-campaign",
                                   **CAMPAIGN)


@pytest.fixture(scope="module")
def clean_drill(tmp_path_factory):
    """The crash-free reference drill every recovery test compares to."""
    directory = tmp_path_factory.mktemp("clean-drill")
    return run_drift_drill(directory, SEED, **CHEAP)


class TestCampaignWindow:
    def test_window_is_deterministic(self, model, campaign_window):
        again = campaign_message_window(model, SEED, "adaptive-campaign",
                                        **CAMPAIGN)
        assert np.array_equal(campaign_window[0], again[0])
        assert np.array_equal(campaign_window[1], again[1])

    def test_campaign_degrades_incumbent_recall(self, model,
                                                campaign_window):
        X, y = campaign_window
        baseline = DriftMonitor(model, SEED).baseline_recall
        assert _recall(model, X, y) < baseline - 0.5

    def test_windows_are_campaign_keyed(self, model, campaign_window):
        other = campaign_message_window(model, SEED, "other-campaign",
                                        **CAMPAIGN)
        assert not np.array_equal(campaign_window[0], other[0])

    def test_empty_pool_is_rejected(self, model):
        with pytest.raises(ConfigError, match="pool_size"):
            campaign_message_window(model, SEED, "c", pool_size=0,
                                    evasion_bias=0.5)


class TestDriftMonitor:
    def test_in_distribution_window_does_not_trip(self, model):
        monitor = DriftMonitor(model, SEED)
        report = monitor.observe(model, "benign", monitor.baseline_X,
                                 monitor.baseline_y)
        assert not report.tripped
        assert report.drift_score == 0.0

    def test_campaign_window_trips(self, model, campaign_window):
        monitor = DriftMonitor(model, SEED)
        report = monitor.observe(model, "campaign", *campaign_window)
        assert report.tripped
        assert report.drift_score > monitor.threshold

    def test_observation_digest_is_replayable(self, model,
                                              campaign_window):
        first = DriftMonitor(model, SEED)
        second = DriftMonitor(model, SEED)
        for monitor in (first, second):
            monitor.observe(model, "campaign", *campaign_window)
        assert first.digest() == second.digest()

    def test_bad_threshold_is_rejected(self, model):
        with pytest.raises(ConfigError, match="threshold"):
            DriftMonitor(model, SEED, threshold=0.0)


class TestRetrainAndGate:
    def test_candidate_heals_the_window_and_promotes(self, model,
                                                     campaign_window):
        X, y = campaign_window
        monitor = DriftMonitor(model, SEED)
        candidate = shadow_retrain(model, SEED, "campaign", X, y)
        gate = gate_candidate(model, candidate, X, y,
                              monitor.baseline_X, monitor.baseline_y)
        assert gate.promote, gate.reason
        assert gate.candidate_recall > gate.incumbent_recall
        assert gate.candidate_baseline_recall >= \
            gate.incumbent_baseline_recall - 0.02

    def test_candidate_provenance_records_the_window(self, model,
                                                     campaign_window):
        candidate = shadow_retrain(model, SEED, "campaign",
                                   *campaign_window)
        assert candidate.provenance["retrained_window"] == "campaign"
        assert candidate.digest() != model.digest()
        # only the message lane retrains
        assert candidate.domain is model.domain

    def test_gate_rejects_a_non_improvement(self, model, campaign_window):
        X, y = campaign_window
        monitor = DriftMonitor(model, SEED)
        gate = gate_candidate(model, model, X, y,
                              monitor.baseline_X, monitor.baseline_y)
        assert not gate.promote
        assert "does not beat" in gate.reason


class TestLifecycle:
    def test_benign_window_holds(self, tmp_path, model):
        lifecycle = ModelLifecycle(tmp_path, SEED)
        lifecycle.initialize(model)
        monitor = lifecycle.monitor()
        decision = lifecycle.run_cycle("benign", monitor.baseline_X,
                                       monitor.baseline_y)
        assert decision.action == "hold"
        assert not lifecycle.candidate_path.exists()
        assert lifecycle.active().digest() == model.digest()

    def test_campaign_cycle_promotes(self, tmp_path, model,
                                     campaign_window):
        lifecycle = ModelLifecycle(tmp_path, SEED)
        lifecycle.initialize(model)
        phases = []
        decision = lifecycle.run_cycle("campaign", *campaign_window,
                                       phase_hook=phases.append)
        assert decision.action == "promote"
        assert phases == ["trained", "candidate_saved", "gated",
                          "previous_saved", "promoted"]
        assert lifecycle.active().digest() == decision.active_digest
        assert lifecycle.previous_path.exists()
        assert not lifecycle.candidate_path.exists()

    def test_live_disagreement_spike_rolls_back(self, tmp_path, model,
                                                campaign_window):
        lifecycle = ModelLifecycle(tmp_path, SEED)
        lifecycle.initialize(model)
        lifecycle.run_cycle("campaign", *campaign_window)
        promoted_digest = lifecycle.active().digest()
        # the campaign window is exactly where active and previous
        # disagree (the promote healed it) — a live stream full of it
        # looks like a bad promote and must demote, with zero drops
        verdict = lifecycle.check_live_disagreement(campaign_window[0])
        assert verdict["checked"] and verdict["rolled_back"]
        assert verdict["disagreement"] > 0.25
        assert verdict["active_digest"] == model.digest() != \
            promoted_digest
        assert not lifecycle.previous_path.exists()

    def test_low_disagreement_keeps_the_promote(self, tmp_path, model,
                                                campaign_window):
        lifecycle = ModelLifecycle(tmp_path, SEED)
        lifecycle.initialize(model)
        lifecycle.run_cycle("campaign", *campaign_window)
        verdict = lifecycle.check_live_disagreement(
            lifecycle.monitor().baseline_X)
        assert verdict["checked"] and not verdict["rolled_back"]

    def test_initialize_overwrite_resets_the_directory(self, tmp_path,
                                                       model,
                                                       campaign_window):
        lifecycle = ModelLifecycle(tmp_path, SEED)
        lifecycle.initialize(model)
        lifecycle.run_cycle("campaign", *campaign_window)
        assert lifecycle.active().digest() != model.digest()
        lifecycle.initialize(model, overwrite=True)
        assert lifecycle.active().digest() == model.digest()
        assert not lifecycle.previous_path.exists()
        assert lifecycle.decisions == []


class TestDrillDeterminism:
    def test_drill_heals_recall_past_the_pre_drift_floor(self,
                                                         clean_drill):
        report = clean_drill
        assert report["decision"]["action"] == "promote"
        assert report["window_recall_before"] < \
            report["pre_drift_recall"] - 0.5
        assert report["window_recall_after"] >= \
            report["pre_drift_recall"] - 1e-9
        assert not report["disagreement"]["rolled_back"]

    def test_drill_replays_byte_identically(self, tmp_path, clean_drill):
        again = run_drift_drill(tmp_path, SEED, **CHEAP)
        for key in ("active_digest", "decisions_digest", "drift_digest",
                    "decision", "window_recall_after"):
            assert again[key] == clean_drill[key], key


@pytest.mark.chaos
class TestTornLifecycle:
    """SIGKILL a real subprocess at every phase boundary; the directory
    must hold only doctor-valid artifacts and a reset replay must
    converge on the crash-free bytes."""

    CHILD_SCRIPT = """
import os
import signal
import sys
from repro.learned import campaign_message_window, run_drift_drill

directory, crash_phase = sys.argv[1], sys.argv[2]

def hook(phase):
    if phase == crash_phase:
        os.kill(os.getpid(), signal.SIGKILL)

if crash_phase == "rolled_back":
    # reach the rollback boundary: promote cleanly first, then feed the
    # disagreement check the campaign window active/previous disagree on
    # (rebuilt from previous.json == the pre-promote incumbent, so it is
    # byte-identical to the window the promote healed)
    from repro.learned import ModelLifecycle
    from repro.learned.model import load_model

    run_drift_drill(directory, 41, train_ranks=300,
                    train_dataset_size=40)
    lifecycle = ModelLifecycle(directory, 41)
    incumbent = load_model(str(lifecycle.previous_path))
    window_X, _ = campaign_message_window(
        incumbent, 41, "adaptive-campaign",
        pool_size=400, evasion_bias=0.9)
    lifecycle.check_live_disagreement(window_X, phase_hook=hook)
else:
    run_drift_drill(directory, 41, train_ranks=300,
                    train_dataset_size=40, phase_hook=hook)
"""

    def _crash_at(self, directory, crash_phase):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src", env.get("PYTHONPATH", "")])
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD_SCRIPT,
             str(directory), crash_phase],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            returncode = child.wait(timeout=180)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == -signal.SIGKILL, \
            f"child survived the {crash_phase!r} crash point"

    @pytest.mark.parametrize("crash_phase", [
        "trained", "candidate_saved", "gated", "previous_saved",
        "promoted", "rolled_back"])
    def test_kill_at_every_boundary_heals_byte_identically(
            self, tmp_path, clean_drill, crash_phase):
        self._crash_at(tmp_path, crash_phase)

        artifacts = sorted(tmp_path.glob("*.json"))
        assert artifacts, "no artifacts survived the kill"
        for artifact in artifacts:
            diagnosis = diagnose_file(artifact)
            assert diagnosis.ok, (artifact, diagnosis.problems)
            assert diagnosis.kind == "typo-model"
        assert not list(tmp_path.glob("*.tmp")), "torn temp file leaked"

        # recovery: replay the whole fold from the initial model
        healed = run_drift_drill(tmp_path, SEED, **CHEAP, reset=True)
        for key in ("active_digest", "decisions_digest", "drift_digest",
                    "decision"):
            assert healed[key] == clean_drill[key], key
