"""Artifact integrity doctor + CLI error taxonomy exit codes.

The doctor must identify each artifact kind from its content, validate
it with the same loaders the engine uses, and map failures onto the
taxonomy's exit codes — 2 for bad input files, 3 for corrupt or
mismatched checkpoints, 4 for degraded runs — with one-line messages
and never a traceback.
"""

import json

import pytest

from repro.cli import main
from repro.doctor import (
    KIND_FAULT_PLAN,
    KIND_PERF_BASELINE,
    KIND_RISK_INDEX,
    KIND_SCAN_CHECKPOINT,
    KIND_STUDY_CHECKPOINT,
    KIND_UNKNOWN,
    Diagnosis,
    diagnose_file,
    diagnose_paths,
    exit_code_for,
)
from repro.experiment import ScanCheckpoint, StudyCheckpoint, run_sharded_scan
from repro.faultsim.plan import FaultPlan, ShardCrashSpec, StudyCrashSpec
from repro.util.errors import (
    EXIT_BAD_INPUT,
    EXIT_CORRUPT_CHECKPOINT,
    EXIT_DEGRADED,
    CheckpointCorruptError,
)


@pytest.fixture()
def study_ckpt(tmp_path):
    path = tmp_path / "study.ckpt"
    StudyCheckpoint(path).save({"seed": 5}, 42, {10: 1},
                               {"mode": "batch", "sent": 99})
    return path


@pytest.fixture(scope="module")
def scan_aggregates():
    return run_sharded_scan(9, 12, jobs=1)


@pytest.fixture()
def scan_ckpt(tmp_path, scan_aggregates):
    path = tmp_path / "scan.ckpt"
    ScanCheckpoint(path, seed=9, max_rank=12).record(1, 13,
                                                     scan_aggregates)
    return path


@pytest.fixture()
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    plan = FaultPlan(seed=3, study_crashes=(StudyCrashSpec(day=4,
                                                           failures=1),))
    path.write_text(plan.to_json())
    return path


@pytest.fixture()
def risk_index_file(tmp_path):
    from repro.service import TypoRiskIndex

    path = tmp_path / "risk.index"
    TypoRiskIndex(11, 60).save(path)
    return path


class TestKindDetectionAndHealth:
    def test_healthy_study_checkpoint(self, study_ckpt):
        diagnosis = diagnose_file(study_ckpt)
        assert diagnosis.kind == KIND_STUDY_CHECKPOINT
        assert diagnosis.ok and diagnosis.exit_code == 0
        assert diagnosis.details["next_day"] == 42
        assert diagnosis.details["mode"] == "batch"

    def test_healthy_scan_checkpoint(self, scan_ckpt):
        diagnosis = diagnose_file(scan_ckpt)
        assert diagnosis.kind == KIND_SCAN_CHECKPOINT
        assert diagnosis.ok
        assert diagnosis.details["shards_done"] == 1

    def test_healthy_fault_plan(self, plan_file):
        diagnosis = diagnose_file(plan_file)
        assert diagnosis.kind == KIND_FAULT_PLAN
        assert diagnosis.ok and diagnosis.details["empty"] is False

    def test_repo_perf_baseline_is_healthy(self):
        diagnosis = diagnose_file("BENCH_perf.json")
        assert diagnosis.kind == KIND_PERF_BASELINE
        assert diagnosis.ok

    def test_healthy_risk_index(self, risk_index_file):
        diagnosis = diagnose_file(risk_index_file)
        assert diagnosis.kind == KIND_RISK_INDEX
        assert diagnosis.ok and diagnosis.exit_code == 0
        assert diagnosis.details["seed"] == 11
        assert diagnosis.details["max_rank"] == 60
        assert diagnosis.details["head_buckets"] > 0

    def test_unrecognized_json_is_unknown(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": "world"}')
        diagnosis = diagnose_file(path)
        assert diagnosis.kind == KIND_UNKNOWN
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_BAD_INPUT

    def test_missing_file(self, tmp_path):
        diagnosis = diagnose_file(tmp_path / "absent.json")
        assert not diagnosis.ok
        assert "does not exist" in diagnosis.problems[0]


class TestCorruptionDetection:
    def test_tampered_study_checkpoint_fails_digest(self, study_ckpt):
        data = json.loads(study_ckpt.read_text())
        data["state"]["sent"] = 10_000
        study_ckpt.write_text(json.dumps(data))
        diagnosis = diagnose_file(study_ckpt)
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_CORRUPT_CHECKPOINT
        assert "digest" in diagnosis.problems[0]

    def test_torn_study_checkpoint(self, study_ckpt):
        study_ckpt.write_text(study_ckpt.read_text()[:60])
        diagnosis = diagnose_file(study_ckpt)
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_CORRUPT_CHECKPOINT
        assert "torn or truncated" in diagnosis.problems[0]

    def test_torn_scan_checkpoint_is_clear_error_not_json_error(
            self, scan_ckpt):
        """The satellite contract: a truncated scan checkpoint must
        surface as a doctor-style taxonomy error, never a raw
        json.JSONDecodeError."""
        scan_ckpt.write_text(scan_ckpt.read_text()[:100])
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            ScanCheckpoint(scan_ckpt, seed=9, max_rank=12)
        diagnosis = diagnose_file(scan_ckpt)
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_CORRUPT_CHECKPOINT

    def test_scan_checkpoint_with_mangled_shard_payload(self, scan_ckpt):
        data = json.loads(scan_ckpt.read_text())
        data["shards"]["1-13"] = {"nonsense": True}
        scan_ckpt.write_text(json.dumps(data))
        diagnosis = diagnose_file(scan_ckpt)
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_CORRUPT_CHECKPOINT

    def test_tampered_risk_index_exits_three(self, risk_index_file):
        data = json.loads(risk_index_file.read_text())
        data["max_rank"] = 61
        risk_index_file.write_text(json.dumps(data, sort_keys=True))
        diagnosis = diagnose_file(risk_index_file)
        assert diagnosis.kind == KIND_RISK_INDEX
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_CORRUPT_CHECKPOINT

    def test_torn_risk_index_exits_three(self, risk_index_file):
        # torn mid-write: unparseable, so the kind falls back to the
        # filename — "index" must map to the corrupt-state exit code
        risk_index_file.write_text(risk_index_file.read_text()[:90])
        diagnosis = diagnose_file(risk_index_file)
        assert diagnosis.kind == KIND_RISK_INDEX
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_CORRUPT_CHECKPOINT
        assert "torn or truncated" in diagnosis.problems[0]

    def test_invalid_fault_plan_values(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = json.loads(FaultPlan(seed=3).to_json())
        plan["study_crashes"] = [{"day": -4, "failures": 1}]
        path.write_text(json.dumps(plan))
        diagnosis = diagnose_file(path)
        assert diagnosis.kind == KIND_FAULT_PLAN
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_BAD_INPUT

    def test_perf_baseline_missing_study_section(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"baseline": {"scan": {}}}))
        diagnosis = diagnose_file(path)
        assert diagnosis.kind == KIND_PERF_BASELINE
        assert not diagnosis.ok

    def test_worst_finding_wins(self, tmp_path, study_ckpt):
        junk = tmp_path / "junk.json"
        junk.write_text("[]")
        study_ckpt.write_text(study_ckpt.read_text()[:50])
        diagnoses = diagnose_paths([junk, study_ckpt])
        assert exit_code_for(diagnoses) == EXIT_CORRUPT_CHECKPOINT
        assert exit_code_for([diagnoses[0]]) == EXIT_BAD_INPUT
        assert exit_code_for([Diagnosis(path=junk, kind=KIND_UNKNOWN,
                                        ok=True)]) == 0


class TestDoctorCli:
    def test_all_healthy_exits_zero(self, study_ckpt, plan_file, capsys):
        assert main(["doctor", str(study_ckpt), str(plan_file),
                     "BENCH_perf.json"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 3

    def test_corrupt_checkpoint_exits_three(self, study_ckpt, capsys):
        study_ckpt.write_text(study_ckpt.read_text()[:60])
        assert main(["doctor", str(study_ckpt)]) == EXIT_CORRUPT_CHECKPOINT
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "1 of 1 artifacts failed" in captured.err

    def test_bad_plan_exits_two(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 1, "retry": {"max_attempts": 0}}')
        assert main(["doctor", str(path)]) == EXIT_BAD_INPUT
        assert "FAIL" in capsys.readouterr().out


class TestCliTaxonomy:
    def test_malformed_fault_plan_is_one_line_exit_two(self, tmp_path,
                                                       capsys):
        path = tmp_path / "broken.json"
        path.write_text("{definitely not json")
        code = main(["study", "--fault-plan", str(path)])
        captured = capsys.readouterr()
        assert code == EXIT_BAD_INPUT
        assert "Traceback" not in captured.err
        assert captured.err.startswith("error: invalid fault plan")

    def test_unreadable_fault_plan_path(self, tmp_path, capsys):
        code = main(["study", "--fault-plan", str(tmp_path / "nope.json")])
        assert code == EXIT_BAD_INPUT
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_study_resume_missing_checkpoint_exits_three(self, tmp_path,
                                                         capsys):
        code = main(["study", "--resume", str(tmp_path / "none.ckpt")])
        captured = capsys.readouterr()
        assert code == EXIT_CORRUPT_CHECKPOINT
        assert "does not exist" in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.chaos
    def test_degraded_scan_exits_four(self, tmp_path, capsys):
        plan = FaultPlan(seed=5, shard_crashes=(
            ShardCrashSpec(rank=3, failures=99, mode="crash"),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        code = main(["--seed", "9", "scan", "--ranks", "24",
                     "--fault-plan", str(path)])
        captured = capsys.readouterr()
        assert code == EXIT_DEGRADED
        assert "DEGRADED" in captured.err
        assert "never" in captured.err and "scanned" in captured.err


class TestServicePlanSchema:
    """The doctor understands the extended (service-spell) plan schema."""

    def test_healthy_service_plan_reports_spell_count(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan.service_chaos_demo(
            9, lookups=10_000).to_json())
        diagnosis = diagnose_file(path)
        assert diagnosis.kind == KIND_FAULT_PLAN
        assert diagnosis.ok and diagnosis.exit_code == 0
        assert diagnosis.details["service_spells"] == 4
        assert diagnosis.details["empty"] is False

    def test_unknown_spell_kind_exits_two_not_traceback(self, tmp_path,
                                                        capsys):
        path = tmp_path / "plan.json"
        plan = json.loads(FaultPlan(seed=3).to_json())
        plan["service_spells"] = [{"start_lookup": 0, "end_lookup": 5,
                                   "kind": "quantum_flux"}]
        path.write_text(json.dumps(plan))
        diagnosis = diagnose_file(path)
        assert diagnosis.kind == KIND_FAULT_PLAN
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_BAD_INPUT
        assert main(["doctor", str(path)]) == EXIT_BAD_INPUT
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err

    def test_bad_service_window_exits_two(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = json.loads(FaultPlan(seed=3).to_json())
        plan["service_spells"] = [{"start_lookup": 9, "end_lookup": 2,
                                   "kind": "index_error"}]
        path.write_text(json.dumps(plan))
        diagnosis = diagnose_file(path)
        assert not diagnosis.ok
        assert diagnosis.exit_code == EXIT_BAD_INPUT
