"""Equivalence and determinism tests for the two-stage classify pipeline.

The bar is byte-identity: however the classify stage is driven — batch
serial, batch parallel (any jobs count), or day-streamed inside the
window loop — the emitted :class:`CollectedRecord` stream must hash to
the same ``record_stream_digest``.  The bounded-memory and sink modes,
which drop the raw originals, are held to the content digests instead
(every analysis-visible field, minus the back-reference).
"""

import dataclasses

import pytest

from repro.experiment import (
    ExperimentConfig,
    RecordDigestSink,
    StudyRunner,
    partition_messages_by_day,
    record_content_digest,
    record_multiset_digest,
    record_stream_digest,
)
from repro.pipeline import tokenize
from repro.smtpsim import Attachment, EmailMessage
from repro.spamfilter import FilterFunnel, FunnelConfig, Verdict
from repro.spamfilter.funnel import SummaryFold

OUR = ["gmial.com", "ohtlook.com"]

#: record-stream digests of the pre-refactor serial classifier, pinned so
#: the two-stage pipeline can never drift from the original output
PINNED_SMALL = ("cefa68b87b987e9e04e35a6418f90a715f30e595057bed80fd65ebfec"
                "6e62289")
PINNED_SMALL_COUNT = 7870
PINNED_LARGE = ("adda05b005153f69573765eb51ab18dce658888fa0ff7357927e1af65"
                "9984b56")
PINNED_LARGE_COUNT = 16406

BASE_CONFIG = ExperimentConfig(seed=2016, spam_scale=2e-5)


def _tok(from_addr="alice@real.org", to_addr="bob@gmial.com",
         subject="lunch", body="see you at noon", attachments=None):
    message = EmailMessage.create(from_addr, to_addr, subject, body,
                                  attachments=attachments)
    message.headers.insert(
        0, ("Received", "from sender by gmial.com (1.2.3.4)"))
    return tokenize(message)


def _spam_tok(**kwargs):
    kwargs.setdefault("from_addr", "win@lucky.top")
    kwargs.setdefault("attachments", [Attachment("deal.zip", b"PK")])
    return _tok(**kwargs)


# -- funnel-mode equivalence (no study harness) -------------------------------


class TestFunnelModeEquivalence:
    def _mixed_corpus(self):
        emails = []
        for index in range(12):
            emails.append(_tok(from_addr=f"person{index}@real.org",
                               body=f"note number {index} about lunch"))
            if index % 3 == 0:
                emails.append(_spam_tok(
                    from_addr=f"spammer{index}@lucky.top"))
        return emails

    @pytest.mark.perfsmoke
    def test_batch_equals_day_streamed_fold(self):
        emails = self._mixed_corpus()
        batch = FilterFunnel(OUR).classify_corpus(emails)

        streamed_funnel = FilterFunnel(OUR)
        fold = SummaryFold(streamed_funnel)
        # feed in uneven "days" — grouping must not matter
        for start in range(0, len(emails), 5):
            for email in emails[start:start + 5]:
                fold.feed(streamed_funnel.summarize(email))
        streamed = fold.finalize()
        assert streamed == batch

    @pytest.mark.perfsmoke
    def test_stage_a_summaries_transplant_across_funnels(self):
        # parallel shape: summaries produced by config-only worker funnels,
        # folded by a separate stateful funnel
        emails = self._mixed_corpus()
        batch = FilterFunnel(OUR).classify_corpus(emails)

        worker_a, worker_b = FilterFunnel(OUR), FilterFunnel(OUR)
        half = len(emails) // 2
        summaries = ([worker_a.summarize(e) for e in emails[:half]]
                     + [worker_b.summarize(e) for e in emails[half:]])
        fold = SummaryFold(FilterFunnel(OUR))
        for summary in summaries:
            fold.feed(summary)
        assert fold.finalize() == batch

    @pytest.mark.perfsmoke
    def test_retroactive_collaborative_pass(self):
        # a clean-looking email from a sender who later sends spam must be
        # condemned retroactively, with the reason prefix intact
        early = _tok(from_addr="campaign@lucky.top",
                     body="totally ordinary note about schedules")
        late_spam = _spam_tok(from_addr="campaign@lucky.top")
        bystander = _tok(from_addr="friend@real.org")

        emails = [early, late_spam, bystander]
        for results in (
                FilterFunnel(OUR).classify_corpus(emails),
                self._fold_results(emails)):
            assert results[1].verdict is Verdict.SPAM
            assert results[1].layer == 2
            assert results[0].verdict is Verdict.SPAM
            assert results[0].layer == 3
            assert results[0].reason.startswith("(retroactive) ")
            assert results[2].verdict is Verdict.TRUE_TYPO

    def _fold_results(self, emails):
        funnel = FilterFunnel(OUR)
        fold = SummaryFold(funnel)
        for email in emails:
            fold.feed(funnel.summarize(email))
        return fold.finalize()

    @pytest.mark.perfsmoke
    def test_layer5_content_threshold_edge(self):
        config = FunnelConfig(content_frequency_threshold=10)
        body = "please reset the conference room projector"

        def run(copies):
            emails = [_tok(from_addr=f"p{i}@real.org",
                           to_addr=f"user{i}@gmial.com", body=body)
                      for i in range(copies)]
            return FilterFunnel(OUR, config=config).classify_corpus(emails)

        below = run(9)
        assert all(r.verdict is Verdict.TRUE_TYPO for r in below)
        at = run(10)
        assert all(r.verdict is Verdict.FREQUENCY_FILTERED for r in at)
        assert all(r.reason == "identical body seen 10 times" for r in at)
        # the fold agrees at the exact edge
        funnel = FilterFunnel(OUR, config=config)
        fold = SummaryFold(funnel)
        for email in [_tok(from_addr=f"p{i}@real.org",
                           to_addr=f"user{i}@gmial.com", body=body)
                      for i in range(10)]:
            fold.feed(funnel.summarize(email))
        assert fold.finalize() == at

    def test_fold_rejects_use_after_finalize(self):
        funnel = FilterFunnel(OUR)
        fold = SummaryFold(funnel)
        fold.feed(funnel.summarize(_tok()))
        fold.finalize()
        with pytest.raises(RuntimeError):
            fold.finalize()
        with pytest.raises(RuntimeError):
            fold.feed(funnel.summarize(_tok()))


# -- chunk partitioning -------------------------------------------------------


class TestPartitioning:
    @pytest.mark.perfsmoke
    def test_chunks_are_day_aligned_and_order_preserving(self):
        messages = []
        for day in range(7):
            for index in range(day + 1):
                message = EmailMessage(received_at=day * 86_400 + index)
                messages.append(message)
        chunks = partition_messages_by_day(messages, jobs=3)
        flattened = [m for chunk in chunks for m in chunk]
        assert flattened == messages
        days_seen = set()
        for chunk in chunks:
            chunk_days = {int(m.received_at // 86_400) for m in chunk}
            assert not (chunk_days & days_seen)   # no day spans two chunks
            days_seen |= chunk_days

    def test_empty_corpus(self):
        assert partition_messages_by_day([], jobs=4) == []


# -- study-level digest identity ----------------------------------------------


@pytest.fixture(scope="module")
def batch_results():
    return StudyRunner(BASE_CONFIG).run()


@pytest.fixture(scope="module")
def batch_digest(batch_results):
    return record_stream_digest(batch_results.records)


class TestStudyDigests:
    @pytest.mark.perfsmoke
    def test_fault_free_single_job_path_matches_pinned_output(
            self, batch_results, batch_digest):
        assert len(batch_results.records) == PINNED_SMALL_COUNT
        assert batch_digest == PINNED_SMALL

    @pytest.mark.slow
    def test_pinned_output_large_no_outage(self):
        config = ExperimentConfig(seed=7, spam_scale=1e-4, outage_spans=())
        results = StudyRunner(config).run()
        assert len(results.records) == PINNED_LARGE_COUNT
        assert record_stream_digest(results.records) == PINNED_LARGE

    @pytest.mark.perfsmoke
    def test_streaming_classify_is_byte_identical(self, batch_digest):
        config = dataclasses.replace(BASE_CONFIG, streaming_classify=True)
        results = StudyRunner(config).run()
        assert record_stream_digest(results.records) == batch_digest

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_parallel_classify_is_byte_identical(self, batch_digest, jobs):
        config = dataclasses.replace(BASE_CONFIG, classify_jobs=jobs)
        results = StudyRunner(config).run()
        assert record_stream_digest(results.records) == batch_digest

    @pytest.mark.perfsmoke
    def test_bounded_memory_matches_content_digest(self, batch_results):
        config = dataclasses.replace(BASE_CONFIG, streaming_classify=True,
                                     retain_messages=False)
        results = StudyRunner(config).run()
        assert len(results.records) == len(batch_results.records)
        assert all(r.tokenized.original is None for r in results.records)
        assert (record_content_digest(results.records)
                == record_content_digest(batch_results.records))

    @pytest.mark.perfsmoke
    def test_sink_mode_matches_multiset_digest(self, batch_results):
        config = dataclasses.replace(BASE_CONFIG, streaming_classify=True,
                                     retain_messages=False)
        sink = RecordDigestSink()
        results = StudyRunner(config).run(record_sink=sink)
        assert results.records == []
        assert sink.count == len(batch_results.records)
        assert sink.digest() == record_multiset_digest(batch_results.records)
        assert sink.true_typo_count == sum(
            1 for r in batch_results.records if r.is_true_typo)

    def test_sink_requires_streaming(self):
        with pytest.raises(ValueError):
            StudyRunner(BASE_CONFIG).run(record_sink=lambda record: None)


class TestSequenceAttribution:
    @pytest.mark.perfsmoke
    def test_every_record_carries_ground_truth(self, batch_results):
        assert all(r.true_kind is not None for r in batch_results.records)

    @pytest.mark.perfsmoke
    def test_sequences_are_monotone_in_stream_order(self, batch_results):
        sequences = [r.tokenized.original.sequence
                     for r in batch_results.records]
        assert all(s is not None for s in sequences)
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_sequence_excluded_from_equality_and_repr(self):
        stamped = EmailMessage(body="x", received_at=1.0)
        stamped.sequence = 17
        unstamped = EmailMessage(body="x", received_at=1.0)
        assert stamped == unstamped
        assert repr(stamped) == repr(unstamped)


class TestConfigValidation:
    def test_bounded_memory_requires_streaming(self):
        with pytest.raises(ValueError):
            ExperimentConfig(retain_messages=False)

    def test_classify_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(classify_jobs=0)
