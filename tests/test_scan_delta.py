"""Incremental (delta) re-scans and the churned world model.

Pins the contract the delta engine is built on: churn is a pure
function of ``(seed, day)``, unchurned ranks stay byte-identical to the
pristine world, a delta re-scan merges to exactly the digest of a
from-scratch full scan of the evolved world, and the persisted baseline
survives save/load round-trips while rejecting corruption loudly.
"""

import json

import pytest

from repro.doctor import KIND_SCAN_BASELINE, diagnose_file
from repro.ecosystem import (
    ChurnSchedule,
    ScanBaseline,
    WorldModel,
    build_scan_baseline,
    delta_scan,
    world_range_digest,
)
from repro.ecosystem.delta import SCAN_BASELINE_FORMAT, _width_ranges
from repro.ecosystem.world import _generated_count
from repro.experiment import run_sharded_scan
from repro.util.errors import CheckpointCorruptError, CheckpointMismatchError

SEED = 606
MAX_RANK = 600
RATE = 0.004


def _churn(days):
    return ChurnSchedule(SEED, MAX_RANK, RATE).generations(days)


class TestChurnSchedule:
    def test_day_events_deterministic(self):
        schedule = ChurnSchedule(SEED, MAX_RANK, RATE)
        assert schedule.day_events(1) == schedule.day_events(1)
        assert schedule.day_events(1) != schedule.day_events(2)

    def test_generations_accumulate_across_days(self):
        """The day-N map is the sum of day 1..N event sets."""
        schedule = ChurnSchedule(SEED, MAX_RANK, RATE)
        by_hand = {}
        for day in (1, 2, 3):
            for rank in schedule.day_events(day):
                by_hand[rank] = by_hand.get(rank, 0) + 1
        assert schedule.generations(3) == by_hand

    def test_zero_days_or_rate_is_pristine(self):
        assert ChurnSchedule(SEED, MAX_RANK, RATE).generations(0) == {}
        assert ChurnSchedule(SEED, MAX_RANK, 0.0).generations(50) == {}

    def test_bad_arguments_raise(self):
        with pytest.raises(ValueError):
            ChurnSchedule(SEED, 0, RATE)
        with pytest.raises(ValueError):
            ChurnSchedule(SEED, MAX_RANK, 1.5)
        with pytest.raises(ValueError):
            ChurnSchedule(SEED, MAX_RANK, RATE).day_events(0)
        with pytest.raises(ValueError):
            ChurnSchedule(SEED, MAX_RANK, RATE).generations(-1)

    def test_unchurned_ranks_are_byte_identical(self):
        """Generation-0 ranks scan identically in churned and pristine
        worlds — the property range reuse rests on."""
        churn = _churn(3)
        assert churn, "expected some churn at this rate"
        pristine = WorldModel(SEED)
        evolved = WorldModel(SEED, churn=churn)
        changed = identical = 0
        for rank in range(1, 101):
            a = pristine.scan_ranks(rank, rank + 1, max_rank=MAX_RANK)
            b = evolved.scan_ranks(rank, rank + 1, max_rank=MAX_RANK)
            if rank in churn:
                changed += 1
            else:
                identical += 1
                assert a.digest() == b.digest(), f"rank {rank} drifted"
        assert identical > 0

    def test_churned_rank_rerolls_its_grid(self):
        """At least one churned rank in the head changes its scan."""
        churn = {rank: 1 for rank in range(1, 51)}
        pristine = WorldModel(SEED)
        evolved = WorldModel(SEED, churn=churn)
        a = pristine.scan_ranks(1, 51, max_rank=MAX_RANK)
        b = evolved.scan_ranks(1, 51, max_rank=MAX_RANK)
        assert a.digest() != b.digest()


class TestWorldRangeDigest:
    def test_covers_only_events_inside_the_range(self):
        base = world_range_digest(SEED, 1, 100, {})
        assert world_range_digest(SEED, 1, 100, {500: 2}) == base
        assert world_range_digest(SEED, 1, 100, {50: 1}) != base

    def test_sensitive_to_generation_and_bounds(self):
        assert (world_range_digest(SEED, 1, 100, {50: 1})
                != world_range_digest(SEED, 1, 100, {50: 2}))
        assert (world_range_digest(SEED, 1, 100, {})
                != world_range_digest(SEED, 1, 101, {}))


class TestDeltaScan:
    def test_baseline_total_equals_full_scan(self):
        baseline = build_scan_baseline(SEED, MAX_RANK, range_width=50,
                                       churn_rate=RATE)
        full = run_sharded_scan(SEED, MAX_RANK)
        assert baseline.total_digest() == full.digest()

    def test_delta_equals_full_scan_of_evolved_world(self):
        """The headline property: delta(baseline@0, day) is
        byte-identical to a from-scratch scan of the day-N world."""
        baseline = build_scan_baseline(SEED, MAX_RANK, range_width=50,
                                       churn_rate=RATE)
        delta = delta_scan(baseline, 3)
        full = run_sharded_scan(SEED, MAX_RANK,
                                churn=tuple(sorted(_churn(3).items())))
        assert delta.aggregates.digest() == full.digest()
        assert delta.ranges_reused + delta.ranges_rescanned == len(
            baseline.ranges)
        assert delta.ranges_reused > 0, (
            "at this rate some ranges must be clean — the delta "
            "otherwise degenerates to a full scan")
        assert delta.ranges_rescanned > 0

    def test_delta_chains_across_days(self):
        """Evolving day 0 -> 2 -> 5 equals evolving 0 -> 5 directly."""
        baseline = build_scan_baseline(SEED, MAX_RANK, range_width=50,
                                       churn_rate=RATE)
        stepped = delta_scan(delta_scan(baseline, 2).baseline, 5)
        direct = delta_scan(baseline, 5)
        assert stepped.aggregates.digest() == direct.aggregates.digest()
        assert (stepped.baseline.canonical_dict()
                == direct.baseline.canonical_dict())

    def test_no_churn_reuses_everything(self):
        baseline = build_scan_baseline(SEED, MAX_RANK, range_width=50,
                                       churn_rate=RATE)
        delta = delta_scan(baseline, 0)
        assert delta.ranges_rescanned == 0
        assert delta.aggregates.digest() == baseline.total_digest()

    def test_config_mismatch_is_loud(self):
        from repro.ecosystem import InternetConfig

        baseline = build_scan_baseline(SEED, 100, range_width=50)
        with pytest.raises(CheckpointMismatchError):
            delta_scan(baseline, 1,
                       config=InternetConfig(num_filler_targets=7))

    def test_parallel_delta_matches_serial(self):
        baseline = build_scan_baseline(SEED, MAX_RANK, range_width=50,
                                       churn_rate=RATE)
        serial = delta_scan(baseline, 3)
        parallel = delta_scan(baseline, 3, jobs=2)
        assert serial.aggregates.digest() == parallel.aggregates.digest()


class TestScanBaselinePersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = build_scan_baseline(SEED, 200, range_width=64)
        baseline.save(path)
        loaded = ScanBaseline.load(path)
        assert loaded == baseline
        assert loaded.total_digest() == baseline.total_digest()

    def test_torn_file_is_corrupt_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = build_scan_baseline(SEED, 200, range_width=64)
        baseline.save(path)
        path.write_text(path.read_text()[:80])
        with pytest.raises(CheckpointCorruptError):
            ScanBaseline.load(path)

    def test_wrong_format_tag_is_mismatch_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "something-else@9"}))
        with pytest.raises(CheckpointMismatchError):
            ScanBaseline.load(path)

    def test_tampered_range_fails_its_digest(self, tmp_path):
        path = tmp_path / "baseline.json"
        build_scan_baseline(SEED, 200, range_width=64).save(path)
        data = json.loads(path.read_text())
        data["ranges"][0]["aggregates"]["registered_count"] += 1
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointCorruptError):
            ScanBaseline.load(path)

    def test_tampered_total_fails_the_merged_digest(self, tmp_path):
        path = tmp_path / "baseline.json"
        build_scan_baseline(SEED, 200, range_width=64).save(path)
        data = json.loads(path.read_text())
        data["total_digest"] = "0" * 64
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointCorruptError):
            ScanBaseline.load(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "baseline.json"
        build_scan_baseline(SEED, 100, range_width=50).save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["baseline.json"]


class TestDoctorScanBaseline:
    def test_healthy_baseline(self, tmp_path):
        path = tmp_path / "scan_baseline.json"
        build_scan_baseline(SEED, 200, range_width=64).save(path)
        diagnosis = diagnose_file(path)
        assert diagnosis.ok
        assert diagnosis.kind == KIND_SCAN_BASELINE
        assert diagnosis.details["ranges"] == len(_width_ranges(200, 64))

    def test_detection_beats_scan_checkpoint_heuristic(self, tmp_path):
        """The baseline has seed/max_rank too; the format tag must win
        over the scan-checkpoint shape test."""
        path = tmp_path / "ambiguous.json"
        baseline = build_scan_baseline(SEED, 100, range_width=50)
        data = baseline.canonical_dict()
        data["shards"] = {}  # adversarial: also matches the checkpoint shape
        path.write_text(json.dumps(data))
        assert diagnose_file(path).kind == KIND_SCAN_BASELINE

    def test_corrupt_baseline_exits_three(self, tmp_path):
        from repro.doctor import exit_code_for
        from repro.util.errors import EXIT_CORRUPT_CHECKPOINT

        path = tmp_path / "scan_baseline.json"
        build_scan_baseline(SEED, 100, range_width=50).save(path)
        data = json.loads(path.read_text())
        data["ranges"][0]["world_digest"] = data["ranges"][0]["world_digest"]
        data["total_digest"] = "f" * 64
        path.write_text(json.dumps(data))
        diagnosis = diagnose_file(path)
        assert not diagnosis.ok
        assert exit_code_for([diagnosis]) == EXIT_CORRUPT_CHECKPOINT

    def test_format_constant_matches_artifact(self, tmp_path):
        path = tmp_path / "scan_baseline.json"
        build_scan_baseline(SEED, 100, range_width=50).save(path)
        assert json.loads(path.read_text())["format"] == SCAN_BASELINE_FORMAT


class TestFastPathsMatchReference:
    def test_is_target_domain_matches_target_names(self):
        """The O(1) membership law agrees with the materialized set."""
        world = WorldModel(SEED)
        names = world.target_names(500)
        for name in list(names)[:300]:
            assert world.is_target_domain(name, 500)
        # names beyond the horizon, non-.com, malformed indexes
        assert not world.is_target_domain(world.target_domain(501), 500)
        assert not world.is_target_domain("nope.example", 500)
        assert not world.is_target_domain("ab1.com", 500)
        for rank in (1, 21, 22, 100, 499, 500):
            assert world.is_target_domain(world.target_domain(rank), 500)

    def test_is_target_domain_rejects_leading_zero_aliases(self):
        """bavu007.com must not alias bavu7.com — the index must
        round-trip through the canonical decimal spelling."""
        world = WorldModel(SEED)
        name = world.target_domain(100)
        label = name[:-4]
        stem = label.rstrip("0123456789")
        digits = label[len(stem):]
        if digits:
            padded = f"{stem}0{digits}.com"
            assert not world.is_target_domain(padded, 10_000)

    def test_filler_chunk_counts_match_generated_count(self):
        """The closed-form per-name gtypo count equals the enumerator's."""
        world = WorldModel(SEED)
        names, counts = world._chunk(0)
        for name, count in list(zip(names, counts))[:64]:
            assert count == _generated_count(name[:-4])
