"""Tests for the regression sensitivity analyses."""

import pytest

from repro.core import EMAIL_TARGETS, TypoGenerator
from repro.extrapolate import (
    RegressionObservation,
    feature_knockouts,
    leave_one_target_out_r_squared,
)
from repro.util import SeededRng
from repro.workloads import TypingMistakeModel


@pytest.fixture(scope="module")
def observations():
    """Measured-style observations across five targets."""
    model = TypingMistakeModel()
    generator = TypoGenerator()
    targets = {t.name: t for t in EMAIL_TARGETS}
    rng = SeededRng(17)
    out = []
    ranked = [("gmail.com", 1), ("hotmail.com", 9), ("outlook.com", 20),
              ("comcast.net", 250), ("verizon.net", 350)]
    for target, rank in ranked:
        candidates = [c for c in generator.generate(target)
                      if c.edit_type in ("addition", "substitution")]
        for candidate in rng.sample(candidates, 8):
            yearly = model.expected_yearly_emails(
                3e8 * targets[target].email_share, candidate)
            out.append(RegressionObservation(
                domain=candidate.domain, target=target,
                yearly_emails=yearly * rng.lognormal(0, 0.4),
                alexa_rank=rank,
                normalized_visual=candidate.normalized_visual,
                fat_finger=candidate.is_fat_finger))
    return out


class TestFeatureKnockouts:
    def test_every_feature_carries_signal(self, observations):
        knockouts = feature_knockouts(observations)
        assert len(knockouts) == 3
        for knockout in knockouts:
            assert knockout.r_squared_drop >= -1e-9, knockout

    def test_rank_is_the_strongest_feature(self, observations):
        """Popularity is the dominant signal (paper §4.4.2)."""
        knockouts = {k.removed_feature: k
                     for k in feature_knockouts(observations)}
        rank_drop = knockouts["log_alexa_rank"].r_squared_drop
        assert rank_drop == max(k.r_squared_drop
                                for k in knockouts.values())
        assert rank_drop > 0.1

    def test_visual_distance_contributes(self, observations):
        knockouts = {k.removed_feature: k
                     for k in feature_knockouts(observations)}
        assert knockouts["sqrt_norm_visual"].r_squared_drop > 0.0


class TestLeaveOneTargetOut:
    def test_generalises_across_targets(self, observations):
        r_squared = leave_one_target_out_r_squared(observations)
        # cross-target prediction is harder than LOO but must retain signal
        assert r_squared > 0.2

    def test_requires_two_targets(self, observations):
        single = [o for o in observations if o.target == "gmail.com"]
        with pytest.raises(ValueError):
            leave_one_target_out_r_squared(single)
