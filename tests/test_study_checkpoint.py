"""Durable study engine: kill-at-any-day resume must be byte-identical.

The bar mirrors the scan-resilience suite's: a checkpointed run that is
killed at a day boundary (by an injected study crash) and resumed must
produce the *same record stream digest* as an uninterrupted run of the
same config — through retry backoff windows, collection outages, any
classify ``jobs`` count, and all three memory modes (batch, streaming
retain, bounded-memory sink).
"""

import dataclasses
import json

import pytest

from repro.experiment import (
    ExperimentConfig,
    RecordDigestSink,
    StudyCheckpoint,
    StudyRunner,
    config_identity,
    record_stream_digest,
    run_durable_study,
)
from repro.faultsim.plan import (
    FaultPlan,
    InjectedStudyCrash,
    OutageSpan,
    SmtpFaultSpell,
    StudyCrashSpec,
)
from repro.smtpsim.client import SendResult, SendStatus
from repro.smtpsim.message import EmailMessage
from repro.smtpsim.retryqueue import RetryPolicy, RetryQueue
from repro.util.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
)
from repro.util.rand import SeededRng

CHEAP = dict(seed=41, spam_scale=1e-5, ham_scale=0.5, outage_spans=())


def faulty_plan(crashes=()):
    """Outage days 60–70 and an SMTP tempfail spell over days 100–110,
    so crash days inside those ranges land mid-outage / mid-backoff."""
    return FaultPlan(
        seed=7,
        collector_outages=(OutageSpan(start_day=60, end_day=70,
                                      mode="drop"),),
        smtp_spells=(SmtpFaultSpell(start_day=100, end_day=110,
                                    tempfail_probability=0.5),),
        study_crashes=tuple(crashes),
    )


CRASHES = (StudyCrashSpec(day=65, failures=1),    # mid-outage
           StudyCrashSpec(day=105, failures=2))   # mid-retry-backoff


@pytest.fixture(scope="module")
def faulty_baseline():
    """Uninterrupted run under the outage+tempfail plan (no crashes)."""
    config = ExperimentConfig(fault_plan=faulty_plan(), **CHEAP)
    return StudyRunner(config).run()


@pytest.fixture(scope="module")
def faulty_stream_baseline():
    config = ExperimentConfig(fault_plan=faulty_plan(),
                              streaming_classify=True, **CHEAP)
    return StudyRunner(config).run()


class TestKillResumeIdentity:
    @pytest.mark.chaos
    def test_batch_heals_to_identical_stream(self, tmp_path,
                                             faulty_baseline):
        config = ExperimentConfig(fault_plan=faulty_plan(CRASHES), **CHEAP)
        outcome = run_durable_study(config, tmp_path / "study.ckpt",
                                    checkpoint_interval=25)
        assert outcome.restarts == 3
        assert (record_stream_digest(outcome.results.records)
                == record_stream_digest(faulty_baseline.records))
        assert outcome.results.sent_count == faulty_baseline.sent_count
        assert (outcome.results.malicious_hashes
                == faulty_baseline.malicious_hashes)
        durability = outcome.results.robustness["durability"]
        assert durability["resumed_from_day"] == 105
        assert durability["crash_attempts"] == {"65": 2, "105": 3}

    @pytest.mark.chaos
    def test_streaming_retain_heals_identically(self, tmp_path,
                                                faulty_stream_baseline):
        config = ExperimentConfig(fault_plan=faulty_plan(CRASHES),
                                  streaming_classify=True, **CHEAP)
        outcome = run_durable_study(config, tmp_path / "study.ckpt",
                                    checkpoint_interval=25)
        assert (record_stream_digest(outcome.results.records)
                == record_stream_digest(faulty_stream_baseline.records))
        # retry and coverage accounting must also survive the resumes
        base = faulty_stream_baseline.robustness
        healed = outcome.results.robustness
        assert healed["retry"] == base["retry"]
        assert healed["faults"] == base["faults"]

    @pytest.mark.chaos
    def test_bounded_memory_sink_heals_identically(self, tmp_path,
                                                   faulty_stream_baseline):
        uninterrupted = RecordDigestSink()
        for record in faulty_stream_baseline.records:
            uninterrupted(record)
        config = ExperimentConfig(fault_plan=faulty_plan(CRASHES),
                                  streaming_classify=True,
                                  retain_messages=False, **CHEAP)
        outcome = run_durable_study(config, tmp_path / "study.ckpt",
                                    record_sink_factory=RecordDigestSink,
                                    checkpoint_interval=25)
        assert outcome.restarts == 3
        sink = outcome.record_sink
        assert sink.count == uninterrupted.count
        assert sink.true_typo_count == uninterrupted.true_typo_count
        assert sink.digest() == uninterrupted.digest()

    def test_jobs_count_does_not_invalidate_checkpoint(self, tmp_path,
                                                       faulty_baseline):
        """A checkpoint written at --jobs 1 resumes cleanly at --jobs 4."""
        crash = (StudyCrashSpec(day=50, failures=1),)
        config = ExperimentConfig(fault_plan=faulty_plan(crash),
                                  classify_jobs=1, **CHEAP)
        path = tmp_path / "study.ckpt"
        with pytest.raises(InjectedStudyCrash):
            StudyRunner(config).run(checkpoint_path=path,
                                    checkpoint_interval=25)
        resumed_config = dataclasses.replace(config, classify_jobs=2)
        results = StudyRunner(resumed_config).run(checkpoint_path=path,
                                                  resume=True,
                                                  checkpoint_interval=25)
        assert (record_stream_digest(results.records)
                == record_stream_digest(faulty_baseline.records))


class TestCoverageAcrossResume:
    @pytest.mark.chaos
    def test_outage_gaps_identical_across_resume_boundary(
            self, tmp_path, faulty_baseline):
        """A checkpoint taken *inside* an outage span must not split,
        duplicate, or lose the gap accounting."""
        crash = (StudyCrashSpec(day=64, failures=1),)
        config = ExperimentConfig(fault_plan=faulty_plan(crash), **CHEAP)
        # the crash itself forces the day-64 save, so a sparse interval
        # still resumes exactly at the mid-outage boundary
        outcome = run_durable_study(config, tmp_path / "study.ckpt",
                                    checkpoint_interval=50)
        assert (outcome.results.robustness["collector"]
                == faulty_baseline.robustness["collector"])


class TestCheckpointFileDiscipline:
    def _dummy_save(self, path, identity=None, next_day=3):
        checkpoint = StudyCheckpoint(path)
        checkpoint.save(identity or {"seed": 1}, next_day, {"2": 1},
                        {"mode": "batch", "sent": 7})
        return checkpoint

    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        self._dummy_save(path)
        payload = StudyCheckpoint(path).load({"seed": 1})
        assert payload["next_day"] == 3
        assert StudyCheckpoint.crash_attempts_from(payload) == {"2": 1}

    def test_missing_file_is_corrupt_error(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            StudyCheckpoint(tmp_path / "absent.ckpt").load()

    def test_truncated_file_is_corrupt_error(self, tmp_path):
        path = tmp_path / "c.ckpt"
        self._dummy_save(path)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            StudyCheckpoint(path).load()

    def test_bit_rot_fails_the_digest_check(self, tmp_path):
        path = tmp_path / "c.ckpt"
        self._dummy_save(path)
        data = json.loads(path.read_text())
        data["next_day"] = 200          # tampered, digest now stale
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointCorruptError, match="digest"):
            StudyCheckpoint(path).load()

    def test_identity_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "c.ckpt"
        self._dummy_save(path, identity={"seed": 1})
        with pytest.raises(CheckpointMismatchError):
            StudyCheckpoint(path).load({"seed": 2})

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "c.ckpt"
        self._dummy_save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["c.ckpt"]

    def test_config_identity_excludes_classify_jobs(self):
        one = config_identity(ExperimentConfig(classify_jobs=1, **CHEAP))
        four = config_identity(ExperimentConfig(classify_jobs=4, **CHEAP))
        assert one == four
        other_seed = config_identity(
            ExperimentConfig(**dict(CHEAP, seed=99)))
        assert one != other_seed


class TestGuards:
    def test_crash_plan_without_checkpoint_is_config_error(self):
        config = ExperimentConfig(
            fault_plan=faulty_plan((StudyCrashSpec(day=1, failures=1),)),
            **CHEAP)
        with pytest.raises(ConfigError, match="checkpoint"):
            StudyRunner(config).run()

    def test_bounded_memory_without_sink_is_config_error(self, tmp_path):
        config = ExperimentConfig(streaming_classify=True,
                                  retain_messages=False, **CHEAP)
        with pytest.raises(ConfigError, match="sink"):
            StudyRunner(config).run(checkpoint_path=tmp_path / "c.ckpt")

    def test_non_restorable_sink_is_config_error(self, tmp_path):
        class BareSink:
            def emit(self, record):
                pass

        config = ExperimentConfig(streaming_classify=True,
                                  retain_messages=False, **CHEAP)
        with pytest.raises(ConfigError, match="state_dict"):
            StudyRunner(config).run(record_sink=BareSink(),
                                    checkpoint_path=tmp_path / "c.ckpt")

    def test_resume_requires_existing_checkpoint(self, tmp_path):
        config = ExperimentConfig(**CHEAP)
        with pytest.raises(CheckpointCorruptError, match="does not exist"):
            StudyRunner(config).run(checkpoint_path=tmp_path / "c.ckpt",
                                    resume=True)


class TestRetryQueueRoundTrip:
    """Property-style: serialize→restore preserves the backoff schedule
    and never double-bounces, across randomized queue populations."""

    def _populated_queue(self, rng):
        policy = RetryPolicy(max_attempts=4,
                             initial_delay_seconds=600.0,
                             backoff_factor=2.0,
                             max_queue_seconds=86_400.0)
        queue = RetryQueue(policy)
        tempfail = SendResult(status=SendStatus.TEMPFAIL,
                              recipient="x@example.org")
        for index in range(rng.randint(3, 10)):
            message = EmailMessage.create(
                from_addr=f"sender{index}@wild.example",
                to_addr=f"victim{index}@gmial.com",
                subject=f"msg {index}", body="hello " * rng.randint(1, 5))
            message.sequence = index + 1
            queue.offer(message, f"victim{index}@gmial.com", tempfail,
                        timestamp=float(rng.randint(0, 5_000)))
        # advance a random subset through extra failed attempts so the
        # population holds a mix of backoff positions
        for job in queue.due(float(10 ** 9)):
            if rng.random() < 0.6:
                queue.settle(job, tempfail, job.next_attempt)
            else:
                queue._pending.append(job)
        return queue

    @pytest.mark.parametrize("case_seed", range(6))
    def test_round_trip_preserves_schedule_and_dsns(self, case_seed):
        rng = SeededRng(case_seed, name="retry-prop")
        queue = self._populated_queue(rng)
        data = queue.to_canonical_dict()
        # canonical means canonical: a JSON round-trip changes nothing
        data = json.loads(json.dumps(data))
        restored = RetryQueue.from_canonical_dict(data)
        assert restored.to_canonical_dict() == queue.to_canonical_dict()
        assert restored.stats == queue.stats

        # identical future: both queues give up the same jobs with the
        # same DSNs at the horizon
        horizon = float(10 ** 9)
        original_dsns = queue.expire_remaining(horizon)
        restored_dsns = restored.expire_remaining(horizon)
        assert ([m.to_canonical_dict() for m in original_dsns]
                == [m.to_canonical_dict() for m in restored_dsns])

        # never double-bounce: expiring the already-expired restored
        # queue must not mint new DSNs
        assert restored.expire_remaining(horizon) == []
        assert restored.stats.dsn_sent == queue.stats.dsn_sent

    @pytest.mark.parametrize("case_seed", range(3))
    def test_restored_due_order_matches(self, case_seed):
        rng = SeededRng(case_seed + 50, name="retry-order")
        queue = self._populated_queue(rng)
        restored = RetryQueue.from_canonical_dict(
            queue.to_canonical_dict())
        cutoff = float(10 ** 9)
        original = [(j.sequence, j.next_attempt, j.attempts_made)
                    for j in queue.due(cutoff)]
        mirrored = [(j.sequence, j.next_attempt, j.attempts_made)
                    for j in restored.due(cutoff)]
        assert original == mirrored


class TestSigkillHeal:
    """The real thing, not the in-process stand-in: SIGKILL a study
    subprocess mid-window, then resume and match the uninterrupted
    digest (the study twin of test_scan_resilience's worker kills)."""

    CHILD_SCRIPT = """
import sys
from repro.experiment import ExperimentConfig, StudyRunner
config = ExperimentConfig(seed=41, spam_scale=1e-5, ham_scale=0.5,
                          outage_spans=())
StudyRunner(config).run(checkpoint_path=sys.argv[1],
                        checkpoint_interval=20)
"""

    @pytest.mark.chaos
    def test_sigkill_mid_window_then_resume_is_identical(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        path = tmp_path / "study.ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src", env.get("PYTHONPATH", "")])
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD_SCRIPT, str(path)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 60.0
            while not path.exists() and time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                time.sleep(0.02)
            assert path.exists(), "child never wrote a checkpoint"
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            returncode = child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == -signal.SIGKILL, \
            "child finished before the kill; lower the interval"

        config = ExperimentConfig(**CHEAP)
        killed_at = StudyCheckpoint(path).load(
            config_identity(config))["next_day"]
        assert killed_at < 225, "checkpoint already covered the window"

        healed = StudyRunner(config).run(checkpoint_path=path, resume=True,
                                         checkpoint_interval=100)
        baseline = StudyRunner(ExperimentConfig(**CHEAP)).run()
        assert (record_stream_digest(healed.records)
                == record_stream_digest(baseline.records))
        assert healed.robustness["durability"]["resumed_from_day"] \
            == killed_at


class TestRngStateTree:
    def test_capture_restore_resumes_every_stream(self):
        rng = SeededRng(11, name="root")
        a = rng.child("a")
        b = rng.child("b")
        grandchild = a.child("deep")
        [rng.random() for _ in range(5)]
        [grandchild.random() for _ in range(3)]
        tree = rng.capture_state_tree()
        expected = (rng.random(), a.random(), b.random(),
                    grandchild.random())

        fresh = SeededRng(11, name="root")
        fa = fresh.child("a")
        fb = fresh.child("b")
        fdeep = fa.child("deep")
        # burn the fresh streams to prove restore rewinds them
        [fresh.random() for _ in range(9)]
        [fb.random() for _ in range(4)]
        fresh.restore_state_tree(json.loads(json.dumps(tree)))
        assert (fresh.random(), fa.random(), fb.random(),
                fdeep.random()) == expected

    def test_restore_rejects_wrong_shape(self):
        rng = SeededRng(11, name="root")
        rng.child("a")
        tree = rng.capture_state_tree()
        other = SeededRng(11, name="root")
        with pytest.raises(ValueError):
            other.restore_state_tree(tree)   # child count differs
        other.child("b")
        with pytest.raises(ValueError):
            other.restore_state_tree(tree)   # child name differs
