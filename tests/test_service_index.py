"""The resident typo-risk index: retrieval parity with brute force.

The tentpole guarantee of the service layer is that the precomputed
candidate index is *pure acceleration*: for any query string whatsoever
— clean, typo, unicode, junk, over-long — :meth:`candidate_ranks`
returns exactly the set a brute-force DL scan over every materialized
target would, and never raises.  These tests pin that with hypothesis
over arbitrary text plus crafted adversarial shapes (digit-boundary
filler edits, deletion bridges between neighbouring head targets).
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EMAIL_TARGETS
from repro.core.typogen import apply_edit, enumerate_edit_ops, split_domain
from repro.service import TypoRiskIndex, normalize_query
from repro.service.workload import _EDGE_QUERIES
from repro.util.errors import ConfigError
from repro.util.rand import SeededRng

SEED = 606
MAX_RANK = 1200


@pytest.fixture(scope="module")
def index():
    return TypoRiskIndex(SEED, MAX_RANK)


# text that exercises the parser and both retrieval layers: plain
# labels, dots, digits, hyphens, the "@" address form, unicode
QUERY_ALPHABET = string.ascii_lowercase + string.digits + ".-@" + "AZ" \
    + "áñм"
QUERIES = st.text(alphabet=QUERY_ALPHABET, min_size=0, max_size=24)


class TestRetrievalParity:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(QUERIES)
    def test_arbitrary_text(self, index, query):
        assert index.candidate_ranks(query) == \
            index.brute_force_candidate_ranks(query)

    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=1, max_value=MAX_RANK),
           st.randoms(use_true_random=False))
    def test_single_edits_of_targets(self, index, rank, rnd):
        """One random DL-1 edit of any target must retrieve that target."""
        label, suffix = index.world.target_parts(rank)
        ops = enumerate_edit_ops(label)
        op, edit_index, char = ops[rnd.randrange(len(ops))]
        typo = f"{apply_edit(label, op, edit_index, char)}.{suffix}"
        ranks = index.candidate_ranks(typo)
        assert ranks == index.brute_force_candidate_ranks(typo)
        # the edited rank is itself within one edit, so it must appear
        # (unless the edit produced another target exactly — then the
        # exact rank is still included, distance 0)
        assert rank in ranks

    def test_edge_queries_never_raise(self, index):
        for query in _EDGE_QUERIES:
            assert index.candidate_ranks(query) == \
                index.brute_force_candidate_ranks(query)

    def test_exact_targets_retrieve_themselves(self, index):
        rng = SeededRng(7)
        ranks = {1, 2, len(EMAIL_TARGETS), len(EMAIL_TARGETS) + 1,
                 MAX_RANK} | {rng.randint(1, MAX_RANK) for _ in range(24)}
        for rank in sorted(ranks):
            domain = index.world.target_domain(rank)
            assert rank in index.candidate_ranks(domain)
            assert index.target_rank(domain) == rank

    def test_digit_boundary_filler_edits(self, index):
        """Edits in the numeric tail hop between filler indexes."""
        first_filler = len(EMAIL_TARGETS) + 1
        for rank in (first_filler, first_filler + 9, first_filler + 99,
                     MAX_RANK - 1, MAX_RANK):
            label, suffix = index.world.target_parts(rank)
            stem = label.rstrip(string.digits)
            digits = label[len(stem):]
            # substitute every digit position with every digit — these
            # are the collisions most likely to hit *other* fillers
            for position in range(len(digits)):
                for digit in "0123456789":
                    typo = (f"{stem}{digits[:position]}{digit}"
                            f"{digits[position + 1:]}.{suffix}")
                    assert index.candidate_ranks(typo) == \
                        index.brute_force_candidate_ranks(typo), typo

    def test_overlong_and_empty_labels_are_empty(self, index):
        for query in ("", ".", "com", "a" * 70 + ".com",
                      "b" * 200, "@@@", "x.y.z." + "q" * 64):
            assert index.candidate_ranks(query) == ()


class TestNormalization:
    def test_normalize_query_strips_case_dot_and_address(self):
        assert normalize_query(" GMAIL.COM. ") == "gmail.com"
        assert normalize_query("User@Gmial.Com") == "gmial.com"
        assert normalize_query("a@b@gmail.com") == "gmail.com"

    def test_candidates_see_through_address_form(self, index):
        assert index.candidate_ranks("someone@gmail.com") == \
            index.candidate_ranks("gmail.com")


class TestRegisteredGroundTruth:
    def test_registered_labels_match_rank_states(self, index):
        """The index's ctypo cache is the world's own ground truth."""
        for rank in (1, 3, len(EMAIL_TARGETS) + 1, 40):
            states = index.world.rank_states(rank)
            suffix = index.world.target_parts(rank)[1]
            expected = {split_domain(state.domain)[0] for state in states}
            assert index.registered_typo_labels(rank) == expected
            for state in states:
                label = split_domain(state.domain)[0]
                assert state.domain.endswith("." + suffix)
                assert index.is_registered_typo(label, rank)


class TestConstruction:
    def test_max_rank_must_be_positive(self):
        with pytest.raises(ConfigError):
            TypoRiskIndex(SEED, 0)

    def test_head_only_world_has_no_filler_probes(self):
        tiny = TypoRiskIndex(SEED, 5)
        assert tiny.candidate_ranks("gmial.com") == \
            tiny.brute_force_candidate_ranks("gmial.com")
        # a filler-shaped query cannot match anything in a 5-rank world
        assert tiny.candidate_ranks("abcd123.com") == ()

    def test_build_is_fast_and_counted(self, index):
        assert index.build_seconds < 1.0
        assert index.head_bucket_count > len(EMAIL_TARGETS)
