"""Self-healing sharded scan: crash requeue, checkpoints, degraded reports.

The digest bar from the sharding tests carries over: a resilient scan
that recovers every shard must be byte-identical to the plain serial
scan, for any jobs count and any injected crash schedule the retry
budget can absorb.
"""

import json
import warnings

import pytest

from repro.ecosystem import ScanAggregates
from repro.experiment import (
    ResilientScanResult,
    ScanCheckpoint,
    ShardRetryPolicy,
    parallel_map,
    pool_fallback_count,
    run_resilient_scan,
    run_sharded_scan,
)
from repro.faultsim import FaultPlan, InjectedWorkerCrash, ShardCrashSpec
from repro.util.errors import CheckpointMismatchError
from repro.util.perf import PerfRegistry

pytestmark = pytest.mark.chaos

SEED, MAX_RANK = 9, 24


@pytest.fixture(scope="module")
def baseline_digest():
    return run_sharded_scan(SEED, MAX_RANK, jobs=1).digest()


def _crash_plan(rank=3, failures=1, seed=5):
    return FaultPlan(seed=seed, shard_crashes=(
        ShardCrashSpec(rank=rank, failures=failures, mode="crash"),))


class TestFaultFreeEquivalence:
    def test_resilient_scan_matches_plain_scan(self, baseline_digest):
        result = run_resilient_scan(SEED, MAX_RANK, jobs=1)
        assert result.aggregates.digest() == baseline_digest
        assert not result.degraded and result.unscanned_ranges == ()
        assert all(o.status == "completed" for o in result.outcomes)

    def test_empty_plan_matches_too(self, baseline_digest):
        result = run_resilient_scan(SEED, MAX_RANK, jobs=1,
                                    fault_plan=FaultPlan.empty())
        assert result.aggregates.digest() == baseline_digest


class TestCrashRecovery:
    def test_serial_crash_is_requeued_and_recovered(self, baseline_digest):
        result = run_resilient_scan(SEED, MAX_RANK, jobs=1,
                                    fault_plan=_crash_plan())
        assert result.aggregates.digest() == baseline_digest
        assert not result.degraded
        # one shard needed a second attempt
        assert result.attempts_total == 2 + (len(result.outcomes) - 1)

    @pytest.mark.slow
    def test_parallel_crash_is_requeued_and_recovered(self, baseline_digest):
        result = run_resilient_scan(SEED, MAX_RANK, jobs=4,
                                    fault_plan=_crash_plan())
        assert result.aggregates.digest() == baseline_digest
        assert not result.degraded
        crashed = [o for o in result.outcomes if o.attempts == 2]
        assert len(crashed) == 1
        assert 1 <= crashed[0].start_rank <= 3 < crashed[0].stop_rank

    def test_digest_is_jobs_invariant_under_faults(self, baseline_digest):
        plan = _crash_plan(failures=2)
        serial = run_resilient_scan(SEED, MAX_RANK, jobs=1, fault_plan=plan)
        sharded = run_resilient_scan(SEED, MAX_RANK, jobs=3, fault_plan=plan)
        assert (serial.aggregates.digest() == sharded.aggregates.digest()
                == baseline_digest)

    def test_perf_counts_shard_retries(self):
        perf = PerfRegistry()
        run_resilient_scan(SEED, MAX_RANK, jobs=1, fault_plan=_crash_plan(),
                           perf=perf)
        assert perf.counters["scan.shard_retries"] == 1

    def test_injected_crash_surfaces_without_a_driver(self):
        """Outside the resilient driver the injection is a plain raise."""
        from repro.experiment import ScanShardTask, run_scan_shard

        task = ScanShardTask(seed=SEED, start_rank=1, stop_rank=9,
                             max_rank=MAX_RANK, fault_plan=_crash_plan(),
                             attempt=1)
        with pytest.raises(InjectedWorkerCrash):
            run_scan_shard(task)


class TestDegradedReport:
    def test_exhausted_retries_name_the_exact_ranges(self):
        plan = _crash_plan(failures=99)
        result = run_resilient_scan(SEED, MAX_RANK, jobs=4, fault_plan=plan,
                                    retry=ShardRetryPolicy(max_attempts=2))
        assert result.degraded
        assert len(result.unscanned_ranges) == 1
        start, stop = result.unscanned_ranges[0]
        assert start <= 3 < stop
        [failed] = [o for o in result.outcomes if o.status == "failed"]
        assert failed.attempts == 2
        assert "InjectedWorkerCrash" in failed.error
        assert any("DEGRADED" in line for line in result.summary_lines())

    def test_surviving_shards_still_merge(self, baseline_digest):
        plan = _crash_plan(failures=99)
        result = run_resilient_scan(SEED, MAX_RANK, jobs=4, fault_plan=plan,
                                    retry=ShardRetryPolicy(max_attempts=1))
        assert result.degraded
        assert 0 < result.aggregates.registered_count
        assert result.aggregates.digest() != baseline_digest
        assert result.plan_digest == plan.digest()


@pytest.mark.slow
class TestHangTimeout:
    def test_hung_shard_trips_the_timeout_and_retries(self, baseline_digest):
        plan = FaultPlan(seed=5, shard_crashes=(
            ShardCrashSpec(rank=3, failures=1, mode="hang",
                           hang_seconds=1.5),))
        result = run_resilient_scan(
            SEED, MAX_RANK, jobs=2, fault_plan=plan,
            retry=ShardRetryPolicy(max_attempts=2,
                                   shard_timeout_seconds=0.3))
        assert result.aggregates.digest() == baseline_digest
        assert not result.degraded
        assert any(o.attempts == 2 for o in result.outcomes)


class TestCheckpointResume:
    def test_fresh_run_writes_and_resume_skips(self, tmp_path,
                                               baseline_digest):
        path = tmp_path / "scan.json"
        first = run_resilient_scan(SEED, MAX_RANK, jobs=2,
                                   checkpoint_path=path)
        assert first.aggregates.digest() == baseline_digest
        assert path.exists()
        second = run_resilient_scan(SEED, MAX_RANK, jobs=2,
                                    checkpoint_path=path)
        assert second.aggregates.digest() == baseline_digest
        assert all(o.status == "resumed" for o in second.outcomes)
        assert second.attempts_total == 0

    def test_degraded_run_resumes_into_a_complete_one(self, tmp_path,
                                                      baseline_digest):
        """The kill-resilience bar: crash a shard to death, re-run with
        the same checkpoint, and the scan completes to the fault-free
        digest."""
        path = tmp_path / "scan.json"
        degraded = run_resilient_scan(
            SEED, MAX_RANK, jobs=4, fault_plan=_crash_plan(failures=99),
            retry=ShardRetryPolicy(max_attempts=1), checkpoint_path=path)
        assert degraded.degraded
        healed = run_resilient_scan(SEED, MAX_RANK, jobs=4,
                                    checkpoint_path=path)
        assert healed.aggregates.digest() == baseline_digest
        assert not healed.degraded
        statuses = {o.status for o in healed.outcomes}
        assert statuses == {"resumed", "completed"}

    def test_checkpoint_rejects_mismatched_run(self, tmp_path):
        path = tmp_path / "scan.json"
        run_resilient_scan(SEED, MAX_RANK, jobs=1, checkpoint_path=path)
        with pytest.raises(CheckpointMismatchError, match="was written for"):
            ScanCheckpoint(path, seed=SEED + 1, max_rank=MAX_RANK)
        with pytest.raises(CheckpointMismatchError, match="was written for"):
            ScanCheckpoint(path, seed=SEED, max_rank=MAX_RANK + 1)

    def test_canonical_round_trip_preserves_digest(self):
        aggregates = run_sharded_scan(SEED, MAX_RANK, jobs=1)
        clone = ScanAggregates.from_canonical_dict(
            json.loads(json.dumps(aggregates.canonical_dict())))
        assert clone.digest() == aggregates.digest()


class TestPoolFallbackVisibility:
    """The silent-degradation satellite: pool breakage must be loud."""

    def test_unpicklable_work_warns_and_counts(self):
        before = pool_fallback_count()
        perf = PerfRegistry()
        hostile = lambda x: x + 1      # closures cannot cross processes
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = parallel_map(hostile, [1, 2, 3], jobs=2, perf=perf)
        assert results == [2, 3, 4]
        assert pool_fallback_count() == before + 1
        assert perf.counters["parallel.pool_fallback"] == 1

    def test_serial_path_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parallel_map(lambda x: x * 2, [1, 2], jobs=1) == [2, 4]
