"""Parity suite for the columnar feature engine.

Every vectorized featurizer has a scalar twin, and this suite pins them
against each other row-for-row:

* :func:`message_feature_matrix` vs :func:`message_feature_row` over
  hypothesis-generated messages — unicode subjects, junk headers, empty
  bodies, archive attachments;
* :func:`block_matrix` (packed-word unpacking) vs
  :func:`state_feature_row` (plain strings + public distance kernels)
  over lazy-world windows, shallow and deep;
* the sweep digest: serial == sharded at any job count, and sensitive
  to the seed;
* bounded memory: featurization never retains raw messages
  (``retain_original=False``) or unbounded per-domain state.
"""

from __future__ import annotations

import string
import tracemalloc

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.features import (
    DOMAIN_FEATURES,
    MESSAGE_FEATURES,
    block_matrix,
    block_ranks,
    domain_feature_row,
    featurize_domains,
    message_feature_matrix,
    message_feature_row,
    run_sharded_featurize,
    state_feature_row,
)
from repro.ecosystem.world import WorldModel
from repro.pipeline.tokenizer import tokenize
from repro.smtpsim import Attachment, EmailMessage
from repro.spamfilter.funnel import FilterFunnel

FUNNEL_DOMAINS = ("workplace.example",)

#: header text: printable ascii, unicode, and whitespace junk
HEADER_TEXT = st.text(max_size=40)
ADDRESSISH = st.one_of(
    st.text(max_size=30),
    st.builds("{}@{}".format,
              st.text(alphabet=string.ascii_lowercase + "0123456789.",
                      min_size=1, max_size=12),
              st.sampled_from(["workplace.example", "other.example",
                               "typo.example", ""])))


@st.composite
def email_messages(draw):
    headers = []
    for name in ("From", "To", "Subject", "Reply-To", "Return-Path",
                 "Sender", "List-Unsubscribe"):
        if draw(st.booleans()):
            headers.append((name, draw(HEADER_TEXT)))
    for _ in range(draw(st.integers(0, 3))):
        headers.append(("Received", draw(HEADER_TEXT)))
    if draw(st.booleans()):
        headers.append((draw(st.text(min_size=1, max_size=10)),
                        draw(HEADER_TEXT)))
    attachments = [
        Attachment(filename=draw(st.text(max_size=8)) + draw(
            st.sampled_from(["", ".zip", ".rar", ".pdf", ".txt"])),
            content=draw(st.binary(max_size=16)))
        for _ in range(draw(st.integers(0, 2)))]
    return EmailMessage(
        headers=headers,
        body=draw(st.text(max_size=200)),
        attachments=attachments,
        envelope_from=draw(st.one_of(st.none(), ADDRESSISH)),
        envelope_to=draw(st.lists(ADDRESSISH, max_size=3)),
        received_at=draw(st.floats(0, 1e7, allow_nan=False,
                                   allow_infinity=False)),
    )


class TestMessageLaneParity:
    @given(st.lists(email_messages(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matrix_matches_scalar_rows(self, messages):
        funnel = FilterFunnel(FUNNEL_DOMAINS, enabled_layers=())
        pairs = []
        for message in messages:
            tok = tokenize(message, retain_original=False)
            assert tok.original is None
            pairs.append((tok, funnel.summarize(tok)))
        X = message_feature_matrix(pairs)
        assert X.shape == (len(pairs), len(MESSAGE_FEATURES))
        assert np.isfinite(X).all()
        for i, (tok, summary) in enumerate(pairs):
            ref = message_feature_row(tok, summary)
            assert np.array_equal(X[i], ref), (
                f"row {i} diverged: {dict(zip(MESSAGE_FEATURES, X[i]))}"
                f" vs {dict(zip(MESSAGE_FEATURES, ref))}")

    @given(st.lists(email_messages(), min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_preallocated_out_is_filled_in_place(self, messages):
        funnel = FilterFunnel(FUNNEL_DOMAINS, enabled_layers=())
        pairs = [(tok, funnel.summarize(tok))
                 for tok in (tokenize(m, retain_original=False)
                             for m in messages)]
        out = np.full((len(pairs), len(MESSAGE_FEATURES)), -1.0)
        result = message_feature_matrix(pairs, out=out)
        assert result is out
        assert np.array_equal(out, message_feature_matrix(pairs))

    def test_summary_parity_with_full_funnel_summaries(self):
        """Rows are identical whether summaries come from the no-layer
        funnel or the full one — featurization reads only the stage-A
        projection fields, never the layer verdicts."""
        from repro.util import SeededRng, derive_seed
        from repro.workloads.datasets import DATASET_PROFILES, build_dataset

        root = SeededRng(derive_seed(1207, "parity-mail"))
        name, profile = next(iter(DATASET_PROFILES.items()))
        emails = build_dataset(profile, 40, root.child(name)).emails
        plain = FilterFunnel(FUNNEL_DOMAINS, enabled_layers=())
        full = FilterFunnel(FUNNEL_DOMAINS)
        X_plain = message_feature_matrix(
            [(tok, plain.summarize(tok)) for tok in emails])
        X_full = message_feature_matrix(
            [(tok, full.summarize(tok)) for tok in emails])
        assert np.array_equal(X_plain, X_full)


LABELS = st.text(alphabet=string.ascii_lowercase + "0123456789-",
                 min_size=1, max_size=20)
JUNK_LABELS = st.one_of(LABELS, st.text(min_size=1, max_size=20))


class TestDomainScalarReference:
    @given(JUNK_LABELS,
           st.one_of(st.text(alphabet=string.ascii_lowercase + "0123456789-",
                             min_size=2, max_size=20),
                     st.text(min_size=2, max_size=20)),
           st.integers(1, 10**6),
           st.sampled_from(["deletion", "transposition", "substitution",
                            "addition"]),
           st.integers(0, 25), st.text(min_size=1, max_size=1))
    @settings(max_examples=80, deadline=None)
    def test_row_tolerates_arbitrary_labels(self, typo, target, rank,
                                            op, index, char):
        # any index valid for every op: < len-1 covers transposition too
        index %= len(target) - 1
        row = domain_feature_row(typo, target, rank, op, index, char,
                                 registered=True)
        assert row.shape == (len(DOMAIN_FEATURES),)
        assert np.isfinite(row).all()
        op_cols = [DOMAIN_FEATURES.index(f"op_{name}")
                   for name in ("deletion", "transposition",
                                "substitution", "addition")]
        assert row[op_cols].sum() == 1.0

    @given(JUNK_LABELS, JUNK_LABELS, st.integers(1, 1000))
    @settings(max_examples=30, deadline=None)
    def test_unregistered_rows_zero_the_registration_block(
            self, typo, target, rank):
        row = domain_feature_row(typo, target, rank, "deletion", 0, "",
                                 registered=False)
        assert row[DOMAIN_FEATURES.index("registered")] == 0.0
        for name in ("mx_none", "mx_parked", "mx_web", "mx_pool",
                     "mx_self", "mx_target", "has_address",
                     "ns_cesspool", "ns_normal", "ns_target",
                     "private_whois", "whois_fields_frac"):
            assert row[DOMAIN_FEATURES.index(name)] == 0.0


#: (seed, start, stop, max_rank) — shallow head window, filler window,
#: and a window inside a much larger universe (max_rank matters for the
#: wildness rule)
WINDOWS = [
    (909, 1, 40, 39),
    (909, 37, 61, 200),
    (2016, 150, 190, 5_000),
]


class TestDomainWindowParity:
    @pytest.mark.parametrize("seed,start,stop,max_rank", WINDOWS)
    def test_sweep_matches_scalar_state_rows(self, seed, start, stop,
                                             max_rank):
        sweep = featurize_domains(seed, start, stop, max_rank=max_rank)
        parts = [block_matrix(b) for b in sweep.blocks]
        X = (np.vstack([p[0] for p in parts]) if parts
             else np.zeros((0, len(DOMAIN_FEATURES))))
        y = (np.concatenate([p[1] for p in parts]) if parts
             else np.zeros(0))
        ranks = (np.concatenate([block_ranks(b) for b in sweep.blocks])
                 if sweep.blocks else np.zeros(0, dtype=np.int64))

        world = WorldModel(seed)
        ref_rows = []
        ref_squat = []
        ref_ranks = []
        for rank in range(start, stop):
            for state in world.iter_rank_states(rank,
                                                world.rank_grid(rank)):
                ref_rows.append(state_feature_row(state))
                ref_squat.append(
                    1.0 if "squatter" in state.owner_type.value else 0.0)
                ref_ranks.append(rank)
        # target-collision exclusions are possible but rare in these
        # windows; the parity claim needs identical row streams
        assert sweep.n_excluded == 0
        assert X.shape[0] == sweep.n_rows == len(ref_rows) > 0
        assert np.array_equal(ranks, np.asarray(ref_ranks))
        assert np.array_equal(y, np.asarray(ref_squat))
        diff = np.abs(X - np.vstack(ref_rows)).max()
        assert diff == 0.0, f"max row divergence {diff}"

    def test_sweep_digest_serial_equals_sharded(self):
        serial = run_sharded_featurize(909, 600, jobs=1)
        sharded = run_sharded_featurize(909, 600, jobs=3)
        assert serial.n_rows == sharded.n_rows > 0
        assert serial.digest() == sharded.digest()
        assert run_sharded_featurize(910, 600, jobs=1).digest() != \
            serial.digest()

    def test_digest_invariant_to_block_size(self):
        coarse = featurize_domains(909, 1, 301, max_rank=300)
        fine = featurize_domains(909, 1, 301, max_rank=300,
                                 block_records=512)
        assert len(fine.blocks) > len(coarse.blocks)
        assert fine.digest() == coarse.digest()


class TestBoundedMemory:
    def test_domain_featurize_memory_stays_bounded(self):
        """A 3k-rank walk peaks well under the retained-state footprint.

        Blocks are ~16 bytes/row; retaining ``DomainState`` objects for
        the same window costs >10x this bound.
        """
        tracemalloc.start()
        try:
            sweep = featurize_domains(707, 1, 3_001, max_rank=3_000,
                                      block_records=2_048)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert sweep.n_rows > 50_000
        assert peak < 24 * 1024 * 1024, (
            f"domain featurize peaked at {peak/1e6:.1f}MB for a 3k-rank "
            "window — per-domain state is being retained")

    def test_message_featurize_releases_raw_messages(self):
        """Chunked featurization over retain_original=False tokens never
        holds more than one chunk of raw mail."""
        from repro.util import SeededRng, derive_seed
        from repro.workloads.datasets import DATASET_PROFILES, build_dataset

        root = SeededRng(derive_seed(707, "memguard-mail"))
        name, profile = next(iter(DATASET_PROFILES.items()))
        emails = build_dataset(profile, 400, root.child(name)).emails
        funnel = FilterFunnel(FUNNEL_DOMAINS, enabled_layers=())

        tracemalloc.start()
        try:
            out = np.empty((256, len(MESSAGE_FEATURES)))
            total = 0
            for lo in range(0, len(emails), 256):
                chunk = emails[lo:lo + 256]
                pairs = [(tok, funnel.summarize(tok)) for tok in chunk]
                X = message_feature_matrix(
                    pairs, out=out[:len(pairs)] if len(pairs) <= 256
                    else None)
                total += X.shape[0]
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert total == len(emails)
        assert peak < 8 * 1024 * 1024, (
            f"message featurize peaked at {peak/1e6:.1f}MB for a "
            "400-message stream — summaries or rows are accumulating")
