"""The learned-detector model: artifact discipline, determinism, scoring.

Covers the ``repro-typo-model@1`` persistence contract (atomic save,
self-digest, the load error taxonomy), byte-identical training at any
worker count, and the vectorized scorer's invariants.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.features import DOMAIN_FEATURES, MESSAGE_FEATURES
from repro.learned import (
    LEARNED_MODEL_FORMAT,
    SCORE_THRESHOLD,
    evaluate_model,
    load_model,
    save_model,
    train_typo_model,
)
from repro.learned.model import model_digest
from repro.util.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
)

TINY_SEED = 707
TINY_RANKS = 300
TINY_DATASET = 40


@pytest.fixture(scope="module")
def tiny_model():
    model, stats = train_typo_model(TINY_SEED, ranks=TINY_RANKS,
                                    dataset_size=TINY_DATASET)
    return model, stats


def _mutated_copy(path, tmp_path, name, mutate, redigest=True):
    """Write a mutated artifact; re-digest by default so only the
    intended check fires, not the corruption check before it."""
    payload = json.loads(path.read_text())
    mutate(payload)
    if redigest:
        payload["digest"] = model_digest(payload)
    out = tmp_path / name
    out.write_text(json.dumps(payload))
    return out


class TestArtifact:
    def test_save_load_round_trip(self, tiny_model, tmp_path):
        model, stats = tiny_model
        path = tmp_path / "model.json"
        digest = save_model(model, str(path))
        assert digest == stats["model_digest"]
        loaded = load_model(str(path))
        assert loaded.digest() == model.digest()
        assert loaded.provenance == model.provenance

        rng = np.random.default_rng(9)
        Xd = rng.normal(size=(32, len(DOMAIN_FEATURES)))
        Xm = rng.normal(size=(32, len(MESSAGE_FEATURES)))
        assert np.array_equal(loaded.domain.scores(Xd),
                              model.domain.scores(Xd))
        assert np.array_equal(loaded.message.scores(Xm),
                              model.message.scores(Xm))

    def test_save_leaves_no_temp_files(self, tiny_model, tmp_path):
        model, _ = tiny_model
        path = tmp_path / "model.json"
        save_model(model, str(path))
        save_model(model, str(path))      # overwrite is atomic too
        assert sorted(os.listdir(tmp_path)) == ["model.json"]

    def test_flipped_byte_is_corrupt(self, tiny_model, tmp_path):
        model, _ = tiny_model
        path = tmp_path / "model.json"
        save_model(model, str(path))
        text = path.read_text()
        flipped = text.replace('"bias"', '"bIas"', 1)
        assert flipped != text
        path.write_text(flipped)
        with pytest.raises(CheckpointCorruptError):
            load_model(str(path))

    def test_torn_file_is_corrupt(self, tiny_model, tmp_path):
        model, _ = tiny_model
        path = tmp_path / "model.json"
        save_model(model, str(path))
        path.write_text(path.read_text()[:200])
        with pytest.raises(CheckpointCorruptError):
            load_model(str(path))

    def test_foreign_format_is_mismatch(self, tiny_model, tmp_path):
        model, _ = tiny_model
        path = tmp_path / "model.json"
        save_model(model, str(path))
        bad = _mutated_copy(
            path, tmp_path, "foreign.json",
            lambda p: p.__setitem__("format", "other-artifact@7"))
        with pytest.raises(CheckpointMismatchError):
            load_model(str(bad))

    def test_unknown_schema_version_is_config_error(self, tiny_model,
                                                    tmp_path):
        model, _ = tiny_model
        path = tmp_path / "model.json"
        save_model(model, str(path))
        bad = _mutated_copy(
            path, tmp_path, "schema.json",
            lambda p: p.__setitem__("schema_version", 99))
        with pytest.raises(ConfigError, match="schema"):
            load_model(str(bad))

    def test_drifted_feature_list_is_config_error(self, tiny_model,
                                                  tmp_path):
        model, _ = tiny_model
        path = tmp_path / "model.json"
        save_model(model, str(path))

        def drift(payload):
            payload["message"]["features"][0] = "brand_new_feature"

        bad = _mutated_copy(path, tmp_path, "drift.json", drift)
        with pytest.raises(ConfigError, match="feature list"):
            load_model(str(bad))

    def test_missing_lane_is_corrupt(self, tiny_model, tmp_path):
        model, _ = tiny_model
        path = tmp_path / "model.json"
        save_model(model, str(path))
        bad = _mutated_copy(path, tmp_path, "nolane.json",
                            lambda p: p.pop("domain"))
        with pytest.raises(CheckpointCorruptError):
            load_model(str(bad))

    def test_unknown_lane_accessor(self, tiny_model):
        model, _ = tiny_model
        assert model.lane("domain") is model.domain
        assert model.lane("message") is model.message
        with pytest.raises(ConfigError):
            model.lane("weather")


class TestTrainingDeterminism:
    def test_same_seed_any_jobs_byte_identical(self):
        one, _ = train_typo_model(808, ranks=600, dataset_size=50, jobs=1)
        two, _ = train_typo_model(808, ranks=600, dataset_size=50, jobs=2)
        assert one.digest() == two.digest()
        assert json.dumps(one.to_payload(), sort_keys=True) == \
            json.dumps(two.to_payload(), sort_keys=True)

    def test_different_seed_differs(self, tiny_model):
        model, _ = tiny_model
        other, _ = train_typo_model(TINY_SEED + 1, ranks=TINY_RANKS,
                                    dataset_size=TINY_DATASET)
        assert other.digest() != model.digest()

    def test_provenance_records_training_shape(self, tiny_model):
        model, stats = tiny_model
        prov = model.provenance
        assert prov["train_ranks"] == TINY_RANKS
        assert prov["train_dataset_size"] == TINY_DATASET
        assert prov["domain_rows"] > 0
        assert 0 < prov["domain_positives"] < prov["domain_rows"]
        assert prov["message_rows"] == TINY_DATASET * 4
        assert stats["model_digest"] == model.digest()


class TestScoring:
    def test_scores_are_probabilities(self, tiny_model):
        model, _ = tiny_model
        rng = np.random.default_rng(11)
        X = rng.normal(size=(64, len(DOMAIN_FEATURES)))
        s = model.domain.scores(X)
        assert s.shape == (64,)
        assert ((s > 0.0) & (s < 1.0)).all()

    def test_margins_batch_invariant(self, tiny_model):
        """Scoring a row alone or inside a batch yields the same margin —
        the vectorized path has no cross-row dependence."""
        model, _ = tiny_model
        rng = np.random.default_rng(12)
        X = rng.normal(size=(16, len(MESSAGE_FEATURES)))
        batch = model.message.margins(X)
        solo = np.array([model.message.margins(X[i:i + 1])[0]
                         for i in range(16)])
        # BLAS may reorder the matmul reduction between the (1,n) and
        # (16,n) shapes — equality holds to a few ulps, not bit-for-bit
        np.testing.assert_allclose(batch, solo, rtol=1e-12, atol=1e-12)

    def test_trained_lanes_separate_their_training_data(self, tiny_model):
        """Sanity, not a benchmark: on its own training distribution the
        model must beat coin-flipping by a wide margin."""
        from repro.learned.train import build_message_training_set

        model, _ = tiny_model
        X, y = build_message_training_set(TINY_SEED, TINY_DATASET)
        predicted = model.message.scores(X) >= SCORE_THRESHOLD
        accuracy = float((predicted == y.astype(bool)).mean())
        assert accuracy >= 0.9


class TestEvaluation:
    def test_metrics_digest_is_deterministic(self, tiny_model):
        model, _ = tiny_model
        kwargs = dict(dataset_size=40, domain_window=(301, 381),
                      max_rank=400)
        one = evaluate_model(model, TINY_SEED, **kwargs)
        two = evaluate_model(model, TINY_SEED, **kwargs)
        assert one.metrics_digest() == two.metrics_digest()
        assert one.model_digest == model.digest()

    def test_report_covers_all_corpora_and_detectors(self, tiny_model):
        model, _ = tiny_model
        report = evaluate_model(model, TINY_SEED, dataset_size=40,
                                domain_window=(301, 381), max_rank=400)
        assert len(report.corpora) >= 4
        for corpus in report.corpora:
            assert set(corpus.detectors) == {"learned", "funnel",
                                             "combined"}
        table = report.format_table()
        assert "learned" in table and "funnel" in table
        payload = report.to_payload()
        assert payload["domain"]["size"] > 0
        assert payload["domain_window"] == [301, 381]
        assert LEARNED_MODEL_FORMAT  # artifact tag stays importable
