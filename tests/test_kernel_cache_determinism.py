"""Cache transparency: the kernel memos must never change an answer.

The distance/typo caches exist purely for speed; every cached kernel is
a pure function of its string arguments, so answers with caching on and
off must agree exactly, and the per-target candidate cache must hand
back equal candidate lists.  These tests flip the switch both ways on
identical inputs.
"""

from __future__ import annotations

import pytest

from repro.core import (
    TypoGenerator,
    clear_kernel_caches,
    damerau_levenshtein,
    fat_finger_distance,
    kernel_cache_stats,
    set_kernel_caches_enabled,
    visual_distance,
)

TARGETS = ("gmail.com", "yahoo.com", "aol.com", "hotmail.com")
PAIRS = [
    ("gmail.com", "gmial.com"),
    ("gmail.com", "gmall.com"),
    ("yahoo.com", "yaho.com"),
    ("hotmail.com", "hotmali.com"),
    ("aol.com", "apl.com"),
    ("example.org", "example.org"),
    ("", "a"),
]


@pytest.fixture(autouse=True)
def _caches_restored():
    """Leave the process-wide cache switch the way we found it."""
    yield
    set_kernel_caches_enabled(True)
    clear_kernel_caches()


def _distance_answers():
    return [(damerau_levenshtein(a, b),
             fat_finger_distance(a, b),
             visual_distance(a, b)) for a, b in PAIRS]


def test_distances_agree_with_caches_on_and_off():
    set_kernel_caches_enabled(True)
    clear_kernel_caches()
    cached_cold = _distance_answers()
    cached_warm = _distance_answers()   # every lookup now hits the cache

    set_kernel_caches_enabled(False)
    clear_kernel_caches()
    uncached = _distance_answers()

    assert cached_cold == cached_warm == uncached


def test_candidates_agree_with_caches_on_and_off():
    generator = TypoGenerator()
    set_kernel_caches_enabled(True)
    clear_kernel_caches()
    cached = {t: generator.generate(t) for t in TARGETS}
    rerun = {t: generator.generate(t) for t in TARGETS}

    set_kernel_caches_enabled(False)
    clear_kernel_caches()
    uncached = {t: generator.generate(t) for t in TARGETS}

    assert cached == rerun == uncached


def test_warm_lookups_actually_hit_the_cache():
    set_kernel_caches_enabled(True)
    clear_kernel_caches()
    _distance_answers()
    cold = kernel_cache_stats()
    _distance_answers()
    warm = kernel_cache_stats()

    total_cold_hits = sum(s["hits"] for s in cold.values())
    total_warm_hits = sum(s["hits"] for s in warm.values())
    assert total_warm_hits > total_cold_hits


def test_clear_resets_hit_and_miss_counters():
    """A cleared cache reports a clean slate, not process-lifetime totals.

    Hit rates computed from :func:`kernel_cache_stats` must describe
    the run since the last clear; stale counters silently inflated the
    serving benchmark's reported rates.
    """
    set_kernel_caches_enabled(True)
    clear_kernel_caches()
    _distance_answers()
    _distance_answers()
    dirty = kernel_cache_stats()
    assert sum(s["hits"] + s["misses"] for s in dirty.values()) > 0

    clear_kernel_caches()
    stats = kernel_cache_stats()
    for name, counters in stats.items():
        assert counters["hits"] == 0, name
        assert counters["misses"] == 0, name
        assert counters["size"] == 0, name

    # and the DL cache — unique pairs, no intra-pass reuse — restarts
    # from pure misses after the clear
    _distance_answers()
    cold = kernel_cache_stats()
    dl = cold["damerau_levenshtein"]
    assert dl["hits"] == 0
    assert dl["misses"] == dl["size"] > 0


def test_disabled_caches_stay_empty():
    set_kernel_caches_enabled(False)
    clear_kernel_caches()
    _distance_answers()
    stats = kernel_cache_stats()
    assert all(s["size"] == 0 for s in stats.values())
