"""Tests for tokenizer, extraction, and the end-to-end processor."""

import pytest

from repro.infra import EncryptedStore, KeyVault
from repro.pipeline import (
    ARCHIVE_EXTENSIONS,
    EmailProcessor,
    ExtractionError,
    extract_text,
    tokenize,
)
from repro.smtpsim import Attachment, EmailMessage


def _message(**kwargs):
    return EmailMessage.create(
        from_addr="alice@real.org", to_addr="bob@gmial.com",
        subject="travel", body="see attached", **kwargs)


class TestTokenizer:
    def test_metadata_fields(self):
        msg = _message(extra_headers={"Reply-To": "alice@real.org",
                                      "List-Unsubscribe": "<mailto:u@x.com>"})
        msg.envelope_from = "alice@real.org"
        msg.received_by_ip = "198.51.100.1"
        msg.received_at = 55.0
        tok = tokenize(msg)
        assert tok.metadata.from_field == "alice@real.org"
        assert tok.metadata.subject == "travel"
        assert tok.metadata.reply_to == "alice@real.org"
        assert tok.metadata.list_unsubscribe == "<mailto:u@x.com>"
        assert tok.metadata.received_by_ip == "198.51.100.1"
        assert tok.metadata.received_at == 55.0

    def test_received_chain(self):
        msg = _message()
        msg.add_header("Received", "hop1")
        msg.add_header("Received", "hop2")
        assert tokenize(msg).metadata.received_chain == ("hop1", "hop2")

    def test_archive_detection(self):
        msg = _message(attachments=[Attachment("evil.zip", b"PK...")])
        assert tokenize(msg).has_archive_attachment
        assert "zip" in ARCHIVE_EXTENSIONS

    def test_attachment_extensions(self):
        msg = _message(attachments=[Attachment("a.pdf", b"x"),
                                    Attachment("b.docx", b"y")])
        assert tokenize(msg).attachment_extensions == ["pdf", "docx"]

    def test_body_preserved(self):
        assert tokenize(_message()).body == "see attached"


class TestExtraction:
    def test_plain_text(self):
        att = Attachment("notes.txt", b"hello world")
        assert extract_text(att) == "hello world"

    def test_html_tags_stripped(self):
        att = Attachment("page.html", b"<p>hello <b>world</b></p>")
        text = extract_text(att)
        assert "hello" in text and "world" in text
        assert "<p>" not in text

    def test_pdf_container(self):
        att = Attachment("doc.pdf", b"%PDF-SIM\npage one text")
        assert extract_text(att) == "page one text"

    def test_pdf_wrong_magic_gives_none(self):
        att = Attachment("doc.pdf", b"not a pdf at all")
        assert extract_text(att) is None

    def test_docx_paragraphs(self):
        content = b"PK-OOXML\n<w:t>first para</w:t><w:t>second para</w:t>"
        att = Attachment("cv.docx", content)
        assert extract_text(att) == "first para\nsecond para"

    def test_xlsx_cells(self):
        content = b"XLS-SIM\nA1=Revenue\nB1=4500\nA2=Cost"
        att = Attachment("sheet.xlsx", content)
        assert extract_text(att) == "Revenue\n4500\nCost"

    def test_image_ocr_marker(self):
        att = Attachment("scan.png", b"\x89PNG-ish OCR: invoice total 42")
        assert extract_text(att) == "invoice total 42"

    def test_image_without_text(self):
        att = Attachment("photo.jpg", b"\xff\xd8 pure pixels")
        assert extract_text(att) is None

    def test_archives_refused(self):
        for name in ("backup.zip", "stuff.rar"):
            with pytest.raises(ExtractionError):
                extract_text(Attachment(name, b"PK..."))

    def test_unknown_format_none(self):
        assert extract_text(Attachment("thing.xyz", b"???")) is None

    def test_ics_and_rtf(self):
        assert "MEETING" in extract_text(Attachment("c.ics", b"BEGIN MEETING"))
        assert "hello" in extract_text(Attachment("d.rtf", b"hello {rtf}"))


class TestEmailProcessor:
    def test_body_scrubbed(self):
        processor = EmailProcessor()
        msg = _message()
        msg.body = "my ssn is 078-05-1120, room 7"
        processed = processor.process(msg)
        assert "078-05-1120" not in processed.scrubbed_body
        assert "room 0" in processed.scrubbed_body
        assert processed.body_sensitive_labels == ("ssn",)

    def test_attachment_scrubbed(self):
        processor = EmailProcessor()
        content = b"PK-OOXML\n<w:t>card 4111111111111111 enclosed</w:t>"
        msg = _message(attachments=[Attachment("pay.docx", content)])
        processed = processor.process(msg)
        att = processed.attachments[0]
        assert att.extracted
        assert "4111111111111111" not in att.scrubbed_text
        assert att.sensitive_labels == ("visa",)

    def test_archive_attachment_not_extracted(self):
        processor = EmailProcessor()
        msg = _message(attachments=[Attachment("x.zip", b"PK")])
        processed = processor.process(msg)
        assert not processed.attachments[0].extracted
        assert processed.attachments[0].scrubbed_text == ""

    def test_sensitive_counts_aggregated(self):
        processor = EmailProcessor()
        msg = _message(attachments=[
            Attachment("a.txt", b"password: abc"),
            Attachment("b.txt", b"password: xyz"),
        ])
        msg.body = "login: jdoe"
        processed = processor.process(msg)
        counts = processed.sensitive_counts()
        assert counts["password"] == 2
        assert counts["username"] == 1

    def test_storage_integration(self):
        store = EncryptedStore(KeyVault.generate(1))
        processor = EmailProcessor(store=store)
        msg = _message(attachments=[Attachment("a.txt", b"hello")])
        processed = processor.process(msg)
        assert processed.header_record_id in store
        assert processed.body_record_id in store
        assert processed.attachments[0].stored_record_id in store
        # stored body is the scrubbed one
        stored = store.get(processed.body_record_id).decode()
        assert stored == processed.scrubbed_body

    def test_no_plaintext_identifiers_in_store(self):
        store = EncryptedStore(KeyVault.generate(2))
        processor = EmailProcessor(store=store)
        msg = _message()
        msg.body = "card 4111111111111111"
        processed = processor.process(msg)
        stored = store.get(processed.body_record_id).decode()
        assert "4111111111111111" not in stored

    def test_attachment_hash_preserved(self):
        processor = EmailProcessor()
        attachment = Attachment("a.txt", b"identical payload")
        msg = _message(attachments=[attachment])
        processed = processor.process(msg)
        assert processed.attachments[0].sha256 == attachment.sha256()
