"""Unit tests for funnel helper internals and edge cases."""

import pytest

from repro.pipeline import tokenize
from repro.smtpsim import EmailMessage
from repro.spamfilter import CollaborativeDatabase, FilterFunnel, Verdict
from repro.spamfilter.funnel import (
    _content_hash,
    _header_to_domain,
    _relay_chain_hosts,
    _sender_address,
    _sender_domain,
)

OUR = ["gmial.com", "smtpverizon.net"]


def _tok(from_addr="a@b.com", to_addr="c@gmial.com", envelope_to=None,
         received=None, body="hi", extra_headers=None):
    message = EmailMessage.create(from_addr, to_addr, "s", body,
                                  extra_headers=extra_headers)
    if envelope_to is not None:
        message.envelope_to = envelope_to
    for header in reversed(received or []):
        message.headers.insert(0, ("Received", header))
    return tokenize(message)


class TestHeaderHelpers:
    def test_relay_hosts_direct_path(self):
        tok = _tok(received=["from sender.org by gmial.com (1.1.1.1)"])
        assert _relay_chain_hosts(tok) == {"sender.org", "gmial.com"}

    def test_relay_hosts_forwarded_path(self):
        tok = _tok(received=[
            "from gmial.com by collector.study-infra.net (198.51.99.1)",
            "from sender.org by gmial.com (198.51.100.1)"])
        assert "gmial.com" in _relay_chain_hosts(tok)

    def test_relay_hosts_empty_chain(self):
        assert _relay_chain_hosts(_tok()) == set()

    def test_sender_address_prefers_envelope(self):
        tok = _tok(from_addr="display@header.com")
        tok.metadata = tok.metadata.__class__(
            **{**tok.metadata.__dict__, "envelope_from": "real@envelope.com"})
        assert _sender_address(tok) == "real@envelope.com"

    def test_sender_address_falls_back_to_from(self):
        tok = _tok(from_addr="Alice <alice@x.com>")
        assert _sender_address(tok) == "alice@x.com"

    def test_sender_domain(self):
        tok = _tok(from_addr="alice@Mixed.Example")
        assert _sender_domain(tok) == "mixed.example"

    def test_header_to_domain(self):
        tok = _tok(to_addr="Bob <bob@Target.ORG>")
        assert _header_to_domain(tok) == "target.org"

    def test_content_hash_normalises_whitespace(self):
        assert _content_hash("hello   world") == _content_hash("hello\nworld ")
        assert _content_hash("hello world") != _content_hash("other words")


class TestCandidateKind:
    def test_subdomain_recipient_is_receiver(self):
        funnel = FilterFunnel(OUR)
        tok = _tok(envelope_to=["user@mail.gmial.com"])
        assert funnel.candidate_kind(tok) == "receiver"

    def test_third_party_recipient_is_smtp(self):
        funnel = FilterFunnel(OUR)
        tok = _tok(envelope_to=["user@elsewhere.org"])
        assert funnel.candidate_kind(tok) == "smtp"

    def test_mixed_recipients_count_as_receiver(self):
        funnel = FilterFunnel(OUR)
        tok = _tok(envelope_to=["a@elsewhere.org", "b@gmial.com"])
        assert funnel.candidate_kind(tok) == "receiver"

    def test_case_insensitive(self):
        funnel = FilterFunnel(OUR)
        tok = _tok(envelope_to=["USER@GMIAL.COM"])
        assert funnel.candidate_kind(tok) == "receiver"


class TestCollaborativeDatabase:
    def test_sender_match_case_insensitive(self):
        database = CollaborativeDatabase()
        database.record_spam("Spammer@Bad.org", "short")
        assert database.matches("spammer@bad.org", "other") is not None

    def test_bow_requires_minimum_words(self):
        database = CollaborativeDatabase(bag_of_words_minimum=5)
        database.record_spam(None, "one two three four five six")
        assert database.matches(None, "six five four three two one") is not None
        database2 = CollaborativeDatabase(bag_of_words_minimum=10)
        database2.record_spam(None, "one two three four five six")
        assert database2.matches(None, "one two three four five six") is None

    def test_bow_order_insensitive(self):
        database = CollaborativeDatabase(bag_of_words_minimum=3)
        database.record_spam(None, "alpha beta gamma delta epsilon")
        assert database.matches(
            None, "epsilon delta gamma beta alpha") is not None

    def test_none_sender_tolerated(self):
        database = CollaborativeDatabase()
        database.record_spam(None, "body")
        assert database.matches(None, "body") is None  # too short for bow


class TestFunnelEdgeCases:
    def test_email_without_any_headers(self):
        funnel = FilterFunnel(OUR)
        message = EmailMessage()
        message.envelope_to = ["x@gmial.com"]
        result = funnel.classify(tokenize(message))
        # headerless mail has no From at all; it survives L1 (no relay
        # chain, no sender claim) and is judged on content
        assert result.verdict in (Verdict.TRUE_TYPO, Verdict.SPAM,
                                  Verdict.REFLECTION)

    def test_empty_envelope_to_is_smtp_kind(self):
        funnel = FilterFunnel(OUR)
        message = EmailMessage.create("a@b.com", "c@d.com", "s", "b")
        message.envelope_to = []
        assert funnel.candidate_kind(tokenize(message)) == "smtp"

    def test_null_sender_bounce_not_flagged_as_own_domain(self):
        funnel = FilterFunnel(OUR)
        message = EmailMessage.create("MAILER-DAEMON@relay.example",
                                      "x@gmial.com", "bounced", "dsn body")
        message.envelope_from = ""
        message.headers.insert(
            0, ("Received", "from relay.example by gmial.com (1.1.1.1)"))
        result = funnel.classify(tokenize(message))
        assert result.layer != 1
