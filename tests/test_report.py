"""Tests for report rendering and figure-data export."""

import csv
import json

import pytest

from repro.experiment import ExperimentConfig, StudyRunner
from repro.report import export_figure_data, render_study_report


#: full study run behind the rendered report -- skipped in the '-m "not slow"' smoke lane
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def results():
    return StudyRunner(ExperimentConfig(seed=404, spam_scale=2e-5)).run()


class TestRenderReport:
    def test_contains_all_sections(self, results):
        report = render_study_report(results)
        for heading in ("# Email typosquatting study report",
                        "## Yearly projections",
                        "## Filtering funnel attribution",
                        "## Per-domain concentration",
                        "## Sensitive information",
                        "## Attachments",
                        "## SMTP-typo persistence",
                        "## Feature correlations"):
            assert heading in report

    def test_mentions_config(self, results):
        report = render_study_report(results)
        assert "seed `404`" in report

    def test_is_markdown_table_shaped(self, results):
        report = render_study_report(results)
        assert "| total received |" in report
        assert "|---" in report

    def test_deterministic(self, results):
        assert render_study_report(results) == render_study_report(results)


class TestExportFigureData:
    @pytest.fixture(scope="class")
    def exported(self, results, tmp_path_factory):
        directory = tmp_path_factory.mktemp("figures")
        return export_figure_data(results, directory), directory, results

    def test_all_files_written(self, exported):
        written, directory, _ = exported
        assert set(written) == {"fig3_receiver", "fig4_smtp", "fig5",
                                "fig6", "fig7", "manifest"}
        for path in written.values():
            assert path.exists()

    def test_daily_series_rows(self, exported):
        written, _, results = exported
        with written["fig3_receiver"].open() as handle:
            rows = list(csv.reader(handle))
        header, data = rows[0], rows[1:]
        assert header[0] == "day"
        assert len(data) == results.window.total_days

    def test_fig5_shares_monotone(self, exported):
        written, _, _ = exported
        with written["fig5"].open() as handle:
            rows = list(csv.DictReader(handle))
        shares = [float(row["cumulative_share"]) for row in rows]
        assert all(a <= b + 1e-9 for a, b in zip(shares, shares[1:]))

    def test_manifest_lists_files(self, exported):
        written, directory, _ = exported
        manifest = json.loads(written["manifest"].read_text())
        for name in manifest.values():
            assert (directory / name).exists()

    def test_fig7_counts_positive(self, exported):
        written, _, _ = exported
        with written["fig7"].open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        assert all(int(row["count"]) > 0 for row in rows)
