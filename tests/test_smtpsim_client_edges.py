"""Edge-case tests for the SMTP client's delivery logic."""

import pytest

from repro.dnssim import (
    DomainRegistry,
    RecordType,
    Registration,
    Resolver,
    ResourceRecord,
    Zone,
)
from repro.smtpsim import (
    EmailMessage,
    HostBehavior,
    Network,
    SendStatus,
    SmtpClient,
    SmtpServer,
)
from repro.util import SeededRng


def _zone_with_two_mx(domain, primary_ip, backup_ip):
    zone = Zone(origin=domain)
    zone.add(ResourceRecord(domain, RecordType.MX, f"mx1.{domain}", priority=5))
    zone.add(ResourceRecord(domain, RecordType.MX, f"mx2.{domain}", priority=10))
    zone.add(ResourceRecord(f"mx1.{domain}", RecordType.A, primary_ip))
    zone.add(ResourceRecord(f"mx2.{domain}", RecordType.A, backup_ip))
    return zone


class TestMxFallback:
    def _world(self, primary_behavior=None):
        registry = DomainRegistry()
        registry.register(Registration(
            domain="dual.com",
            zone=_zone_with_two_mx("dual.com", "1.0.0.1", "1.0.0.2")))
        network = Network(SeededRng(1))
        received = []
        primary = SmtpServer(hostname="mx1.dual.com", ip="1.0.0.1",
                             on_delivery=received.append)
        backup = SmtpServer(hostname="mx2.dual.com", ip="1.0.0.2",
                            on_delivery=received.append)
        network.attach("1.0.0.1", primary, behavior=primary_behavior)
        network.attach("1.0.0.2", backup)
        client = SmtpClient(Resolver(registry), network)
        return client, received

    def test_primary_mx_used_when_up(self):
        client, received = self._world()
        msg = EmailMessage.create("a@b.org", "x@dual.com", "s", "b")
        assert client.send(msg).status is SendStatus.DELIVERED
        assert received[0].received_by_ip == "1.0.0.1"

    def test_falls_back_to_backup_mx_on_timeout(self):
        client, received = self._world(
            primary_behavior=HostBehavior(timeout_probability=1.0))
        msg = EmailMessage.create("a@b.org", "x@dual.com", "s", "b")
        result = client.send(msg)
        assert result.status is SendStatus.DELIVERED
        assert received[0].received_by_ip == "1.0.0.2"
        assert result.tried_ips == ("1.0.0.1", "1.0.0.2")

    def test_all_hosts_down_reports_last_failure(self):
        registry = DomainRegistry()
        registry.register(Registration(
            domain="dead.com",
            zone=_zone_with_two_mx("dead.com", "2.0.0.1", "2.0.0.2")))
        network = Network(SeededRng(2))
        # nothing attached anywhere: both connects are refused
        client = SmtpClient(Resolver(registry), network)
        msg = EmailMessage.create("a@b.org", "x@dead.com", "s", "b")
        result = client.send(msg)
        assert result.status is SendStatus.NETWORK_ERROR
        assert len(result.tried_ips) == 2


class TestEnvelopeDefaults:
    def test_envelope_from_preferred_over_header(self):
        registry = DomainRegistry()
        from repro.dnssim import collection_zone
        registry.register(Registration(
            domain="sink.com", zone=collection_zone("sink.com", "3.0.0.1")))
        network = Network(SeededRng(3))
        received = []
        network.attach("3.0.0.1", SmtpServer(hostname="sink.com",
                                             ip="3.0.0.1",
                                             on_delivery=received.append))
        client = SmtpClient(Resolver(registry), network)
        msg = EmailMessage.create("display@header.org", "x@sink.com", "s", "b")
        msg.envelope_from = "real@envelope.org"
        client.send(msg)
        assert received[0].envelope_from == "real@envelope.org"

    def test_send_to_ip_other_error(self):
        network = Network(SeededRng(4))
        network.attach("4.0.0.1",
                       SmtpServer(hostname="x.com", ip="4.0.0.1"),
                       behavior=HostBehavior(other_error_probability=1.0))
        registry = DomainRegistry()
        client = SmtpClient(Resolver(registry), network)
        msg = EmailMessage.create("a@b.org", "c@d.com", "s", "b")
        result = client.send_to_ip(msg, "c@d.com", "4.0.0.1")
        assert result.status is SendStatus.OTHER_ERROR

    def test_send_to_ip_refused(self):
        network = Network(SeededRng(5))
        registry = DomainRegistry()
        client = SmtpClient(Resolver(registry), network)
        msg = EmailMessage.create("a@b.org", "c@d.com", "s", "b")
        result = client.send_to_ip(msg, "c@d.com", "9.9.9.9")
        assert result.status is SendStatus.NETWORK_ERROR
