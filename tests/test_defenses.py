"""Tests for the §8 extensions: autocorrect, price policy, username typos."""

import pytest

from repro.defenses import (
    ProviderUserBase,
    Suggestion,
    TypoCorrector,
    break_even_price,
    estimate_misdirected_volume,
    find_collisions,
    policy_sweep,
    simulate_price_policy,
    squattable_usernames,
)
from repro.ecosystem import InternetConfig
from repro.util import SeededRng


class TestTypoCorrector:
    @pytest.fixture(scope="class")
    def corrector(self):
        return TypoCorrector()

    def test_obvious_typo_corrected(self, corrector):
        suggestion = corrector.check_domain("gmial.com")
        assert suggestion is not None
        assert suggestion.suggested == "gmail.com"
        assert suggestion.edit_type == "transposition"

    def test_deletion_typo_corrected(self, corrector):
        suggestion = corrector.check_domain("gmal.com")
        assert suggestion is not None
        assert suggestion.suggested == "gmail.com"

    def test_correct_domain_untouched(self, corrector):
        assert corrector.check_domain("gmail.com") is None
        assert corrector.check_domain("outlook.com") is None

    def test_unrelated_domain_untouched(self, corrector):
        assert corrector.check_domain("example.com") is None
        assert corrector.check_domain("zzzqqq.com") is None

    def test_wrong_tld_untouched(self, corrector):
        # gmail.org is not DL-1 of gmail.com under same-TLD matching
        assert corrector.check_domain("gmail.org") is None

    def test_whitelist_respected(self):
        corrector = TypoCorrector(whitelist=["gmial.com"])
        assert corrector.check_domain("gmial.com") is None

    def test_address_level_api(self, corrector):
        suggestion = corrector.check_address("alice@gmial.com")
        assert suggestion is not None
        assert suggestion.suggested == "alice@gmail.com"
        assert "alice" in suggestion.render()

    def test_address_requires_at(self, corrector):
        with pytest.raises(ValueError):
            corrector.check_address("no-at-sign")

    def test_invisible_typo_scores_higher(self, corrector):
        invisible = corrector.check_domain("outlo0k.com")   # o -> 0
        visible = corrector.check_domain("oxtlook.com")     # u -> x
        assert invisible is not None
        if visible is not None:
            assert invisible.confidence > visible.confidence

    def test_popular_target_scores_higher(self):
        corrector = TypoCorrector(threshold=0.02)
        gmail_typo = corrector.check_domain("gmal.com")
        hushmail_typo = corrector.check_domain("hushmal.com")
        assert gmail_typo is not None and hushmail_typo is not None
        assert gmail_typo.confidence > hushmail_typo.confidence

    def test_suggestions_ranked(self, corrector):
        suggestions = corrector.suggestions("gmal.com")
        assert suggestions
        confidences = [s.confidence for s in suggestions]
        assert confidences == sorted(confidences, reverse=True)

    def test_custom_domain_list(self):
        corrector = TypoCorrector(known_domains=["corp-internal.example"])
        suggestion = corrector.check_domain("corp-interal.example")
        assert suggestion is not None
        assert suggestion.suggested == "corp-internal.example"


class TestPricePolicy:
    @pytest.fixture(scope="class")
    def small_config(self):
        return InternetConfig(num_filler_targets=10)

    def test_baseline_multiplier_is_noop(self, small_config):
        outcome = simulate_price_policy(SeededRng(31), 1.0,
                                        config=small_config)
        assert outcome.squatted_after == outcome.squatted_before
        assert outcome.legitimate_after == outcome.legitimate_before

    def test_price_hike_drives_out_squatters(self, small_config):
        outcome = simulate_price_policy(SeededRng(32), 10.0,
                                        config=small_config)
        assert outcome.squatting_reduction > 0.8
        # collateral damage exists but is far smaller
        assert outcome.collateral_damage < outcome.squatting_reduction

    def test_sweep_monotone(self, small_config):
        outcomes = policy_sweep(SeededRng(33), [1.0, 2.0, 5.0, 10.0],
                                config=small_config)
        reductions = [o.squatting_reduction for o in outcomes]
        assert reductions[0] == pytest.approx(0.0)
        assert reductions[-1] > reductions[1]

    def test_invalid_multiplier(self, small_config):
        with pytest.raises(ValueError):
            simulate_price_policy(SeededRng(34), 0.0, config=small_config)

    def test_break_even(self):
        # 1,000 emails/yr at a cent each: profitable below $10/yr
        assert break_even_price(1_000) == pytest.approx(10.0)
        assert break_even_price(0) == 0.0
        with pytest.raises(ValueError):
            break_even_price(-1)


class TestUsernameTypos:
    @pytest.fixture(scope="class")
    def base(self):
        return ProviderUserBase.generate(SeededRng(77), "bigmail.example",
                                         size=3_000)

    def test_generation(self, base):
        assert len(base) == 3_000
        assert len(base.usernames()) == 3_000  # unique
        assert all(u.yearly_inbound > 0 for u in base.users)

    def test_collisions_exist_and_are_dl1(self, base):
        from repro.core import damerau_levenshtein
        collisions = find_collisions(base)
        assert collisions, "a 3k-user base should contain DL-1 pairs"
        for collision in collisions[:100]:
            assert damerau_levenshtein(collision.intended.username,
                                       collision.neighbour.username) == 1

    def test_collisions_ordered_pairs(self, base):
        collisions = find_collisions(base)
        pairs = {c.pair for c in collisions}
        # symmetry: if (a, b) is a collision so is (b, a)
        for a, b in list(pairs)[:50]:
            assert (b, a) in pairs

    def test_max_pairs_cap(self, base):
        assert len(find_collisions(base, max_pairs=5)) == 5

    def test_misdirected_volume_positive(self, base):
        collisions = find_collisions(base)
        volume = estimate_misdirected_volume(collisions)
        assert volume > 0
        # sanity: tiny compared to total inbound
        total = sum(u.yearly_inbound for u in base.users)
        assert volume < 0.01 * total

    def test_squattable_usernames_free_and_ranked(self, base):
        candidates = squattable_usernames(base, top_n=10)
        assert 0 < len(candidates) <= 10
        taken = base.usernames()
        volumes = [v for _, v in candidates]
        assert volumes == sorted(volumes, reverse=True)
        for name, _ in candidates:
            assert name not in taken

    def test_deterministic(self):
        a = ProviderUserBase.generate(SeededRng(5), "x.example", 100)
        b = ProviderUserBase.generate(SeededRng(5), "x.example", 100)
        assert [u.username for u in a.users] == [u.username for u in b.users]
