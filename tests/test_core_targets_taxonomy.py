"""Tests for the study corpus and the typosquatting taxonomy."""

import pytest

from repro.core import (
    EMAIL_TARGETS,
    DomainClass,
    TypoEmailKind,
    build_study_corpus,
    classify_domain,
    damerau_levenshtein,
)


class TestStudyCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_study_corpus()

    def test_exactly_76_domains(self, corpus):
        assert len(corpus) == 76

    def test_paper_figure5_domains_present(self, corpus):
        names = set(corpus.domain_names())
        for expected in ("ohtlook.com", "outlo0k.com", "gmaiql.com",
                         "zohomil.com", "evrizon.com", "gmai-l.com"):
            assert expected in names

    def test_smtp_purpose_domains_present(self, corpus):
        smtp = {d.domain for d in corpus.by_purpose("smtp")}
        assert "smtpverizon.net" in smtp
        assert "mx4hotmail.com" in smtp

    def test_purposes_partition_corpus(self, corpus):
        total = sum(len(corpus.by_purpose(p))
                    for p in ("receiver", "smtp", "reflection"))
        assert total == 76

    def test_receiver_domains_are_dl1_of_targets(self, corpus):
        for d in corpus.by_purpose("receiver"):
            label = d.domain.rsplit(".", 1)[0]
            target_label = d.target.rsplit(".", 1)[0]
            assert damerau_levenshtein(label, target_label) == 1, d.domain

    def test_receiver_candidates_annotated(self, corpus):
        for d in corpus.by_purpose("receiver"):
            if d.domain.rsplit(".", 1)[1] == d.target.rsplit(".", 1)[1]:
                assert d.candidate is not None, d.domain

    def test_lookup(self, corpus):
        domain = corpus.lookup("ohtlook.com")
        assert domain is not None
        assert domain.target == "outlook.com"
        assert corpus.lookup("nonexistent.com") is None

    def test_by_target(self, corpus):
        outlook_typos = corpus.by_target("outlook.com")
        assert len(outlook_typos) >= 8

    def test_targets_are_known(self, corpus):
        known = {t.name for t in EMAIL_TARGETS}
        assert set(corpus.targets()) <= known

    def test_target_domain_resolution(self, corpus):
        domain = corpus.lookup("gmaiql.com")
        assert domain.target_domain is not None
        assert domain.target_domain.alexa_rank == 1

    def test_duplicate_domains_rejected(self, corpus):
        from repro.core.targets import RegisteredTypoDomain, StudyCorpus
        dup = [RegisteredTypoDomain("x.com", "gmail.com", "receiver")] * 2
        with pytest.raises(ValueError):
            StudyCorpus(domains=dup)


class TestEmailTargets:
    def test_shares_are_probabilities(self):
        for target in EMAIL_TARGETS:
            assert 0 < target.email_share < 1

    def test_total_share_below_one(self):
        assert sum(t.email_share for t in EMAIL_TARGETS) < 1

    def test_gmail_most_popular(self):
        gmail = next(t for t in EMAIL_TARGETS if t.name == "gmail.com")
        assert gmail.email_share == max(t.email_share for t in EMAIL_TARGETS)
        assert gmail.alexa_rank == 1

    def test_categories_cover_paper_strategy(self):
        categories = {t.category for t in EMAIL_TARGETS}
        assert {"provider", "isp", "financial", "disposable", "bulk"} <= categories

    def test_label_property(self):
        assert EMAIL_TARGETS[0].label == "gmail"


class TestTaxonomy:
    def test_unregistered_gtypo(self):
        verdict = classify_domain("gmial.com", "gmail.com",
                                  registered=False, same_owner_as_target=False)
        assert verdict.domain_class is DomainClass.GENERATED_TYPO
        assert not verdict.is_squatting

    def test_defensive_registration_is_legitimate(self):
        verdict = classify_domain("gmial.com", "gmail.com",
                                  registered=True, same_owner_as_target=True)
        assert verdict.domain_class is DomainClass.LEGITIMATE

    def test_squatting(self):
        verdict = classify_domain("gmial.com", "gmail.com",
                                  registered=True, same_owner_as_target=False)
        assert verdict.domain_class is DomainClass.TYPOSQUATTING
        assert verdict.is_squatting

    def test_accidental_neighbour_is_ctypo(self):
        verdict = classify_domain("gmial.com", "gmail.com",
                                  registered=True, same_owner_as_target=False,
                                  looks_intentional=False)
        assert verdict.domain_class is DomainClass.CANDIDATE_TYPO

    def test_unrelated(self):
        verdict = classify_domain("example.com", None,
                                  registered=True, same_owner_as_target=False)
        assert verdict.domain_class is DomainClass.UNRELATED

    def test_email_kind_spam_is_not_typo(self):
        assert not TypoEmailKind.SPAM.is_typo
        for kind in (TypoEmailKind.RECEIVER, TypoEmailKind.REFLECTION,
                     TypoEmailKind.SMTP):
            assert kind.is_typo
