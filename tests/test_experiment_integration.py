"""Integration tests: the full seven-month study simulation end to end.

One shared (module-scoped) run powers many assertions — the run itself is
the expensive part; each test then checks one paper finding against it.
"""

import pytest

from repro.analysis import (
    daily_series,
    extension_histogram,
    figure5_curve,
    malware_lookup,
    per_domain_typo_counts,
    sensitive_heatmap,
    smtp_persistence,
    volume_report,
)
from repro.analysis.volume import descaled_volume_report
from repro.core import TypoEmailKind
from repro.experiment import ExperimentConfig, StudyRunner
from repro.spamfilter import Verdict

#: several full seven-month study runs -- skipped in the '-m "not slow"' smoke lane
pytestmark = pytest.mark.slow


CONFIG = ExperimentConfig(seed=1234, spam_scale=2e-4)


@pytest.fixture(scope="module")
def results():
    return StudyRunner(CONFIG).run()


@pytest.fixture(scope="module")
def report(results):
    smtp_domains = [d.domain for d in results.corpus.by_purpose("smtp")]
    return descaled_volume_report(results.records, results.window,
                                  CONFIG.ham_scale, CONFIG.spam_scale,
                                  smtp_domains)


class TestRunMechanics:
    def test_messages_collected(self, results):
        assert results.delivered_count > 1000
        assert len(results.records) == results.delivered_count

    def test_outage_days_empty(self, results):
        outage_days = results.window.outage_days
        for record in results.records:
            assert record.day not in outage_days

    def test_deterministic(self):
        a = StudyRunner(ExperimentConfig(seed=7, spam_scale=2e-5,
                                         outage_spans=())).run()
        b = StudyRunner(ExperimentConfig(seed=7, spam_scale=2e-5,
                                         outage_spans=())).run()
        assert a.delivered_count == b.delivered_count
        assert [r.verdict for r in a.records] == [r.verdict for r in b.records]

    def test_different_seeds_differ(self):
        a = StudyRunner(ExperimentConfig(seed=1, spam_scale=2e-5,
                                         outage_spans=())).run()
        b = StudyRunner(ExperimentConfig(seed=2, spam_scale=2e-5,
                                         outage_spans=())).run()
        assert a.delivered_count != b.delivered_count

    def test_funnel_accuracy_high(self, results):
        correct, total = results.funnel_accuracy()
        assert total > 0
        assert correct / total > 0.9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(ham_scale=0)
        with pytest.raises(ValueError):
            ExperimentConfig(yearly_true_typos=-1)


class TestHeadlineVolumes:
    def test_total_matches_paper_order(self, report):
        """Paper: 118,894,960 emails/year."""
        assert 5e7 < report.total_received < 2.5e8

    def test_candidate_split(self, report):
        """Paper: 16.2M receiver vs 102.7M SMTP candidates."""
        assert report.smtp_candidates > 3 * report.receiver_candidates

    def test_true_typos_thousands_not_millions(self, report):
        """Paper: ~6,041 genuine receiver/reflection typos per year."""
        assert 2_000 < report.true_receiver_reflection < 20_000

    def test_smtp_typo_band(self, report):
        low, high = report.smtp_typo_range()
        assert 50 < low < 2_000
        assert low <= high < 20_000

    def test_receiver_typos_at_smtp_domains(self, report):
        """Paper: ~700/year at domains designed for SMTP typos."""
        assert 100 < report.receiver_typos_at_smtp_domains < 3_000

    def test_spam_dominates(self, results):
        spam = sum(1 for r in results.records
                   if r.verdict is Verdict.SPAM)
        assert spam > 0.5 * len(results.records)

    def test_survivor_spam_fraction_minor(self, report):
        assert report.survivor_spam_fraction < 0.35


class TestFigure3And4:
    def test_receiver_stream_near_constant(self, results):
        """Figure 3: receiver typos arrive at a near-constant daily rate."""
        series = daily_series(results.records, "receiver", results.window)
        active = series.active_days("real_typos")
        collecting = results.window.effective_days
        assert active > 0.7 * collecting

    def test_smtp_stream_sparser_than_receiver(self, results):
        """Figure 4 vs 3: genuine SMTP traffic is sparse and bursty next
        to the near-constant receiver stream."""
        smtp = daily_series(results.records, "smtp", results.window)
        receiver = daily_series(results.records, "receiver", results.window)
        assert smtp.active_days("real_typos") < \
            receiver.active_days("real_typos")
        assert smtp.total("real_typos") < 0.5 * receiver.total("real_typos")

    def test_spam_dominates_smtp_series(self, results):
        series = daily_series(results.records, "smtp", results.window)
        assert series.total("spam_filtered") > 3 * series.total("real_typos")

    def test_outage_days_are_zero(self, results):
        series = daily_series(results.records, "receiver", results.window)
        for day in results.window.outage_days:
            for category in series.categories.values():
                assert category[day] == 0


class TestFigure5:
    def test_concentration(self, results):
        """Two domains take the majority; a dozen take ~99%."""
        table = figure5_curve(results.records, results.corpus)
        assert table.total > 100
        assert table.domains_for_share(0.5) <= 4
        assert table.domains_for_share(0.99) <= 0.7 * len(table.entries)

    def test_gmail_typo_tops(self, results):
        table = figure5_curve(results.records, results.corpus)
        top_domain, _ = table.entries[0]
        top_target = results.corpus.lookup(top_domain).target
        assert top_target in ("gmail.com", "outlook.com", "hotmail.com")

    def test_per_domain_counts_subset(self, results):
        table = per_domain_typo_counts(results.records,
                                       ["gnail.com", "hushmaul.com"])
        counts = dict(table.entries)
        assert counts["gnail.com"] > counts["hushmaul.com"]


class TestFigure6:
    def test_disposable_provider_credentials(self, results):
        """yopmail typos collect usernames/passwords."""
        heatmap = sensitive_heatmap(results.records)
        disposable_domains = [d.domain for d in results.corpus.domains
                              if d.target_domain is not None
                              and d.target_domain.category == "disposable"]
        credential_hits = sum(
            heatmap.get(domain, label)
            for domain in disposable_domains
            for label in ("username", "password"))
        assert credential_hits > 0

    def test_heatmap_true_typos_only(self, results):
        heatmap = sensitive_heatmap(results.records)
        assert heatmap.counts  # something was found
        # all referenced domains belong to the corpus
        corpus_domains = set(results.corpus.domain_names())
        for domain in heatmap.domains():
            assert domain in corpus_domains


class TestFigure7:
    def test_true_typo_extension_mix(self, results):
        histogram = extension_histogram(results.records,
                                        verdicts=[Verdict.TRUE_TYPO])
        assert histogram
        assert "zip" not in histogram   # archives never survive filtering
        assert histogram.get("txt", 0) >= histogram.get("pptx", 0)

    def test_spam_mix_differs(self, results):
        spam_hist = extension_histogram(results.records,
                                        verdicts=[Verdict.SPAM])
        risky = sum(spam_hist.get(ext, 0)
                    for ext in ("zip", "rar", "exe", "js", "docm", "xlsm"))
        assert risky > 0.2 * sum(spam_hist.values())

    def test_malware_only_in_spam(self, results):
        lookup = malware_lookup(results.records, results.malicious_hashes)
        assert lookup.hashes_known_malicious > 0
        assert lookup.malicious_emails_all_spam


class TestSmtpPersistence:
    def test_paper_shape(self, results):
        stats = smtp_persistence(results.records,
                                 include_frequency_filtered=True)
        assert stats.sender_count > 20
        assert stats.matches_paper_shape()
        assert stats.max_persistence_days <= 209.0


class TestRegressionInputs:
    def test_per_domain_yearly_volumes(self, results):
        volumes = results.per_domain_yearly_true_typos()
        assert len(volumes) > 10
        # calibrated world: total near the configured yearly volume
        total = sum(volumes.values())
        assert 2_000 < total < 20_000

    def test_volume_report_raw_projection(self, results):
        raw = volume_report(results.records, results.window)
        assert raw.total_received > 0
        assert raw.passed_all_filters < raw.total_received
