"""The layered risk engine: verdict parity, memo, batch, persistence.

The serving acceptance contract: every single-lookup verdict is
byte-identical (``canonical_json``) to the brute-force all-targets
path; the batch fan-out returns exactly the serial answers; the verdict
memo is invisible except in the counters; and a persisted index yields
an engine with identical verdicts — while tampered or torn artifacts
refuse to load with the taxonomy's exit-3 errors.
"""

import json

import pytest

from repro.defenses import RiskPolicy, TIER_ACTIONS
from repro.service import (
    LookupWorkload,
    RiskEngine,
    TypoRiskIndex,
)
from repro.service.workload import _EDGE_QUERIES
from repro.util.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
)

SEED = 606
MAX_RANK = 900


@pytest.fixture(scope="module")
def index():
    return TypoRiskIndex(SEED, MAX_RANK)


@pytest.fixture()
def engine(index):
    return RiskEngine(index)


@pytest.fixture(scope="module")
def sample_queries(index):
    workload = LookupWorkload(SEED, MAX_RANK, pool_size=160,
                              world=index.world)
    return workload.pool_entries()


class TestLayers:
    def test_exact_target_is_clean(self, engine, index):
        verdict = engine.lookup("gmail.com")
        assert (verdict.verdict, verdict.source) == ("clean", "exact")
        assert verdict.target_rank == 1
        verdict = engine.lookup(index.world.target_domain(MAX_RANK))
        assert (verdict.verdict, verdict.source) == ("clean", "exact")

    def test_invalid_input_is_a_verdict_not_an_exception(self, engine):
        for query in ("", ".", "com", "@", "user@"):
            verdict = engine.lookup(query)
            assert (verdict.verdict, verdict.action) == ("invalid", "allow")

    def test_unrelated_domain_allows(self, engine):
        verdict = engine.lookup("completely-unrelated-name.org")
        assert (verdict.verdict, verdict.tier) == ("unrelated", "none")

    def test_typo_scores_and_tiers(self, engine):
        verdict = engine.lookup("gmial.com")
        assert verdict.verdict == "typo_risk"
        assert verdict.target == "gmail.com"
        assert verdict.edit_type == "transposition"
        assert verdict.action == TIER_ACTIONS[verdict.tier]
        assert 0.0 < verdict.score <= 1.0
        assert "gmail.com" in verdict.candidates

    def test_operator_lists_outrank_everything(self, index):
        engine = RiskEngine(index, allowlist=["gmial.com"],
                            blocklist=["gmail.com"])
        assert engine.lookup("gmial.com").verdict == "clean"
        blocked = engine.lookup("GMAIL.COM")
        assert (blocked.verdict, blocked.action, blocked.score) == \
            ("typo_risk", "block", 1.0)

    def test_review_band_queues_for_humans(self, index):
        # widen the review band so a mid-score typo lands in it
        policy = RiskPolicy(critical=0.99, high=0.98, medium=0.97,
                            review=0.01)
        engine = RiskEngine(index, policy=policy)
        verdict = engine.lookup("gmial.com")
        assert (verdict.tier, verdict.action) == ("review", "review")
        assert list(engine.review_queue) == [verdict]
        # repeats serve from the memo without re-queueing
        engine.lookup("gmial.com")
        assert len(engine.review_queue) == 1


class TestBruteForceParity:
    def test_every_workload_query_is_byte_identical(self, engine,
                                                    sample_queries):
        for query in sample_queries:
            fast = engine.lookup(query).canonical_json()
            slow = engine.lookup_bruteforce(query).canonical_json()
            assert fast == slow, query

    def test_edge_queries_are_byte_identical(self, engine):
        for query in _EDGE_QUERIES:
            assert engine.lookup(query).canonical_json() == \
                engine.lookup_bruteforce(query).canonical_json()


class TestVerdictMemo:
    def test_hits_and_misses_count(self, engine):
        queries = ["gmail.com", "gmial.com", "nope.org"]
        for query in queries:
            engine.lookup(query)
        cold = engine.cache_stats()
        assert cold["misses"] == 3 and cold["size"] == 3
        for query in queries * 2:
            engine.lookup(query)
        warm = engine.cache_stats()
        assert warm["hits"] == cold["hits"] + 6
        assert warm["misses"] == cold["misses"]

    def test_bounded_memo_stays_within_budget(self, index):
        engine = RiskEngine(index, max_cached_verdicts=4)
        for position in range(9):
            engine.lookup(f"query-{position}.org")
        assert engine.cache_stats()["size"] <= 4

    def test_two_generation_eviction_keeps_hot_entries(self, index):
        """Satellite: no 0%-hit-rate cliff at the capacity boundary.

        A hot query re-served every round is promoted out of the aging
        generation, so a flood of one-off queries can rotate the memo
        without ever evicting it — under the old wholesale ``clear()``
        the first rotation dropped it.
        """
        engine = RiskEngine(index, max_cached_verdicts=8)
        hot = engine.lookup("gmial.com")
        for position in range(64):
            engine.lookup(f"flood-{position}.org")
            assert engine.lookup("gmial.com") is hot

    def test_two_generation_stream_is_byte_identical(self, index,
                                                     sample_queries):
        """Eviction policy is invisible in verdict bytes (purity)."""
        tiny = RiskEngine(index, max_cached_verdicts=4)
        roomy = RiskEngine(index, max_cached_verdicts=1 << 15)
        stream = sample_queries[:60] * 2
        assert [tiny.lookup(q).canonical_json() for q in stream] == \
            [roomy.lookup(q).canonical_json() for q in stream]

    def test_clear_resets_counters_with_the_memo(self, index):
        """Satellite: cache_stats counters share the memo's lifetime."""
        engine = RiskEngine(index)
        for query in ("gmail.com", "gmail.com", "gmial.com"):
            engine.lookup(query)
        assert engine.cache_stats()["hits"] == 1
        engine.clear_verdict_memo()
        assert engine.cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_memoized_verdict_is_the_same_object(self, engine):
        first = engine.lookup("gmial.com")
        assert engine.lookup("gmial.com") is first


class TestBatchLookup:
    def test_serial_batch_equals_lookups(self, engine, sample_queries):
        queries = sample_queries[:80]
        batch = engine.batch_lookup(queries)
        assert [v.canonical_json() for v in batch] == \
            [engine.lookup(q).canonical_json() for q in queries]

    def test_parallel_batch_equals_serial(self, index, sample_queries):
        queries = sample_queries[:60]
        serial = RiskEngine(index).batch_lookup(queries)
        fanned = RiskEngine(index).batch_lookup(queries, jobs=2)
        assert [v.canonical_json() for v in fanned] == \
            [v.canonical_json() for v in serial]

    def test_parallel_batch_warms_the_memo(self, index, sample_queries):
        engine = RiskEngine(index)
        queries = sample_queries[:40]
        engine.batch_lookup(queries, jobs=2)
        before = engine.cache_stats()
        engine.lookup(queries[0])
        after = engine.cache_stats()
        assert after["hits"] == before["hits"] + 1

    def test_parallel_batch_review_queue_equals_serial(self, index,
                                                       sample_queries):
        """Satellite: the human queue, not just the verdict stream.

        The fan-out folds worker verdicts through the resident memo in
        stream order, so review-band verdicts must enqueue exactly as
        the serial path would — same members, same order, including
        repeat suppression for memo hits.
        """
        policy = RiskPolicy(critical=0.99, high=0.98, medium=0.97,
                            review=0.01)
        # slice into the gtypo pool range (the first pool is all-clean
        # exact targets, which never hit the review band) + repeats
        queries = (sample_queries[150:210] + sample_queries[150:180])
        serial = RiskEngine(index, policy=policy)
        serial.batch_lookup(queries)
        fanned = RiskEngine(index, policy=policy)
        fanned.batch_lookup(queries, jobs=2)
        assert [v.canonical_json() for v in fanned.review_queue] == \
            [v.canonical_json() for v in serial.review_queue]
        assert len(serial.review_queue) > 0


class TestPersistence:
    def test_round_trip_preserves_every_verdict(self, tmp_path, engine,
                                                sample_queries):
        path = tmp_path / "risk.index"
        engine.index.save(path)
        loaded = RiskEngine(TypoRiskIndex.load(path))
        for query in sample_queries[:80]:
            assert loaded.lookup(query).canonical_json() == \
                engine.lookup(query).canonical_json()

    def test_truncated_artifact_is_corrupt(self, tmp_path, index):
        path = tmp_path / "risk.index"
        index.save(path)
        path.write_text(path.read_text()[:120], encoding="utf-8")
        with pytest.raises(CheckpointCorruptError):
            TypoRiskIndex.load(path)

    def test_tampered_payload_is_corrupt(self, tmp_path, index):
        path = tmp_path / "risk.index"
        index.save(path)
        data = json.loads(path.read_text())
        data["max_rank"] = MAX_RANK + 1
        path.write_text(json.dumps(data, sort_keys=True))
        with pytest.raises(CheckpointCorruptError):
            TypoRiskIndex.load(path)

    def test_recomputed_digest_cannot_forge_buckets(self, tmp_path, index):
        """Re-digesting after an edit still fails: buckets re-derive."""
        from repro.service.index import _payload_digest

        path = tmp_path / "risk.index"
        index.save(path)
        data = json.loads(path.read_text())
        del data["digest"]
        first_suffix = sorted(data["head_buckets"])[0]
        first_variant = sorted(data["head_buckets"][first_suffix])[0]
        data["head_buckets"][first_suffix][first_variant] = [MAX_RANK]
        data["digest"] = _payload_digest(data)
        path.write_text(json.dumps(data, sort_keys=True))
        with pytest.raises(CheckpointCorruptError):
            TypoRiskIndex.load(path)

    def test_wrong_format_is_a_mismatch(self, tmp_path):
        path = tmp_path / "risk.index"
        path.write_text(json.dumps({"format": "not-an-index@9"}))
        with pytest.raises(CheckpointMismatchError):
            TypoRiskIndex.load(path)


class TestPolicyValidation:
    def test_thresholds_must_descend(self):
        with pytest.raises(ValueError):
            RiskPolicy(critical=0.5, high=0.6, medium=0.3, review=0.1)

    def test_thresholds_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            RiskPolicy(critical=1.5, high=0.6, medium=0.3, review=0.1)

    def test_index_rejects_nonpositive_rank(self):
        with pytest.raises(ConfigError):
            TypoRiskIndex(SEED, -3)
