"""The paper-scale lazy world model and sharded streaming scan.

Pins the properties the sharded pipeline is built on: the vectorised
registration grid reproduces the typo generator slot for slot, the lazy
per-rank states agree with the eagerly materialized Internet, shards
merge to byte-identical digests regardless of the partition, and the
streaming path retains nothing per-result.
"""

import tracemalloc

import pytest

from repro.core.typogen import apply_edit, enumerate_edit_ops, split_domain
from repro.ecosystem import (
    InternetConfig,
    ScanAggregates,
    WorldModel,
    build_internet,
)
from repro.ecosystem.internet import _typo_quality
from repro.ecosystem.world import (
    _generated_count,
    _grid_draw,
    _grid_masks,
    _rank_uniforms,
    _RankKeyedStream,
    _registration_grid,
)
from repro.experiment import (
    partition_ranks,
    run_scan_shard,
    run_sharded_scan,
    ScanShardTask,
)
from repro.util.rand import SeededRng

GRID_LABELS = ["gmail", "hotmail", "aa", "abba", "zz-top", "a-b-c", "q",
               "bra5", "10minutemail", "mmm"]


class TestRegistrationGrid:
    @pytest.mark.parametrize("label", GRID_LABELS)
    def test_valid_mask_matches_enumerator(self, label):
        """Decoding every valid slot reproduces enumerate_edit_ops exactly."""
        valid, _, sections = _grid_masks(label)
        grid = _registration_grid(label, seed=1, rank=1,
                                  config=InternetConfig())
        decoded = [grid.decode(flat) for flat in range(valid.shape[0])
                   if valid[flat]]
        assert decoded == list(enumerate_edit_ops(label))
        assert grid.generated == len(enumerate_edit_ops(label))
        assert sum(sections) == valid.shape[0]

    @pytest.mark.parametrize("label", ["gmail", "hotmail", "zz-top", "bra5"])
    def test_quality_matches_scalar_law(self, label):
        """The vectorised quality equals internet._typo_quality per slot."""
        from repro.core.distances import (
            fat_finger_for_edit,
            visual_distance_for_edit,
        )
        from repro.core.typogen import TypoCandidate

        valid, quality, _ = _grid_masks(label)
        grid = _registration_grid(label, seed=1, rank=1,
                                  config=InternetConfig())
        for flat in range(valid.shape[0]):
            if not valid[flat]:
                continue
            op, index, char = grid.decode(flat)
            candidate = TypoCandidate(
                domain=f"{apply_edit(label, op, index, char)}.com",
                target=f"{label}.com", edit_type=op, edit_index=index,
                fat_finger=fat_finger_for_edit(label, op, index, char),
                visual=visual_distance_for_edit(label, op, index, char))
            assert quality[flat] == pytest.approx(
                _typo_quality(candidate), abs=1e-12)

    def test_registration_draw_is_rank_keyed(self):
        a = _registration_grid("gmail", seed=5, rank=1,
                               config=InternetConfig())
        b = _registration_grid("gmail", seed=5, rank=1,
                               config=InternetConfig())
        c = _registration_grid("gmail", seed=5, rank=9,
                               config=InternetConfig())
        assert list(a.registered) == list(b.registered)
        assert list(a.registered) != list(c.registered)


class TestGridFastPaths:
    """The closed-form count and the sparse draw agree with the dense law."""

    COUNT_LABELS = GRID_LABELS + ["aabbcc", "x9-9x", "ooo-ooo", "ab"]

    @pytest.mark.parametrize("label", COUNT_LABELS)
    def test_generated_count_closed_form(self, label):
        valid, _, _ = _grid_masks(label)
        assert _generated_count(label) == len(enumerate_edit_ops(label))
        assert _generated_count(label) == int(valid.sum())

    @pytest.mark.parametrize("rank", [200, 1_000, 17_500, 90_000])
    @pytest.mark.parametrize("label", ["gmail", "zz-top", "10minutemail"])
    def test_sparse_draw_matches_dense_law(self, label, rank):
        """Above the dense cutoff the preselect+confirm path must still
        pick exactly the slots the full-mask law would."""
        import numpy as np

        config = InternetConfig()
        reg_p = (config.peak_registration_probability
                 / (rank ** config.rank_decay))
        valid, quality, _ = _grid_masks(label)
        uniforms = _rank_uniforms(606, "reg", rank, valid.shape[0])
        probability = np.minimum(0.95, reg_p * quality)
        expected = np.nonzero(valid & (uniforms < probability))[0].tolist()
        generated, registered = _grid_draw(label, reg_p, uniforms)
        assert registered == expected
        assert generated == len(enumerate_edit_ops(label))

    def test_repositioned_stream_matches_fresh_generator(self):
        """Reused-bitgen seeking is byte-identical to fresh construction,
        including revisits and out-of-order ranks."""
        stream = _RankKeyedStream(42, "wild")
        for rank in (5, 1, 100_000, 5, 77):
            got = stream.uniforms(rank, 131)
            want = _rank_uniforms(42, "wild", rank, 131)
            assert got.tolist() == want.tolist()

    def test_purposes_are_independent_streams(self):
        a = _rank_uniforms(42, "reg", 3, 16)
        b = _rank_uniforms(42, "wild", 3, 16)
        assert a.tolist() != b.tolist()


class TestPartitionRanks:
    def test_covers_every_rank_exactly_once(self):
        for max_rank in (1, 2, 7, 100, 101):
            for shards in (1, 2, 3, 8, 200):
                ranges = partition_ranks(max_rank, shards)
                covered = [rank for start, stop in ranges
                           for rank in range(start, stop)]
                assert covered == list(range(1, max_rank + 1)), (
                    max_rank, shards)

    def test_ranges_are_contiguous_and_balanced(self):
        ranges = partition_ranks(103, 4)
        assert ranges[0][0] == 1 and ranges[-1][1] == 104
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            partition_ranks(0, 2)
        with pytest.raises(ValueError):
            partition_ranks(10, 0)


class TestShardDeterminism:
    @pytest.mark.parametrize("seed", [7, 99])
    def test_serial_and_sharded_digests_identical(self, seed):
        serial = run_sharded_scan(seed, 300, jobs=1)
        two = run_sharded_scan(seed, 300, jobs=2)
        four = run_sharded_scan(seed, 300, jobs=4)
        assert serial.digest() == two.digest() == four.digest()
        assert serial.registered_count > 0

    def test_manual_shard_merge_matches_whole_scan(self):
        """Any split of the rank space merges to the whole scan's counts."""
        seed, max_rank = 13, 240
        whole = WorldModel(seed).scan_ranks(1, max_rank + 1,
                                            max_rank=max_rank)
        merged = ScanAggregates()
        for start, stop in ((1, 60), (60, 170), (170, max_rank + 1)):
            shard = run_scan_shard(ScanShardTask(
                seed=seed, start_rank=start, stop_rank=stop,
                max_rank=max_rank))
            merged.merge(shard.aggregates)
        assert merged.digest() == whole.digest()

    def test_different_seeds_differ(self):
        assert (run_sharded_scan(7, 120, jobs=1).digest()
                != run_sharded_scan(8, 120, jobs=1).digest())

    def test_exclusion_removes_domains(self):
        base = run_sharded_scan(7, 60, jobs=1)
        world = WorldModel(7)
        victim = world.rank_states(1)[0].domain
        excluded = run_sharded_scan(7, 60, jobs=1, exclude=(victim,))
        assert excluded.registered_count == base.registered_count - 1


class TestLazyMatchesMaterialized:
    def test_states_agree_with_built_internet(self):
        """The lazy law and the eager builder produce the same ground truth."""
        config = InternetConfig(num_filler_targets=20)
        seed = 555
        internet = build_internet(SeededRng(seed), config)
        world = WorldModel(seed, config)
        num_targets = len(internet.alexa)

        target_set = world.target_names(num_targets)
        states = {}
        for rank in range(1, num_targets + 1):
            for state in world.rank_states(rank):
                # first occurrence wins, matching the registry's behaviour
                if state.domain in target_set or state.domain in states:
                    continue
                states[state.domain] = state

        wild = {w.domain: w for w in internet.wild_domains}
        assert set(states) == set(wild)
        for domain, state in states.items():
            truth = wild[domain]
            assert truth.target == state.target
            assert truth.owner_id == state.owner_id
            assert truth.owner_type == state.owner_type
            assert truth.support == state.support
            assert truth.mx_domain == state.mx_domain
            assert truth.nameserver == state.nameserver
            assert truth.private_whois == state.private_whois
            assert truth.candidate == state.candidate()
            assert (truth.ip is not None) == state.has_address

    def test_alexa_list_matches_builder(self):
        config = InternetConfig(num_filler_targets=15)
        internet = build_internet(SeededRng(9), config)
        world = WorldModel(9, config)
        assert world.alexa_entries(len(internet.alexa)) == internet.alexa


class TestStreamingMemory:
    def test_retention_is_opt_in(self):
        world = WorldModel(3)
        sink = []
        world.scan_ranks(1, 40, max_rank=39, retain=sink)
        assert sink and all(len(pair) == 2 for pair in sink)
        aggregates = world.scan_ranks(1, 40, max_rank=39)
        assert aggregates.registered_count == len(sink)

    def test_streaming_scan_peak_memory_is_flat(self):
        """The streaming path's peak stays far below one-object-per-ctypo."""
        world = WorldModel(11)
        world.scan_ranks(1, 5, max_rank=1000)  # warm caches off the ledger
        tracemalloc.start()
        aggregates = world.scan_ranks(5, 1001, max_rank=1000)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert aggregates.registered_count > 30_000
        # retained ScanResults would need hundreds of bytes per ctypo;
        # the streaming fold holds counters plus one rank's grid only
        assert peak < 8 * 1024 * 1024

    @pytest.mark.slow
    def test_paper_scale_scan_streams_100k_ranks(self):
        """100k ranks stream through bounded memory (the ISSUE's bar)."""
        world = WorldModel(2016)
        world.scan_ranks(1, 5, max_rank=100_000)
        tracemalloc.start()
        aggregates = world.scan_ranks(5, 100_001, max_rank=100_000)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert aggregates.registered_count > 200_000
        assert peak < 64 * 1024 * 1024
