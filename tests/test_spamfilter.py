"""Tests for the SpamAssassin-style scorer and the five-layer funnel."""

import pytest

from repro.pipeline import tokenize
from repro.smtpsim import Attachment, EmailMessage
from repro.spamfilter import (
    FilterFunnel,
    FunnelConfig,
    SpamAssassinScorer,
    Verdict,
)

OUR_DOMAINS = ["gmial.com", "ohtlook.com", "smtpverizon.net"]


def _email(from_addr="alice@real.org", to_addr="bob@gmial.com",
           subject="lunch", body="see you at noon", relay="gmial.com",
           attachments=None, envelope_to=None, extra_headers=None):
    msg = EmailMessage.create(from_addr, to_addr, subject, body,
                              attachments=attachments,
                              extra_headers=extra_headers)
    if envelope_to is not None:
        msg.envelope_to = envelope_to
    if relay is not None:
        msg.headers.insert(0, ("Received", f"from sender by {relay} (1.2.3.4)"))
    return tokenize(msg)


def _spam_email(**kwargs):
    defaults = dict(
        from_addr="win4237@lucky.top",
        subject="YOU HAVE WON THE LOTTERY!!!",
        body=("Dear friend, you have won $1,000,000. claim your prize. "
              "act now, risk free! visit http://a.top http://b.top http://c.top"),
    )
    defaults.update(kwargs)
    return _email(**defaults)


class TestSpamAssassinScorer:
    def test_obvious_spam_flagged(self):
        assert SpamAssassinScorer().is_spam(_spam_email())

    def test_plain_ham_passes(self):
        assert not SpamAssassinScorer().is_spam(_email())

    def test_single_weak_signal_not_enough(self):
        email = _email(body="free shipping on your order, click here")
        assert not SpamAssassinScorer().is_spam(email)

    def test_score_lists_fired_rules(self):
        score = SpamAssassinScorer().score(_spam_email())
        assert "SPAM_PHRASE" in score.fired_rules
        assert score.total >= 5.0

    def test_threshold_configurable(self):
        lenient = SpamAssassinScorer(threshold=100.0)
        assert not lenient.is_spam(_spam_email())

    def test_executable_attachment_scores(self):
        email = _email(attachments=[Attachment("run.exe", b"MZ")])
        score = SpamAssassinScorer().score(email)
        assert "EXE_ATTACH" in score.fired_rules

    def test_phishing_language(self):
        email = _email(body="please verify your account and confirm your password "
                            "due to unusual activity at http://x.top")
        score = SpamAssassinScorer().score(email)
        assert "PHISH_PHRASE" in score.fired_rules

    @pytest.mark.perfsmoke
    def test_two_scorers_interleaving_stay_independent(self):
        # regression: the last-email memo used to be module-level, so two
        # scorers alternating over the same emails could serve each other
        # stale results; the memo is per-instance now
        strict = SpamAssassinScorer(threshold=1.0)
        default = SpamAssassinScorer()
        spam, ham = _spam_email(), _email()
        for _ in range(3):
            for email in (spam, ham):
                a = strict.score(email)
                b = default.score(email)
                assert a.total == b.total
                assert a.fired_rules == b.fired_rules
                assert a.threshold == 1.0
                assert b.threshold == 5.0
        assert strict.is_spam(_email(body="free shipping, click here"))
        assert not default.is_spam(_email(body="free shipping, click here"))

    def test_memo_invalidated_when_threshold_changes(self):
        scorer = SpamAssassinScorer()
        email = _spam_email()
        first = scorer.score(email)
        scorer.threshold = first.total + 1
        second = scorer.score(email)
        assert second.threshold == first.total + 1
        assert not second.is_spam


class TestFunnelLayer1:
    def _funnel(self):
        return FilterFunnel(OUR_DOMAINS)

    def test_wrong_relay_is_spam(self):
        result = self._funnel().classify(_email(relay="attacker.com"))
        assert result.verdict is Verdict.SPAM
        assert result.layer == 1

    def test_sender_from_our_domain_is_spam(self):
        result = self._funnel().classify(_email(from_addr="fake@gmial.com"))
        assert result.verdict is Verdict.SPAM
        assert result.layer == 1

    def test_receiver_candidate_with_foreign_to_header_is_spam(self):
        email = _email(to_addr="someone@other.org",
                       envelope_to=["bob@gmial.com"])
        result = self._funnel().classify(email)
        assert result.verdict is Verdict.SPAM
        assert result.layer == 1

    def test_honest_typo_passes_layer1(self):
        result = self._funnel().classify(_email())
        assert result.verdict is Verdict.TRUE_TYPO

    def test_smtp_candidate_exempt_from_to_check(self):
        # SMTP typo: recipient is a third party, relay is our server
        email = _email(to_addr="friend@elsewhere.org",
                       envelope_to=["friend@elsewhere.org"],
                       relay="smtpverizon.net")
        result = self._funnel().classify(email)
        assert result.kind == "smtp"
        assert result.verdict is Verdict.TRUE_TYPO


class TestFunnelLayer2:
    def test_spamassassin_spam(self):
        result = FilterFunnel(OUR_DOMAINS).classify(_spam_email())
        assert result.verdict is Verdict.SPAM
        assert result.layer == 2

    def test_zip_attachment_is_spam(self):
        email = _email(attachments=[Attachment("docs.zip", b"PK")])
        result = FilterFunnel(OUR_DOMAINS).classify(email)
        assert result.verdict is Verdict.SPAM
        assert "ZIP/RAR" in result.reason

    def test_rar_attachment_is_spam(self):
        email = _email(attachments=[Attachment("docs.rar", b"Rar!")])
        assert FilterFunnel(OUR_DOMAINS).classify(email).layer == 2


class TestFunnelLayer3:
    def test_repeat_spammer_caught_across_domains(self):
        funnel = FilterFunnel(OUR_DOMAINS)
        funnel.classify(_spam_email(from_addr="spammer@bad.org"))
        # second email from the same sender is clean-looking, different domain
        clean = _email(from_addr="spammer@bad.org", to_addr="x@ohtlook.com",
                       relay="ohtlook.com")
        result = funnel.classify(clean)
        assert result.verdict is Verdict.SPAM
        assert result.layer == 3

    def test_bag_of_words_match(self):
        body = ("quarterly synergy report attached kindly review the numbers "
                "before the committee meeting on thursday regards accounting "
                "department floor nine building two today")  # >20 distinct words
        funnel = FilterFunnel(OUR_DOMAINS)
        funnel.collaborative.record_spam("other@bad.org", body)
        result = funnel.classify(_email(body=body))
        assert result.verdict is Verdict.SPAM
        assert result.layer == 3

    def test_short_bodies_not_bow_matched(self):
        funnel = FilterFunnel(OUR_DOMAINS)
        funnel.collaborative.record_spam("other@bad.org", "short body")
        result = funnel.classify(_email(body="short body"))
        assert result.verdict is Verdict.TRUE_TYPO


class TestFunnelLayer4:
    def test_list_unsubscribe_header(self):
        email = _email(extra_headers={"List-Unsubscribe": "<mailto:u@s.com>"})
        result = FilterFunnel(OUR_DOMAINS).classify(email)
        assert result.verdict is Verdict.REFLECTION
        assert result.layer == 4

    def test_bounce_sender(self):
        email = _email(from_addr="bounce-123@mailer.shop.com")
        result = FilterFunnel(OUR_DOMAINS).classify(email)
        assert result.verdict is Verdict.REFLECTION

    def test_mismatched_reply_to(self):
        email = _email(extra_headers={"Reply-To": "other@elsewhere.com"})
        result = FilterFunnel(OUR_DOMAINS).classify(email)
        assert result.verdict is Verdict.REFLECTION

    def test_system_sender(self):
        email = _email(from_addr="postmaster@corp.org")
        result = FilterFunnel(OUR_DOMAINS).classify(email)
        assert result.verdict is Verdict.REFLECTION

    def test_unsubscribe_body_phrase(self):
        email = _email(body="monthly deals inside. to unsubscribe reply stop")
        result = FilterFunnel(OUR_DOMAINS).classify(email)
        assert result.verdict is Verdict.REFLECTION

    def test_personal_mail_not_reflection(self):
        email = _email(body="hey bob, dinner friday? - alice")
        result = FilterFunnel(OUR_DOMAINS).classify(email)
        assert result.verdict is Verdict.TRUE_TYPO


class TestFunnelLayer5:
    def test_recipient_frequency(self):
        config = FunnelConfig(recipient_frequency_threshold=3)
        funnel = FilterFunnel(OUR_DOMAINS, config=config)
        results = [funnel.classify(_email(
            from_addr=f"user{i}@site{i}.org",
            body=f"unique message {i} about project {i}"))
            for i in range(5)]
        assert results[-1].verdict is Verdict.FREQUENCY_FILTERED
        assert results[-1].layer == 5

    def test_sender_frequency(self):
        config = FunnelConfig(sender_frequency_threshold=3,
                              recipient_frequency_threshold=1000,
                              content_frequency_threshold=1000)
        funnel = FilterFunnel(OUR_DOMAINS, config=config)
        results = [funnel.classify(_email(
            to_addr=f"user{i}@gmial.com", envelope_to=[f"user{i}@gmial.com"],
            body=f"note number {i} with fresh words {i}"))
            for i in range(5)]
        assert results[-1].verdict is Verdict.FREQUENCY_FILTERED

    def test_content_frequency(self):
        config = FunnelConfig(content_frequency_threshold=3,
                              recipient_frequency_threshold=1000,
                              sender_frequency_threshold=1000)
        funnel = FilterFunnel(OUR_DOMAINS, config=config)
        results = [funnel.classify(_email(
            from_addr=f"user{i}@site{i}.org",
            to_addr=f"user{i}@gmial.com", envelope_to=[f"user{i}@gmial.com"],
            body="identical chain letter body"))
            for i in range(5)]
        assert results[-1].verdict is Verdict.FREQUENCY_FILTERED

    def test_smtp_bursts_frequency_filtered_not_spam(self):
        """A chatty SMTP-typo victim crosses the sender threshold; the
        paper treats such emails as an ambiguous band (415-5,970/yr), not
        as spam — so the verdict must be FREQUENCY_FILTERED."""
        config = FunnelConfig(sender_frequency_threshold=3)
        funnel = FilterFunnel(OUR_DOMAINS, config=config)
        results = [funnel.classify(_email(
            from_addr="victim@verizon.net",
            to_addr=f"friend{i}@elsewhere.org",
            envelope_to=[f"friend{i}@elsewhere.org"],
            relay="smtpverizon.net",
            body=f"personal note {i} unique text"))
            for i in range(6)]
        assert all(r.kind == "smtp" for r in results)
        assert results[0].verdict is Verdict.TRUE_TYPO
        assert results[-1].verdict is Verdict.FREQUENCY_FILTERED
        assert all(r.verdict is not Verdict.SPAM for r in results)


class TestBatchClassification:
    def test_two_pass_filters_early_emails(self):
        """An address crossing the threshold late still filters early mail."""
        config = FunnelConfig(recipient_frequency_threshold=4)
        emails = [_email(from_addr=f"user{i}@site{i}.org",
                         body=f"different body {i} each time")
                  for i in range(6)]
        funnel = FilterFunnel(OUR_DOMAINS, config=config)
        results = funnel.classify_corpus(emails)
        assert all(r.verdict is Verdict.FREQUENCY_FILTERED for r in results)

    def test_streaming_lets_early_emails_through(self):
        config = FunnelConfig(recipient_frequency_threshold=4)
        funnel = FilterFunnel(OUR_DOMAINS, config=config)
        results = [funnel.classify(_email(
            from_addr=f"user{i}@site{i}.org",
            body=f"different body {i} each time")) for i in range(6)]
        assert results[0].verdict is Verdict.TRUE_TYPO
        assert results[-1].verdict is Verdict.FREQUENCY_FILTERED

    def test_corpus_mixed(self):
        emails = [_spam_email(), _email(),
                  _email(extra_headers={"List-Unsubscribe": "<mailto:x@y.z>"})]
        results = FilterFunnel(OUR_DOMAINS).classify_corpus(emails)
        verdicts = [r.verdict for r in results]
        assert verdicts == [Verdict.SPAM, Verdict.TRUE_TYPO, Verdict.REFLECTION]

    def test_figure_categories(self):
        assert Verdict.SPAM.figure_category == "spam_filtered"
        assert Verdict.TRUE_TYPO.figure_category == "real_typos"
        assert Verdict.REFLECTION.figure_category == \
            "reflection_and_frequency_filtered"
        assert Verdict.FREQUENCY_FILTERED.figure_category == \
            "reflection_and_frequency_filtered"
