"""Tests for repro.util.simtime — simulated clock and collection windows."""

import datetime

import pytest

from repro.util import CollectionWindow, SimClock, paper_window
from repro.util.simtime import (
    DAYS_PER_YEAR,
    PAPER_COLLECTION_END,
    PAPER_COLLECTION_START,
    SECONDS_PER_DAY,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(100.5)
        assert clock.now == 100.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_monotonic(self):
        clock = SimClock()
        clock.advance_to(500)
        with pytest.raises(ValueError):
            clock.advance_to(400)

    def test_day_index(self):
        clock = SimClock()
        clock.advance(3 * SECONDS_PER_DAY + 5)
        assert clock.day == 3

    def test_datetime_mapping(self):
        clock = SimClock()
        clock.advance(SECONDS_PER_DAY)
        assert clock.now_datetime == PAPER_COLLECTION_START + datetime.timedelta(days=1)

    def test_timestamp_to_datetime(self):
        clock = SimClock()
        dt = clock.timestamp_to_datetime(2 * SECONDS_PER_DAY)
        assert dt == PAPER_COLLECTION_START + datetime.timedelta(days=2)


class TestCollectionWindow:
    def test_effective_days(self):
        window = CollectionWindow(total_days=100, outage_days={1, 2, 3})
        assert window.effective_days == 97

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            CollectionWindow(total_days=0)

    def test_rejects_outage_outside_window(self):
        with pytest.raises(ValueError):
            CollectionWindow(total_days=10, outage_days={10})

    def test_is_collecting(self):
        window = CollectionWindow(total_days=10, outage_days={5})
        assert window.is_collecting(4)
        assert not window.is_collecting(5)
        assert not window.is_collecting(10)
        assert not window.is_collecting(-1)

    def test_collecting_days_excludes_outages(self):
        window = CollectionWindow(total_days=5, outage_days={2})
        assert list(window.collecting_days()) == [0, 1, 3, 4]

    def test_yearly_projection_paper_formula(self):
        # y = x * 365 / d
        window = CollectionWindow(total_days=200, outage_days=set())
        assert window.yearly_projection(200) == pytest.approx(DAYS_PER_YEAR)

    def test_yearly_projection_uses_effective_days(self):
        window = CollectionWindow(total_days=100, outage_days=set(range(50)))
        assert window.yearly_projection(50) == pytest.approx(365.0)

    def test_yearly_projection_empty_window_rejected(self):
        window = CollectionWindow(total_days=2, outage_days={0, 1})
        with pytest.raises(ValueError):
            window.yearly_projection(10)


class TestPaperWindow:
    def test_total_span_matches_paper_dates(self):
        window = paper_window()
        assert window.total_days == (PAPER_COLLECTION_END - PAPER_COLLECTION_START).days

    def test_default_outage_is_two_months(self):
        window = paper_window()
        assert len(window.outage_days) == 60

    def test_custom_outages(self):
        window = paper_window(outage_spans=((0, 5), (10, 12)))
        assert window.outage_days == {0, 1, 2, 3, 4, 10, 11}
