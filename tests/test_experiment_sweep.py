"""Tests for the multi-seed robustness sweep."""

import pytest

from repro.experiment import ExperimentConfig, run_seed_sweep

#: multi-seed sweep = several full study runs -- skipped in the '-m "not slow"' smoke lane
pytestmark = pytest.mark.slow


FAST = ExperimentConfig(spam_scale=2e-5, outage_spans=())


@pytest.fixture(scope="module")
def summary():
    return run_seed_sweep([1, 2, 3], base_config=FAST)


class TestSweep:
    def test_tracks_all_headlines(self, summary):
        assert {"total_received", "passed_all_filters",
                "smtp_band_low"} <= set(summary.headlines)
        for distribution in summary.headlines.values():
            assert len(distribution.values) == 3

    def test_ci_brackets_mean(self, summary):
        for distribution in summary.headlines.values():
            assert distribution.ci_low <= distribution.mean \
                <= distribution.ci_high

    def test_genuine_typo_headline_stable(self, summary):
        """The calibrated quantity must not swing wildly with the seed."""
        assert summary.stable("true_receiver_reflection", tolerance=0.5)

    def test_funnel_accuracy_consistent(self, summary):
        assert len(summary.funnel_accuracies) == 3
        assert min(summary.funnel_accuracies) > 0.85

    def test_seeds_actually_vary(self, summary):
        values = summary.headlines["total_received"].values
        assert len(set(values)) > 1

    def test_requires_two_seeds(self):
        with pytest.raises(ValueError):
            run_seed_sweep([1], base_config=FAST)
