"""Crash-safe index hot-swap: two-phase generation publish.

``RiskEngine.hot_swap`` builds the evolved index generation aside,
persists it atomically (when an artifact path is resident), and only
then publishes it with a single attribute assignment.  A SIGKILL at any
point therefore leaves a doctor-valid ``repro-risk-index@1`` artifact
on disk — either generation — and the recovery protocol (load, re-apply
the delta, serve) lands byte-identical to the run that never crashed.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.doctor import diagnose_file
from repro.ecosystem.delta import ChurnSchedule
from repro.service import LookupWorkload, RiskEngine, TypoRiskIndex

pytestmark = pytest.mark.chaos

SEED = 606
MAX_RANK = 400
DAY = 30

SCHEDULE = ChurnSchedule(seed=SEED, max_rank=MAX_RANK, daily_rate=0.02)


@pytest.fixture(scope="module")
def probes():
    index = TypoRiskIndex(SEED, MAX_RANK)
    workload = LookupWorkload(SEED, MAX_RANK, pool_size=96,
                              world=index.world)
    return workload.pool_entries()


class TestGenerationBuild:
    def test_evolved_generation_leaves_the_old_index_untouched(self):
        old = TypoRiskIndex(SEED, MAX_RANK)
        before = old.canonical_dict()
        new, changed = old.evolved_generation(SCHEDULE, DAY)
        assert changed > 0
        assert old.canonical_dict() == before
        assert old.epoch == 0 and old.day == 0
        assert (new.epoch, new.day) == (old.epoch + 1, DAY)

    def test_new_generation_matches_a_fresh_build(self):
        new, _ = TypoRiskIndex(SEED, MAX_RANK).evolved_generation(
            SCHEDULE, DAY)
        fresh = TypoRiskIndex(SEED, MAX_RANK,
                              churn=SCHEDULE.generations(DAY), day=DAY)
        assert new.canonical_dict() == fresh.canonical_dict()

    def test_unchurned_label_caches_carry_over(self):
        old = TypoRiskIndex(SEED, MAX_RANK)
        churned = set(SCHEDULE.generations(DAY))
        kept = [rank for rank in range(1, MAX_RANK + 1)
                if rank not in churned][:4]
        warm = {rank: old.registered_typo_labels(rank) for rank in kept}
        for rank in sorted(churned)[:4]:
            old.registered_typo_labels(rank)
        new, _ = old.evolved_generation(SCHEDULE, DAY)
        for rank in kept:
            assert new._registered_labels[rank] is warm[rank]
        for rank in sorted(churned)[:4]:
            assert rank not in new._registered_labels


class TestHotSwap:
    def test_swap_serves_like_a_fresh_engine(self, probes):
        engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        for query in probes[:20]:
            engine.lookup(query)
        assert engine.hot_swap(SCHEDULE, DAY) > 0
        fresh = RiskEngine(TypoRiskIndex(
            SEED, MAX_RANK, churn=SCHEDULE.generations(DAY), day=DAY))
        for query in probes:
            assert engine.lookup(query).canonical_json() == \
                fresh.lookup(query).canonical_json()

    def test_swap_bumps_the_epoch_and_clears_the_memo(self):
        engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        engine.lookup("gmial.com")
        epoch = engine.index.epoch
        engine.hot_swap(SCHEDULE, DAY)
        assert engine.index.epoch == epoch + 1
        assert engine.cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_empty_delta_is_a_no_op_swap(self):
        engine = RiskEngine(TypoRiskIndex(
            SEED, MAX_RANK, churn=SCHEDULE.generations(DAY), day=DAY))
        engine.lookup("gmial.com")
        warm = engine.cache_stats()
        index = engine.index
        hook_calls = []
        assert engine.hot_swap(SCHEDULE, DAY,
                               phase_hook=hook_calls.append) == 0
        assert engine.index is index          # nothing published
        assert hook_calls == []               # nothing even built
        assert engine.cache_stats() == warm

    def test_artifact_round_trip_across_the_swap(self, tmp_path, probes):
        path = tmp_path / "risk.index"
        engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        engine.hot_swap(SCHEDULE, DAY, artifact_path=path)
        loaded = RiskEngine(TypoRiskIndex.load(path))
        assert loaded.index.canonical_dict() == \
            engine.index.canonical_dict()
        for query in probes[:40]:
            assert loaded.lookup(query).canonical_json() == \
                engine.lookup(query).canonical_json()

    def test_phase_hooks_fire_in_two_phase_order(self, tmp_path):
        phases = []
        engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        engine.hot_swap(SCHEDULE, DAY,
                        artifact_path=tmp_path / "risk.index",
                        phase_hook=phases.append)
        assert phases == ["built", "saved"]


class TestTornSwap:
    """SIGKILL a real subprocess mid-swap; prove either generation
    on disk is doctor-valid and recovery matches the uncrashed run."""

    CHILD_SCRIPT = """
import os
import signal
import sys
from repro.ecosystem.delta import ChurnSchedule
from repro.service import RiskEngine, TypoRiskIndex

artifact, crash_phase = sys.argv[1], sys.argv[2]
engine = RiskEngine(TypoRiskIndex(606, 400))
engine.index.save(artifact)          # generation 0 is durable

def hook(phase):
    if phase == crash_phase:
        os.kill(os.getpid(), signal.SIGKILL)

schedule = ChurnSchedule(seed=606, max_rank=400, daily_rate=0.02)
engine.hot_swap(schedule, 30, artifact_path=artifact, phase_hook=hook)
"""

    def _crash_mid_swap(self, artifact, crash_phase):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src", env.get("PYTHONPATH", "")])
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD_SCRIPT,
             str(artifact), crash_phase],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            returncode = child.wait(timeout=120)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == -signal.SIGKILL, \
            f"child survived the {crash_phase!r} crash point"

    @pytest.mark.parametrize("crash_phase,expected_day", [
        ("built", 0),    # old generation still published on disk
        ("saved", DAY),  # new generation durable, publish torn
    ])
    def test_torn_swap_heals_to_the_uncrashed_verdicts(
            self, tmp_path, probes, crash_phase, expected_day):
        artifact = tmp_path / "risk.index"
        self._crash_mid_swap(artifact, crash_phase)

        # whichever generation survived, the artifact is doctor-valid
        diagnosis = diagnose_file(artifact)
        assert diagnosis.ok, diagnosis.detail
        assert diagnosis.kind == "risk-index"
        assert json.loads(artifact.read_text())["day"] == expected_day

        # recovery protocol: load, re-apply the delta, serve
        healed = RiskEngine(TypoRiskIndex.load(artifact))
        healed.hot_swap(SCHEDULE, DAY, artifact_path=artifact)
        assert healed.index.day == DAY
        assert diagnose_file(artifact).ok

        uncrashed = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        uncrashed.hot_swap(SCHEDULE, DAY)
        for query in probes[:60]:
            assert healed.lookup(query).canonical_json() == \
                uncrashed.lookup(query).canonical_json()

    def test_wait_for_sentinel_then_kill_leaves_valid_artifact(
            self, tmp_path):
        """The non-cooperative variant: kill from outside while the
        child loops hot swaps, then doctor whatever is on disk."""
        artifact = tmp_path / "risk.index"
        script = """
import sys
from repro.ecosystem.delta import ChurnSchedule
from repro.service import RiskEngine, TypoRiskIndex

artifact = sys.argv[1]
engine = RiskEngine(TypoRiskIndex(606, 400))
schedule = ChurnSchedule(seed=606, max_rank=400, daily_rate=0.02)
day = 0
while True:
    day += 1
    engine.hot_swap(schedule, day, artifact_path=artifact)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src", env.get("PYTHONPATH", "")])
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(artifact)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 60.0
            while not artifact.exists() and time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                time.sleep(0.02)
            assert artifact.exists(), "child never wrote an artifact"
            time.sleep(0.2)          # land mid-swap, not at a boundary
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            returncode = child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == -signal.SIGKILL
        diagnosis = diagnose_file(artifact)
        assert diagnosis.ok, diagnosis.detail
        # and the survivor loads into a serving engine
        engine = RiskEngine(TypoRiskIndex.load(artifact))
        assert engine.lookup("gmial.com").verdict == "typo_risk"
