"""The merge algebra behind serial == sharded == delta byte-identity.

Every scale claim in the scan engine reduces to one algebraic fact:
:meth:`ScanAggregates.merge` is exact integer addition, so folds over
any partition of the rank space — serial, sharded, per-baseline-range —
commute and associate to the same canonical digest.  This module proves
the algebra with hypothesis, checks the flat-tally fast path against
the per-record reference fold, and pins the scan digests themselves as
a regression anchor for the whole pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecosystem import ScanAggregates, WorldModel
from repro.ecosystem.internet import OwnerType, SmtpSupport
from repro.experiment import partition_ranks, run_sharded_scan

SUPPORTS = list(SmtpSupport)
OWNERS = list(OwnerType)

#: the scan-scale digests (seed 606) — any change to the draw law, the
#: probe emulation, the fold, or canonical serialization moves these
DIGEST_1K = "21a52173e63dbaaaa8c7ee5f0e528640e637df1e77ce0efa240ca5fc1c1d16e3"
DIGEST_10K = "4afe9151d5a1064a39e3c22f5253452221133fc43749045bcb74516b72a248bb"
DIGEST_100K = ("d482c72faa7aa6a38a6cd737ab9df562"
               "5aadb5d2a694053b225f9cd6db67f2ac")


def observations():
    """One synthetic registered-ctypo observation per draw."""
    return st.tuples(
        st.sampled_from(["gmail.com", "hotmail.com", "mail.ru"]),
        st.sampled_from(["owner-a", "owner-b", "owner-c"]),
        st.sampled_from(OWNERS),
        st.sampled_from(SUPPORTS),
        st.sampled_from(SUPPORTS),
        st.one_of(st.none(), st.sampled_from(["mx1.example", "mx2.example"])),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )


def fold(obs_list):
    aggregates = ScanAggregates()
    aggregates.add_generated(len(obs_list) * 3)
    for (target, owner, owner_type, truth, seen,
         mx, implicit, private, track) in obs_list:
        aggregates.add_result(target, owner, owner_type, truth, seen,
                              mx, implicit, private, track)
    return aggregates


class TestMergeAlgebra:
    @given(st.lists(observations(), max_size=40), st.data())
    @settings(max_examples=50, deadline=None)
    def test_any_partition_merges_to_the_same_digest(self, obs, data):
        """Chopping the observation stream anywhere yields one digest."""
        cut = data.draw(st.integers(min_value=0, max_value=len(obs)))
        whole = fold(obs)
        split = fold(obs[:cut]).merge(fold(obs[cut:]))
        assert split.digest() == whole.digest()

    @given(st.lists(observations(), max_size=24), st.data())
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative(self, obs, data):
        i = data.draw(st.integers(min_value=0, max_value=len(obs)))
        j = data.draw(st.integers(min_value=i, max_value=len(obs)))
        a, b, c = obs[:i], obs[i:j], obs[j:]
        left = fold(a).merge(fold(b)).merge(fold(c))
        right = fold(a).merge(fold(b).merge(fold(c)))
        assert left.digest() == right.digest()

    @given(st.lists(observations(), max_size=24), st.data())
    @settings(max_examples=50, deadline=None)
    def test_merge_is_commutative(self, obs, data):
        cut = data.draw(st.integers(min_value=0, max_value=len(obs)))
        a, b = obs[:cut], obs[cut:]
        assert (fold(a).merge(fold(b)).digest()
                == fold(b).merge(fold(a)).digest())

    @given(st.lists(observations(), max_size=24))
    @settings(max_examples=50, deadline=None)
    def test_empty_is_the_identity(self, obs):
        folded = fold(obs)
        reference = folded.digest()
        assert fold(obs).merge(ScanAggregates()).digest() == reference
        assert ScanAggregates().merge(fold(obs)).digest() == reference

    @given(st.lists(observations(), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_canonical_round_trip_preserves_digest(self, obs):
        folded = fold(obs)
        round_tripped = ScanAggregates.from_canonical_dict(
            folded.canonical_dict())
        assert round_tripped.digest() == folded.digest()


class TestFoldFlatEquivalence:
    @given(st.lists(observations(), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_fold_flat_matches_add_result(self, obs):
        """The flat-tally fast path is byte-identical to the reference
        per-record fold it replaced in the scan hot loop."""
        support_by_code = [support.value for support in SUPPORTS]
        owner_by_code = [owner.value for owner in OWNERS] + ["unknown"]
        support_code = {value: i for i, value in enumerate(support_by_code)}
        owner_code = {value: i for i, value in enumerate(owner_by_code)}

        support_l = [0] * len(support_by_code)
        truth_l = [0] * len(support_by_code)
        owner_l = [0] * len(owner_by_code)
        mx_counts, owner_counts, target_counts = {}, {}, {}
        registered = private_n = implicit_n = 0
        for (target, owner, owner_type, truth, seen,
             mx, implicit, private, track) in obs:
            registered += 1
            support_l[support_code[seen.value]] += 1
            truth_l[support_code[truth.value]] += 1
            owner_l[owner_code[owner_type.value]] += 1
            if mx is not None:
                mx_counts[mx] = mx_counts.get(mx, 0) + 1
            if track:
                owner_counts[owner] = owner_counts.get(owner, 0) + 1
            target_counts[target] = target_counts.get(target, 0) + 1
            private_n += private
            implicit_n += implicit

        flat = ScanAggregates().fold_flat(
            len(obs) * 3, registered, support_l, truth_l, owner_l,
            support_by_code, owner_by_code, mx_counts, owner_counts,
            target_counts, private_n, implicit_n)
        assert flat.digest() == fold(obs).digest()


class TestScanDigestRegression:
    """The end-to-end anchors: these digests moved never, only faster."""

    def test_1k_digest_pinned(self):
        assert run_sharded_scan(606, 1_000).digest() == DIGEST_1K

    def test_10k_digest_pinned(self):
        assert run_sharded_scan(606, 10_000).digest() == DIGEST_10K

    @pytest.mark.slow
    def test_100k_digest_pinned(self):
        assert run_sharded_scan(606, 100_000).digest() == DIGEST_100K

    def test_shard_partition_invariance(self):
        """Serial and every shard count merge to the pinned digest."""
        world = WorldModel(606)
        for shards in (2, 3, 7):
            merged = ScanAggregates()
            for start, stop in partition_ranks(1_000, shards):
                merged.merge(world.scan_ranks(start, stop, max_rank=1_000))
            assert merged.digest() == DIGEST_1K
