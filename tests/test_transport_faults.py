"""Fault-path tests for the SMTP transport, server gate, and retry queue.

Pins the satellite fixes of the chaos PR: the probability-sum boundary on
:class:`HostBehavior`, the configurable connect timeout (previously a
hardcoded 30.0), detach idempotency, per-outcome latency behaviour under
a fixed seed, and the RFC 5321 retry-queue semantics.
"""

import pytest

from repro.dnssim import DomainRegistry, Resolver, collection_zone, Registration
from repro.dnssim.resolver import MailRoute, ResolutionStatus
from repro.smtpsim import (
    ConnectOutcome,
    EmailMessage,
    HostBehavior,
    Network,
    RetryPolicy,
    RetryQueue,
    SendResult,
    SendStatus,
    SmtpClient,
    SmtpReply,
    SmtpServer,
)
from repro.util import SeededRng

pytestmark = pytest.mark.chaos


class TestHostBehaviorValidation:
    def test_probability_sum_of_exactly_one_is_accepted(self):
        behavior = HostBehavior(timeout_probability=0.5,
                                network_error_probability=0.3,
                                other_error_probability=0.2)
        assert behavior.timeout_probability == 0.5

    def test_probability_sum_above_one_is_rejected(self):
        with pytest.raises(ValueError):
            HostBehavior(timeout_probability=0.6,
                         network_error_probability=0.3,
                         other_error_probability=0.2)

    def test_timeout_seconds_must_be_positive(self):
        with pytest.raises(ValueError):
            HostBehavior(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            HostBehavior(timeout_seconds=-1.0)


class TestConnectTimeouts:
    def test_timeout_latency_comes_from_behavior_not_a_constant(self):
        network = Network(SeededRng(1))
        network.attach("1.1.1.1", SmtpServer(hostname="a.com", ip="1.1.1.1"),
                       behavior=HostBehavior(timeout_probability=1.0,
                                             timeout_seconds=7.5))
        result = network.connect("1.1.1.1")
        assert result.outcome is ConnectOutcome.TIMEOUT
        assert result.latency_seconds == 7.5

    def test_default_timeout_is_thirty_seconds(self):
        network = Network(SeededRng(1))
        network.attach("1.1.1.2", SmtpServer(hostname="b.com", ip="1.1.1.2"),
                       behavior=HostBehavior(timeout_probability=1.0))
        assert network.connect("1.1.1.2").latency_seconds == 30.0


class TestDetachIdempotency:
    def test_detach_twice_is_harmless(self):
        network = Network(SeededRng(2))
        network.attach("2.2.2.2", SmtpServer(hostname="c.com", ip="2.2.2.2"),
                       behavior=HostBehavior(timeout_probability=1.0))
        network.detach("2.2.2.2")
        network.detach("2.2.2.2")
        assert network.server_at("2.2.2.2") is None
        # the behavior went with the server: connects now refuse with the
        # default profile instead of timing out
        assert network.connect("2.2.2.2").outcome is ConnectOutcome.REFUSED

    def test_reattach_after_detach_works(self):
        network = Network(SeededRng(2))
        server = SmtpServer(hostname="d.com", ip="3.3.3.3")
        network.attach("3.3.3.3", server)
        network.detach("3.3.3.3")
        network.attach("3.3.3.3", server)
        assert network.server_at("3.3.3.3") is server


class TestLatencyDistributions:
    def _outcomes(self, seed):
        network = Network(SeededRng(seed))
        network.attach("4.4.4.4", SmtpServer(hostname="e.com", ip="4.4.4.4"),
                       behavior=HostBehavior(timeout_probability=0.3,
                                             network_error_probability=0.3,
                                             base_latency_seconds=0.2,
                                             timeout_seconds=5.0))
        return [network.connect("4.4.4.4") for _ in range(200)]

    def test_fixed_seed_replays_outcomes_and_latencies(self):
        first = self._outcomes(7)
        second = self._outcomes(7)
        assert ([(r.outcome, r.latency_seconds) for r in first]
                == [(r.outcome, r.latency_seconds) for r in second])

    def test_per_outcome_latency_laws(self):
        results = self._outcomes(7)
        by_outcome = {}
        for result in results:
            by_outcome.setdefault(result.outcome, []).append(
                result.latency_seconds)
        # every outcome class appears under these probabilities
        assert set(by_outcome) == {ConnectOutcome.TIMEOUT,
                                   ConnectOutcome.NETWORK_ERROR,
                                   ConnectOutcome.CONNECTED}
        # timeouts cost the full deadline, deterministically
        assert set(by_outcome[ConnectOutcome.TIMEOUT]) == {5.0}
        # everything else draws uniformly in [0.5, 2] x base latency
        for outcome in (ConnectOutcome.NETWORK_ERROR,
                        ConnectOutcome.CONNECTED):
            latencies = by_outcome[outcome]
            assert all(0.1 <= latency <= 0.4 for latency in latencies)
            assert len(set(latencies)) > 1


class TestTransientClassification:
    def test_4yz_replies_are_transient(self):
        assert SmtpReply(451, "try later").is_transient_failure
        assert SmtpReply(421, "closing").is_transient_failure
        assert not SmtpReply(250, "ok").is_transient_failure
        assert not SmtpReply(550, "no").is_transient_failure

    def test_send_status_transience(self):
        assert SendStatus.TEMPFAIL.is_transient
        assert SendStatus.TIMEOUT.is_transient
        assert SendStatus.NETWORK_ERROR.is_transient
        assert not SendStatus.DELIVERED.is_transient
        assert not SendStatus.BOUNCED.is_transient


class _ServfailResolver:
    """A resolver whose every route SERVFAILs (transient, retryable)."""

    def mail_route(self, domain):
        return MailRoute(domain, ResolutionStatus.SERVFAIL)


class TestClientTransientPaths:
    def test_servfail_route_maps_to_tempfail_not_no_route(self):
        client = SmtpClient(_ServfailResolver(), Network(SeededRng(3)))
        message = EmailMessage.create("a@b.org", "x@flaky.com", "s", "b")
        assert client.send(message).status is SendStatus.TEMPFAIL

    def _gated_world(self, gate):
        registry = DomainRegistry()
        registry.register(Registration(
            domain="sink.com", zone=collection_zone("sink.com", "5.5.5.5")))
        received = []
        server = SmtpServer(hostname="sink.com", ip="5.5.5.5",
                            on_delivery=received.append, fault_gate=gate)
        network = Network(SeededRng(4))
        network.attach("5.5.5.5", server)
        return SmtpClient(Resolver(registry), network), server, received

    def test_fault_gate_tempfails_without_mutating_the_message(self):
        gate = lambda session, message, timestamp: SmtpReply(
            451, "4.7.1 please try again later")
        client, server, received = self._gated_world(gate)
        message = EmailMessage.create("a@b.org", "x@sink.com", "s", "b")
        result = client.send(message, timestamp=100.0)
        assert result.status is SendStatus.TEMPFAIL
        assert server.tempfail_count == 1
        assert server.accepted_count == 0
        assert received == []
        # the retry will replay an unstamped message
        assert message.received_by_ip is None
        assert not any(key == "Received" for key, _ in message.headers)

    def test_none_gate_result_delivers_normally(self):
        client, server, received = self._gated_world(
            lambda session, message, timestamp: None)
        message = EmailMessage.create("a@b.org", "x@sink.com", "s", "b")
        assert client.send(message).status is SendStatus.DELIVERED
        assert server.tempfail_count == 0
        assert len(received) == 1


def _tempfail(recipient):
    return SendResult(SendStatus.TEMPFAIL, recipient,
                      last_reply=SmtpReply(451, "4.7.1 try later"))


def _delivered(recipient):
    return SendResult(SendStatus.DELIVERED, recipient)


class TestRetryQueue:
    def _message(self):
        return EmailMessage.create("victim@sender.org", "x@typo.com", "s", "b")

    def test_non_retryable_results_are_declined(self):
        queue = RetryQueue()
        offered = queue.offer(self._message(), "x@typo.com",
                              SendResult(SendStatus.BOUNCED, "x@typo.com"),
                              timestamp=0.0)
        assert not offered and len(queue) == 0

    def test_tempfail_queues_with_first_backoff_delay(self):
        policy = RetryPolicy(initial_delay_seconds=100.0, backoff_factor=2.0)
        queue = RetryQueue(policy)
        assert queue.offer(self._message(), "x@typo.com",
                           _tempfail("x@typo.com"), timestamp=50.0)
        assert len(queue) == 1
        assert queue.due(before=150.0) == []       # not yet due
        jobs = queue.due(before=151.0)
        assert len(jobs) == 1 and jobs[0].next_attempt == 150.0

    def test_due_orders_by_time_then_sequence(self):
        policy = RetryPolicy(initial_delay_seconds=10.0)
        queue = RetryQueue(policy)
        for index in range(3):
            queue.offer(self._message(), f"x{index}@typo.com",
                        _tempfail(f"x{index}@typo.com"), timestamp=float(index))
        jobs = queue.due(before=1e9)
        assert [job.recipient for job in jobs] == [
            "x0@typo.com", "x1@typo.com", "x2@typo.com"]

    def test_recovery_counts_and_clears(self):
        queue = RetryQueue(RetryPolicy(initial_delay_seconds=10.0))
        queue.offer(self._message(), "x@typo.com", _tempfail("x@typo.com"),
                    timestamp=0.0)
        [job] = queue.due(before=1e9)
        assert queue.settle(job, _delivered("x@typo.com"), 20.0) is None
        assert queue.stats.recovered == 1
        assert len(queue) == 0

    def test_still_failing_requeues_with_exponential_backoff(self):
        policy = RetryPolicy(initial_delay_seconds=10.0, backoff_factor=3.0,
                             max_attempts=5)
        queue = RetryQueue(policy)
        queue.offer(self._message(), "x@typo.com", _tempfail("x@typo.com"),
                    timestamp=0.0)
        [job] = queue.due(before=1e9)
        assert queue.settle(job, _tempfail("x@typo.com"), 10.0) is None
        assert job.next_attempt == 10.0 + 30.0     # attempt 2's delay
        [job] = queue.due(before=1e9)
        assert queue.settle(job, _tempfail("x@typo.com"), 40.0) is None
        assert job.next_attempt == 40.0 + 90.0     # attempt 3's delay

    def test_gives_up_with_dsn_after_max_attempts(self):
        policy = RetryPolicy(initial_delay_seconds=10.0, max_attempts=2)
        queue = RetryQueue(policy, reporting_host="vps.study.org")
        queue.offer(self._message(), "x@typo.com", _tempfail("x@typo.com"),
                    timestamp=0.0)
        [job] = queue.due(before=1e9)
        dsn = queue.settle(job, _tempfail("x@typo.com"), 10.0)
        assert dsn is not None
        assert queue.stats.gave_up == 1 and queue.stats.dsn_sent == 1
        assert dsn.sender.bare == "MAILER-DAEMON@vps.study.org"
        assert dsn.recipient.bare == "victim@sender.org"
        assert "451 4.7.1" in dsn.body

    def test_gives_up_past_queue_horizon_even_with_attempts_left(self):
        policy = RetryPolicy(initial_delay_seconds=10.0, max_attempts=99,
                             max_queue_seconds=100.0)
        queue = RetryQueue(policy)
        queue.offer(self._message(), "x@typo.com", _tempfail("x@typo.com"),
                    timestamp=0.0)
        [job] = queue.due(before=1e9)
        assert queue.settle(job, _tempfail("x@typo.com"), 500.0) is not None
        assert queue.stats.gave_up == 1

    def test_never_bounces_a_bounce(self):
        from repro.smtpsim import make_bounce_message

        queue = RetryQueue(RetryPolicy(initial_delay_seconds=10.0,
                                       max_attempts=1))
        dsn = make_bounce_message(self._message(), "x@typo.com", "vps.org")
        # DSNs carry the null reverse-path: giving up on one must not
        # generate a bounce-of-a-bounce
        queue.offer(dsn, "victim@sender.org", _tempfail("victim@sender.org"),
                    timestamp=0.0)
        [job] = queue.due(before=1e9)
        assert queue.settle(job, _tempfail("victim@sender.org"), 10.0) is None
        assert queue.stats.gave_up == 1 and queue.stats.dsn_sent == 0

    def test_expire_remaining_flushes_everything(self):
        queue = RetryQueue(RetryPolicy(initial_delay_seconds=10.0))
        for index in range(3):
            queue.offer(self._message(), f"x{index}@t.com",
                        _tempfail(f"x{index}@t.com"), timestamp=0.0)
        dsns = queue.expire_remaining(timestamp=1e6)
        assert len(dsns) == 3 and len(queue) == 0
        assert queue.stats.gave_up == 3
