"""Tests for DSN (bounce) generation and recognition."""

import pytest

from repro.pipeline import tokenize
from repro.smtpsim import (
    EmailMessage,
    SendResult,
    SendStatus,
    is_bounce_message,
    make_bounce_message,
)
from repro.smtpsim.bounce import bounce_for_result
from repro.smtpsim.protocol import SmtpReply


def _original():
    message = EmailMessage.create("alice@sender.org", "bob@gone.example",
                                  "hello", "are you there?")
    return message


class TestMakeBounce:
    def test_addressed_to_original_sender(self):
        bounce = make_bounce_message(_original(), "bob@gone.example",
                                     "mx.relay.example")
        assert bounce.envelope_to == ["alice@sender.org"]
        assert bounce.get_header("To") == "alice@sender.org"

    def test_null_reverse_path(self):
        bounce = make_bounce_message(_original(), "bob@gone.example",
                                     "mx.relay.example")
        assert bounce.envelope_from == ""

    def test_mailer_daemon_sender(self):
        bounce = make_bounce_message(_original(), "bob@gone.example",
                                     "mx.relay.example")
        assert bounce.get_header("From") == "MAILER-DAEMON@mx.relay.example"

    def test_body_carries_diagnostic_and_headers(self):
        bounce = make_bounce_message(_original(), "bob@gone.example",
                                     "mx.relay.example",
                                     diagnostic="550 user unknown")
        assert "550 user unknown" in bounce.body
        assert "bob@gone.example" in bounce.body
        assert "Subject: hello" in bounce.body

    def test_original_without_sender_rejected(self):
        orphan = EmailMessage()
        with pytest.raises(ValueError):
            make_bounce_message(orphan, "x@y.com", "mx.example")


class TestBounceForResult:
    def test_bounced_status_produces_dsn(self):
        result = SendResult(SendStatus.BOUNCED, "bob@gone.example",
                            last_reply=SmtpReply(550, "user unknown"))
        bounce = bounce_for_result(_original(), result, "mx.relay.example")
        assert bounce is not None
        assert "550" in bounce.body

    def test_other_statuses_produce_none(self):
        for status in (SendStatus.DELIVERED, SendStatus.TIMEOUT,
                       SendStatus.NETWORK_ERROR, SendStatus.NO_ROUTE):
            result = SendResult(status, "bob@gone.example")
            assert bounce_for_result(_original(), result, "mx.example") is None


class TestRecognition:
    def test_dsn_recognised(self):
        bounce = make_bounce_message(_original(), "bob@gone.example",
                                     "mx.relay.example")
        assert is_bounce_message(bounce)

    def test_ordinary_mail_not_a_bounce(self):
        assert not is_bounce_message(_original())

    def test_funnel_classifies_dsn_as_reflection(self):
        """The funnel's Layer 4 must catch DSNs (bounce senders).

        Scenario: a victim gave a mistyped reply address (alice@gmial.com);
        a service's mail to some third party failed, and the DSN comes
        back to the mistyped address at our collection domain.
        """
        from repro.spamfilter import FilterFunnel, Verdict
        original = EmailMessage.create("alice@gmial.com", "bob@gone.example",
                                       "hello", "are you there?")
        bounce = make_bounce_message(original, "bob@gone.example",
                                     "mx.relay.example")
        bounce.headers.insert(
            0, ("Received", "from mx.relay.example by gmial.com (1.1.1.1)"))
        result = FilterFunnel(["gmial.com"]).classify(tokenize(bounce))
        assert result.verdict is Verdict.REFLECTION
