"""Unit tests for the analysis modules, on hand-built records."""

import pytest

from repro.analysis import (
    CollectedRecord,
    daily_series,
    extension_histogram,
    malware_lookup,
    per_domain_typo_counts,
    sensitive_heatmap,
    smtp_persistence,
    volume_report,
)
from repro.core import TypoEmailKind
from repro.pipeline import EmailProcessor, tokenize
from repro.smtpsim import Attachment, EmailMessage
from repro.spamfilter.funnel import FilterResult, Verdict
from repro.util import CollectionWindow

DAY = 86_400.0


def _record(verdict=Verdict.TRUE_TYPO, kind="receiver", domain="gmial.com",
            day=0, sender="alice@real.org", body="hello", attachments=None,
            true_kind=TypoEmailKind.RECEIVER, process=False):
    message = EmailMessage.create(sender, f"bob@{domain}", "subject", body,
                                  attachments=attachments)
    message.envelope_from = sender
    message.received_at = day * DAY + 7.0
    layer = None if verdict is Verdict.TRUE_TYPO else 2
    processed = EmailProcessor().process(message) if process else None
    return CollectedRecord(
        tokenized=tokenize(message),
        result=FilterResult(verdict, kind, layer, "test"),
        study_domain=domain,
        timestamp=message.received_at,
        true_kind=true_kind,
        processed=processed,
    )


class TestCollectedRecord:
    def test_day_and_helpers(self):
        record = _record(day=3)
        assert record.day == 3
        assert record.is_true_typo
        assert record.verdict is Verdict.TRUE_TYPO

    def test_spam_record(self):
        record = _record(verdict=Verdict.SPAM, true_kind=TypoEmailKind.SPAM)
        assert not record.is_true_typo


class TestDailySeries:
    def test_buckets_by_day_and_category(self):
        window = CollectionWindow(total_days=5)
        records = [
            _record(day=0), _record(day=0),
            _record(day=2, verdict=Verdict.SPAM),
            _record(day=4, verdict=Verdict.REFLECTION),
        ]
        series = daily_series(records, "receiver", window)
        assert series.categories["real_typos"][0] == 2
        assert series.categories["spam_filtered"][2] == 1
        assert series.categories[
            "reflection_and_frequency_filtered"][4] == 1

    def test_kind_filtering(self):
        window = CollectionWindow(total_days=3)
        records = [_record(kind="smtp"), _record(kind="receiver")]
        series = daily_series(records, "smtp", window)
        assert sum(series.categories["real_typos"]) == 1

    def test_out_of_window_records_dropped(self):
        window = CollectionWindow(total_days=2)
        records = [_record(day=10)]
        series = daily_series(records, "receiver", window)
        assert sum(sum(v) for v in series.categories.values()) == 0

    def test_active_days(self):
        window = CollectionWindow(total_days=4)
        records = [_record(day=0), _record(day=0), _record(day=3)]
        series = daily_series(records, "receiver", window)
        assert series.active_days("real_typos") == 2


class TestVolumeReport:
    def test_projection_formula(self):
        # 10 records over a 73-day window -> 50/year
        window = CollectionWindow(total_days=73)
        records = [_record(day=i % 73) for i in range(10)]
        report = volume_report(records, window)
        assert report.total_received == pytest.approx(50.0)

    def test_kind_split(self):
        window = CollectionWindow(total_days=365)
        records = [_record(kind="receiver"), _record(kind="smtp"),
                   _record(kind="smtp")]
        report = volume_report(records, window)
        assert report.receiver_candidates == pytest.approx(1.0)
        assert report.smtp_candidates == pytest.approx(2.0)

    def test_smtp_band(self):
        window = CollectionWindow(total_days=365)
        records = [
            _record(kind="smtp", true_kind=TypoEmailKind.SMTP),
            _record(kind="smtp", verdict=Verdict.FREQUENCY_FILTERED,
                    true_kind=TypoEmailKind.SMTP),
        ]
        report = volume_report(records, window)
        low, high = report.smtp_typo_range()
        assert low == pytest.approx(1.0)
        assert high == pytest.approx(2.0)

    def test_receiver_at_smtp_domains(self):
        window = CollectionWindow(total_days=365)
        records = [_record(domain="smtpverizon.net")]
        report = volume_report(records, window,
                               smtp_purpose_domains=["smtpverizon.net"])
        assert report.receiver_typos_at_smtp_domains == pytest.approx(1.0)


class TestPerDomain:
    def test_counts_and_ordering(self):
        records = ([_record(domain="a.com")] * 5
                   + [_record(domain="b.com")] * 2
                   + [_record(domain="a.com", verdict=Verdict.SPAM)])
        table = per_domain_typo_counts(records, ["a.com", "b.com", "c.com"])
        assert table.entries == (("a.com", 5), ("b.com", 2), ("c.com", 0))
        assert table.total == 7

    def test_domains_for_share(self):
        records = [_record(domain="a.com")] * 8 + [_record(domain="b.com")] * 2
        table = per_domain_typo_counts(records, ["a.com", "b.com"])
        assert table.domains_for_share(0.5) == 1
        assert table.domains_for_share(0.9) == 2

    def test_cumulative_shares_empty(self):
        table = per_domain_typo_counts([], ["a.com"])
        assert table.cumulative_shares() == [0.0]


class TestPersistence:
    def test_single_sender_single_email(self):
        records = [_record(kind="smtp", true_kind=TypoEmailKind.SMTP)]
        stats = smtp_persistence(records)
        assert stats.sender_count == 1
        assert stats.single_email_fraction == 1.0
        assert stats.max_persistence_days == 0.0

    def test_multiday_sender(self):
        records = [
            _record(kind="smtp", sender="v@isp.net", day=0),
            _record(kind="smtp", sender="v@isp.net", day=3),
        ]
        stats = smtp_persistence(records)
        assert stats.sender_count == 1
        assert stats.single_email_fraction == 0.0
        assert stats.max_persistence_days == pytest.approx(3.0)

    def test_frequency_filtered_excluded_by_default(self):
        records = [_record(kind="smtp", verdict=Verdict.FREQUENCY_FILTERED)]
        assert smtp_persistence(records).sender_count == 0
        assert smtp_persistence(
            records, include_frequency_filtered=True).sender_count == 1

    def test_empty(self):
        stats = smtp_persistence([])
        assert stats.sender_count == 0


class TestAttachmentsAnalysis:
    def test_histogram_by_verdict(self):
        records = [
            _record(attachments=[Attachment("a.pdf", b"x")]),
            _record(attachments=[Attachment("b.pdf", b"y"),
                                 Attachment("c.txt", b"z")]),
            _record(verdict=Verdict.SPAM,
                    attachments=[Attachment("d.exe", b"m")]),
        ]
        true_hist = extension_histogram(records, verdicts=[Verdict.TRUE_TYPO])
        assert true_hist == {"pdf": 2, "txt": 1}
        all_hist = extension_histogram(records)
        assert all_hist["exe"] == 1

    def test_malware_lookup_spam_only(self):
        bad = Attachment("evil.doc", b"MALSIG-payload")
        records = [_record(verdict=Verdict.SPAM, attachments=[bad],
                           true_kind=TypoEmailKind.SPAM)]
        report = malware_lookup(records, {bad.sha256()})
        assert report.hashes_known_malicious == 1
        assert report.malicious_emails_all_spam

    def test_malware_in_surviving_email_flagged(self):
        bad = Attachment("evil.doc", b"MALSIG-payload")
        records = [_record(attachments=[bad])]
        report = malware_lookup(records, {bad.sha256()})
        assert not report.malicious_emails_all_spam

    def test_malware_lookup_empty_db(self):
        records = [_record(attachments=[Attachment("a.pdf", b"x")])]
        report = malware_lookup(records, set())
        assert report.hashes_known_malicious == 0
        assert report.malicious_fraction == 0.0


class TestHeatmapAnalysis:
    def test_counts_processed_true_typos(self):
        record = _record(body="my password is hunter2", process=True)
        heatmap = sensitive_heatmap([record])
        assert heatmap.get("gmial.com", "password") == 1

    def test_spam_excluded(self):
        record = _record(verdict=Verdict.SPAM,
                         body="my password is hunter2", process=True)
        heatmap = sensitive_heatmap([record])
        assert heatmap.counts == {}

    def test_unprocessed_records_skipped(self):
        record = _record(body="my password is hunter2", process=False)
        assert sensitive_heatmap([record]).counts == {}

    def test_totals(self):
        records = [
            _record(body="password: a1 and login: bb2", process=True),
            _record(domain="ohtlook.com", body="password: zz9",
                    process=True),
        ]
        heatmap = sensitive_heatmap(records)
        assert heatmap.totals_by_label()["password"] == 2
        assert heatmap.totals_by_domain()["gmial.com"] >= 2
        assert len(heatmap.domains()) == 2
