"""Resilient serving under injected faults: replay, shedding, degrade.

The acceptance contract of the chaos serving layer: the same ``(seed,
fault plan, workload)`` triple yields byte-identical verdict streams —
including ``shed``/``degraded``/``rules_only`` source labels — across
runs and ``--jobs`` counts; an empty service-spell plan is pinned
byte-identical to the fault-free engine; faults degrade answers, never
raise; and shedding follows the policy order (review-queue bookkeeping
before the scorer, the O(1) fast paths never).
"""

import pytest

from repro.faultsim import FaultPlan, ServiceFaultSpell
from repro.service import (
    AdmissionPolicy,
    HealthPolicy,
    LookupWorkload,
    ResilientServer,
    RiskEngine,
    TypoRiskIndex,
    run_serve_chaos_bench,
    verdict_stream_digest,
)

pytestmark = pytest.mark.chaos

SEED = 606
MAX_RANK = 700
LOOKUPS = 2500

DEMO_PLAN = FaultPlan.service_chaos_demo(seed=SEED, lookups=LOOKUPS)


@pytest.fixture(scope="module")
def index():
    return TypoRiskIndex(SEED, MAX_RANK)


@pytest.fixture(scope="module")
def queries(index):
    workload = LookupWorkload(SEED, MAX_RANK, pool_size=192,
                              world=index.world)
    return list(workload.queries(LOOKUPS))


def serve(plan, queries, *, jobs=None, admission=None, health=None):
    engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
    server = ResilientServer(engine, plan, admission=admission,
                             health=health)
    verdicts = server.batch_lookup(queries, jobs=jobs)
    return server, verdicts


class TestEmptyPlanIdentity:
    def test_no_plan_is_byte_identical_to_the_engine(self, index, queries):
        engine = RiskEngine(index)
        baseline = verdict_stream_digest(
            engine.lookup(q) for q in queries)
        engine.clear_verdict_memo()
        server = ResilientServer(RiskEngine(TypoRiskIndex(SEED, MAX_RANK)))
        assert verdict_stream_digest(
            server.lookup(q) for q in queries) == baseline

    def test_plan_without_service_spells_delegates(self, queries):
        # scan/study spells do not touch the serving lane
        plan = FaultPlan.chaos_demo(SEED)
        assert not plan.service_spells
        engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        baseline = verdict_stream_digest(
            RiskEngine(TypoRiskIndex(SEED, MAX_RANK)).lookup(q)
            for q in queries[:600])
        server = ResilientServer(engine, plan)
        assert verdict_stream_digest(
            server.lookup(q) for q in queries[:600]) == baseline


class TestReplayDeterminism:
    def test_serial_replay_is_byte_identical(self, queries):
        _, first = serve(DEMO_PLAN, queries)
        _, second = serve(DEMO_PLAN, queries)
        assert verdict_stream_digest(first) == verdict_stream_digest(second)

    def test_jobs_fanout_is_byte_identical_to_serial(self, queries):
        serial_server, serial = serve(DEMO_PLAN, queries)
        fanned_server, fanned = serve(DEMO_PLAN, queries, jobs=2)
        assert [v.canonical_json() for v in fanned] == \
            [v.canonical_json() for v in serial]
        # the resident state folds back serial-identically too
        assert fanned_server.engine.cache_stats() == \
            serial_server.engine.cache_stats()
        assert [v.query for v in fanned_server.engine.review_queue] == \
            [v.query for v in serial_server.engine.review_queue]
        assert fanned_server.report() == serial_server.report()

    def test_chaos_stream_exercises_every_lane(self, queries):
        server, verdicts = serve(DEMO_PLAN, queries)
        sources = {v.source for v in verdicts}
        assert {"scorer", "degraded", "rules_only", "shed"} <= sources
        # resilience invariant: every lookup answered, none dropped
        assert len(verdicts) == len(queries)
        assert server.stats.answered == len(queries)

    def test_workload_digest_pins_the_stream(self, index):
        workload = LookupWorkload(SEED, MAX_RANK, pool_size=192,
                                  world=index.world)
        assert workload.stream_digest(500) == workload.stream_digest(500)
        assert workload.stream_digest(500) != workload.stream_digest(501)


class TestDegradedModes:
    def test_error_burst_trips_breaker_down_to_rules_only(self, queries):
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(100, 400, "index_error", probability=1.0),))
        server, verdicts = serve(plan, queries[:800])
        health = server.report()["health"]
        assert health["tripped"] == 2
        states = [t[2] for t in health["transitions"]]
        assert states[:2] == ["degraded", "rules_only"]
        assert any(v.source == "rules_only" for v in verdicts)

    def test_breaker_recovers_after_clean_run(self, queries):
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(50, 120, "index_error", probability=1.0),))
        health_policy = HealthPolicy(trip_errors=3, window=20,
                                     recovery_lookups=60)
        server, _ = serve(plan, queries, health=health_policy)
        report = server.report()["health"]
        assert report["state"] == "healthy"
        assert report["recovered"] == report["tripped"]

    def test_degraded_verdicts_are_conservative_and_labeled(self, queries):
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(0, 2500, "index_error", probability=0.4),))
        server, verdicts = serve(plan, queries)
        floor = server.health_policy.floor_tier
        degraded = [v for v in verdicts
                    if v.source in ("degraded", "rules_only")]
        assert degraded, "the burst must force degraded answers"
        for verdict in degraded:
            # never an exception, always an answer at the floor tier
            # (or an explicit unrelated/allow from degraded retrieval)
            assert verdict.verdict in ("typo_risk", "unrelated")
            if verdict.verdict == "typo_risk":
                assert verdict.tier == floor

    def test_fast_paths_survive_every_fault_mode(self, index):
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(0, 10_000, "index_error", probability=1.0),
            ServiceFaultSpell(0, 10_000, "scorer_stall",
                              probability=1.0, stall_ms=100.0),))
        engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        server = ResilientServer(engine, plan)
        for _ in range(300):
            verdict = server.lookup("gmail.com")
            assert (verdict.verdict, verdict.source) == ("clean", "exact")
            assert server.lookup("").verdict == "invalid"


class TestLoadShedding:
    def test_stall_overload_sheds_the_scorer(self, queries):
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(0, 2500, "scorer_stall",
                              probability=1.0, stall_ms=50.0),))
        server, verdicts = serve(plan, queries)
        report = server.report()["admission"]
        assert report["shed_lookups"] > 0
        shed = [v for v in verdicts if v.source == "shed"]
        assert len(shed) == report["shed_lookups"]
        floor = server.health_policy.floor_tier
        for verdict in shed[:50]:
            assert verdict.tier == floor

    def test_reviews_shed_before_the_scorer(self, queries):
        """Policy order: level 1 (bookkeeping) engages below level 2."""
        from repro.defenses import RiskPolicy

        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(0, 2500, "scorer_stall",
                              probability=1.0, stall_ms=3.0),))
        # depth ramps slowly through the level-1 band: reviews shed
        # while the scorer still answers
        admission = AdmissionPolicy(drain_ms=2.0, review_shed_depth=10.0,
                                    scorer_shed_depth=10_000.0)
        engine = RiskEngine(
            TypoRiskIndex(SEED, MAX_RANK),
            policy=RiskPolicy(critical=0.99, high=0.98, medium=0.97,
                              review=0.01))
        server = ResilientServer(engine, plan, admission=admission)
        verdicts = [server.lookup(q) for q in queries]
        report = server.report()["admission"]
        assert report["shed_reviews"] > 0
        assert report["shed_lookups"] == 0  # scorer never shed
        # the verdicts themselves are full-quality scorer answers
        assert all(v.source != "shed" for v in verdicts)
        # review verdicts computed while shedding stayed out of the queue
        review_verdicts = sum(1 for v in verdicts if v.action == "review")
        assert len(engine.review_queue) < review_verdicts

    def test_shedding_relieves_the_modeled_backlog(self, queries):
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(0, 1000, "scorer_stall",
                              probability=1.0, stall_ms=50.0),))
        server, _ = serve(plan, queries)
        # after the spell window the backlog drains back to zero
        assert server.report()["admission"]["depth_ms"] == 0.0


class TestFaultInvisibility:
    def test_memory_pressure_is_invisible_in_verdicts(self, queries):
        base = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(200, 900, "scorer_stall",
                              probability=0.5, stall_ms=4.0),))
        with_pressure = FaultPlan(seed=SEED, service_spells=(
            base.service_spells[0],
            ServiceFaultSpell(300, 700, "memory_pressure",
                              probability=1.0),))
        _, plain = serve(base, queries)
        server, squeezed = serve(with_pressure, queries)
        assert verdict_stream_digest(plain) == \
            verdict_stream_digest(squeezed)
        assert server.stats.memo_shrinks > 0

    def test_mid_traffic_churn_swap_matches_fresh_engine(self, queries):
        from repro.ecosystem.delta import ChurnSchedule

        day, rate = 30, 0.01
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(500, 501, "churn_delta",
                              churn_day=day, churn_rate=rate),))
        server, verdicts = serve(plan, queries)
        assert server.stats.churn_swaps == 1
        assert server.engine.index.day == day
        # verdicts after the swap match an engine born on the evolved world
        schedule = ChurnSchedule(SEED, MAX_RANK, daily_rate=rate)
        evolved = RiskEngine(TypoRiskIndex(
            SEED, MAX_RANK, churn=schedule.generations(day), day=day))
        post = [evolved.lookup(q).canonical_json() for q in queries[500:]]
        assert [v.canonical_json() for v in verdicts[500:]] == post


class TestChaosBench:
    def test_bench_replays_and_reports_lanes(self):
        first = run_serve_chaos_bench(SEED, MAX_RANK, lookups=1200,
                                      pool_size=128)
        second = run_serve_chaos_bench(SEED, MAX_RANK, lookups=1200,
                                       pool_size=128)
        assert first.verdict_digest == second.verdict_digest
        assert first.dropped == 0
        assert first.lane_counts == second.lane_counts
        assert set(first.lane_counts) >= {"full", "rules_only"}
        entry = first.entry()
        assert entry["lookups"] == 1200
        assert entry["plan_digest"] == \
            FaultPlan.service_chaos_demo(SEED, lookups=1200).digest()
