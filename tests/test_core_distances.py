"""Tests for repro.core.distances — DL, fat-finger, and visual distances."""

import pytest

from repro.core import (
    classify_edit,
    damerau_levenshtein,
    fat_finger_distance,
    is_dl1,
    is_ff1,
    visual_distance,
)


class TestDamerauLevenshtein:
    def test_identity(self):
        assert damerau_levenshtein("gmail", "gmail") == 0

    def test_empty_strings(self):
        assert damerau_levenshtein("", "") == 0
        assert damerau_levenshtein("abc", "") == 3
        assert damerau_levenshtein("", "abc") == 3

    def test_single_substitution(self):
        assert damerau_levenshtein("gmail", "gmaul") == 1

    def test_single_deletion(self):
        assert damerau_levenshtein("gmail", "gmal") == 1

    def test_single_addition(self):
        assert damerau_levenshtein("gmail", "gmaail") == 1

    def test_transposition_counts_one(self):
        assert damerau_levenshtein("gmail", "gmial") == 1

    def test_symmetry(self):
        pairs = [("outlook", "ohtlook"), ("verizon", "evrizon"), ("a", "ba")]
        for a, b in pairs:
            assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    def test_full_damerau_not_osa(self):
        # full DL("ca","abc") == 2 (transpose then insert); OSA would give 3
        assert damerau_levenshtein("ca", "abc") == 2

    def test_distance_two(self):
        assert damerau_levenshtein("gmail", "gmual") == 2

    def test_triangle_inequality_spot(self):
        a, b, c = "outlook", "ohtlook", "ohtluok"
        assert damerau_levenshtein(a, c) <= (
            damerau_levenshtein(a, b) + damerau_levenshtein(b, c))

    def test_is_dl1(self):
        assert is_dl1("gmail", "gmial")
        assert not is_dl1("gmail", "gmail")
        assert not is_dl1("gmail", "gmual")


class TestClassifyEdit:
    def test_substitution(self):
        assert classify_edit("outlook", "ohtlook") == ("substitution", 1)

    def test_deletion(self):
        assert classify_edit("zohomail", "zohomil") == ("deletion", 5)

    def test_addition(self):
        assert classify_edit("gmail", "gmaail") == ("addition", 2)

    def test_transposition(self):
        assert classify_edit("gmail", "gmial") == ("transposition", 2)

    def test_identity_returns_none(self):
        assert classify_edit("gmail", "gmail") is None

    def test_distance_two_returns_none(self):
        assert classify_edit("gmail", "gmual") is None

    def test_length_gap_two_returns_none(self):
        assert classify_edit("gmail", "gma") is None

    def test_double_char_deletion_any_valid_index(self):
        # deleting either 'o' of "oo" yields the same string
        result = classify_edit("outlook", "utlook")
        assert result == ("deletion", 0)


class TestFatFinger:
    def test_adjacent_substitution_is_ff1(self):
        # u and h neighbour on QWERTY
        assert fat_finger_distance("outlook", "ohtlook") == 1

    def test_nonadjacent_substitution_not_ff1(self):
        # p is far from a
        assert fat_finger_distance("gmail", "gmpil", max_interesting=1) > 1

    def test_deletion_always_ff1(self):
        assert fat_finger_distance("gmail", "gmal") == 1

    def test_transposition_always_ff1(self):
        assert fat_finger_distance("gmail", "gmial") == 1

    def test_doubling_insertion_ff1(self):
        assert fat_finger_distance("gmail", "gmaail") == 1

    def test_adjacent_insertion_ff1(self):
        # q neighbours a -> inserting q next to a is a fat-finger slip
        assert fat_finger_distance("gmail", "gmaqil") == 1

    def test_identity_zero(self):
        assert fat_finger_distance("gmail", "gmail") == 0

    def test_ff1_implies_dl1(self):
        pairs = [("outlook", "ohtlook"), ("gmail", "gmial"), ("gmail", "gmal")]
        for a, b in pairs:
            if is_ff1(a, b):
                assert is_dl1(a, b)

    def test_far_pairs_capped(self):
        distance = fat_finger_distance("gmail", "yahoo", max_interesting=2)
        assert distance == 3  # sentinel max_interesting + 1


class TestVisualDistance:
    def test_identity_zero(self):
        assert visual_distance("gmail", "gmail") == 0.0

    def test_confusable_glyph_cheap(self):
        # o -> 0 is nearly invisible
        assert visual_distance("outlook", "outlo0k") < 0.3

    def test_distinct_letter_swap_expensive(self):
        assert visual_distance("outlook", "ohtlook") > visual_distance(
            "outlook", "outlo0k")

    def test_transposition_moderate(self):
        trans = visual_distance("gmail", "gmial")
        sub = visual_distance("gmail", "gmxil")
        assert trans < sub

    def test_doubled_letter_deletion_cheap(self):
        doubled = visual_distance("outlook", "outlok")   # drop one 'o' of "oo"
        plain = visual_distance("outlook", "utlook")     # drop leading 'o'
        assert doubled < plain

    def test_edge_positions_more_visible(self):
        first = visual_distance("verizon", "xerizon")
        middle = visual_distance("verizon", "verxzon")
        assert first > middle

    def test_rn_m_digram_confusion(self):
        assert visual_distance("corn", "com") < 0.5

    def test_non_dl1_fallback_total(self):
        # function must be total even for distance-2 pairs
        assert visual_distance("gmail", "gmual") >= 0

    def test_nonnegative(self):
        pairs = [("gmail", "gmial"), ("a", "b"), ("chase", "chsse")]
        for a, b in pairs:
            assert visual_distance(a, b) >= 0

    def test_paper_finding_visible_vs_invisible(self):
        """outlo0k (invisible) should be far 'closer' than outmook (visible)."""
        assert visual_distance("outlook", "outlo0k") * 3 < visual_distance(
            "outlook", "outmook")
