"""Tests for the collection infrastructure: provisioning, collector, storage."""

import pytest

from repro.core import build_study_corpus
from repro.dnssim import DomainRegistry, Resolver
from repro.infra import (
    EncryptedStore,
    KeyVault,
    MainCollectionServer,
    StorageSealedError,
    VpsAllocator,
    provision_study,
)
from repro.smtpsim import EmailMessage, Network, SendStatus, SmtpClient
from repro.util import SeededRng


class TestVpsAllocator:
    def test_unique_addresses(self):
        allocator = VpsAllocator()
        addresses = [allocator.allocate() for _ in range(500)]
        assert len(set(addresses)) == 500

    def test_valid_ipv4(self):
        from repro.dnssim import is_valid_ipv4
        allocator = VpsAllocator()
        for _ in range(300):
            assert is_valid_ipv4(allocator.allocate())


class TestProvisioning:
    @pytest.fixture(scope="class")
    def world(self):
        corpus = build_study_corpus()
        registry = DomainRegistry()
        network = Network(SeededRng(7))
        infra = provision_study(corpus, registry, network)
        return corpus, registry, network, infra

    def test_all_domains_registered(self, world):
        corpus, registry, _, _ = world
        for domain in corpus.domain_names():
            assert registry.is_registered(domain)

    def test_one_to_one_ip_mapping(self, world):
        _, _, _, infra = world
        ips = list(infra.domain_to_ip.values())
        assert len(ips) == len(set(ips)) == 76

    def test_domain_ip_roundtrip(self, world):
        _, _, _, infra = world
        ip = infra.ip_for("gmaiql.com")
        assert ip is not None
        assert infra.domain_for_ip(ip) == "gmaiql.com"
        assert infra.ip_for("unknown.com") is None
        assert infra.domain_for_ip("203.0.113.1") is None

    def test_zones_are_catch_all(self, world):
        _, registry, _, infra = world
        resolver = Resolver(registry)
        route = resolver.mail_route("anything.gmaiql.com")
        assert route.can_receive_mail
        assert route.addresses == (infra.ip_for("gmaiql.com"),)

    def test_mail_reaches_collector(self, world):
        _, registry, network, infra = world
        client = SmtpClient(Resolver(registry), network)
        before = len(infra.collector)
        msg = EmailMessage.create("alice@real.org", "bob@gmaiql.com",
                                  "hello", "misdirected")
        result = client.send(msg, timestamp=10.0)
        assert result.status is SendStatus.DELIVERED
        assert len(infra.collector) == before + 1
        stamped = infra.collector.corpus[-1]
        assert stamped.received_by_ip == infra.ip_for("gmaiql.com")

    def test_registrant_recorded(self, world):
        _, registry, _, _ = world
        registration = registry.get("ohtlook.com")
        assert registration.registrant_id == "study-researchers"


class TestCollector:
    def _message(self, t=0.0):
        msg = EmailMessage.create("a@b.com", "c@d.com", "s", "b")
        msg.received_at = t
        return msg

    def test_ingest_counts(self):
        collector = MainCollectionServer()
        collector.ingest(self._message())
        assert collector.stats.ingested == 1
        assert len(collector) == 1

    def test_outage_drops(self):
        collector = MainCollectionServer()
        collector.set_outage(True)
        collector.ingest(self._message())
        assert len(collector) == 0
        assert collector.stats.dropped_outage == 1
        collector.set_outage(False)
        collector.ingest(self._message())
        assert len(collector) == 1

    def test_daily_capacity_overload(self):
        collector = MainCollectionServer(daily_capacity=2)
        for i in range(5):
            collector.ingest(self._message(t=100.0 + i))
        assert len(collector) == 2
        assert collector.stats.dropped_overload == 3

    def test_capacity_resets_next_day(self):
        collector = MainCollectionServer(daily_capacity=1)
        collector.ingest(self._message(t=10.0))
        collector.ingest(self._message(t=20.0))          # same day: dropped
        collector.ingest(self._message(t=90_000.0))      # next day: accepted
        assert len(collector) == 2

    def test_process_hook_called(self):
        seen = []
        collector = MainCollectionServer(process_hook=seen.append)
        collector.ingest(self._message())
        assert len(seen) == 1


class TestEncryptedStore:
    def test_roundtrip(self):
        vault = KeyVault.generate(1)
        store = EncryptedStore(vault)
        record_id = store.put(b"secret email body")
        assert store.get(record_id) == b"secret email body"

    def test_ciphertext_differs_from_plaintext(self):
        store = EncryptedStore(KeyVault.generate(2))
        record_id = store.put(b"secret email body")
        assert store.raw_ciphertext(record_id) != b"secret email body"

    def test_detached_vault_blocks_decryption(self):
        vault = KeyVault.generate(3)
        store = EncryptedStore(vault)
        record_id = store.put(b"data")
        vault.detach()
        with pytest.raises(StorageSealedError):
            store.get(record_id)
        vault.attach()
        assert store.get(record_id) == b"data"

    def test_detached_vault_blocks_encryption(self):
        vault = KeyVault.generate(4)
        vault.detach()
        store = EncryptedStore(vault)
        with pytest.raises(StorageSealedError):
            store.put(b"data")

    def test_tamper_detection(self):
        vault = KeyVault.generate(5)
        store = EncryptedStore(vault)
        record_id = store.put(b"data")
        record = store._records[record_id]
        tampered = bytes([record.ciphertext[0] ^ 1]) + record.ciphertext[1:]
        store._records[record_id] = type(record)(
            record.record_id, record.nonce, tampered, record.mac, record.kind)
        with pytest.raises(ValueError):
            store.get(record_id)

    def test_records_of_kind(self):
        store = EncryptedStore(KeyVault.generate(6))
        header_id = store.put(b"h", kind="header")
        store.put(b"b", kind="body")
        assert store.records_of_kind("header") == [header_id]

    def test_unique_keys_unique_ciphertext(self):
        s1 = EncryptedStore(KeyVault.generate(7))
        s2 = EncryptedStore(KeyVault.generate(8))
        c1 = s1.raw_ciphertext(s1.put(b"same plaintext"))
        c2 = s2.raw_ciphertext(s2.put(b"same plaintext"))
        assert c1 != c2

    def test_contains_and_len(self):
        store = EncryptedStore(KeyVault.generate(9))
        record_id = store.put(b"x")
        assert record_id in store
        assert len(store) == 1
