"""Churn deltas against the resident index: incremental == fresh.

Target identities never churn — only the per-rank registration streams
re-key — so :meth:`TypoRiskIndex.apply_delta` must update the evolved
world and drop exactly the churned ranks' ctypo caches, ending byte-
identical to an index built fresh over the evolved world.  The engine
layer must notice the epoch bump and refuse to serve stale verdicts.
"""

import pytest

from repro.ecosystem.delta import ChurnSchedule
from repro.service import LookupWorkload, RiskEngine, TypoRiskIndex
from repro.util.errors import ConfigError

SEED = 606
MAX_RANK = 400
DAY = 30

# a rate high enough that 30 days churn a meaningful slice of 400 ranks
SCHEDULE = ChurnSchedule(seed=SEED, max_rank=MAX_RANK, daily_rate=0.02)


@pytest.fixture()
def evolved_pair():
    """(incrementally evolved index, fresh index over the same world)."""
    index = TypoRiskIndex(SEED, MAX_RANK)
    changed = index.apply_delta(SCHEDULE, DAY)
    fresh = TypoRiskIndex(SEED, MAX_RANK,
                          churn=SCHEDULE.generations(DAY), day=DAY)
    return index, fresh, changed


class TestDeltaParity:
    def test_some_ranks_actually_churned(self, evolved_pair):
        _, _, changed = evolved_pair
        assert changed > 0

    def test_canonical_payload_matches_fresh(self, evolved_pair):
        index, fresh, _ = evolved_pair
        assert index.canonical_dict() == fresh.canonical_dict()

    def test_registered_labels_match_fresh(self, evolved_pair):
        index, fresh, _ = evolved_pair
        churned = set(SCHEDULE.generations(DAY))
        sample = sorted(churned)[:8] + [rank for rank in (1, 2, 3, 25, 40)
                                        if rank not in churned]
        for rank in sample:
            assert index.registered_typo_labels(rank) == \
                fresh.registered_typo_labels(rank), rank

    def test_verdicts_match_fresh(self, evolved_pair):
        index, fresh, _ = evolved_pair
        workload = LookupWorkload(SEED, MAX_RANK, pool_size=96,
                                  world=index.world)
        evolved_engine = RiskEngine(index)
        fresh_engine = RiskEngine(fresh)
        for query in workload.pool_entries():
            assert evolved_engine.lookup(query).canonical_json() == \
                fresh_engine.lookup(query).canonical_json()

    def test_only_churned_caches_are_dropped(self):
        index = TypoRiskIndex(SEED, MAX_RANK)
        churned = set(SCHEDULE.generations(DAY))
        kept = [rank for rank in range(1, MAX_RANK + 1)
                if rank not in churned][:4]
        warm = {rank: index.registered_typo_labels(rank) for rank in kept}
        for rank in sorted(churned)[:4]:
            index.registered_typo_labels(rank)
        index.apply_delta(SCHEDULE, DAY)
        for rank in sorted(churned)[:4]:
            assert rank not in index._registered_labels
        for rank in kept:
            assert index._registered_labels[rank] is warm[rank]

    def test_delta_is_idempotent(self, evolved_pair):
        index, _, _ = evolved_pair
        epoch = index.epoch
        assert index.apply_delta(SCHEDULE, DAY) == 0
        # an empty delta is a no-op: the epoch holds, so resident
        # engines keep their warm memos (every verdict is still valid)
        assert index.epoch == epoch

    def test_empty_delta_keeps_engine_memo(self):
        engine = RiskEngine(TypoRiskIndex(
            SEED, MAX_RANK, churn=SCHEDULE.generations(DAY), day=DAY))
        engine.lookup("gmial.com")
        warm = engine.cache_stats()
        assert warm["size"] == 1
        assert engine.apply_delta(SCHEDULE, DAY) == 0
        assert engine.cache_stats() == warm
        # and the memoized verdict is served, not recomputed
        engine.lookup("gmial.com")
        assert engine.cache_stats()["hits"] == warm["hits"] + 1

    def test_rewind_to_day_zero(self, evolved_pair):
        index, _, _ = evolved_pair
        index.apply_delta(SCHEDULE, 0)
        pristine = TypoRiskIndex(SEED, MAX_RANK)
        assert index.canonical_dict() == pristine.canonical_dict()


class TestEngineEpoch:
    def test_epoch_bump_clears_the_memo(self):
        engine = RiskEngine(TypoRiskIndex(SEED, MAX_RANK))
        engine.lookup("gmial.com")
        assert engine.cache_stats()["size"] == 1
        engine.apply_delta(SCHEDULE, DAY)
        assert engine.cache_stats()["size"] == 0
        # verdicts after the delta match a fresh engine over the
        # evolved world
        fresh = RiskEngine(TypoRiskIndex(
            SEED, MAX_RANK, churn=SCHEDULE.generations(DAY), day=DAY))
        assert engine.lookup("gmial.com").canonical_json() == \
            fresh.lookup("gmial.com").canonical_json()

    def test_external_delta_is_noticed_on_lookup(self):
        """Index evolved behind the engine's back: the epoch guard."""
        index = TypoRiskIndex(SEED, MAX_RANK)
        engine = RiskEngine(index)
        engine.lookup("gmial.com")
        index.apply_delta(SCHEDULE, DAY)
        engine.lookup("gmial.com")
        assert engine.cache_stats()["size"] == 1  # memo was rebuilt


class TestScheduleValidation:
    def test_seed_mismatch_is_refused(self):
        index = TypoRiskIndex(SEED, MAX_RANK)
        with pytest.raises(ConfigError):
            index.apply_delta(ChurnSchedule(seed=SEED + 1,
                                            max_rank=MAX_RANK), DAY)

    def test_narrow_schedule_is_refused(self):
        index = TypoRiskIndex(SEED, MAX_RANK)
        with pytest.raises(ConfigError):
            index.apply_delta(ChurnSchedule(seed=SEED,
                                            max_rank=MAX_RANK - 1), DAY)
