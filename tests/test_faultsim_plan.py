"""Unit tests for the fault-plan schema and the deterministic draws.

The plan layer is pure data: construction validates, JSON round-trips
canonically, digests identify plans, and :func:`unit_draw` gives every
fault decision an order-independent source of randomness.
"""

import pytest

from repro.faultsim import (
    NO_LOOKUP_FAULTS,
    SERVICE_FAULT_KINDS,
    DnsFaultSpell,
    FaultPlan,
    OutageSpan,
    ServiceFaultInjector,
    ServiceFaultSpell,
    ShardCrashSpec,
    SmtpFaultSpell,
    unit_draw,
)
from repro.smtpsim import RetryPolicy, SendStatus

pytestmark = pytest.mark.chaos


class TestSpanValidation:
    def test_outage_span_accepts_half_open_window(self):
        span = OutageSpan(3, 7)
        assert [span.covers(d) for d in (2, 3, 6, 7)] == [
            False, True, True, False]

    @pytest.mark.parametrize("start,end", [(-1, 3), (5, 5), (7, 2)])
    def test_outage_span_rejects_bad_windows(self, start, end):
        with pytest.raises(ValueError):
            OutageSpan(start, end)

    def test_outage_span_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            OutageSpan(1, 2, mode="explode")

    def test_dns_spell_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DnsFaultSpell(1, 2, probability=1.5)

    def test_smtp_spell_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SmtpFaultSpell(1, 2, tempfail_probability=-0.1)

    def test_crash_spec_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ShardCrashSpec(rank=0)
        with pytest.raises(ValueError):
            ShardCrashSpec(rank=1, failures=0)
        with pytest.raises(ValueError):
            ShardCrashSpec(rank=1, mode="melt")


class TestSuffixMatching:
    def test_dns_suffixes_bound_the_blast_radius(self):
        spell = DnsFaultSpell(0, 9, domain_suffixes=("gmail.com",))
        assert spell.matches_domain("gmail.com")
        assert spell.matches_domain("mx.gmail.com")
        assert not spell.matches_domain("notgmail.com")

    def test_empty_suffixes_match_everything(self):
        assert DnsFaultSpell(0, 9).matches_domain("anything.org")
        assert SmtpFaultSpell(0, 9).matches_host("any.host")

    def test_smtp_host_matching_is_case_insensitive(self):
        spell = SmtpFaultSpell(0, 9, host_suffixes=("VPS.example.COM",))
        assert spell.matches_host("vps.example.com")
        assert spell.matches_host("MX.VPS.EXAMPLE.COM")


class TestPlanIdentity:
    def test_empty_plan_is_empty(self):
        assert FaultPlan.empty().is_empty
        assert FaultPlan(seed=99).is_empty
        assert not FaultPlan.chaos_demo(1).is_empty

    def test_json_round_trip_preserves_digest(self):
        plan = FaultPlan.chaos_demo(7)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.digest() == plan.digest()

    def test_digest_distinguishes_plans(self):
        assert FaultPlan.chaos_demo(1).digest() != FaultPlan.chaos_demo(2).digest()
        assert FaultPlan.empty().digest() != FaultPlan.chaos_demo(1).digest()

    def test_retry_policy_rides_along(self):
        policy = RetryPolicy(max_attempts=2, initial_delay_seconds=10.0)
        plan = FaultPlan(seed=1, retry=policy)
        assert FaultPlan.from_json(plan.to_json()).retry == policy


class TestCrashSpecLookup:
    def test_spec_matches_only_the_covering_shard(self):
        plan = FaultPlan(seed=0, shard_crashes=(
            ShardCrashSpec(rank=10, failures=2),))
        assert plan.crash_spec_for_shard(1, 11, attempt=1) is not None
        assert plan.crash_spec_for_shard(10, 20, attempt=1) is not None
        assert plan.crash_spec_for_shard(11, 20, attempt=1) is None

    def test_spec_stops_firing_after_failures_exhausted(self):
        plan = FaultPlan(seed=0, shard_crashes=(
            ShardCrashSpec(rank=5, failures=2),))
        assert plan.crash_spec_for_shard(1, 9, attempt=2) is not None
        assert plan.crash_spec_for_shard(1, 9, attempt=3) is None


class TestUnitDraw:
    def test_pure_function_of_seed_and_context(self):
        assert unit_draw(5, "a", 1) == unit_draw(5, "a", 1)
        assert unit_draw(5, "a", 1) != unit_draw(6, "a", 1)
        assert unit_draw(5, "a", 1) != unit_draw(5, "a", 2)

    def test_draws_live_in_unit_interval_and_spread(self):
        draws = [unit_draw(3, "x", i) for i in range(400)]
        assert all(0.0 <= d < 1.0 for d in draws)
        mean = sum(draws) / len(draws)
        assert 0.4 < mean < 0.6


class TestRetryPolicy:
    def test_delay_schedule_is_exponential(self):
        policy = RetryPolicy(initial_delay_seconds=100.0, backoff_factor=3.0)
        assert policy.delay_for_attempt(1) == 100.0
        assert policy.delay_for_attempt(2) == 300.0
        assert policy.delay_for_attempt(3) == 900.0
        with pytest.raises(ValueError):
            policy.delay_for_attempt(0)

    def test_retries_tempfail_but_not_transport_by_default(self):
        policy = RetryPolicy()
        assert policy.retries(SendStatus.TEMPFAIL)
        assert not policy.retries(SendStatus.TIMEOUT)
        assert not policy.retries(SendStatus.NETWORK_ERROR)
        assert not policy.retries(SendStatus.BOUNCED)

    def test_transport_retries_are_opt_in(self):
        policy = RetryPolicy(retry_transport_errors=True)
        assert policy.retries(SendStatus.TIMEOUT)
        assert policy.retries(SendStatus.NETWORK_ERROR)
        assert not policy.retries(SendStatus.BOUNCED)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_queue_seconds=0.0)


class TestServiceSpells:
    def test_window_is_half_open_over_lookup_sequence(self):
        spell = ServiceFaultSpell(10, 20, "index_error")
        assert [spell.covers(s) for s in (9, 10, 19, 20)] == [
            False, True, True, False]

    @pytest.mark.parametrize("start,end", [(-1, 3), (5, 5), (7, 2)])
    def test_rejects_bad_windows(self, start, end):
        with pytest.raises(ValueError):
            ServiceFaultSpell(start, end, "index_error")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ServiceFaultSpell(1, 2, "disk_melt")

    def test_rejects_bad_probability_and_stall(self):
        with pytest.raises(ValueError):
            ServiceFaultSpell(1, 2, "scorer_stall", probability=1.5)
        with pytest.raises(ValueError):
            ServiceFaultSpell(1, 2, "scorer_stall", stall_ms=-1.0)

    def test_churn_delta_needs_a_target_day(self):
        with pytest.raises(ValueError):
            ServiceFaultSpell(1, 2, "churn_delta")  # churn_day defaults 0
        spell = ServiceFaultSpell(1, 2, "churn_delta", churn_day=30)
        assert spell.churn_rate == 0.004

    def test_service_spells_round_trip_with_the_digest(self):
        plan = FaultPlan.service_chaos_demo(7, lookups=10_000)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.digest() == plan.digest()
        assert not plan.is_empty
        assert len(plan.service_spells) == 4
        assert {s.kind for s in plan.service_spells} == set(
            SERVICE_FAULT_KINDS)

    def test_demo_plan_rejects_trivial_streams(self):
        with pytest.raises(ValueError):
            FaultPlan.service_chaos_demo(0, lookups=50)


class TestServiceFaultInjector:
    def test_empty_plan_injects_nothing(self):
        injector = ServiceFaultInjector(FaultPlan.empty())
        assert injector.is_empty
        for _ in range(5):
            assert injector.step() is NO_LOOKUP_FAULTS
        assert injector.sequence == 5

    def test_step_stream_is_a_pure_replay(self):
        plan = FaultPlan.service_chaos_demo(11, lookups=1000)
        first = ServiceFaultInjector(plan)
        second = ServiceFaultInjector(plan)
        assert [first.step() for _ in range(1000)] == \
            [second.step() for _ in range(1000)]

    def test_fast_forward_lands_in_the_serial_state(self):
        plan = FaultPlan.service_chaos_demo(11, lookups=1000)
        serial = ServiceFaultInjector(plan)
        tail = [serial.step() for _ in range(1000)][600:]
        jumped = ServiceFaultInjector(plan)
        jumped.fast_forward(600)
        assert jumped.sequence == 600
        assert [jumped.step() for _ in range(400)] == tail

    def test_churn_fires_exactly_once_per_spell(self):
        plan = FaultPlan(seed=3, service_spells=(
            ServiceFaultSpell(5, 50, "churn_delta", churn_day=10),))
        injector = ServiceFaultInjector(plan)
        fired = [faults.churn_day for faults in
                 (injector.step() for _ in range(60))
                 if faults.churn_day is not None]
        assert fired == [10]
