"""Unit tests for the labelled corpora and text generation."""

import math

import pytest

from repro.pipeline import SensitiveScrubber
from repro.util import SeededRng
from repro.workloads import (
    DATASET_PROFILES,
    BodyBuilder,
    EnronLikeCorpus,
    PersonaFactory,
    build_dataset,
    evaluate_scrubber,
    evaluate_spamassassin,
)
from repro.workloads.textgen import make_attachment_payload


class TestPersonaFactory:
    def test_email_at_requested_domain(self):
        factory = PersonaFactory(SeededRng(1))
        persona = factory.make("gmail.com")
        assert persona.email.endswith("@gmail.com")
        assert "@" in persona.full_address

    def test_display_name_title_case(self):
        persona = PersonaFactory(SeededRng(2)).make("x.com")
        assert persona.display_name[0].isupper()

    def test_styles(self):
        factory = PersonaFactory(SeededRng(3))
        numbered = factory.make("x.com", style="numbered")
        assert any(ch.isdigit() for ch in numbered.email)
        firstlast = factory.make("x.com", style="firstlast")
        assert firstlast.first_name in firstlast.email

    def test_deterministic(self):
        a = PersonaFactory(SeededRng(4)).make("x.com")
        b = PersonaFactory(SeededRng(4)).make("x.com")
        assert a == b


class TestBodyBuilder:
    def test_body_contains_closing(self):
        builder = BodyBuilder(SeededRng(5))
        body = builder.body(topic="work", closing_name="alice")
        assert "thanks, alice" in body

    def test_sentence_count(self):
        builder = BodyBuilder(SeededRng(6))
        body = builder.body(topic="travel", sentences=4)
        assert len(body.splitlines()) == 5  # 4 sentences + closing

    def test_unknown_topic_rejected(self):
        builder = BodyBuilder(SeededRng(7))
        with pytest.raises(KeyError):
            builder.sentence("nonexistent-topic")

    def test_ham_avoids_spam_phrases(self):
        """Benign vocabulary must not trip the Layer-2 phrase rules."""
        from repro.spamfilter.spamassassin import _SPAM_PHRASES
        builder = BodyBuilder(SeededRng(8))
        for _ in range(100):
            body = builder.body()
            for phrase in _SPAM_PHRASES:
                assert phrase not in body


class TestAttachmentPayloads:
    def test_pdf_container_roundtrip(self):
        from repro.pipeline import extract_text
        from repro.smtpsim import Attachment
        payload = make_attachment_payload("pdf", "hello world")
        assert extract_text(Attachment("a.pdf", payload)) == "hello world"

    def test_docx_container_roundtrip(self):
        from repro.pipeline import extract_text
        from repro.smtpsim import Attachment
        payload = make_attachment_payload("docx", "line one\nline two")
        text = extract_text(Attachment("a.docx", payload))
        assert "line one" in text and "line two" in text

    def test_image_ocr_roundtrip(self):
        from repro.pipeline import extract_text
        from repro.smtpsim import Attachment
        payload = make_attachment_payload("png", "scanned receipt 42")
        assert "scanned receipt" in extract_text(Attachment("a.png", payload))

    def test_image_without_text(self):
        from repro.pipeline import extract_text
        from repro.smtpsim import Attachment
        payload = make_attachment_payload("jpg", "")
        assert extract_text(Attachment("a.jpg", payload)) is None

    def test_xlsx_roundtrip(self):
        from repro.pipeline import extract_text
        from repro.smtpsim import Attachment
        payload = make_attachment_payload("xlsx", "Revenue\n4500")
        text = extract_text(Attachment("a.xlsx", payload))
        assert "Revenue" in text


class TestEnronLikeCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return EnronLikeCorpus(SeededRng(9)).generate(400)

    def test_entities_present_in_text(self, corpus):
        for email in corpus:
            for entity in email.entities:
                # evasive plantings may reformat the value; at minimum a
                # recognisable fragment appears
                fragment = entity.value.split("@")[0][:4]
                assert fragment.lower() in email.text.lower(), entity

    def test_all_kinds_planted_somewhere(self, corpus):
        kinds = {entity.kind for email in corpus for entity in email.entities}
        assert {"creditcard", "ssn", "ein", "password", "vin", "username",
                "zip", "idnumber", "email", "phone", "date"} <= kinds

    def test_evaluation_structure(self, corpus):
        scores = evaluate_scrubber(corpus, SensitiveScrubber())
        assert set(scores) >= {"creditcard", "password", "email"}
        for score in scores.values():
            assert score.true_positives + score.false_negatives >= 0

    def test_deterministic(self):
        a = EnronLikeCorpus(SeededRng(10)).generate(20)
        b = EnronLikeCorpus(SeededRng(10)).generate(20)
        assert [e.text for e in a] == [e.text for e in b]


class TestSpamDatasets:
    def test_profiles_exist(self):
        assert set(DATASET_PROFILES) == {"trec", "csdmc", "spamassassin",
                                         "untroubled"}

    def test_untroubled_spam_only(self):
        dataset = build_dataset(DATASET_PROFILES["untroubled"], 200,
                                SeededRng(11))
        assert dataset.spam_count == len(dataset) == 200

    def test_mixed_dataset_balance(self):
        dataset = build_dataset(DATASET_PROFILES["trec"], 1000, SeededRng(12))
        assert 350 < dataset.spam_count < 650

    def test_evaluation_returns_scores(self):
        dataset = build_dataset(DATASET_PROFILES["csdmc"], 300, SeededRng(13))
        score = evaluate_spamassassin(dataset)
        assert 0.0 <= score.recall <= 1.0

    def test_deterministic(self):
        a = build_dataset(DATASET_PROFILES["trec"], 50, SeededRng(14))
        b = build_dataset(DATASET_PROFILES["trec"], 50, SeededRng(14))
        assert a.labels == b.labels
        assert [e.body for e in a.emails] == [e.body for e in b.emails]
