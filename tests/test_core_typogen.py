"""Tests for repro.core.typogen and keyboard adjacency."""

import pytest

from repro.core import (
    DOMAIN_ALPHABET,
    TypoGenerator,
    are_adjacent,
    damerau_levenshtein,
    qwerty_adjacency,
    split_domain,
)


class TestKeyboard:
    def test_same_row_neighbours(self):
        assert are_adjacent("q", "w")
        assert are_adjacent("a", "s")

    def test_cross_row_neighbours(self):
        assert are_adjacent("q", "a")
        assert are_adjacent("u", "h")

    def test_digit_row(self):
        assert are_adjacent("1", "2")
        assert are_adjacent("0", "o") or are_adjacent("0", "p")

    def test_far_keys_not_adjacent(self):
        assert not are_adjacent("q", "p")
        assert not are_adjacent("a", "l")

    def test_symmetry(self):
        for a in "qwertyuiopasdfghjklzxcvbnm":
            for b in qwerty_adjacency(a):
                assert a in qwerty_adjacency(b)

    def test_self_not_adjacent(self):
        assert not are_adjacent("g", "g")

    def test_unknown_char_empty(self):
        assert qwerty_adjacency("!") == frozenset()


class TestSplitDomain:
    def test_basic(self):
        assert split_domain("gmail.com") == ("gmail", "com")

    def test_multi_label_keeps_tld_only_split(self):
        assert split_domain("mail.google.com") == ("mail.google", "com")

    def test_case_normalised(self):
        assert split_domain("GMail.COM") == ("gmail", "com")

    def test_trailing_dot_stripped(self):
        assert split_domain("gmail.com.") == ("gmail", "com")

    def test_no_tld_rejected(self):
        with pytest.raises(ValueError):
            split_domain("localhost")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            split_domain(".com")


class TestTypoGenerator:
    def test_all_candidates_are_dl1(self):
        for cand in TypoGenerator().generate("gmail.com"):
            label = cand.domain.rsplit(".", 1)[0]
            assert damerau_levenshtein("gmail", label) == 1

    def test_no_duplicates(self):
        cands = TypoGenerator().generate("gmail.com")
        names = [c.domain for c in cands]
        assert len(names) == len(set(names))

    def test_target_not_in_candidates(self):
        names = [c.domain for c in TypoGenerator().generate("gmail.com")]
        assert "gmail.com" not in names

    def test_tld_preserved(self):
        assert all(c.domain.endswith(".net")
                   for c in TypoGenerator().generate("comcast.net"))

    def test_edit_types_all_present(self):
        types = {c.edit_type for c in TypoGenerator().generate("gmail.com")}
        assert types == {"addition", "deletion", "substitution", "transposition"}

    def test_fat_finger_only_subset(self):
        full = {c.domain for c in TypoGenerator().generate("gmail.com")}
        ff = {c.domain for c in TypoGenerator(fat_finger_only=True).generate("gmail.com")}
        assert ff < full

    def test_fat_finger_only_candidates_are_ff1(self):
        for cand in TypoGenerator(fat_finger_only=True).generate("gmail.com"):
            if cand.edit_type in ("substitution", "addition"):
                assert cand.fat_finger == 1, cand

    def test_no_invalid_labels(self):
        # additions at the edges could create leading/trailing hyphens
        for cand in TypoGenerator().generate("a-b.com"):
            label = cand.domain.rsplit(".", 1)[0]
            assert not label.startswith("-")
            assert not label.endswith("-")

    def test_count_formula_rough(self):
        # gmail (len 5): 5 deletions + <=4 transpositions + 5*36 subs + 6*36 adds
        cands = TypoGenerator().generate("gmail.com")
        assert 350 < len(cands) < 420

    def test_generate_many_dedupes_across_targets(self):
        # gmail.com and gmail.net do not collide; but two close targets do
        cands = TypoGenerator().generate_many(["gmail.com", "gmaul.com"])
        names = [c.domain for c in cands]
        assert len(names) == len(set(names))

    def test_annotate_known_typo(self):
        cand = TypoGenerator().annotate("outlook.com", "ohtlook.com")
        assert cand is not None
        assert cand.edit_type == "substitution"
        assert cand.fat_finger == 1

    def test_annotate_far_domain_none(self):
        assert TypoGenerator().annotate("outlook.com", "yahoo.com") is None

    def test_annotate_wrong_tld_none(self):
        assert TypoGenerator().annotate("outlook.com", "ohtlook.net") is None

    def test_normalized_visual(self):
        cand = TypoGenerator().annotate("outlook.com", "outlo0k.com")
        assert cand.normalized_visual == pytest.approx(cand.visual / 7)

    def test_alphabet_restriction(self):
        gen = TypoGenerator(alphabet="ab")
        for cand in gen.generate("gmail.com"):
            if cand.edit_type in ("substitution", "addition"):
                label = cand.domain.rsplit(".", 1)[0]
                new_chars = set(label) - set("gmail")
                assert new_chars <= set("ab")

    def test_domain_alphabet_is_ldh(self):
        assert set(DOMAIN_ALPHABET) == set("abcdefghijklmnopqrstuvwxyz0123456789-")
