"""Chaos serving × the learned scorer × scenario-event hot swaps.

Satellite contracts on the PR-8/PR-9 seam: a ``scorer="learned"``
engine behind the chaos layer keeps every resilience invariant the
rules engine pins (byte-identical fan-out, all lanes labeled, zero
drops, faults never raise); a lifecycle ``swap_model`` publish
invalidates the verdict memo exactly once and never on a no-op; and a
scenario event replayed through ``hot_swap`` bumps the memo epoch
exactly once per event while re-served verdicts stay correct and
labeled.
"""

import pytest

from repro.faultsim import FaultPlan, ServiceFaultSpell
from repro.learned import shadow_retrain, train_typo_model
from repro.learned.lifecycle import campaign_message_window
from repro.scenario import drift_drill_scenario
from repro.service import (
    LookupWorkload,
    ResilientServer,
    RiskEngine,
    TypoRiskIndex,
    verdict_stream_digest,
)
from repro.util.errors import ConfigError

pytestmark = pytest.mark.chaos

SEED = 707
MAX_RANK = 700
LOOKUPS = 2500

DEMO_PLAN = FaultPlan.service_chaos_demo(seed=SEED, lookups=LOOKUPS)


@pytest.fixture(scope="module")
def model():
    trained, _ = train_typo_model(SEED, ranks=300, dataset_size=40)
    return trained


@pytest.fixture(scope="module")
def queries():
    index = TypoRiskIndex(SEED, MAX_RANK)
    workload = LookupWorkload(SEED, MAX_RANK, pool_size=192,
                              world=index.world)
    return list(workload.queries(LOOKUPS))


def learned_engine(model, *, churn=None, day=0):
    index = TypoRiskIndex(SEED, MAX_RANK, churn=churn or {}, day=day)
    return RiskEngine(index, scorer="learned", model=model)


def serve(model, plan, queries, *, jobs=None):
    server = ResilientServer(learned_engine(model), plan)
    verdicts = server.batch_lookup(queries, jobs=jobs)
    return server, verdicts


class TestLearnedChaosReplay:
    def test_fanout_is_byte_identical_to_serial(self, model, queries):
        serial_server, serial = serve(model, DEMO_PLAN, queries)
        fanned_server, fanned = serve(model, DEMO_PLAN, queries, jobs=2)
        assert [v.canonical_json() for v in fanned] == \
            [v.canonical_json() for v in serial]
        assert fanned_server.report() == serial_server.report()

    def test_every_lane_answers_and_nothing_drops(self, model, queries):
        server, verdicts = serve(model, DEMO_PLAN, queries)
        sources = {v.source for v in verdicts}
        assert {"scorer", "degraded", "rules_only", "shed"} <= sources
        assert len(verdicts) == len(queries)
        assert server.stats.answered == len(queries)

    def test_empty_plan_is_pinned_to_the_plain_learned_engine(
            self, model, queries):
        baseline = verdict_stream_digest(
            learned_engine(model).lookup(q) for q in queries[:800])
        server = ResilientServer(learned_engine(model))
        assert verdict_stream_digest(
            server.lookup(q) for q in queries[:800]) == baseline

    def test_error_burst_trips_the_breaker_without_raising(self, model,
                                                           queries):
        plan = FaultPlan(seed=SEED, service_spells=(
            ServiceFaultSpell(100, 400, "index_error", probability=1.0),))
        server, verdicts = serve(model, plan, queries[:800])
        health = server.report()["health"]
        assert health["tripped"] == 2
        assert [t[2] for t in health["transitions"]][:2] == \
            ["degraded", "rules_only"]
        assert any(v.source == "rules_only" for v in verdicts)


class TestModelSwapInvalidation:
    """``swap_model`` is the lifecycle's promote hook into the engine:
    one memo flush per publish, none on a no-op."""

    @pytest.fixture()
    def candidate(self, model):
        window_X, window_y = campaign_message_window(
            model, SEED, "adaptive-campaign", pool_size=400,
            evasion_bias=0.9)
        return shadow_retrain(model, SEED, "adaptive-campaign",
                              window_X, window_y)

    def test_swap_clears_the_memo_exactly_once(self, model, candidate,
                                               queries):
        engine = learned_engine(model)
        for query in queries[:200]:
            engine.lookup(query)
        assert engine.cache_stats()["size"] > 0
        assert engine.model_epoch == 0
        assert engine.swap_model(candidate) == 1
        assert engine.cache_stats() == {"hits": 0, "misses": 0, "size": 0}
        # the world did not move: only the model epoch advances
        assert engine.index.epoch == learned_engine(model).index.epoch

    def test_noop_swap_keeps_the_warm_memo(self, model, queries):
        engine = learned_engine(model)
        for query in queries[:100]:
            engine.lookup(query)
        warm = engine.cache_stats()
        assert engine.swap_model(model) == 0
        assert engine.cache_stats() == warm

    def test_post_swap_verdicts_match_a_fresh_candidate_engine(
            self, model, candidate, queries):
        engine = learned_engine(model)
        for query in queries[:150]:
            engine.lookup(query)
        engine.swap_model(candidate)
        fresh = learned_engine(candidate)
        assert [engine.lookup(q).canonical_json()
                for q in queries[:150]] == \
            [fresh.lookup(q).canonical_json() for q in queries[:150]]

    def test_swap_to_null_model_is_rejected(self, model):
        engine = learned_engine(model)
        with pytest.raises(ConfigError, match="null"):
            engine.swap_model(None)


class TestScenarioEventHotSwap:
    """Replaying a scenario's churn + defensive-registration day through
    ``hot_swap`` bumps the verdict-memo epoch exactly once per event
    boundary; re-served verdicts stay correct and labeled."""

    @pytest.fixture(scope="class")
    def evolution(self):
        return drift_drill_scenario(SEED, max_rank=MAX_RANK) \
            .world_evolution()

    def test_event_day_bumps_the_epoch_exactly_once(self, model,
                                                    evolution, queries):
        engine = learned_engine(model)
        for query in queries[:300]:
            engine.lookup(query)
        assert engine.cache_stats()["size"] > 0
        epoch_before = engine.index.epoch
        changed = engine.hot_swap(evolution, day=1)
        assert changed > 0
        assert engine.index.epoch == epoch_before + 1
        assert engine.cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_replaying_the_same_day_is_a_noop(self, model, evolution,
                                              queries):
        engine = learned_engine(model)
        engine.hot_swap(evolution, day=1)
        for query in queries[:100]:
            engine.lookup(query)
        warm = engine.cache_stats()
        epoch = engine.index.epoch
        assert engine.hot_swap(evolution, day=1) == 0
        assert engine.index.epoch == epoch
        assert engine.cache_stats() == warm

    def test_post_event_verdicts_match_an_engine_born_evolved(
            self, model, evolution, queries):
        engine = learned_engine(model)
        for query in queries[:200]:
            engine.lookup(query)
        engine.hot_swap(evolution, day=1)
        born = learned_engine(model, churn=evolution.generations(1),
                              day=1)
        assert [engine.lookup(q).canonical_json()
                for q in queries[:200]] == \
            [born.lookup(q).canonical_json() for q in queries[:200]]

    def test_two_generation_memo_survives_the_event(self, model,
                                                    evolution, queries):
        engine = learned_engine(model)
        engine.hot_swap(evolution, day=1)
        first = [engine.lookup(q) for q in queries[:150]]
        warm = engine.cache_stats()
        # memory pressure mid-event drops only the old generation; the
        # repeat stream stays all-hits with identical labeled verdicts
        engine.shrink_memo()
        again = [engine.lookup(q) for q in queries[:150]]
        assert [v.canonical_json() for v in again] == \
            [v.canonical_json() for v in first]
        stats = engine.cache_stats()
        assert stats["hits"] == warm["hits"] + len(queries[:150])
        assert stats["misses"] == warm["misses"]
