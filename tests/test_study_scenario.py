"""Scenario-driven studies: living internet + drift lifecycle in the loop.

Satellite contracts at the experiment layer: a ``study --scenario`` run
drives the scenario timeline and the model lifecycle alongside the day
loop and reports both; killing it mid-event and mid-retrain heals to a
byte-identical record stream (at any ``classify_jobs``); an *empty*
scenario is pinned byte-identical to running without one; and the
checkpoint identity gains a scenario key only for scenario runs, so
every pre-scenario checkpoint stays loadable.
"""

import pytest

from repro.experiment import (
    ExperimentConfig,
    StudyRunner,
    config_identity,
    record_stream_digest,
    run_durable_study,
)
from repro.faultsim.plan import FaultPlan, StudyCrashSpec
from repro.learned import save_model, train_typo_model
from repro.scenario import Scenario, ScenarioDriver, drift_drill_scenario
from repro.util.errors import ConfigError

CHEAP = dict(seed=41, spam_scale=1e-5, ham_scale=0.5, outage_spans=())

#: the retrain campaign lands on scenario day 2, which fires during
#: study day 1; day 5 is a plain mid-event day boundary
CRASHES = (StudyCrashSpec(day=1, failures=1, phase="retrain"),
           StudyCrashSpec(day=5, failures=1))


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    model, _ = train_typo_model(41, ranks=300, dataset_size=40)
    path = tmp_path_factory.mktemp("model") / "model.json"
    save_model(model, str(path))
    return model, str(path)


@pytest.fixture(scope="module")
def scenario():
    return drift_drill_scenario(41)


@pytest.fixture(scope="module")
def baseline(model_file, scenario, tmp_path_factory):
    """Uninterrupted scenario study — the byte-identity reference."""
    _, path = model_file
    config = ExperimentConfig(
        **CHEAP, detector="learned", model_path=path, scenario=scenario,
        model_dir=str(tmp_path_factory.mktemp("baseline-models")))
    return StudyRunner(config).run()


class TestScenarioStudy:
    def test_scenario_report_carries_the_timeline(self, baseline,
                                                  scenario):
        report = baseline.robustness["scenario"]
        assert report["name"] == scenario.name
        assert report["digest"] == scenario.digest()
        assert report["days"] > scenario.last_event_day()
        fired = [name for sample in report["samples"]
                 for name in sample["events"]]
        assert fired == ["burst-tail", "defend-head", "adaptive-campaign"]
        assert all(sample["metrics"] for sample in report["samples"])

    def test_study_timeline_matches_the_standalone_driver(self, baseline,
                                                          scenario):
        report = baseline.robustness["scenario"]
        driver = ScenarioDriver(scenario)
        driver.run(report["days"])
        assert report["timeline_digest"] == driver.timeline_digest()

    def test_campaign_trips_and_promotes_in_the_loop(self, baseline,
                                                     model_file):
        model, _ = model_file
        lifecycle = baseline.robustness["scenario"]["lifecycle"]
        (event,) = lifecycle["events"]
        assert event["event"] == "adaptive-campaign"
        assert event["decision"]["action"] == "promote"
        assert event["decision"]["drift"]["tripped"]
        gate = event["decision"]["gate"]
        assert gate["candidate_recall"] > gate["incumbent_recall"]
        # the promoted model classifies the rest of the study
        assert lifecycle["active_digest"] != model.digest()
        assert lifecycle["active_digest"] == \
            event["decision"]["active_digest"]

    @pytest.mark.chaos
    def test_kill_mid_retrain_and_mid_event_heals_identically(
            self, tmp_path, baseline, model_file, scenario):
        _, path = model_file
        config = ExperimentConfig(
            **CHEAP, detector="learned", model_path=path,
            scenario=scenario, classify_jobs=2,
            fault_plan=FaultPlan(seed=7, study_crashes=CRASHES))
        outcome = run_durable_study(config, tmp_path / "study.ckpt",
                                    checkpoint_interval=25)
        assert outcome.restarts == 2
        assert (record_stream_digest(outcome.results.records)
                == record_stream_digest(baseline.records))
        durability = outcome.results.robustness["durability"]
        assert durability["crash_attempts"] == {"1:retrain": 2, "5": 2}
        # the scenario + lifecycle trajectory healed byte-identically too
        assert outcome.results.robustness["scenario"] == \
            baseline.robustness["scenario"]


class TestEmptyScenarioPin:
    def test_empty_scenario_is_byte_identical_to_none(self):
        static = StudyRunner(ExperimentConfig(**CHEAP)).run()
        empty = Scenario(seed=41, name="static", max_rank=2000)
        wired = StudyRunner(
            ExperimentConfig(**CHEAP, scenario=empty)).run()
        assert (record_stream_digest(wired.records)
                == record_stream_digest(static.records))
        report = wired.robustness["scenario"]
        assert report["lifecycle"] is None
        assert all(sample["events"] == [] for sample in report["samples"])
        assert "scenario" not in (static.robustness or {})


class TestScenarioConfigContracts:
    def test_identity_gains_a_key_only_for_scenario_runs(self, scenario):
        plain = config_identity(ExperimentConfig(**CHEAP))
        wired = config_identity(
            ExperimentConfig(**CHEAP, scenario=scenario))
        assert "scenario" not in plain
        assert wired["scenario"] == scenario.to_dict()
        assert {k: v for k, v in wired.items() if k != "scenario"} == \
            plain

    def test_retrain_events_need_a_learned_detector(self, scenario):
        config = ExperimentConfig(**CHEAP, scenario=scenario)
        with pytest.raises(ConfigError, match="retrain=True"):
            StudyRunner(config).run()

    def test_retrain_events_need_a_model_directory(self, model_file,
                                                   scenario):
        _, path = model_file
        config = ExperimentConfig(**CHEAP, detector="learned",
                                  model_path=path, scenario=scenario)
        with pytest.raises(ConfigError, match="model_dir"):
            StudyRunner(config).run()

    def test_model_dir_without_learned_detector_is_rejected(self,
                                                            scenario):
        with pytest.raises(ValueError, match="model_dir"):
            ExperimentConfig(**CHEAP, scenario=scenario,
                             model_dir="somewhere")
