"""Tests for the typing-mistake model (Pt, Pc, E_ij)."""

import pytest

from repro.core import EMAIL_TARGETS, TypoGenerator
from repro.workloads import (
    TypingMistakeModel,
    TypoModelConfig,
    calibrate_global_volume,
)


@pytest.fixture(scope="module")
def model():
    return TypingMistakeModel()


@pytest.fixture(scope="module")
def generator():
    return TypoGenerator()


class TestMistypeProbability:
    def test_probabilities_sum_to_base_rate(self, model, generator):
        candidates = generator.generate("gmail.com")
        total = sum(model.mistype_probability(c) for c in candidates)
        assert total == pytest.approx(model.config.base_typo_probability)

    def test_deletion_beats_addition(self, model, generator):
        """Figure 9: deletion typos are far more frequent than additions."""
        candidates = generator.generate("gmail.com")
        deletions = [model.mistype_probability(c) for c in candidates
                     if c.edit_type == "deletion"]
        additions = [model.mistype_probability(c) for c in candidates
                     if c.edit_type == "addition"]
        mean_deletion = sum(deletions) / len(deletions)
        mean_addition = sum(additions) / len(additions)
        assert mean_deletion > 2 * mean_addition

    def test_fat_finger_substitution_beats_random(self, model, generator):
        candidates = [c for c in generator.generate("gmail.com")
                      if c.edit_type == "substitution"]
        ff = [model.mistype_probability(c) for c in candidates if c.is_fat_finger]
        non_ff = [model.mistype_probability(c) for c in candidates
                  if not c.is_fat_finger]
        assert min(ff) > max(non_ff)

    def test_nonnegative(self, model, generator):
        for candidate in generator.generate("chase.com"):
            assert model.mistype_probability(candidate) >= 0


class TestCorrectionProbability:
    def test_bounded(self, model, generator):
        config = model.config
        for candidate in generator.generate("outlook.com"):
            pc = model.correction_probability(candidate)
            assert config.correction_floor <= pc <= config.correction_ceiling

    def test_visible_mistakes_corrected_more(self, model, generator):
        """outlo0k (invisible) must be corrected less than outmook (visible)."""
        invisible = generator.annotate("outlook.com", "outlo0k.com")
        visible = generator.annotate("outlook.com", "outmook.com")
        assert model.correction_probability(invisible) < \
            model.correction_probability(visible)

    def test_zero_visual_at_floor(self, model, generator):
        candidates = generator.generate("outlook.com")
        least_visible = min(candidates, key=lambda c: c.normalized_visual)
        pc = model.correction_probability(least_visible)
        assert pc < model.config.correction_floor + 0.2


class TestExpectedVolume:
    def test_monotone_in_target_volume(self, model, generator):
        candidate = generator.annotate("gmail.com", "gmial.com")
        low = model.expected_yearly_emails(1e6, candidate)
        high = model.expected_yearly_emails(1e8, candidate)
        assert high == pytest.approx(low * 100)

    def test_low_visual_wins_for_same_target(self, model, generator):
        """The paper's core finding: visual distance dominates."""
        invisible = generator.annotate("outlook.com", "outlo0k.com")
        visible = generator.annotate("outlook.com", "oxtlook.com")
        assert model.expected_yearly_emails(1e8, invisible) > \
            model.expected_yearly_emails(1e8, visible)


class TestCalibration:
    def test_calibrated_volume_hits_target(self, model, generator):
        targets = {t.name: t for t in EMAIL_TARGETS}
        candidates = (generator.generate("gmail.com")[:40]
                      + generator.generate("outlook.com")[:40])
        volume = calibrate_global_volume(candidates, targets, model,
                                         desired_total_yearly=5000.0)
        total = sum(
            model.expected_yearly_emails(
                volume * targets[c.target].email_share, c)
            for c in candidates)
        assert total == pytest.approx(5000.0, rel=1e-6)

    def test_empty_corpus_rejected(self, model):
        targets = {t.name: t for t in EMAIL_TARGETS}
        with pytest.raises(ValueError):
            calibrate_global_volume([], targets, model, 5000.0)

    def test_config_override(self, generator):
        config = TypoModelConfig(base_typo_probability=0.1)
        model = TypingMistakeModel(config=config)
        candidates = generator.generate("gmail.com")
        total = sum(model.mistype_probability(c) for c in candidates)
        assert total == pytest.approx(0.1)
