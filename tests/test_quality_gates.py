"""Repository-wide quality gates: docs and API hygiene."""

import importlib
import inspect
import pkgutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro

PACKAGES = [
    "repro", "repro.util", "repro.core", "repro.dnssim", "repro.smtpsim",
    "repro.infra", "repro.pipeline", "repro.spamfilter", "repro.workloads",
    "repro.ecosystem", "repro.extrapolate", "repro.honey", "repro.analysis",
    "repro.defenses", "repro.experiment",
]


def _all_modules():
    modules = []
    for name in PACKAGES:
        package = importlib.import_module(name)
        modules.append(package)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                modules.append(importlib.import_module(
                    f"{name}.{info.name}"))
    return {m.__name__: m for m in modules}.values()


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        for module in _all_modules():
            assert module.__doc__, f"{module.__name__} lacks a docstring"
            assert len(module.__doc__.strip()) > 20, module.__name__

    def test_every_public_item_documented(self):
        undocumented = []
        for name in PACKAGES:
            package = importlib.import_module(name)
            for symbol in getattr(package, "__all__", []):
                item = getattr(package, symbol)
                if inspect.isclass(item) or inspect.isfunction(item):
                    if not (item.__doc__ and item.__doc__.strip()):
                        undocumented.append(f"{name}.{symbol}")
        assert not undocumented, undocumented

    def test_public_classes_document_public_methods(self):
        missing = []
        for name in PACKAGES:
            package = importlib.import_module(name)
            for symbol in getattr(package, "__all__", []):
                item = getattr(package, symbol)
                if not inspect.isclass(item):
                    continue
                for method_name, method in inspect.getmembers(
                        item, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != item.__name__:
                        continue  # inherited
                    if not (method.__doc__ and method.__doc__.strip()):
                        missing.append(f"{name}.{symbol}.{method_name}")
        # dataclass helpers and tiny accessors are allowed to be terse,
        # but the bulk of the public surface must be documented
        assert len(missing) < 40, sorted(missing)


class TestApiHygiene:
    def test_all_exports_resolve(self):
        for name in PACKAGES:
            package = importlib.import_module(name)
            for symbol in getattr(package, "__all__", []):
                assert hasattr(package, symbol), f"{name}.{symbol}"

    def test_version_exposed(self):
        assert repro.__version__


class TestExamplesCompile:
    def test_all_examples_compile(self):
        examples = sorted(
            (Path(__file__).parent.parent / "examples").glob("*.py"))
        assert len(examples) >= 6
        for path in examples:
            compile(path.read_text(), str(path), "exec")

    def test_fast_examples_run(self):
        root = Path(__file__).parent.parent
        for script in ("spam_funnel_demo.py", "username_squatting.py"):
            completed = subprocess.run(
                [sys.executable, str(root / "examples" / script)],
                capture_output=True, text=True, timeout=300)
            assert completed.returncode == 0, completed.stderr
            assert completed.stdout.strip()
