"""Tests for the per-layer funnel attribution report."""

import pytest

from repro.analysis import CollectedRecord, funnel_layer_report
from repro.pipeline import tokenize
from repro.smtpsim import EmailMessage
from repro.spamfilter.funnel import FilterResult, Verdict


#: full study run behind the layer report -- skipped in the '-m "not slow"' smoke lane
pytestmark = pytest.mark.slow


def _record(layer, kind="receiver",
            verdict=Verdict.SPAM):
    msg = EmailMessage.create("a@b.com", "c@gmial.com", "s", "b")
    return CollectedRecord(
        tokenized=tokenize(msg),
        result=FilterResult(verdict, kind, layer, "test"),
        study_domain="gmial.com",
        timestamp=0.0,
    )


class TestFunnelLayerReport:
    def test_counts_by_layer_and_kind(self):
        records = [
            _record(1), _record(2), _record(2),
            _record(2, kind="smtp"),
            _record(None, verdict=Verdict.TRUE_TYPO),
        ]
        report = funnel_layer_report(records)
        assert report.total == 5
        assert report.claimed_by_layer(1) == 1
        assert report.claimed_by_layer(2) == 3
        assert report.claimed_by_layer(None) == 1

    def test_survival_rate(self):
        records = [_record(2)] * 3 + [_record(None,
                                              verdict=Verdict.TRUE_TYPO)]
        report = funnel_layer_report(records)
        assert report.survival_rate() == pytest.approx(0.25)

    def test_cumulative_removal_monotone(self):
        records = ([_record(1)] * 2 + [_record(2)] * 5
                   + [_record(4, verdict=Verdict.REFLECTION)] * 3
                   + [_record(5, verdict=Verdict.FREQUENCY_FILTERED)]
                   + [_record(None, verdict=Verdict.TRUE_TYPO)] * 2)
        report = funnel_layer_report(records)
        rows = report.cumulative_removal()
        assert len(rows) == 6
        fractions = [fraction for _, _, fraction in rows[:5]]
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
        assert rows[-1][0] == "survived"
        assert rows[-1][1] == 2

    def test_rows_labelled(self):
        report = funnel_layer_report([_record(3)])
        assert report.rows() == [("L3 collaborative", "receiver", 1)]

    def test_empty(self):
        report = funnel_layer_report([])
        assert report.survival_rate() == 0.0
        assert report.total == 0

    def test_on_real_run(self):
        """On an actual study the funnel removes most mail before L5."""
        from repro.experiment import ExperimentConfig, StudyRunner
        results = StudyRunner(ExperimentConfig(seed=31,
                                               spam_scale=2e-5,
                                               outage_spans=())).run()
        report = funnel_layer_report(results.records)
        assert report.total == len(results.records)
        # survivors are the minority of all collected mail
        assert report.survival_rate() < 0.6
        # layer 2 claims a large share of the spam stream
        assert report.claimed_by_layer(2) > 0.2 * report.total * 0.3
