"""More property-based tests: DNS wildcards, zones, typo-space counting."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DOMAIN_ALPHABET, TypoGenerator
from repro.dnssim import (
    RecordType,
    ResourceRecord,
    collection_zone,
    normalize_name,
)

LABEL = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10)
SUBLABELS = st.lists(LABEL, min_size=1, max_size=3)


class TestWildcardProperties:
    @given(LABEL, SUBLABELS)
    def test_wildcard_matches_any_subdomain(self, apex, subs):
        domain = f"{apex}.com"
        record = ResourceRecord(f"*.{domain}", RecordType.MX, domain)
        name = ".".join(subs + [domain])
        assert record.matches(name)

    @given(LABEL)
    def test_wildcard_never_matches_apex(self, apex):
        domain = f"{apex}.com"
        record = ResourceRecord(f"*.{domain}", RecordType.MX, domain)
        assert not record.matches(domain)

    @given(LABEL, LABEL)
    def test_wildcard_never_matches_sibling(self, apex, other):
        if apex == other:
            return
        record = ResourceRecord(f"*.{apex}.com", RecordType.MX,
                                f"{apex}.com")
        assert not record.matches(f"{other}.com")
        assert not record.matches(f"sub.{other}.com")

    @given(LABEL, SUBLABELS)
    def test_collection_zone_total_coverage(self, apex, subs):
        """The study's catch-all zone answers MX+A for every subdomain."""
        domain = f"{apex}.com"
        zone = collection_zone(domain, "10.0.0.1")
        name = ".".join(subs + [domain])
        assert zone.mx_hosts(name) == [domain]
        assert zone.a_addresses(name) == ["10.0.0.1"]

    @given(st.text(min_size=1, max_size=30))
    def test_normalize_idempotent(self, name):
        once = normalize_name(name)
        assert normalize_name(once) == once


class TestTypoSpaceCounting:
    @given(LABEL)
    @settings(max_examples=40, deadline=None)
    def test_candidate_count_upper_bound(self, label):
        """|gtypos| <= deletions + transpositions + subs + adds."""
        generator = TypoGenerator()
        candidates = generator.generate(f"{label}.com")
        n = len(label)
        alphabet = len(DOMAIN_ALPHABET)
        upper = n + (n - 1) + n * (alphabet - 1) + (n + 1) * alphabet
        assert len(candidates) <= upper

    @given(LABEL)
    @settings(max_examples=40, deadline=None)
    def test_deletion_count_exact_for_distinct_labels(self, label):
        generator = TypoGenerator()
        deletions = {c.domain for c in generator.generate(f"{label}.com")
                     if c.edit_type == "deletion"}
        distinct_deletions = {label[:i] + label[i + 1:]
                              for i in range(len(label))} - {label}
        valid = {d for d in distinct_deletions if d}
        assert len(deletions) == len(valid)

    @given(LABEL)
    @settings(max_examples=40, deadline=None)
    def test_fat_finger_subset_of_full(self, label):
        full = {c.domain for c in TypoGenerator().generate(f"{label}.com")}
        restricted = {c.domain for c in TypoGenerator(
            fat_finger_only=True).generate(f"{label}.com")}
        assert restricted <= full
