"""Property-based tests (hypothesis) on the core invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    TypoGenerator,
    classify_edit,
    damerau_levenshtein,
    fat_finger_distance,
    visual_distance,
)
from repro.pipeline import SensitiveScrubber, luhn_valid
from repro.smtpsim import Attachment, EmailMessage, SmtpSession
from repro.util import SeededRng, cumulative_share, mad_outliers, median

LABELS = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)
WORDS = st.text(alphabet=string.ascii_lowercase + " ", min_size=0,
                max_size=80)


class TestDistanceProperties:
    @given(LABELS)
    def test_identity(self, s):
        assert damerau_levenshtein(s, s) == 0

    @given(LABELS, LABELS)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @given(LABELS, LABELS)
    def test_length_difference_lower_bound(self, a, b):
        assert damerau_levenshtein(a, b) >= abs(len(a) - len(b))

    @given(LABELS, LABELS)
    def test_upper_bound_max_length(self, a, b):
        assert damerau_levenshtein(a, b) <= max(len(a), len(b))

    @given(LABELS, st.integers(0, 30), st.sampled_from(string.ascii_lowercase))
    def test_single_substitution_at_most_one(self, s, index, ch):
        if not s:
            return
        i = index % len(s)
        mutated = s[:i] + ch + s[i + 1:]
        assert damerau_levenshtein(s, mutated) <= 1

    @given(LABELS, st.integers(0, 30))
    def test_single_deletion_exactly_one(self, s, index):
        if len(s) < 2:
            return
        i = index % len(s)
        mutated = s[:i] + s[i + 1:]
        assert damerau_levenshtein(s, mutated) == 1

    @given(LABELS, LABELS)
    def test_classify_edit_consistent_with_distance(self, a, b):
        edit = classify_edit(a, b)
        if edit is not None:
            assert damerau_levenshtein(a, b) == 1

    @given(LABELS, LABELS)
    def test_ff_at_least_dl(self, a, b):
        """Fat-finger ops are a restriction, so FF distance >= DL distance
        wherever FF is within its computed horizon."""
        ff = fat_finger_distance(a, b, max_interesting=2)
        dl = damerau_levenshtein(a, b)
        if ff <= 2:  # beyond the horizon FF is a sentinel
            assert ff >= dl

    @given(LABELS, LABELS)
    def test_visual_distance_total_and_nonnegative(self, a, b):
        assert visual_distance(a, b) >= 0.0

    @given(LABELS)
    def test_visual_distance_identity(self, s):
        assert visual_distance(s, s) == 0.0


class TestTypoGeneratorProperties:
    @given(LABELS)
    @settings(max_examples=30, deadline=None)
    def test_all_candidates_dl1_and_annotatable(self, label):
        domain = f"{label}.com"
        generator = TypoGenerator()
        for candidate in generator.generate(domain)[:50]:
            typo_label = candidate.domain.rsplit(".", 1)[0]
            assert damerau_levenshtein(label, typo_label) == 1
            # annotate() must agree with the generator's own classification
            annotated = generator.annotate(domain, candidate.domain)
            assert annotated is not None
            assert annotated.edit_type == candidate.edit_type


class TestLuhnProperties:
    @given(st.integers(0, 10 ** 15 - 1))
    def test_luhn_completion_always_valid(self, body):
        """Appending the correct check digit always yields a valid PAN."""
        digits = f"{body:015d}"
        total = 0
        for index, char in enumerate(reversed(digits)):
            value = int(char)
            if index % 2 == 0:  # these double once the check digit appends
                value *= 2
                if value > 9:
                    value -= 9
            total += value
        check = (10 - total % 10) % 10
        assert luhn_valid(digits + str(check))

    @given(st.integers(0, 10 ** 15 - 1), st.integers(1, 9))
    def test_single_digit_corruption_detected(self, body, delta):
        digits = f"{body:015d}"
        total = 0
        for index, char in enumerate(reversed(digits)):
            value = int(char)
            if index % 2 == 0:
                value *= 2
                if value > 9:
                    value -= 9
            total += value
        check = (10 - total % 10) % 10
        pan = digits + str(check)
        corrupted = str((int(pan[0]) + delta) % 10) + pan[1:]
        if corrupted != pan:
            assert not luhn_valid(corrupted)


class TestScrubberProperties:
    @given(WORDS)
    @settings(max_examples=50, deadline=None)
    def test_no_digits_survive(self, text):
        scrubbed = SensitiveScrubber().scrub(text + " 4111111111111111").text
        for ch in scrubbed:
            assert not ch.isdigit() or ch == "0"

    @given(WORDS)
    @settings(max_examples=50, deadline=None)
    def test_scrub_idempotent_for_cards(self, text):
        scrubber = SensitiveScrubber()
        once = scrubber.scrub(text + " card 4111111111111111").text
        again = scrubber.scrub(once)
        assert all(m.kind != "creditcard" for m in again.matches)

    @given(WORDS)
    @settings(max_examples=50, deadline=None)
    def test_matches_sorted_and_disjoint(self, text):
        matches = SensitiveScrubber().find(
            text + " ssn 078-05-1120 mail a@b.com")
        for first, second in zip(matches, matches[1:]):
            assert first.end <= second.start


class TestMessageProperties:
    @given(WORDS, WORDS)
    @settings(max_examples=50, deadline=None)
    def test_wire_roundtrip_preserves_body(self, subject, body):
        message = EmailMessage.create("a@b.com", "c@d.com",
                                      subject.replace("\r", " "),
                                      body)
        parsed = EmailMessage.from_wire(message.to_wire())
        assert parsed.body == body

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_attachment_hash_deterministic(self, payload):
        a = Attachment("x.bin", payload)
        b = Attachment("y.bin", payload)
        assert a.sha256() == b.sha256()


class TestSmtpSessionProperties:
    @given(st.lists(st.sampled_from([
        "HELO c.org", "EHLO c.org", "MAIL FROM:<a@b.com>",
        "RCPT TO:<x@y.com>", "DATA", "RSET", "NOOP",
    ]), max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_data_only_after_rcpt(self, commands):
        """Whatever the command order, 354 is only ever issued when the
        envelope has a sender and at least one recipient."""
        session = SmtpSession("mx.x.com")
        session.banner()
        for command in commands:
            reply = session.command(command)
            if reply.code == 354:
                assert session.envelope_from is not None
                assert session.envelope_to


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    def test_cumulative_share_monotone_and_bounded(self, values):
        shares = cumulative_share(values)
        assert all(0.0 <= s <= 1.0 + 1e-9 for s in shares)
        assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    def test_mad_outlier_indices_valid(self, values):
        for index in mad_outliers(values):
            assert 0 <= index < len(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    def test_median_within_range(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestRngProperties:
    @given(st.integers(0, 2 ** 32), st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_child_streams_reproducible(self, seed, name):
        a = SeededRng(seed).child(name).random()
        b = SeededRng(seed).child(name).random()
        assert a == b

    @given(st.integers(0, 2 ** 32), st.floats(min_value=0.01, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_poisson_nonnegative(self, seed, lam):
        assert SeededRng(seed).poisson(lam) >= 0
