"""Tests for repro.util.stats — MAD outliers, CIs, classification scores."""

import math

import pytest

from repro.util import (
    BinaryClassificationScores,
    cumulative_share,
    gini,
    mad,
    mad_outliers,
    mean_confidence_interval,
    median,
    score_binary,
)


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])


class TestMad:
    def test_symmetric(self):
        assert mad([1, 2, 3, 4, 5]) == 1

    def test_constant_sequence(self):
        assert mad([7, 7, 7]) == 0


class TestMadOutliers:
    def test_detects_outstanding_value(self):
        values = [10, 11, 9, 10, 12, 10, 500]
        assert mad_outliers(values) == [6]

    def test_no_outliers_in_tight_cluster(self):
        assert mad_outliers([10, 11, 9, 10, 12]) == []

    def test_zero_mad_flags_any_deviation(self):
        # over half identical values -> MAD 0; the different one is flagged
        assert mad_outliers([5, 5, 5, 5, 6]) == [4]

    def test_empty(self):
        assert mad_outliers([]) == []

    def test_paper_use_case_popular_typo_domain(self):
        # typo domains of one target: one accidentally-legit domain dominates
        traffic = [3, 5, 2, 4, 6, 3, 100000]
        outliers = mad_outliers(traffic)
        assert 6 in outliers


class TestMeanConfidenceInterval:
    def test_single_value_degenerate(self):
        mean, low, high = mean_confidence_interval([5.0])
        assert mean == low == high == 5.0

    def test_contains_mean(self):
        mean, low, high = mean_confidence_interval([1, 2, 3, 4, 5])
        assert low < mean < high
        assert mean == 3

    def test_narrower_with_more_data(self):
        small = mean_confidence_interval([1, 2, 3])
        big = mean_confidence_interval([1, 2, 3] * 30)
        assert (big[2] - big[1]) < (small[2] - small[1])

    def test_confidence_level_widens_interval(self):
        data = [1, 2, 3, 4, 5, 6]
        ci95 = mean_confidence_interval(data, 0.95)
        ci99 = mean_confidence_interval(data, 0.99)
        assert (ci99[2] - ci99[1]) > (ci95[2] - ci95[1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestBinaryScores:
    def test_perfect(self):
        scores = score_binary([True, False, True], [True, False, True])
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_paper_table2_style(self):
        # precision 0.93, sensitivity 1.0 like credit cards in Table 2
        predicted = [True] * 15
        actual = [True] * 14 + [False]
        scores = score_binary(predicted, actual)
        assert scores.precision == pytest.approx(14 / 15)
        assert scores.recall == 1.0

    def test_no_positives_predicted_nan_precision(self):
        scores = score_binary([False, False], [True, False])
        assert math.isnan(scores.precision)
        assert scores.recall == 0.0

    def test_f1_harmonic_mean(self):
        scores = BinaryClassificationScores(
            true_positives=1, false_positives=1, false_negatives=0)
        assert scores.precision == 0.5
        assert scores.recall == 1.0
        assert scores.f1 == pytest.approx(2 / 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            score_binary([True], [True, False])

    def test_confusion_counts(self):
        scores = score_binary([True, True, False, False],
                              [True, False, True, False])
        assert (scores.true_positives, scores.false_positives,
                scores.false_negatives, scores.true_negatives) == (1, 1, 1, 1)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([1, 1, 1, 1]) == pytest.approx(0.0)

    def test_total_concentration_near_one(self):
        assert gini([0] * 99 + [100]) > 0.95

    def test_zero_total(self):
        assert gini([0, 0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini([])


class TestCumulativeShare:
    def test_sorted_descending_internally(self):
        shares = cumulative_share([1, 3, 2])
        assert shares == pytest.approx([0.5, 5 / 6, 1.0])

    def test_last_is_one(self):
        assert cumulative_share([5, 5, 5])[-1] == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        shares = cumulative_share([9, 1, 4, 4, 2])
        assert all(a <= b for a, b in zip(shares, shares[1:]))

    def test_all_zero(self):
        assert cumulative_share([0, 0]) == [0.0, 0.0]

    def test_paper_figure5_shape(self):
        # two domains dominating: top-2 should carry the majority
        counts = [1000, 800, 50, 40, 30, 20, 10, 5, 4, 3]
        shares = cumulative_share(counts)
        assert shares[1] > 0.5
