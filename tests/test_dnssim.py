"""Tests for the simulated DNS substrate."""

import pytest

from repro.dnssim import (
    DomainRegistry,
    MailRoute,
    RecordType,
    Registration,
    ResolutionStatus,
    Resolver,
    ResourceRecord,
    Zone,
    collection_zone,
    is_valid_ipv4,
    normalize_name,
)


class TestRecords:
    def test_normalize(self):
        assert normalize_name("ExAmple.COM.") == "example.com"
        assert normalize_name("  a.b ") == "a.b"

    def test_ipv4_validation(self):
        assert is_valid_ipv4("1.2.3.4")
        assert is_valid_ipv4("255.255.255.255")
        assert not is_valid_ipv4("256.1.1.1")
        assert not is_valid_ipv4("1.2.3")
        assert not is_valid_ipv4("a.b.c.d")

    def test_a_record_requires_valid_ip(self):
        with pytest.raises(ValueError):
            ResourceRecord("x.com", RecordType.A, "not-an-ip")

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("x.com", RecordType.MX, "mail.x.com", ttl=-1)

    def test_wildcard_detection(self):
        record = ResourceRecord("*.exampel.com", RecordType.MX, "exampel.com")
        assert record.is_wildcard

    def test_wildcard_matches_subdomain_only(self):
        record = ResourceRecord("*.exampel.com", RecordType.MX, "exampel.com")
        assert record.matches("mail.exampel.com")
        assert record.matches("a.b.exampel.com")
        assert not record.matches("exampel.com")
        assert not record.matches("other.com")

    def test_exact_match(self):
        record = ResourceRecord("exampel.com", RecordType.MX, "exampel.com")
        assert record.matches("exampel.com")
        assert record.matches("EXAMPEL.COM.")
        assert not record.matches("mail.exampel.com")

    def test_zone_file_line_mx(self):
        record = ResourceRecord("*.exampel.com", RecordType.MX, "exampel.com",
                                ttl=300, priority=1)
        line = record.zone_file_line()
        assert "*.exampel.com." in line
        assert "MX" in line and "\t1\t" in line

    def test_zone_file_line_a_has_na_priority(self):
        record = ResourceRecord("exampel.com", RecordType.A, "1.1.1.1")
        assert "\tNA\t" in record.zone_file_line()


class TestZone:
    def test_collection_zone_matches_paper_table1(self):
        zone = collection_zone("exampel.com", "1.1.1.1")
        assert len(zone) == 4
        assert zone.mx_hosts() == ["exampel.com"]
        assert zone.mx_hosts("anything.exampel.com") == ["exampel.com"]
        assert zone.a_addresses() == ["1.1.1.1"]
        assert zone.a_addresses("random.sub.exampel.com") == ["1.1.1.1"]

    def test_zone_file_rendering(self):
        text = collection_zone("exampel.com", "1.1.1.1").zone_file()
        assert text.splitlines()[0] == "FQDN\tTTL\tTYPE\tpriority\trecord"
        assert len(text.splitlines()) == 5

    def test_out_of_zone_record_rejected(self):
        zone = Zone(origin="a.com")
        with pytest.raises(ValueError):
            zone.add(ResourceRecord("b.com", RecordType.A, "1.1.1.1"))

    def test_exact_shadows_wildcard(self):
        zone = collection_zone("exampel.com", "1.1.1.1")
        zone.add(ResourceRecord("special.exampel.com", RecordType.A, "2.2.2.2"))
        assert zone.a_addresses("special.exampel.com") == ["2.2.2.2"]
        assert zone.a_addresses("other.exampel.com") == ["1.1.1.1"]

    def test_mx_priority_ordering(self):
        zone = Zone(origin="x.com")
        zone.add(ResourceRecord("x.com", RecordType.MX, "backup.x.com", priority=20))
        zone.add(ResourceRecord("x.com", RecordType.MX, "primary.x.com", priority=5))
        assert zone.mx_hosts() == ["primary.x.com", "backup.x.com"]


class TestRegistry:
    def _registry(self):
        registry = DomainRegistry()
        registry.register(Registration(
            domain="exampel.com", zone=collection_zone("exampel.com", "1.1.1.1")))
        return registry

    def test_register_and_lookup(self):
        registry = self._registry()
        assert registry.is_registered("exampel.com")
        assert registry.is_registered("EXAMPEL.com.")
        assert not registry.is_registered("other.com")

    def test_double_registration_rejected(self):
        registry = self._registry()
        with pytest.raises(ValueError):
            registry.register(Registration(
                domain="exampel.com",
                zone=collection_zone("exampel.com", "2.2.2.2")))

    def test_deregister(self):
        registry = self._registry()
        registry.deregister("exampel.com")
        assert not registry.is_registered("exampel.com")
        with pytest.raises(KeyError):
            registry.deregister("exampel.com")

    def test_zone_origin_must_match_domain(self):
        with pytest.raises(ValueError):
            Registration(domain="a.com", zone=collection_zone("b.com", "1.1.1.1"))

    def test_zone_for_longest_suffix(self):
        registry = self._registry()
        zone = registry.zone_for("deep.sub.exampel.com")
        assert zone is not None and zone.origin == "exampel.com"
        assert registry.zone_for("unregistered.com") is None

    def test_domains_in_tld(self):
        registry = self._registry()
        registry.register(Registration(
            domain="foo.net", zone=collection_zone("foo.net", "3.3.3.3")))
        assert registry.domains_in_tld("com") == ["exampel.com"]
        assert registry.domains_in_tld("net") == ["foo.net"]

    def test_len_and_iter(self):
        registry = self._registry()
        assert len(registry) == 1
        assert [r.domain for r in registry] == ["exampel.com"]


class TestResolver:
    def _setup(self):
        registry = DomainRegistry()
        registry.register(Registration(
            domain="exampel.com", zone=collection_zone("exampel.com", "1.1.1.1")))
        # a domain with MX pointing at a third-party mail host
        zone = Zone(origin="shop.com")
        zone.add(ResourceRecord("shop.com", RecordType.MX, "mx.mailhost.com", priority=10))
        registry.register(Registration(domain="shop.com", zone=zone))
        # the mail host itself
        host_zone = Zone(origin="mailhost.com")
        host_zone.add(ResourceRecord("mx.mailhost.com", RecordType.A, "9.9.9.9"))
        registry.register(Registration(domain="mailhost.com", zone=host_zone))
        # a web-only domain: A but no MX
        web_zone = Zone(origin="webonly.com")
        web_zone.add(ResourceRecord("webonly.com", RecordType.A, "8.8.8.8"))
        registry.register(Registration(domain="webonly.com", zone=web_zone))
        # a parked domain: registered, no records at all
        registry.register(Registration(domain="parked.com", zone=Zone(origin="parked.com")))
        return Resolver(registry)

    def test_mx_route(self):
        route = self._setup().mail_route("shop.com")
        assert route.status is ResolutionStatus.OK
        assert route.mx_hosts == ("mx.mailhost.com",)
        assert route.addresses == ("9.9.9.9",)
        assert not route.used_implicit_mx

    def test_implicit_mx_fallback_rfc5321(self):
        route = self._setup().mail_route("webonly.com")
        assert route.status is ResolutionStatus.OK
        assert route.used_implicit_mx
        assert route.addresses == ("8.8.8.8",)

    def test_nxdomain(self):
        route = self._setup().mail_route("never-registered.com")
        assert route.status is ResolutionStatus.NXDOMAIN
        assert not route.can_receive_mail

    def test_no_mail_host(self):
        route = self._setup().mail_route("parked.com")
        assert route.status is ResolutionStatus.NO_MAIL_HOST
        assert not route.can_receive_mail

    def test_mx_with_unresolvable_host(self):
        registry = DomainRegistry()
        zone = Zone(origin="broken.com")
        zone.add(ResourceRecord("broken.com", RecordType.MX, "mx.gone.com", priority=1))
        registry.register(Registration(domain="broken.com", zone=zone))
        route = Resolver(registry).mail_route("broken.com")
        assert route.status is ResolutionStatus.NO_MAIL_HOST
        assert route.mx_hosts == ("mx.gone.com",)

    def test_subdomain_route_via_wildcard(self):
        route = self._setup().mail_route("any.sub.exampel.com")
        assert route.status is ResolutionStatus.OK
        assert route.addresses == ("1.1.1.1",)

    def test_resolve_a_unknown(self):
        assert self._setup().resolve_a("nope.com") == []

    def test_self_mx_collection_domain(self):
        route = self._setup().mail_route("exampel.com")
        assert route.mx_hosts == ("exampel.com",)
        assert route.addresses == ("1.1.1.1",)
