"""Tests for the §4.4.2 correlation analysis."""

import pytest

from repro.analysis import (
    volume_feature_correlations,
    within_target_visual_effect,
)
from repro.core import build_study_corpus
from repro.experiment import ExperimentConfig, StudyRunner


@pytest.fixture(scope="module")
def study():
    results = StudyRunner(ExperimentConfig(seed=99, spam_scale=2e-5)).run()
    return results.corpus, results.per_domain_yearly_true_typos()


class TestFeatureCorrelations:
    def test_popularity_significant(self, study):
        """The paper's only significant raw correlation: target popularity."""
        corpus, volumes = study
        correlations = {c.feature: c
                        for c in volume_feature_correlations(volumes, corpus)}
        popularity = correlations["target_popularity"]
        assert popularity.rho > 0.3
        assert popularity.significant

    def test_rank_direction(self, study):
        corpus, volumes = study
        correlations = {c.feature: c
                        for c in volume_feature_correlations(volumes, corpus)}
        # negative rank encodes popularity: same sign as popularity
        assert correlations["negative_alexa_rank"].rho > 0

    def test_raw_visual_weaker_than_popularity(self, study):
        """Without controlling for the target, popularity outweighs the
        other attributes — the paper's §4.4.2 observation."""
        corpus, volumes = study
        correlations = {c.feature: c
                        for c in volume_feature_correlations(volumes, corpus)}
        assert abs(correlations["normalized_visual"].rho) < \
            correlations["target_popularity"].rho

    def test_sample_counts(self, study):
        corpus, volumes = study
        for correlation in volume_feature_correlations(volumes, corpus):
            assert correlation.n > 30


class TestWithinTargetVisual:
    def test_visual_effect_emerges_when_controlled(self, study):
        """Holding the target fixed, low visual distance wins: negative
        correlation between visual distance and relative volume."""
        corpus, volumes = study
        effect = within_target_visual_effect(volumes, corpus)
        assert effect is not None
        assert effect.rho < 0

    def test_insufficient_data_returns_none(self):
        corpus = build_study_corpus()
        assert within_target_visual_effect(
            {}, corpus, min_domains_per_target=100) is None
