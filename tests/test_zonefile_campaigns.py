"""Tests for zone-file parsing and spam-campaign reconstruction."""

import pytest

from repro.analysis import CollectedRecord, reconstruct_campaigns
from repro.dnssim import (
    RecordType,
    ZoneFileError,
    collection_zone,
    parse_zone_file,
)
from repro.pipeline import tokenize
from repro.smtpsim import EmailMessage
from repro.spamfilter.funnel import FilterResult, Verdict


class TestZoneFileRoundTrip:
    def test_collection_zone_round_trip(self):
        original = collection_zone("exampel.com", "1.1.1.1")
        parsed = parse_zone_file(original.zone_file())
        assert parsed.origin == "exampel.com"
        assert len(parsed) == 4
        assert parsed.mx_hosts("sub.exampel.com") == ["exampel.com"]
        assert parsed.a_addresses() == ["1.1.1.1"]

    def test_round_trip_preserves_ttl_and_priority(self):
        original = collection_zone("exampel.com", "1.1.1.1", ttl=900)
        parsed = parse_zone_file(original.zone_file())
        assert all(r.ttl == 900 for r in parsed.records)
        mx = [r for r in parsed.records if r.rtype is RecordType.MX]
        assert all(r.priority == 1 for r in mx)

    def test_header_optional(self):
        original = collection_zone("exampel.com", "1.1.1.1")
        body_only = "\n".join(original.zone_file().splitlines()[1:])
        parsed = parse_zone_file(body_only)
        assert len(parsed) == 4

    def test_explicit_origin(self):
        text = "*.x.com.\t300\tMX\t1\tx.com."
        zone = parse_zone_file(text, origin="x.com")
        assert zone.origin == "x.com"

    def test_wildcard_only_without_origin_rejected(self):
        text = "*.x.com.\t300\tMX\t1\tx.com."
        with pytest.raises(ZoneFileError):
            parse_zone_file(text)

    def test_malformed_rejected(self):
        for bad in ("",                              # empty
                    "x.com.\t300\tMX\t1",            # too few fields
                    "x.com.\tfast\tMX\t1\ty.com.",   # bad TTL
                    "x.com.\t300\tBOGUS\t1\ty.com.", # bad type
                    "x.com.\t300\tA\tNA\tnot-an-ip"):
            with pytest.raises(ZoneFileError):
                parse_zone_file(bad)


def _spam_record(sender, body, day=0, subject="offer"):
    msg = EmailMessage.create(sender, "x@gmial.com", subject, body)
    msg.envelope_from = sender
    msg.received_at = day * 86_400.0
    return CollectedRecord(
        tokenized=tokenize(msg),
        result=FilterResult(Verdict.SPAM, "receiver", 2, "test"),
        study_domain="gmial.com",
        timestamp=msg.received_at,
    )


class TestCampaignReconstruction:
    def test_same_sender_one_campaign(self):
        records = [_spam_record("spam@x.top", f"body variant {i}", day=i)
                   for i in range(5)]
        report = reconstruct_campaigns(records)
        assert len(report.campaigns) == 1
        assert report.campaigns[0].size == 5
        assert report.campaigns[0].duration_days == 5

    def test_same_body_different_senders_merge(self):
        records = [_spam_record(f"s{i}@x{i}.top", "identical spam body")
                   for i in range(4)]
        report = reconstruct_campaigns(records)
        assert len(report.campaigns) == 1
        assert len(report.campaigns[0].senders) == 4

    def test_transitive_merging(self):
        # A shares sender with B; B shares body with C -> one campaign
        records = [
            _spam_record("a@x.top", "body one"),
            _spam_record("a@x.top", "body two"),
            _spam_record("b@y.top", "body two"),
        ]
        report = reconstruct_campaigns(records)
        assert len(report.campaigns) == 1
        assert report.campaigns[0].size == 3

    def test_singletons_counted_separately(self):
        records = [
            _spam_record("a@x.top", "unique body alpha"),
            _spam_record("b@y.top", "unique body beta"),
        ]
        report = reconstruct_campaigns(records)
        assert report.campaigns == []
        assert report.singleton_count == 2
        assert report.campaign_spam_fraction == 0.0

    def test_non_spam_ignored(self):
        record = _spam_record("a@x.top", "body")
        ham = CollectedRecord(
            tokenized=record.tokenized,
            result=FilterResult(Verdict.TRUE_TYPO, "receiver", None, ""),
            study_domain="gmial.com", timestamp=0.0)
        report = reconstruct_campaigns([ham])
        assert report.spam_total == 0

    def test_generated_spam_is_campaign_heavy(self):
        """Validates the generator: most spam belongs to campaigns."""
        from repro.core import build_study_corpus
        from repro.util import SeededRng
        from repro.workloads import SpamGenerator
        corpus = build_study_corpus()
        generator = SpamGenerator(corpus, SeededRng(21), volume_scale=1e-4)
        records = []
        for day in range(20):
            for request in generator.emails_for_day(day):
                message = request.message
                message.received_at = request.timestamp
                records.append(CollectedRecord(
                    tokenized=tokenize(message),
                    result=FilterResult(Verdict.SPAM, "receiver", 2, ""),
                    study_domain=request.study_domain,
                    timestamp=request.timestamp))
        report = reconstruct_campaigns(records)
        assert report.campaign_spam_fraction > 0.7
        assert report.top_campaigns(1)[0].size > 20
