"""Tests for the regression, typo-popularity, projection, and economics."""

import math

import pytest

from repro.core import EMAIL_TARGETS
from repro.ecosystem import InternetConfig, OwnerType, build_internet
from repro.extrapolate import (
    DOMAIN_PRICE_PER_YEAR,
    ProjectionExperiment,
    RegressionObservation,
    SqrtVolumeRegression,
    attacker_economics,
    cost_per_email,
    defensive_registration_plan,
    edit_type_scale_factors,
    popularity_by_edit_type,
)
from repro.extrapolate.projection import PROJECTION_TARGETS
from repro.util import SeededRng
from repro.workloads import TypingMistakeModel


@pytest.fixture(scope="module")
def internet():
    return build_internet(SeededRng(303),
                          InternetConfig(num_filler_targets=30))


def _seed_observations(internet, noise_sigma=0.5, per_target=5):
    """Measured volumes for 25 seed domains, from ground truth + noise."""
    model = TypingMistakeModel()
    targets = {t.name: t for t in EMAIL_TARGETS}
    rng = SeededRng(99)
    counts = {}
    observations = []
    for wild in internet.wild_domains:
        if wild.target not in PROJECTION_TARGETS:
            continue
        if counts.get(wild.target, 0) >= per_target:
            continue
        if wild.candidate.edit_type not in ("addition", "substitution"):
            continue
        counts[wild.target] = counts.get(wild.target, 0) + 1
        yearly = model.expected_yearly_emails(
            3e8 * targets[wild.target].email_share, wild.candidate)
        observations.append(RegressionObservation(
            domain=wild.domain, target=wild.target,
            yearly_emails=yearly * rng.lognormal(0, noise_sigma),
            alexa_rank=internet.alexa_rank(wild.target),
            normalized_visual=wild.candidate.normalized_visual,
            fat_finger=wild.candidate.is_fat_finger))
    return observations


class TestRegression:
    def test_fit_recovers_rank_effect(self, internet):
        observations = _seed_observations(internet)
        regression = SqrtVolumeRegression()
        fit = regression.fit(observations)
        # more popular target (lower rank) means more mail: negative slope
        assert fit.coefficient("log_alexa_rank") < 0

    def test_visual_distance_negative_effect(self, internet):
        observations = _seed_observations(internet)
        fit = SqrtVolumeRegression().fit(observations)
        assert fit.coefficient("sqrt_norm_visual") < 0

    def test_r_squared_reasonable(self, internet):
        fit = SqrtVolumeRegression().fit(_seed_observations(internet))
        assert 0.5 < fit.r_squared <= 1.0

    def test_loo_below_fit_r_squared(self, internet):
        fit = SqrtVolumeRegression().fit(_seed_observations(internet))
        assert fit.loo_r_squared <= fit.r_squared

    def test_too_few_observations_rejected(self):
        observation = RegressionObservation("a.com", "t.com", 10.0, 1, 0.1, True)
        with pytest.raises(ValueError):
            SqrtVolumeRegression().fit([observation] * 3)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            SqrtVolumeRegression().predict([])

    def test_predictions_nonnegative(self, internet):
        observations = _seed_observations(internet)
        regression = SqrtVolumeRegression()
        regression.fit(observations)
        predictions = regression.predict(observations)
        assert (predictions >= 0).all()

    def test_scale_factors_multiply(self, internet):
        observations = _seed_observations(internet)
        regression = SqrtVolumeRegression()
        regression.fit(observations)
        base = regression.predict(observations)
        doubled = regression.predict(observations,
                                     scale_factors=[2.0] * len(observations))
        assert doubled == pytest.approx(base * 2.0)

    def test_ci_brackets_point_estimate(self, internet):
        observations = _seed_observations(internet)
        regression = SqrtVolumeRegression()
        regression.fit(observations)
        total, low, high = regression.predict_total_with_ci(
            observations, SeededRng(1), n_bootstrap=500)
        assert low < high
        assert low < total * 1.5 and high > total * 0.67

    def test_ci_deterministic_given_seed(self, internet):
        observations = _seed_observations(internet)
        regression = SqrtVolumeRegression()
        regression.fit(observations)
        a = regression.predict_total_with_ci(observations, SeededRng(5),
                                             n_bootstrap=300)
        b = regression.predict_total_with_ci(observations, SeededRng(5),
                                             n_bootstrap=300)
        assert a == b


class TestTypoPopularity:
    def test_figure9_ordering(self, internet):
        """Deletion and transposition significantly above addition/substitution."""
        popularity = popularity_by_edit_type(internet, SeededRng(7))
        deletion = popularity["deletion"]
        addition = popularity["addition"]
        assert deletion.sample_count > 0 and addition.sample_count > 0
        # CIs must separate: deletion's low above addition's high
        assert deletion.ci_low > addition.ci_high

    def test_scale_factors(self, internet):
        popularity = popularity_by_edit_type(internet, SeededRng(8))
        factors = edit_type_scale_factors(popularity)
        assert factors["addition"] == 1.0
        assert factors["substitution"] == 1.0
        assert factors["deletion"] > 1.5
        assert factors["transposition"] > 1.5

    def test_missing_baseline_rejected(self):
        from repro.extrapolate import EditTypePopularity
        empty = {t: EditTypePopularity(t, float("nan"), float("nan"),
                                       float("nan"), 0)
                 for t in ("addition", "deletion", "substitution",
                           "transposition")}
        with pytest.raises(ValueError):
            edit_type_scale_factors(empty)


class TestProjection:
    def test_full_experiment(self, internet):
        observations = _seed_observations(internet)
        experiment = ProjectionExperiment(internet, SeededRng(11))
        report = experiment.run(observations,
                                exclude_domains=[o.domain for o in observations],
                                n_bootstrap=400)
        assert report.seed_domain_count == 25
        assert report.wild_domain_count > 100
        assert report.base_ci[0] < report.base_total < report.base_ci[1]
        # the paper's headline shape: the typo-type adjustment raises
        # the projection substantially
        assert report.adjusted_total > 1.1 * report.base_total
        assert len(report.summary_lines()) == 5

    def test_excludes_defensive(self, internet):
        experiment = ProjectionExperiment(internet, SeededRng(12))
        rows = experiment.wild_observations()
        defensive = {w.domain for w in internet.wild_domains
                     if w.owner_type is OwnerType.DEFENSIVE}
        assert not defensive & {r.domain for r in rows}

    def test_excludes_requested_domains(self, internet):
        experiment = ProjectionExperiment(internet, SeededRng(13))
        all_rows = experiment.wild_observations()
        excluded = all_rows[0].domain
        rows = experiment.wild_observations(exclude_domains=[excluded])
        assert excluded not in {r.domain for r in rows}
        assert len(rows) == len(all_rows) - 1


class TestEconomics:
    def test_cost_per_email_paper_headline(self):
        """1,211 domains, ~800k emails/yr => under two cents per email."""
        assert cost_per_email(1211, 846_219) < 0.02

    def test_cost_per_email_zero_volume(self):
        assert cost_per_email(10, 0) == float("inf")

    def test_attacker_economics(self):
        volumes = {"a.com": 1000.0, "b.com": 500.0, "c.com": 10.0,
                   "d.com": 5.0, "e.com": 3.0, "f.com": 1.0, "g.com": 0.0}
        economics = attacker_economics(volumes)
        assert economics.domain_count == 7
        assert economics.yearly_cost == pytest.approx(7 * DOMAIN_PRICE_PER_YEAR)
        # keeping the best five is cheaper per email than keeping all
        assert economics.top5_cost_per_email < economics.cost_per_email

    def test_defender_plan_greedy(self):
        volumes = {"x1.com": 100.0, "x2.com": 50.0, "x3.com": 1.0,
                   "y1.com": 75.0}
        targets = {"x1.com": "x.com", "x2.com": "x.com", "x3.com": "x.com",
                   "y1.com": "y.com"}
        plan = defensive_registration_plan(volumes, targets, "x.com",
                                           budget_domains=2)
        assert plan.domains_to_register == ("x1.com", "x2.com")
        assert plan.emails_protected_per_year == 150.0
        assert plan.cost_per_protected_email == pytest.approx(
            2 * DOMAIN_PRICE_PER_YEAR / 150.0)

    def test_defender_popular_target_cheaper(self):
        """Paper §8: defending popular providers costs less per email."""
        volumes = {"big1.com": 1000.0, "big2.com": 800.0,
                   "small1.com": 5.0, "small2.com": 3.0}
        targets = {"big1.com": "gmail.com", "big2.com": "gmail.com",
                   "small1.com": "tiny.com", "small2.com": "tiny.com"}
        big = defensive_registration_plan(volumes, targets, "gmail.com")
        small = defensive_registration_plan(volumes, targets, "tiny.com")
        assert big.cost_per_protected_email < small.cost_per_protected_email
