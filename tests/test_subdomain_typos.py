"""Tests for §5.2's subdomain-style (missing-dot) typosquatting."""

import pytest

from repro.ecosystem import (
    InternetConfig,
    SERVICE_PREFIXES,
    build_internet,
    find_registered_subdomain_typos,
    generate_subdomain_typos,
)
from repro.util import SeededRng


class TestGeneration:
    def test_all_prefixes_generated(self):
        candidates = generate_subdomain_typos(["gmail.com"])
        domains = {c.domain for c in candidates}
        assert "smtpgmail.com" in domains
        assert "mailgmail.com" in domains
        assert len(candidates) == len(SERVICE_PREFIXES)

    def test_mimicked_host(self):
        candidate = next(c for c in generate_subdomain_typos(["gmail.com"])
                         if c.prefix == "smtp")
        assert candidate.mimicked_host == "smtp.gmail.com"

    def test_tld_preserved(self):
        for candidate in generate_subdomain_typos(["verizon.net"]):
            assert candidate.domain.endswith(".net")

    def test_invalid_target_skipped(self):
        assert generate_subdomain_typos(["no-tld"]) == []


class TestInTheWild:
    @pytest.fixture(scope="class")
    def internet(self):
        return build_internet(SeededRng(11),
                              InternetConfig(num_filler_targets=30))

    def test_builder_registers_some(self, internet):
        assert internet.subdomain_typo_domains
        for domain in internet.subdomain_typo_domains:
            assert internet.registry.is_registered(domain)

    def test_popular_targets_preferred(self, internet):
        """smtpgmail.com-style names of the biggest providers exist."""
        registered = set(internet.subdomain_typo_domains)
        big_three = {"smtpgmail.com", "smtphotmail.com", "smtpoutlook.com",
                     "mailgmail.com", "mailhotmail.com", "mailoutlook.com"}
        assert registered & big_three

    def test_analysis_finds_them_all(self, internet):
        report = find_registered_subdomain_typos(
            internet.registry, internet.whois,
            [entry.domain for entry in internet.alexa[:30]])
        assert {c.domain for c in report.registered} == \
            set(internet.subdomain_typo_domains)

    def test_privately_registered_not_defensive(self, internet):
        """The paper's tell: private registration is inconsistent with
        trademark protection."""
        report = find_registered_subdomain_typos(
            internet.registry, internet.whois,
            [entry.domain for entry in internet.alexa[:30]])
        assert report.private_count == len(report.registered)
        assert report.defensive_count == 0
        assert report.suspicious_count == len(report.registered)

    def test_they_can_receive_mail(self, internet):
        """The whole point: these names route mail to the squatter pool."""
        from repro.dnssim import Resolver
        resolver = Resolver(internet.registry)
        routable = sum(
            1 for domain in internet.subdomain_typo_domains
            if resolver.mail_route(domain).can_receive_mail)
        assert routable > 0.8 * len(internet.subdomain_typo_domains)

    def test_count_by_prefix_sums(self, internet):
        report = find_registered_subdomain_typos(
            internet.registry, internet.whois,
            [entry.domain for entry in internet.alexa[:30]])
        assert sum(report.count_by_prefix().values()) == \
            len(report.registered)
