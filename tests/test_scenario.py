"""The living-internet scenario package: events, timeline, driver.

The acceptance contract: every draw is a pure hash of ``(seed, event,
day)``, so a ``(seed, scenario)`` pair replays byte-identically at any
``--jobs``; an empty scenario compiles to a world whose generations map
is always ``{}`` (today's static world); the persisted artifact follows
the repo's discipline (format tag, self-digest, atomic save, doctor
validation with the taxonomy's exit codes).
"""

import json

import pytest

from repro.doctor import diagnose_file, exit_code_for
from repro.ecosystem.delta import ChurnSchedule, WorldEvent, WorldEvolution
from repro.scenario import (
    BUILTIN_METRICS,
    EcosystemEvent,
    Scenario,
    ScenarioDriver,
    drift_drill_scenario,
)
from repro.util.errors import (
    EXIT_BAD_INPUT,
    EXIT_CORRUPT_CHECKPOINT,
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
)

SEED = 314


def _scenario(**overrides):
    params = dict(seed=SEED, name="unit", max_rank=500, events=(
        EcosystemEvent(kind="churn_burst", day=1, name="burst",
                       rank_lo=100, rank_hi=500, rate=0.1),
        EcosystemEvent(kind="defensive_registration", day=2,
                       name="defend", rank_lo=1, rank_hi=40, rate=0.5),
        EcosystemEvent(kind="squatter_campaign", day=3, name="campaign",
                       pool_size=50, evasion_bias=0.8),
    ), metrics=("registered_fraction", "defended_ranks",
                "active_campaigns"))
    params.update(overrides)
    return Scenario(**params)


class TestEventSchema:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario event"):
            EcosystemEvent(kind="meteor_strike", day=1, name="boom")

    def test_campaigns_need_a_pool(self):
        with pytest.raises(ConfigError, match="pool_size"):
            EcosystemEvent(kind="squatter_campaign", day=1, name="c")

    def test_days_are_one_based(self):
        with pytest.raises(ConfigError, match="1-based"):
            EcosystemEvent(kind="churn_burst", day=0, name="b", rate=0.1)

    def test_dict_round_trip(self):
        event = EcosystemEvent(kind="squatter_campaign", day=4, name="c",
                               pool_size=80, evasion_bias=0.7,
                               retrain=True)
        assert EcosystemEvent.from_dict(event.to_dict()) == event

    def test_churned_ranks_match_the_world_event_hash_law(self):
        event = EcosystemEvent(kind="churn_burst", day=1, name="burst",
                               rank_lo=10, rank_hi=200, rate=0.2)
        world = WorldEvent(name="burst", day=1, rank_lo=10, rank_hi=200,
                           rate=0.2)
        assert event.churned_ranks(SEED) == world.churned_ranks(SEED)
        assert event.churned_ranks(SEED) == event.churned_ranks(SEED)
        assert all(10 <= rank <= 200
                   for rank in event.churned_ranks(SEED))

    def test_rate_extremes(self):
        full = WorldEvent(name="x", day=1, rank_lo=5, rank_hi=9, rate=1.0)
        assert full.churned_ranks(SEED) == [5, 6, 7, 8, 9]
        off = EcosystemEvent(kind="churn_burst", day=1, name="x",
                             rank_lo=5, rank_hi=9, rate=0.0)
        assert off.churned_ranks(SEED) == []

    def test_campaigns_do_not_touch_the_world(self):
        campaign = EcosystemEvent(kind="squatter_campaign", day=1,
                                  name="c", pool_size=10)
        assert not campaign.touches_world
        assert campaign.churned_ranks(SEED) == []


class TestScenarioArtifact:
    def test_duplicate_event_names_are_rejected(self):
        event = EcosystemEvent(kind="churn_burst", day=1, name="dup",
                               rate=0.1)
        with pytest.raises(ConfigError, match="unique"):
            Scenario(seed=SEED, name="s", max_rank=100,
                     events=(event, event))

    def test_events_beyond_max_rank_are_rejected(self):
        with pytest.raises(ConfigError, match="beyond"):
            Scenario(seed=SEED, name="s", max_rank=100, events=(
                EcosystemEvent(kind="churn_burst", day=1, name="b",
                               rank_lo=1, rank_hi=101, rate=0.1),))

    def test_save_load_round_trip(self, tmp_path):
        scenario = _scenario()
        path = tmp_path / "scenario.json"
        scenario.save(path)
        loaded = Scenario.load(path)
        assert loaded == scenario
        assert loaded.digest() == scenario.digest()

    def test_torn_file_is_corrupt_exit_3(self, tmp_path):
        path = tmp_path / "scenario.json"
        _scenario().save(path)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointCorruptError):
            Scenario.load(path)

    def test_edited_file_fails_its_digest(self, tmp_path):
        path = tmp_path / "scenario.json"
        _scenario().save(path)
        data = json.loads(path.read_text())
        data["churn_rate"] = 0.9
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointCorruptError, match="digest"):
            Scenario.load(path)

    def test_wrong_format_tag_is_a_mismatch(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"format": "repro-scenario@99"}))
        with pytest.raises(CheckpointMismatchError):
            Scenario.load(path)

    def test_unknown_event_kind_is_config_error(self, tmp_path):
        payload = _scenario().to_dict()
        payload["events"][0]["kind"] = "meteor_strike"
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="meteor_strike"):
            Scenario.load(path)


class TestWorldCompilation:
    def test_empty_scenario_is_the_static_world(self):
        empty = Scenario(seed=SEED, name="static", max_rank=300)
        assert empty.is_empty
        evolution = empty.world_evolution()
        assert evolution.generations(0) == {}
        for day in (1, 30, 365):
            assert evolution.generations(day) == {}
            assert evolution.day_events(day) == []

    def test_background_churn_matches_the_plain_schedule(self):
        scenario = Scenario(seed=SEED, name="churny", max_rank=300,
                            churn_rate=0.02)
        evolution = scenario.world_evolution()
        schedule = ChurnSchedule(SEED, 300, 0.02)
        for day in (1, 5, 20):
            assert evolution.generations(day) == schedule.generations(day)

    def test_campaigns_are_not_compiled_into_world_events(self):
        evolution = _scenario().world_evolution()
        assert isinstance(evolution, WorldEvolution)
        assert {event.name for event in evolution.events} == \
            {"burst", "defend"}

    def test_event_generations_land_on_their_day(self):
        evolution = _scenario().world_evolution()
        before = evolution.generations(0)
        after = evolution.generations(1)
        assert before == {}
        burst = _scenario().events[0]
        assert set(after) == set(burst.churned_ranks(SEED))


class TestScenarioDriver:
    def test_replay_is_byte_identical(self):
        first = ScenarioDriver(_scenario())
        second = ScenarioDriver(_scenario())
        first.run(6)
        second.run(6)
        assert first.timeline_digest() == second.timeline_digest()
        assert first.samples == second.samples

    def test_state_round_trips_mid_run(self):
        reference = ScenarioDriver(_scenario())
        reference.run(6)
        partial = ScenarioDriver(_scenario())
        partial.run(3)
        resumed = ScenarioDriver(_scenario())
        resumed.restore_state(partial.state_dict())
        resumed.run(3)
        assert resumed.timeline_digest() == reference.timeline_digest()

    def test_defensive_bookkeeping_matches_the_hash_law(self):
        scenario = _scenario()
        driver = ScenarioDriver(scenario)
        driver.run(2)
        defend = scenario.events[1]
        assert driver.defended == sorted(defend.churned_ranks(SEED))

    def test_metrics_sample_at_event_boundaries(self):
        driver = ScenarioDriver(_scenario())
        samples = driver.run(3)
        assert [s["events"] for s in samples] == \
            [["burst"], ["defend"], ["campaign"]]
        assert samples[2]["metrics"]["active_campaigns"] == 1
        assert samples[1]["metrics"]["defended_ranks"] == \
            len(driver.defended)
        assert 0 < samples[0]["metrics"]["registered_fraction"] < 1

    def test_user_defined_metrics_ride_along(self):
        driver = ScenarioDriver(
            _scenario(),
            extra_metrics={"day_squared": lambda d, day: day * day})
        sample = driver.step()
        assert sample["metrics"]["day_squared"] == 1

    def test_unknown_metric_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario metric"):
            ScenarioDriver(_scenario(metrics=("coolness",)))

    def test_metric_name_collision_is_rejected(self):
        with pytest.raises(ConfigError, match="twice"):
            ScenarioDriver(
                _scenario(),
                extra_metrics={"defended_ranks": lambda d, day: 0})

    def test_builtin_metric_registry_is_complete(self):
        assert {"registered_fraction", "defended_ranks",
                "active_campaigns"} <= set(BUILTIN_METRICS)


class TestDriftDrillScenario:
    def test_drill_shape(self):
        scenario = drift_drill_scenario(SEED)
        kinds = [event.kind for event in scenario.events]
        assert kinds == ["churn_burst", "defensive_registration",
                         "squatter_campaign"]
        assert scenario.events[2].retrain
        assert scenario.last_event_day() == 2

    def test_drill_digest_is_seed_keyed(self):
        assert drift_drill_scenario(1).digest() != \
            drift_drill_scenario(2).digest()
        assert drift_drill_scenario(1).digest() == \
            drift_drill_scenario(1).digest()


class TestDoctorScenarioKind:
    def test_healthy_scenario_passes(self, tmp_path):
        path = tmp_path / "scenario.json"
        drift_drill_scenario(SEED).save(path)
        diagnosis = diagnose_file(path)
        assert diagnosis.ok and diagnosis.kind == "scenario"
        assert diagnosis.details["events"] == 3
        assert exit_code_for([diagnosis]) == 0

    def test_torn_scenario_exits_3(self, tmp_path):
        path = tmp_path / "my-scenario.json"
        drift_drill_scenario(SEED).save(path)
        path.write_text(path.read_text()[:25])
        diagnosis = diagnose_file(path)
        assert not diagnosis.ok and diagnosis.kind == "scenario"
        assert exit_code_for([diagnosis]) == EXIT_CORRUPT_CHECKPOINT

    def test_unknown_event_kind_exits_2_with_one_line(self, tmp_path):
        payload = drift_drill_scenario(SEED).to_dict()
        payload["events"][0]["kind"] = "meteor_strike"
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload))
        diagnosis = diagnose_file(path)
        assert not diagnosis.ok and diagnosis.kind == "scenario"
        assert len(diagnosis.problems) == 1
        assert "meteor_strike" in diagnosis.problems[0]
        assert exit_code_for([diagnosis]) == EXIT_BAD_INPUT
