"""Tests for the TTL-honouring caching resolver."""

import pytest

from repro.dnssim import (
    CachingResolver,
    DomainRegistry,
    RecordType,
    Registration,
    ResourceRecord,
    Zone,
    collection_zone,
)
from repro.util import SimClock


@pytest.fixture()
def world():
    registry = DomainRegistry()
    registry.register(Registration(
        domain="gmial.com", zone=collection_zone("gmial.com", "1.1.1.1")))
    long_zone = Zone(origin="slow.com")
    long_zone.add(ResourceRecord("slow.com", RecordType.A, "2.2.2.2",
                                 ttl=3600))
    registry.register(Registration(domain="slow.com", zone=long_zone))
    clock = SimClock()
    return registry, clock, CachingResolver(registry, clock)


class TestCaching:
    def test_second_lookup_hits_cache(self, world):
        _, _, resolver = world
        assert resolver.resolve_a("gmial.com") == ["1.1.1.1"]
        assert resolver.resolve_a("gmial.com") == ["1.1.1.1"]
        assert resolver.stats.hits == 1
        assert resolver.stats.misses == 1

    def test_entry_expires_after_ttl(self, world):
        _, clock, resolver = world
        resolver.resolve_a("gmial.com")        # TTL 300
        clock.advance(301)
        resolver.resolve_a("gmial.com")
        assert resolver.stats.expirations == 1
        assert resolver.stats.misses == 2

    def test_entry_survives_within_ttl(self, world):
        _, clock, resolver = world
        resolver.resolve_a("gmial.com")
        clock.advance(299)
        resolver.resolve_a("gmial.com")
        assert resolver.stats.hits == 1

    def test_per_zone_ttl_honoured(self, world):
        _, clock, resolver = world
        resolver.resolve_a("slow.com")         # TTL 3600
        clock.advance(1000)
        resolver.resolve_a("slow.com")
        assert resolver.stats.hits == 1        # still cached

    def test_negative_caching(self, world):
        _, _, resolver = world
        assert resolver.resolve_a("nxdomain.example") == []
        assert resolver.resolve_a("nxdomain.example") == []
        assert resolver.stats.hits == 1

    def test_negative_entry_expires(self, world):
        registry, clock, resolver = world
        assert resolver.resolve_a("late.com") == []
        registry.register(Registration(
            domain="late.com", zone=collection_zone("late.com", "3.3.3.3")))
        clock.advance(301)                     # negative TTL elapses
        assert resolver.resolve_a("late.com") == ["3.3.3.3"]

    def test_stale_answer_served_until_expiry(self, world):
        """The cost of caching: a changed zone is invisible until TTL."""
        registry, clock, resolver = world
        assert resolver.resolve_a("gmial.com") == ["1.1.1.1"]
        registry.deregister("gmial.com")
        registry.register(Registration(
            domain="gmial.com", zone=collection_zone("gmial.com", "9.9.9.9")))
        assert resolver.resolve_a("gmial.com") == ["1.1.1.1"]  # stale
        clock.advance(301)
        assert resolver.resolve_a("gmial.com") == ["9.9.9.9"]

    def test_mail_route_uses_cache(self, world):
        _, _, resolver = world
        route_a = resolver.mail_route("gmial.com")
        route_b = resolver.mail_route("gmial.com")
        assert route_a.addresses == route_b.addresses == ("1.1.1.1",)
        assert resolver.stats.hits > 0

    def test_flush(self, world):
        _, _, resolver = world
        resolver.resolve_a("gmial.com")
        assert len(resolver) == 1
        resolver.flush()
        assert len(resolver) == 0

    def test_hit_rate(self, world):
        _, _, resolver = world
        assert resolver.stats.hit_rate == 0.0
        resolver.resolve_a("gmial.com")
        resolver.resolve_a("gmial.com")
        resolver.resolve_a("gmial.com")
        assert resolver.stats.hit_rate == pytest.approx(2 / 3)
