"""Tests for the Figure-1 two-hop SMTP forwarding topology."""

import pytest

from repro.core import build_study_corpus
from repro.dnssim import DomainRegistry, Resolver
from repro.infra import (
    COLLECTOR_HOSTNAME,
    attach_forwarding,
    provision_study,
)
from repro.pipeline import tokenize
from repro.smtpsim import EmailMessage, Network, SendStatus, SmtpClient
from repro.spamfilter import FilterFunnel, Verdict
from repro.util import SeededRng


@pytest.fixture()
def world():
    corpus = build_study_corpus()
    registry = DomainRegistry()
    network = Network(SeededRng(88))
    infra = provision_study(corpus, registry, network)
    stats = attach_forwarding(infra, network)
    client = SmtpClient(Resolver(registry), network,
                        helo_hostname="sender.example")
    return corpus, infra, client, stats


class TestForwarding:
    def test_message_reaches_collector_via_two_hops(self, world):
        corpus, infra, client, stats = world
        message = EmailMessage.create("alice@real.example", "bob@gmaiql.com",
                                      "hi", "misdirected mail")
        result = client.send(message, timestamp=50.0)
        assert result.status is SendStatus.DELIVERED
        assert len(infra.collector) == 1
        assert stats.forwarded == 1
        assert stats.forward_failures == 0

    def test_two_received_headers(self, world):
        corpus, infra, client, _ = world
        message = EmailMessage.create("alice@real.example", "bob@gmaiql.com",
                                      "hi", "body")
        client.send(message)
        collected = infra.collector.corpus[0]
        chain = collected.get_all_headers("Received")
        assert len(chain) == 2
        # topmost: the collector's stamp naming the VPS
        assert f"by {COLLECTOR_HOSTNAME}" in chain[0]
        assert "from gmaiql.com" in chain[0]
        # below it: the VPS's stamp naming the sender
        assert "by gmaiql.com" in chain[1]

    def test_first_hop_ip_preserved(self, world):
        corpus, infra, client, _ = world
        message = EmailMessage.create("alice@real.example", "bob@gmaiql.com",
                                      "hi", "body")
        client.send(message)
        collected = infra.collector.corpus[0]
        assert collected.received_by_ip == infra.ip_for("gmaiql.com")

    def test_timestamp_preserved_across_hops(self, world):
        corpus, infra, client, _ = world
        message = EmailMessage.create("alice@real.example", "bob@gmaiql.com",
                                      "hi", "body")
        client.send(message, timestamp=123.0)
        assert infra.collector.corpus[0].received_at == 123.0

    def test_layer1_accepts_forwarded_genuine_mail(self, world):
        corpus, infra, client, _ = world
        message = EmailMessage.create("alice@real.example", "bob@gmaiql.com",
                                      "lunch", "see you at noon")
        client.send(message)
        funnel = FilterFunnel(corpus.domain_names())
        result = funnel.classify(tokenize(infra.collector.corpus[0]))
        assert result.verdict is Verdict.TRUE_TYPO

    def test_layer1_rejects_direct_to_collector_mail(self, world):
        """Mail that skipped the VPS fleet names no registered domain in
        its topmost Received header — spam by construction."""
        corpus, infra, client, _ = world
        from repro.infra.forwarding import COLLECTOR_IP
        message = EmailMessage.create("spammer@bulk.example",
                                      "bob@gmaiql.com", "hi", "plain body")
        result = client.send_to_ip(message, "bob@gmaiql.com", COLLECTOR_IP)
        assert result.status is SendStatus.DELIVERED
        funnel = FilterFunnel(corpus.domain_names())
        verdict = funnel.classify(tokenize(infra.collector.corpus[0]))
        assert verdict.verdict is Verdict.SPAM
        assert verdict.layer == 1
