"""Tests for the ecosystem: WHOIS, internet builder, scanner, clustering, NS."""

import pytest

from repro.ecosystem import (
    CLUSTER_FIELDS,
    EcosystemScanner,
    ScanResult,
    InternetConfig,
    OwnerType,
    SmtpSupport,
    WhoisDatabase,
    WhoisRecord,
    analyze_nameservers,
    build_internet,
    cluster_registrants,
    concentration_curve,
    fields_match_count,
    make_registrant,
    smallest_fraction_covering,
    suspicious_nameservers,
    top_share,
)
from repro.util import SeededRng

#: A small world shared by the whole module (builds take seconds).
SMALL_CONFIG = InternetConfig(num_filler_targets=25)


@pytest.fixture(scope="module")
def internet():
    return build_internet(SeededRng(77), SMALL_CONFIG)


@pytest.fixture(scope="module")
def scan(internet):
    return EcosystemScanner(internet).scan()


class TestWhois:
    def test_match_count(self):
        a = WhoisRecord("a.com", registrant_name="X", organization="O",
                        email="e@x.com", phone="1", fax="2",
                        mailing_address="addr")
        b = WhoisRecord("b.com", registrant_name="X", organization="O",
                        email="e@x.com", phone="1", fax="9",
                        mailing_address="other")
        assert fields_match_count(a, b) == 4

    def test_none_fields_never_match(self):
        a = WhoisRecord("a.com")
        b = WhoisRecord("b.com")
        assert fields_match_count(a, b) == 0

    def test_clusterable_requires_four_fields(self):
        record = WhoisRecord("a.com", registrant_name="X", organization="O",
                             email="e@x.com")
        assert record.filled_field_count() == 3
        assert not record.clusterable()

    def test_private_not_clusterable(self):
        record = WhoisRecord("a.com", privacy_proxy="whoisguard.example")
        assert record.is_private
        assert not record.clusterable()

    def test_persona_records_cluster_together(self):
        persona = make_registrant(SeededRng(5), "r1")
        a = persona.record_for("a.com")
        b = persona.record_for("b.com")
        assert fields_match_count(a, b) == 6

    def test_persona_partial_fields(self):
        persona = make_registrant(SeededRng(6), "r2")
        record = persona.record_for("a.com", fields_filled=3,
                                    rng=SeededRng(1))
        assert record.filled_field_count() == 3

    def test_database(self):
        db = WhoisDatabase()
        db.add(WhoisRecord("a.com", privacy_proxy="whoisguard.example"))
        assert "a.com" in db
        assert db.lookup("A.COM").is_private
        assert db.private_domains() == ["a.com"]
        assert db.lookup("missing.com") is None


class TestInternetBuilder:
    def test_ctypos_are_dl1_of_targets(self, internet):
        from repro.core import damerau_levenshtein, split_domain
        for wild in internet.wild_domains[:200]:
            label = split_domain(wild.domain)[0]
            target_label = split_domain(wild.target)[0]
            assert damerau_levenshtein(label, target_label) == 1

    def test_all_ctypos_registered(self, internet):
        for wild in internet.wild_domains:
            assert internet.registry.is_registered(wild.domain)

    def test_owner_mixture(self, internet):
        counts = {}
        for wild in internet.wild_domains:
            counts[wild.owner_type] = counts.get(wild.owner_type, 0) + 1
        assert set(counts) == set(OwnerType)
        squatters = (counts[OwnerType.BULK_SQUATTER]
                     + counts[OwnerType.MEDIUM_SQUATTER]
                     + counts[OwnerType.SMALL_SQUATTER])
        assert squatters > counts[OwnerType.DEFENSIVE]
        assert squatters > counts[OwnerType.LEGITIMATE]

    def test_popular_targets_more_squatted(self, internet):
        gmail_typos = [w for w in internet.wild_domains
                       if w.target == "gmail.com"]
        hushmail_typos = [w for w in internet.wild_domains
                          if w.target == "hushmail.com"]
        assert len(gmail_typos) > len(hushmail_typos)

    def test_defensive_points_at_target_mail(self, internet):
        defensives = [w for w in internet.wild_domains
                      if w.owner_type is OwnerType.DEFENSIVE]
        assert defensives
        for wild in defensives[:20]:
            assert wild.mx_domain == f"mx.{wild.target}"

    def test_bulk_domains_use_shared_pool(self, internet):
        from repro.ecosystem import SQUATTER_MX_POOL
        pool = {host for host, _, _ in SQUATTER_MX_POOL}
        bulk_ok = [w for w in internet.wild_domains
                   if w.owner_type is OwnerType.BULK_SQUATTER
                   and w.support.can_accept_mail]
        assert bulk_ok
        for wild in bulk_ok:
            assert wild.mx_domain in pool

    def test_ground_truth_lookup(self, internet):
        wild = internet.wild_domains[0]
        assert internet.ground_truth(wild.domain) is wild
        assert internet.ground_truth("not-a-ctypo.example") is None

    def test_alexa_rank(self, internet):
        assert internet.alexa_rank("gmail.com") == 1
        assert internet.alexa_rank("nonexistent.test") is None

    def test_deterministic(self):
        a = build_internet(SeededRng(9), SMALL_CONFIG)
        b = build_internet(SeededRng(9), SMALL_CONFIG)
        assert [w.domain for w in a.wild_domains] == \
            [w.domain for w in b.wild_domains]
        assert [w.support for w in a.wild_domains] == \
            [w.support for w in b.wild_domains]


class TestScanner:
    def test_finds_all_wild_domains(self, internet, scan):
        scanned = {r.domain for r in scan.results}
        for wild in internet.wild_domains:
            assert wild.domain in scanned

    def test_generated_exceeds_registered(self, scan):
        assert scan.generated_count > scan.registered_count

    def test_table4_shape(self, scan):
        """Paper Table 4: ~43% support SMTP, ~22% cannot, ~34% no info."""
        pct = scan.support_percentages()
        supports = (pct[SmtpSupport.PLAIN]
                    + pct[SmtpSupport.STARTTLS_ERRORS]
                    + pct[SmtpSupport.STARTTLS_OK])
        cannot = pct[SmtpSupport.NO_DNS] + pct[SmtpSupport.NO_EMAIL]
        no_info = pct[SmtpSupport.NO_INFO]
        assert 25 < supports < 60
        assert 10 < cannot < 40
        assert 20 < no_info < 55
        # STARTTLS works almost everywhere mail is supported
        assert pct[SmtpSupport.PLAIN] < 1.0

    def test_scan_against_ground_truth(self, internet, scan):
        """The scanner must broadly recover the built-in support labels."""
        agreements = 0
        hard_fails = 0
        for result in scan.results:
            truth = internet.ground_truth(result.domain)
            if truth is None:
                continue
            if truth.support == result.support:
                agreements += 1
            elif truth.support.can_accept_mail != result.support.can_accept_mail:
                hard_fails += 1
        assert agreements > 0.7 * len(scan.results)
        # flaky hosts may blur categories but rarely flip accept/non-accept
        assert hard_fails < 0.2 * len(scan.results)

    def test_exclusion(self, internet):
        wild = internet.wild_domains[0]
        scan = EcosystemScanner(internet).scan(targets=[wild.target],
                                               exclude=[wild.domain])
        assert wild.domain not in {r.domain for r in scan.results}

    def test_mx_domain_counts(self, scan):
        counts = scan.mx_domain_counts()
        assert counts
        assert "b-io.co" in counts

    def test_accepting_results_can_accept(self, scan):
        for result in scan.accepting_results():
            assert result.support.can_accept_mail

    def test_primary_mx_domain_handles_multi_label_suffixes(self):
        """``mx1.foo.co.uk`` groups under foo.co.uk, not co.uk."""
        def result_with_mx(*hosts):
            return ScanResult(
                domain="x.com", target="y.com", candidate=None,
                mx_hosts=hosts, addresses=(), used_implicit_mx=False,
                support=SmtpSupport.STARTTLS_OK, nameserver=None,
                whois_private=False)

        assert result_with_mx("mx1.foo.co.uk").primary_mx_domain == "foo.co.uk"
        assert result_with_mx("mx.b-io.co").primary_mx_domain == "b-io.co"
        assert result_with_mx("b-io.co").primary_mx_domain == "b-io.co"
        assert result_with_mx().primary_mx_domain is None

    def test_streaming_scan_drops_results_but_keeps_tables(self, internet):
        scan = EcosystemScanner(internet).scan(retain_results=False)
        assert scan.results == []
        assert scan.registered_count > 0
        assert sum(scan.support_table().values()) == scan.registered_count
        assert "b-io.co" in scan.mx_domain_counts()
        with pytest.raises(RuntimeError):
            scan.accepting_results()


class TestClustering:
    def test_bulk_owners_form_large_clusters(self, internet):
        clusters = cluster_registrants(
            internet.whois,
            [w.domain for w in internet.squatting_domains()])
        assert clusters
        assert len(clusters[0]) > 20

    def test_concentration_shape(self, internet):
        """Figure 8: few registrants own most; heavy long tail."""
        clusters = cluster_registrants(
            internet.whois,
            [w.domain for w in internet.squatting_domains()])
        curve = concentration_curve([len(c) for c in clusters])
        assert top_share(curve, 14) > 0.15
        assert smallest_fraction_covering(curve, 0.5) < 0.10
        singletons = sum(1 for c in clusters if len(c) == 1)
        assert singletons > len(clusters) * 0.5

    def test_private_domains_excluded(self, internet):
        clusters = cluster_registrants(
            internet.whois,
            [w.domain for w in internet.squatting_domains()])
        clustered = {d for c in clusters for d in c.domains}
        for domain in internet.whois.private_domains():
            assert domain not in clustered

    def test_curve_helpers(self):
        curve = concentration_curve([50, 30, 10, 5, 3, 1, 1])
        assert curve.total_domains == 100
        assert top_share(curve, 2) == pytest.approx(0.8)
        assert smallest_fraction_covering(curve, 0.5) == pytest.approx(1 / 7)

    def test_cluster_fields_constant(self):
        assert len(CLUSTER_FIELDS) == 6


class TestNameservers:
    def test_cesspools_detected(self, internet):
        stats = analyze_nameservers(
            internet.registry, internet.whois,
            [w.domain for w in internet.wild_domains],
            benign_counts=internet.nameserver_benign_counts)
        suspicious = suspicious_nameservers(stats)
        assert suspicious
        for entry in suspicious:
            assert "cheap-dns" in entry.nameserver

    def test_baseline_ratio_low(self, internet):
        """Paper: the ecosystem-wide typo ratio is ~4%."""
        stats = analyze_nameservers(
            internet.registry, internet.whois,
            [w.domain for w in internet.wild_domains],
            benign_counts=internet.nameserver_benign_counts)
        total = sum(s.total_domains for s in stats)
        typos = sum(s.typo_domains for s in stats)
        assert typos / total < 0.15

    def test_suspicious_ns_ratio_extreme(self, internet):
        stats = analyze_nameservers(
            internet.registry, internet.whois,
            [w.domain for w in internet.wild_domains],
            benign_counts=internet.nameserver_benign_counts)
        suspicious = suspicious_nameservers(stats)
        assert max(s.typo_ratio for s in suspicious) > 0.5

    def test_suspicious_ns_private_heavy(self, internet):
        stats = analyze_nameservers(
            internet.registry, internet.whois,
            [w.domain for w in internet.wild_domains],
            benign_counts=internet.nameserver_benign_counts)
        suspicious = suspicious_nameservers(stats)
        private_ratios = [s.private_ratio_among_typos for s in suspicious]
        assert max(private_ratios) > 0.25

    def test_empty_inputs(self):
        assert suspicious_nameservers([]) == []
