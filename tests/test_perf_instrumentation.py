"""Perf observability: timers/counters on results, and the registry.

Every study run carries its own perf snapshot (phase timers, event
counters, throughput) so slow phases are visible without a profiler;
:mod:`repro.util.perf` is the dependency-free registry underneath.
"""

from __future__ import annotations

import json

import pytest

from repro.experiment import ExperimentConfig, StudyRunner
from repro.util.perf import PerfRegistry, throughput

CHEAP = ExperimentConfig(seed=77, spam_scale=1e-5, ham_scale=0.5,
                         outage_spans=())


@pytest.fixture(scope="module")
def results():
    return StudyRunner(CHEAP).run()


class TestStudyPerfSnapshot:
    def test_phase_timers_populated(self, results):
        timers = results.perf["timers"]
        for phase in ("run", "provision", "build_generators", "generate",
                      "deliver", "classify"):
            assert timers[phase]["calls"] >= 1
            assert timers[phase]["seconds"] >= 0.0
        # the run timer wraps every phase
        phases_sum = sum(timers[p]["seconds"]
                         for p in ("provision", "build_generators",
                                   "generate", "deliver", "classify"))
        assert timers["run"]["seconds"] >= phases_sum * 0.95

    def test_counters_match_headline_numbers(self, results):
        counters = results.perf["counters"]
        assert counters["emails.sent"] == results.sent_count
        assert counters["emails.delivered"] == results.delivered_count
        assert counters["records"] == len(results.records)
        assert counters["deliver.body_bytes"] > 0

    def test_throughput_present_and_consistent(self, results):
        rates = results.perf["throughput"]
        run_seconds = results.perf["timers"]["run"]["seconds"]
        assert rates["emails_sent_per_sec"] == pytest.approx(
            results.sent_count / run_seconds)
        assert rates["emails_delivered_per_sec"] == pytest.approx(
            results.delivered_count / run_seconds)

    def test_snapshot_is_json_serialisable(self, results):
        assert json.loads(json.dumps(results.perf)) == results.perf


class TestPerfRegistry:
    def test_timer_accumulates_across_entries(self):
        perf = PerfRegistry()
        for _ in range(3):
            with perf.timer("phase"):
                pass
        assert perf.timers["phase"].calls == 3
        assert perf.seconds("phase") >= 0.0
        assert perf.seconds("never-used") == 0.0

    def test_timer_records_on_exception(self):
        perf = PerfRegistry()
        with pytest.raises(RuntimeError):
            with perf.timer("boom"):
                raise RuntimeError("x")
        assert perf.timers["boom"].calls == 1

    def test_counters_accumulate(self):
        perf = PerfRegistry()
        perf.count("events")
        perf.count("events", 41)
        assert perf.counters["events"] == 42

    def test_merge_folds_both_kinds(self):
        a, b = PerfRegistry(), PerfRegistry()
        with a.timer("t"):
            pass
        with b.timer("t"):
            pass
        a.count("n", 1)
        b.count("n", 2)
        a.merge(b)
        assert a.timers["t"].calls == 2
        assert a.counters["n"] == 3

    def test_snapshot_extra_rides_along(self):
        perf = PerfRegistry()
        perf.count("n", 5)
        snap = perf.snapshot(extra={"throughput": {"x": 1.0}})
        assert snap["counters"] == {"n": 5}
        assert snap["throughput"] == {"x": 1.0}

    def test_throughput_degenerate_denominator(self):
        assert throughput(100, 0.0) == 0.0
        assert throughput(100, -1.0) == 0.0
        assert throughput(100, 4.0) == 25.0
