"""Study-level chaos tests: byte-identity, determinism, and recovery.

The regression gate at the top is the load-bearing one: running with no
plan (or an empty plan) must reproduce the pre-chaos record stream
byte for byte, so the fault layer can never perturb published numbers.
"""

import pytest

from repro.experiment import ExperimentConfig, StudyRunner
from repro.experiment.parallel import record_stream_digest
from repro.faultsim import (
    DnsFaultSpell,
    FaultPlan,
    OutageSpan,
    SmtpFaultSpell,
)
from repro.smtpsim import RetryPolicy

pytestmark = pytest.mark.chaos

CHEAP = dict(seed=41, spam_scale=1e-5, ham_scale=0.5, outage_spans=())


def _run(plan=None, **overrides):
    config = ExperimentConfig(**{**CHEAP, **overrides}, fault_plan=plan)
    return StudyRunner(config).run()


@pytest.fixture(scope="module")
def baseline():
    return _run()


class TestByteIdentityGate:
    """Fault-free plans reproduce the existing digests exactly."""

    def test_none_and_empty_plan_are_byte_identical(self, baseline):
        digest = record_stream_digest(baseline.records)
        empty = _run(plan=FaultPlan.empty())
        assert record_stream_digest(empty.records) == digest
        assert empty.delivered_count == baseline.delivered_count
        assert empty.sent_count == baseline.sent_count

    def test_empty_plan_reports_no_robustness_section(self, baseline):
        assert baseline.robustness is None
        assert _run(plan=FaultPlan.empty()).robustness is None


class TestChaosDeterminism:
    def test_same_plan_replays_byte_identically(self):
        plan = FaultPlan.chaos_demo(11)
        first = _run(plan=plan)
        second = _run(plan=plan)
        assert (record_stream_digest(first.records)
                == record_stream_digest(second.records))
        assert first.robustness == second.robustness

    def test_different_plan_seeds_diverge(self):
        smtp_only = lambda seed: FaultPlan(
            seed=seed,
            smtp_spells=(SmtpFaultSpell(0, 200, tempfail_probability=0.3),))
        a = _run(plan=smtp_only(1))
        b = _run(plan=smtp_only(2))
        assert a.robustness["faults"] != b.robustness["faults"]


class TestRecoveryByRetry:
    def test_tempfail_outage_mail_is_recovered(self):
        """Mail hitting a tempfail-mode outage comes back via retries."""
        plan = FaultPlan(
            seed=3, collector_outages=(OutageSpan(20, 22, mode="tempfail"),))
        results = _run(plan=plan)
        robustness = results.robustness
        assert robustness["faults"]["outage_tempfails"] > 0
        assert robustness["retry"]["recovered"] > 0
        # a two-day outage sits inside the retry horizon: most queued
        # mail must come back rather than give up
        assert (robustness["retry"]["recovered"]
                > robustness["retry"]["gave_up"])

    def test_long_outage_gives_up_with_dsns(self):
        """Past the queue horizon the sender returns DSNs, not silence."""
        plan = FaultPlan(
            seed=3,
            collector_outages=(OutageSpan(20, 40, mode="tempfail"),),
            retry=RetryPolicy(max_queue_seconds=86_400.0))
        robustness = _run(plan=plan).robustness
        assert robustness["retry"]["gave_up"] > 0
        assert robustness["retry"]["dsn_sent"] > 0

    def test_drop_outage_is_counted_never_recovered(self, baseline):
        """Drop-mode outages reproduce the paper's hard gap."""
        plan = FaultPlan(
            seed=3, collector_outages=(OutageSpan(30, 33, mode="drop"),))
        results = _run(plan=plan)
        coverage = results.robustness["collector"]
        assert coverage["gap_days"] == [30, 31, 32]
        assert coverage["dropped_outage"] > 0
        assert results.robustness["retry"]["enqueued"] == 0
        assert results.delivered_count < baseline.delivered_count

    def test_greylisting_tempfails_then_recovers(self):
        plan = FaultPlan(
            seed=5, smtp_spells=(SmtpFaultSpell(10, 40, greylist=True),))
        robustness = _run(plan=plan).robustness
        assert robustness["faults"]["greylist_tempfails"] > 0
        assert robustness["retry"]["recovered"] > 0

    def test_dns_spell_injects_servfails(self):
        plan = FaultPlan(
            seed=5,
            dns_spells=(DnsFaultSpell(10, 30, mode="servfail",
                                      probability=0.5),))
        robustness = _run(plan=plan).robustness
        assert robustness["faults"]["dns_servfails"] > 0

    def test_plan_digest_is_reported(self):
        plan = FaultPlan.chaos_demo(11)
        robustness = _run(plan=plan).robustness
        assert robustness["plan_digest"] == plan.digest()
        assert robustness["plan_seed"] == 11


class TestRobustnessReporting:
    def test_report_gains_a_robustness_section(self):
        from repro.report import render_study_report

        chaotic = render_study_report(_run(plan=FaultPlan.chaos_demo(11)))
        assert "## Robustness (injected faults)" in chaotic
        assert "retry queue" in chaotic

    def test_fault_free_report_has_no_robustness_section(self, baseline):
        from repro.report import render_study_report

        assert "Robustness" not in render_study_report(baseline)

    def test_sample_carries_robustness_across_processes(self):
        import pickle

        from repro.experiment.parallel import sample_from_results

        sample = sample_from_results(_run(plan=FaultPlan.chaos_demo(11)))
        clone = pickle.loads(pickle.dumps(sample))
        assert clone.robustness == sample.robustness
        assert clone.robustness["plan_seed"] == 11
