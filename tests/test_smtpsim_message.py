"""Tests for repro.smtpsim.message — addresses, messages, wire format."""

import pytest

from repro.smtpsim import Attachment, EmailMessage, parse_address


class TestParseAddress:
    def test_bare(self):
        addr = parse_address("alice@gmail.com")
        assert addr.local == "alice"
        assert addr.domain == "gmail.com"
        assert addr.display_name == ""

    def test_display_name(self):
        addr = parse_address("Alice Smith <alice@gmail.com>")
        assert addr.local == "alice"
        assert addr.display_name == "Alice Smith"

    def test_domain_lowercased(self):
        assert parse_address("a@GMAIL.COM").domain == "gmail.com"

    def test_bare_property_and_str(self):
        addr = parse_address("Bob <bob@x.com>")
        assert addr.bare == "bob@x.com"
        assert str(addr) == "Bob <bob@x.com>"

    def test_invalid_rejected(self):
        for bad in ("no-at-sign", "a@", "@b.com", "a b@c.com"):
            with pytest.raises(ValueError):
                parse_address(bad)


class TestAttachment:
    def test_extension(self):
        assert Attachment("cv.pdf", b"x").extension == "pdf"
        assert Attachment("archive.tar.gz", b"x").extension == "gz"
        assert Attachment("README", b"x").extension == ""
        assert Attachment("Photo.JPG", b"x").extension == "jpg"

    def test_size_and_hash(self):
        att = Attachment("a.txt", b"hello")
        assert att.size == 5
        assert len(att.sha256()) == 64
        assert att.sha256() == Attachment("b.txt", b"hello").sha256()


class TestEmailMessage:
    def _message(self, **kwargs):
        return EmailMessage.create(
            from_addr="alice@sender.com", to_addr="bob@gmial.com",
            subject="hello", body="hi bob", **kwargs)

    def test_create_sets_headers_and_envelope(self):
        msg = self._message()
        assert msg.get_header("From") == "alice@sender.com"
        assert msg.subject == "hello"
        assert msg.envelope_from == "alice@sender.com"
        assert msg.envelope_to == ["bob@gmial.com"]

    def test_sender_recipient_parsed(self):
        msg = self._message()
        assert msg.sender.domain == "sender.com"
        assert msg.recipient.local == "bob"

    def test_malformed_from_gives_none(self):
        msg = EmailMessage()
        msg.add_header("From", "not an address")
        assert msg.sender is None

    def test_repeated_headers(self):
        msg = self._message()
        msg.add_header("Received", "hop1")
        msg.add_header("Received", "hop2")
        assert msg.get_all_headers("Received") == ["hop1", "hop2"]
        assert msg.get_header("Received") == "hop1"

    def test_set_header_replaces_first(self):
        msg = self._message()
        msg.set_header("Subject", "changed")
        assert msg.subject == "changed"
        assert len(msg.get_all_headers("Subject")) == 1

    def test_header_case_insensitive(self):
        msg = self._message()
        assert msg.get_header("SUBJECT") == "hello"
        assert msg.has_header("subject")

    def test_wire_roundtrip_plain(self):
        msg = self._message()
        parsed = EmailMessage.from_wire(msg.to_wire())
        assert parsed.subject == "hello"
        assert parsed.body == "hi bob"
        assert parsed.attachments == []

    def test_wire_roundtrip_with_attachments(self):
        msg = self._message(attachments=[
            Attachment("cv.pdf", b"pdf-bytes", "application/pdf"),
            Attachment("notes.txt", b"some text", "text/plain"),
        ])
        parsed = EmailMessage.from_wire(msg.to_wire())
        assert parsed.body == "hi bob"
        assert [a.filename for a in parsed.attachments] == ["cv.pdf", "notes.txt"]
        assert parsed.attachments[0].content == b"pdf-bytes"
        assert parsed.attachments[0].content_type == "application/pdf"

    def test_wire_roundtrip_binary_attachment(self):
        """True binary payloads must survive via base64 transfer encoding."""
        binary = bytes(range(256)) * 3
        msg = self._message(attachments=[
            Attachment("blob.bin", binary, "application/octet-stream")])
        wire = msg.to_wire()
        assert "Content-Transfer-Encoding: base64" in wire
        parsed = EmailMessage.from_wire(wire)
        assert parsed.attachments[0].content == binary
        assert parsed.attachments[0].sha256() == msg.attachments[0].sha256()

    def test_wire_text_attachment_stays_7bit(self):
        msg = self._message(attachments=[Attachment("a.txt", b"plain text")])
        assert "base64" not in msg.to_wire()

    def test_wire_roundtrip_mixed_attachments(self):
        msg = self._message(attachments=[
            Attachment("a.txt", b"readable"),
            Attachment("b.bin", b"\x00\xff\xfe binary"),
        ])
        parsed = EmailMessage.from_wire(msg.to_wire())
        assert parsed.attachments[0].content == b"readable"
        assert parsed.attachments[1].content == b"\x00\xff\xfe binary"

    def test_wire_header_newline_folding(self):
        msg = self._message()
        msg.set_header("Subject", "line1\nline2")
        parsed = EmailMessage.from_wire(msg.to_wire())
        assert "\n" not in parsed.subject

    def test_extra_headers(self):
        msg = self._message(extra_headers={"Reply-To": "noreply@sender.com"})
        assert msg.get_header("Reply-To") == "noreply@sender.com"

    def test_size_bytes_positive(self):
        assert self._message().size_bytes() > 0
