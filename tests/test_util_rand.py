"""Tests for repro.util.rand — deterministic randomness."""

import pytest

from repro.util import SeededRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "component")
        assert 0 <= seed < 2 ** 64


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(7)
        b = SeededRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_different_stream(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_children_independent_of_sibling_creation(self):
        root1 = SeededRng(99)
        root2 = SeededRng(99)
        child_a1 = root1.child("a")
        root2.child("zzz")  # creating another child must not perturb "a"
        child_a2 = root2.child("a")
        assert [child_a1.random() for _ in range(5)] == [
            child_a2.random() for _ in range(5)]

    def test_child_name_propagates(self):
        child = SeededRng(1, name="root").child("traffic")
        assert child.name == "root/traffic"

    def test_randint_bounds(self):
        rng = SeededRng(3)
        draws = [rng.randint(2, 5) for _ in range(200)]
        assert min(draws) >= 2 and max(draws) <= 5
        assert set(draws) == {2, 3, 4, 5}

    def test_poisson_zero_lambda(self):
        assert SeededRng(1).poisson(0) == 0
        assert SeededRng(1).poisson(-1.0) == 0

    def test_poisson_small_lambda_mean(self):
        rng = SeededRng(11)
        draws = [rng.poisson(3.0) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 2.8 < mean < 3.2

    def test_poisson_large_lambda_mean(self):
        rng = SeededRng(12)
        draws = [rng.poisson(500.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 490 < mean < 510
        assert all(d >= 0 for d in draws)

    def test_bernoulli_probability(self):
        rng = SeededRng(13)
        hits = sum(rng.bernoulli(0.25) for _ in range(8000))
        assert 0.22 < hits / 8000 < 0.28

    def test_weighted_index_distribution(self):
        rng = SeededRng(14)
        counts = [0, 0, 0]
        for _ in range(6000):
            counts[rng.weighted_index([1.0, 2.0, 1.0])] += 1
        assert counts[1] > counts[0]
        assert counts[1] > counts[2]

    def test_weighted_index_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SeededRng(1).weighted_index([0.0, 0.0])

    def test_token_alphabet_and_length(self):
        token = SeededRng(5).token(20)
        assert len(token) == 20
        assert all(ch in "abcdefghijklmnopqrstuvwxyz0123456789" for ch in token)

    def test_shuffled_preserves_elements(self):
        rng = SeededRng(6)
        items = list(range(50))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(50))  # original untouched

    def test_sample_without_replacement(self):
        rng = SeededRng(8)
        picked = rng.sample(list(range(100)), 10)
        assert len(set(picked)) == 10

    def test_numpy_rng_deterministic(self):
        a = SeededRng(21).numpy_rng().random(4)
        b = SeededRng(21).numpy_rng().random(4)
        assert list(a) == list(b)
