"""Tests for the §4.3 performance-analysis replay."""

import pytest

from repro.experiment import (
    ExperimentConfig,
    StudyRunner,
    validate_receiver_typos_at_smtp_domains,
    validate_survivors_by_sampling,
)
from repro.util import SeededRng


#: full study run behind the sampled validation -- skipped in the '-m "not slow"' smoke lane
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def results():
    return StudyRunner(ExperimentConfig(seed=606, spam_scale=2e-4)).run()


class TestSurvivorSampling:
    def test_mostly_genuine(self, results):
        """Paper: 80% of sampled surviving emails were not spam."""
        validation = validate_survivors_by_sampling(
            results.records, results.corpus, SeededRng(1))
        assert validation.sampled > 30
        assert validation.genuine_fraction > 0.6

    def test_per_domain_cap_respected(self, results):
        validation = validate_survivors_by_sampling(
            results.records, results.corpus, SeededRng(2),
            per_domain_sample=5)
        for genuine, sampled in validation.per_domain.values():
            assert sampled <= 5
            assert genuine <= sampled

    def test_deterministic_given_rng(self, results):
        a = validate_survivors_by_sampling(results.records, results.corpus,
                                           SeededRng(3))
        b = validate_survivors_by_sampling(results.records, results.corpus,
                                           SeededRng(3))
        assert a.per_domain == b.per_domain

    def test_empty_records(self, results):
        validation = validate_survivors_by_sampling([], results.corpus,
                                                    SeededRng(4))
        assert validation.sampled == 0
        import math
        assert math.isnan(validation.genuine_fraction)


class TestSmtpDomainReceivers:
    def test_surprise_finding_mostly_correct(self, results):
        """Paper: 25 of 26 receiver-classified emails at SMTP-purpose
        domains really were receiver typos."""
        validation = validate_receiver_typos_at_smtp_domains(
            results.records, results.corpus)
        assert validation.sampled > 10
        assert validation.genuine_fraction > 0.85

    def test_only_smtp_purpose_domains_counted(self, results):
        validation = validate_receiver_typos_at_smtp_domains(
            results.records, results.corpus)
        smtp_domains = {d.domain for d in results.corpus.by_purpose("smtp")}
        assert set(validation.per_domain) <= smtp_domains
