"""Tests for the sensitive-information scrubber (paper Table 2 machinery)."""

import pytest

from repro.pipeline import (
    SENTINEL,
    SensitiveScrubber,
    card_brand,
    luhn_valid,
)


@pytest.fixture(scope="module")
def scrubber():
    return SensitiveScrubber(salt="test-salt")


class TestLuhn:
    def test_known_valid(self):
        # standard test PANs
        assert luhn_valid("4111111111111111")   # visa
        assert luhn_valid("5500005555555559")   # mastercard
        assert luhn_valid("371449635398431")    # amex
        assert luhn_valid("30569309025904")     # diners

    def test_invalid_checksum(self):
        assert not luhn_valid("4111111111111112")

    def test_non_digits(self):
        assert not luhn_valid("4111-1111-1111-1111")

    def test_too_short(self):
        assert not luhn_valid("411111")


class TestCardBrand:
    def test_visa(self):
        assert card_brand("4111111111111111") == "visa"

    def test_mastercard(self):
        assert card_brand("5500005555555559") == "mastercard"

    def test_amex(self):
        assert card_brand("371449635398431") == "amex"

    def test_dinersclub(self):
        assert card_brand("30569309025904") == "dinersclub"

    def test_jcb(self):
        assert card_brand("3530111333300000") == "jcb"

    def test_discover(self):
        assert card_brand("6011111111111117") == "discover"

    def test_unknown(self):
        assert card_brand("9999999999999999") is None


class TestDetection:
    def test_credit_card_found(self, scrubber):
        matches = scrubber.find("Pay with 4111 1111 1111 1111 now")
        assert [m.kind for m in matches] == ["creditcard"]
        assert matches[0].detail == "visa"

    def test_card_with_hyphens(self, scrubber):
        matches = scrubber.find("card: 5500-0055-5555-5559.")
        assert matches[0].kind == "creditcard"
        assert matches[0].detail == "mastercard"

    def test_luhn_invalid_run_ignored(self, scrubber):
        matches = scrubber.find("order number 4111111111111112 attached")
        assert all(m.kind != "creditcard" for m in matches)

    def test_ssn(self, scrubber):
        assert [m.kind for m in scrubber.find("my ssn is 078-05-1120")] == ["ssn"]

    def test_ssn_contextual_without_hyphens(self, scrubber):
        matches = scrubber.find("SSN: 078051120")
        assert [m.kind for m in matches] == ["ssn"]

    def test_plain_9_digits_not_ssn(self, scrubber):
        matches = scrubber.find("tracking 078051120 arrived")
        assert all(m.kind != "ssn" for m in matches)

    def test_ein(self, scrubber):
        assert [m.kind for m in scrubber.find("EIN 12-3456789 on file")] == ["ein"]

    def test_vin(self, scrubber):
        matches = scrubber.find("vehicle 1HGCM82633A004352 registered")
        assert [m.kind for m in matches] == ["vin"]

    def test_vin_excludes_ioq_alphabet(self, scrubber):
        # contains I -> not a VIN
        assert all(m.kind != "vin"
                   for m in scrubber.find("code IHGCM82633A004352 here"))

    def test_phone_formats(self, scrubber):
        for text in ("(412) 555-1234", "412-555-1234", "+1 412 555 1234"):
            matches = scrubber.find(f"call {text} today")
            assert any(m.kind == "phone" for m in matches), text

    def test_email(self, scrubber):
        matches = scrubber.find("write to alice.smith@example.org please")
        assert [m.kind for m in matches] == ["email"]

    def test_zip_with_state(self, scrubber):
        matches = scrubber.find("Pittsburgh, PA 15213")
        assert any(m.kind == "zip" and m.text.startswith("15213")
                   for m in matches)

    def test_zip_with_keyword(self, scrubber):
        matches = scrubber.find("zip code: 90210")
        assert any(m.kind == "zip" for m in matches)

    def test_bare_5_digits_not_zip(self, scrubber):
        assert all(m.kind != "zip" for m in scrubber.find("invoice 90210 paid"))

    def test_password(self, scrubber):
        matches = scrubber.find("your password is hunter2")
        assert any(m.kind == "password" and m.text == "hunter2" for m in matches)

    def test_username(self, scrubber):
        matches = scrubber.find("login: jdoe99 works now")
        assert any(m.kind == "username" and m.text == "jdoe99" for m in matches)

    def test_idnumber(self, scrubber):
        matches = scrubber.find("account number: AC-99812 ok")
        assert any(m.kind == "idnumber" for m in matches)

    def test_dates(self, scrubber):
        for text in ("06/03/2016", "2016-06-03", "June 3, 2016", "Exp 06/03"):
            matches = scrubber.find(f"sent {text} thanks")
            assert any(m.kind == "date" for m in matches), text

    def test_card_takes_priority_over_phone(self, scrubber):
        # a card number could partially look like phone digits
        matches = scrubber.find("pay 4111 1111 1111 1111 now")
        kinds = [m.kind for m in matches]
        assert kinds.count("creditcard") == 1
        assert "phone" not in kinds

    def test_no_overlapping_matches(self, scrubber):
        text = ("ssn 078-05-1120, card 4111111111111111, "
                "email a@b.com, call 412-555-1234 on 06/03/2016")
        matches = scrubber.find(text)
        spans = sorted((m.start, m.end) for m in matches)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_clean_text_no_matches(self, scrubber):
        assert scrubber.find("hello there, see you at lunch") == []


class TestScrubbing:
    def test_paper_example_amex(self, scrubber):
        # Figure 2's running example
        text = "Amex 371449635398431 Exp 06/03\nBook us 3 rooms"
        result = scrubber.scrub(text)
        assert "371449635398431" not in result.text
        assert SENTINEL in result.text
        assert "amex" in result.text
        assert "Book us 0 rooms" in result.text  # digits zeroed

    def test_all_digits_zeroed(self, scrubber):
        result = scrubber.scrub("we have 7 cats and 12 dogs")
        assert result.text == "we have 0 cats and 00 dogs"

    def test_sentinel_wraps_replacement(self, scrubber):
        result = scrubber.scrub("ssn 078-05-1120")
        assert result.text.count(SENTINEL) == 2

    def test_hash_stable_within_salt(self, scrubber):
        first = scrubber.scrub("card 4111111111111111").text
        second = scrubber.scrub("card 4111111111111111").text
        assert first == second

    def test_hash_differs_across_salts(self):
        a = SensitiveScrubber(salt="a").scrub("ssn 078-05-1120").text
        b = SensitiveScrubber(salt="b").scrub("ssn 078-05-1120").text
        assert a != b

    def test_matches_reported(self, scrubber):
        result = scrubber.scrub("password: abc123 for alice@x.com")
        assert set(result.kinds_found()) == {"password", "email"}

    def test_count_by_label_card_brand(self, scrubber):
        result = scrubber.scrub("4111111111111111 and 371449635398431")
        counts = result.count_by_label()
        assert counts == {"visa": 1, "amex": 1}

    def test_scrub_empty(self, scrubber):
        result = scrubber.scrub("")
        assert result.text == ""
        assert result.matches == ()

    def test_non_sensitive_words_preserved(self, scrubber):
        result = scrubber.scrub("meeting moved to the blue room")
        assert result.text == "meeting moved to the blue room"
