"""The parallel multi-seed engine's correctness bar.

The whole point of :mod:`repro.experiment.parallel` is that worker
processes are an implementation detail: a study run is a pure function
of its config, so the serial path and any ``jobs`` count must produce
byte-identical record streams and identical headline numbers.  These
tests hold the engine to that bar with cheap configs.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiment import (
    ExperimentConfig,
    StudyRunner,
    derive_child_seeds,
    parallel_map,
    record_stream_digest,
    run_study_sample,
    run_study_samples,
)
from repro.experiment.parallel import StudySample, sample_from_results

#: full study runs on both the serial and pooled paths -- skipped in the '-m "not slow"' smoke lane
pytestmark = pytest.mark.slow


#: Small world: low spam volume, half ham, no outage bookkeeping.
CHEAP = ExperimentConfig(seed=41, spam_scale=1e-5, ham_scale=0.5,
                         outage_spans=())
SEEDS = (41, 42)


@pytest.fixture(scope="module")
def serial_samples():
    return run_study_samples(
        [replace(CHEAP, seed=s) for s in SEEDS], jobs=None)


class TestParallelMatchesSerial:
    def test_record_streams_byte_identical(self, serial_samples):
        parallel = run_study_samples(
            [replace(CHEAP, seed=s) for s in SEEDS], jobs=2)
        for serial, pooled in zip(serial_samples, parallel):
            assert serial.seed == pooled.seed
            assert serial.record_digest() == pooled.record_digest()

    def test_headline_numbers_identical(self, serial_samples):
        parallel = run_study_samples(
            [replace(CHEAP, seed=s) for s in SEEDS], jobs=2)
        for serial, pooled in zip(serial_samples, parallel):
            assert serial.sent_count == pooled.sent_count
            assert serial.delivered_count == pooled.delivered_count
            assert serial.funnel_accuracy() == pooled.funnel_accuracy()
            assert serial.malicious_hashes == pooled.malicious_hashes
            assert len(serial.true_typo_records()) == \
                len(pooled.true_typo_records())

    def test_results_come_back_in_input_order(self, serial_samples):
        assert [s.seed for s in serial_samples] == list(SEEDS)


class TestStudySample:
    def test_projection_preserves_results(self):
        results = StudyRunner(CHEAP).run()
        sample = sample_from_results(results)
        assert sample.config == results.config
        assert sample.records == tuple(results.records)
        assert sample.sent_count == results.sent_count
        assert sample.delivered_count == results.delivered_count
        assert sample.funnel_accuracy() == results.funnel_accuracy()
        assert sample.perf == results.perf

    def test_sample_is_picklable(self, serial_samples):
        import pickle

        blob = pickle.dumps(serial_samples[0])
        clone = pickle.loads(blob)
        assert isinstance(clone, StudySample)
        assert clone.record_digest() == serial_samples[0].record_digest()

    def test_run_study_sample_matches_runner(self, serial_samples):
        direct = run_study_sample(replace(CHEAP, seed=SEEDS[0]))
        assert direct.record_digest() == serial_samples[0].record_digest()


class TestDigest:
    def test_digest_is_order_sensitive(self, serial_samples):
        records = list(serial_samples[0].records)
        assert len(records) > 1
        forward = record_stream_digest(records)
        assert forward == serial_samples[0].record_digest()
        assert forward != record_stream_digest(list(reversed(records)))

    def test_different_seeds_differ(self, serial_samples):
        assert serial_samples[0].record_digest() != \
            serial_samples[1].record_digest()

    def test_empty_stream(self):
        assert record_stream_digest([]) == record_stream_digest(())


class TestChildSeeds:
    def test_deterministic_and_distinct(self):
        a = derive_child_seeds(2016, 5)
        b = derive_child_seeds(2016, 5)
        assert a == b
        assert len(set(a)) == 5

    def test_name_and_base_change_the_seeds(self):
        assert derive_child_seeds(2016, 3) != derive_child_seeds(2017, 3)
        assert derive_child_seeds(2016, 3) != \
            derive_child_seeds(2016, 3, name="other")

    def test_count_validation(self):
        assert derive_child_seeds(1, 0) == []
        with pytest.raises(ValueError):
            derive_child_seeds(1, -1)


class TestParallelMap:
    def test_serial_and_pooled_agree(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=None) == \
            parallel_map(_square, items, jobs=2) == \
            [n * n for n in items]

    def test_unpicklable_work_falls_back_to_serial(self):
        # a lambda cannot cross the process boundary; the engine must
        # quietly compute the same answer serially
        assert parallel_map(lambda n: n + 1, [1, 2, 3], jobs=2) == [2, 3, 4]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], jobs=None)


def _square(n: int) -> int:
    return n * n


def _reciprocal(n: int) -> float:
    return 1.0 / n
