"""The learned detector wired through the pipelines, service, CLI, doctor.

End-to-end coverage for the ``--detector`` lane: the verdict-overlay
semantics, study-level equivalence across drive modes, the risk engine's
``scorer="learned"`` hook with its rules fallback, the ``train`` /
``evaluate`` CLI round trip, and the doctor's ``typo-model`` kind.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiment import ExperimentConfig, StudyRunner
from repro.experiment.classify import apply_learned_detector
from repro.experiment.parallel import record_stream_digest
from repro.learned import save_model, train_typo_model
from repro.spamfilter.funnel import FilterResult, Verdict
from repro.util.errors import ConfigError

TINY_SEED = 707
STUDY_CONFIG = dict(seed=2016, spam_scale=2e-5)


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    model, _ = train_typo_model(TINY_SEED, ranks=300, dataset_size=40)
    path = tmp_path_factory.mktemp("learned") / "model.json"
    save_model(model, str(path))
    return model, str(path)


def _result(verdict, reason="r"):
    return FilterResult(verdict, "receiver", None, reason)


class TestApplyLearnedDetector:
    def test_flagged_mail_becomes_spam_in_either_mode(self):
        for mode in ("learned", "both"):
            results = [_result(Verdict.TRUE_TYPO),
                       _result(Verdict.REFLECTION),
                       _result(Verdict.FREQUENCY_FILTERED)]
            adjusted = apply_learned_detector(results, [True, True, True],
                                              mode)
            assert [r.verdict for r in adjusted] == [Verdict.SPAM] * 3
            assert all(r.reason == "learned" and r.layer is None
                       for r in adjusted)

    def test_learned_mode_releases_disputed_funnel_spam(self):
        adjusted = apply_learned_detector(
            [_result(Verdict.SPAM, "zip attachment")], [False], "learned")
        assert adjusted[0].verdict is Verdict.TRUE_TYPO
        assert adjusted[0].reason == "learned-override"

    def test_both_mode_is_a_union(self):
        adjusted = apply_learned_detector(
            [_result(Verdict.SPAM, "zip attachment"),
             _result(Verdict.TRUE_TYPO)], [False, False], "both")
        assert adjusted[0].verdict is Verdict.SPAM
        assert adjusted[0].reason == "zip attachment"   # untouched
        assert adjusted[1].verdict is Verdict.TRUE_TYPO

    def test_unflagged_non_spam_survives_untouched(self):
        originals = [_result(Verdict.REFLECTION),
                     _result(Verdict.FREQUENCY_FILTERED)]
        adjusted = apply_learned_detector(originals, [False, False],
                                          "learned")
        assert adjusted == originals


class TestStudyIntegration:
    def test_detector_changes_verdicts_not_the_record_stream(
            self, model_file):
        _, path = model_file
        funnel = StudyRunner(ExperimentConfig(**STUDY_CONFIG)).run()
        learned = StudyRunner(ExperimentConfig(
            **STUDY_CONFIG, detector="learned", model_path=path)).run()
        assert len(funnel.records) == len(learned.records)
        # same mail stream: timestamps + ground truth line up 1:1
        for a, b in zip(funnel.records, learned.records):
            assert a.timestamp == b.timestamp
            assert a.study_domain == b.study_domain
            assert a.true_kind == b.true_kind
        reasons = {r.result.reason for r in learned.records}
        assert "learned" in reasons
        assert "learned-override" in reasons

    def test_learned_study_is_deterministic_and_jobs_invariant(
            self, model_file):
        _, path = model_file
        config = ExperimentConfig(**STUDY_CONFIG, detector="learned",
                                  model_path=path)
        serial = StudyRunner(config).run()
        parallel = StudyRunner(ExperimentConfig(
            **STUDY_CONFIG, detector="learned", model_path=path,
            classify_jobs=2)).run()
        assert record_stream_digest(serial.records) == \
            record_stream_digest(parallel.records)

    def test_both_mode_spam_is_a_superset_of_funnel_spam(self, model_file):
        _, path = model_file
        funnel = StudyRunner(ExperimentConfig(**STUDY_CONFIG)).run()
        both = StudyRunner(ExperimentConfig(
            **STUDY_CONFIG, detector="both", model_path=path)).run()
        funnel_spam = {i for i, r in enumerate(funnel.records)
                       if r.result.verdict is Verdict.SPAM}
        both_spam = {i for i, r in enumerate(both.records)
                     if r.result.verdict is Verdict.SPAM}
        assert funnel_spam <= both_spam

    def test_streaming_plus_learned_is_rejected(self):
        with pytest.raises(ValueError, match="streaming"):
            ExperimentConfig(**STUDY_CONFIG, detector="learned",
                             model_path="x.json", streaming_classify=True)

    def test_unknown_detector_is_rejected(self):
        with pytest.raises(ValueError, match="detector"):
            ExperimentConfig(**STUDY_CONFIG, detector="oracle")

    def test_learned_detector_requires_a_model(self):
        config = ExperimentConfig(**STUDY_CONFIG, detector="learned")
        with pytest.raises(ConfigError, match="model"):
            StudyRunner(config).run()


class TestEngineLearnedScorer:
    @pytest.fixture(scope="class")
    def engines(self, model_file):
        from repro.service import RiskEngine, TypoRiskIndex

        model, _ = model_file
        index = TypoRiskIndex(TINY_SEED, 2_000)
        return (RiskEngine(index, scorer="learned", model=model),
                RiskEngine(TypoRiskIndex(TINY_SEED, 2_000)))

    def _registered_typo(self):
        from repro.ecosystem.world import WorldModel

        world = WorldModel(TINY_SEED)
        for rank in range(1, 50):
            for state in world.iter_rank_states(rank,
                                                world.rank_grid(rank)):
                return state.domain
        raise AssertionError("no registered typo in the first 50 ranks")

    def test_registered_typo_scored_by_model(self, engines):
        learned, _ = engines
        verdict = learned.lookup(self._registered_typo())
        assert verdict.source == "scorer"
        assert verdict.registered
        assert 0.0 < verdict.score < 1.0

    def test_clean_query_falls_back_to_rules(self, engines):
        learned, rules = engines
        query = "completely-unrelated-name.org"
        assert learned.lookup(query).canonical_dict() == \
            rules.lookup(query).canonical_dict()

    def test_learned_verdicts_deterministic(self, model_file):
        from repro.service import RiskEngine, TypoRiskIndex

        model, _ = model_file
        queries = [self._registered_typo(), "gmial.com", "clean.org"]
        runs = []
        for _ in range(2):
            engine = RiskEngine(TypoRiskIndex(TINY_SEED, 2_000),
                                scorer="learned", model=model)
            runs.append([engine.lookup(q).canonical_dict()
                         for q in queries])
        assert runs[0] == runs[1]

    def test_batch_lookup_matches_serial_for_learned(self, engines):
        learned, _ = engines
        queries = [self._registered_typo(), "gmial.com", "clean.org"] * 3
        batch = learned.batch_lookup(queries, jobs=4)   # stays serial
        serial = [learned.lookup(q) for q in queries]
        assert [v.canonical_dict() for v in batch] == \
            [v.canonical_dict() for v in serial]

    def test_scorer_validation(self, model_file):
        from repro.service import RiskEngine, TypoRiskIndex

        model, _ = model_file
        index = TypoRiskIndex(TINY_SEED, 500)
        with pytest.raises(ConfigError, match="scorer"):
            RiskEngine(index, scorer="psychic", model=model)
        with pytest.raises(ConfigError, match="model"):
            RiskEngine(index, scorer="learned")


class TestCliLearnedLane:
    def test_train_evaluate_round_trip(self, tmp_path, capsys):
        out = tmp_path / "model.json"
        assert main(["--seed", str(TINY_SEED), "train", "--out", str(out),
                     "--ranks", "300", "--dataset-size", "40"]) == 0
        printed = capsys.readouterr().out
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["digest"][:12] in printed

        assert main(["--seed", str(TINY_SEED), "evaluate",
                     "--model", str(out), "--dataset-size", "40"]) == 0
        table = capsys.readouterr().out
        assert "learned" in table and "funnel" in table

    def test_study_learned_without_model_exits_two(self, capsys):
        assert main(["study", "--detector", "learned"]) == 2
        assert "--model" in capsys.readouterr().err

    def test_study_streaming_learned_exits_two(self, tmp_path, capsys):
        model = tmp_path / "m.json"
        model.write_text("{}")
        assert main(["study", "--detector", "learned", "--model",
                     str(model), "--streaming"]) == 2
        assert "streaming" in capsys.readouterr().err

    def test_serve_bench_learned_without_model_exits_two(self, capsys):
        assert main(["serve-bench", "--ranks", "200", "--lookups", "50",
                     "--score-mode", "learned"]) == 2
        assert "--model" in capsys.readouterr().err


class TestDoctorTypoModel:
    def test_healthy_model_diagnosed(self, model_file, capsys):
        from repro.doctor import KIND_TYPO_MODEL, diagnose_file

        _, path = model_file
        diagnosis = diagnose_file(path)
        assert diagnosis.kind == KIND_TYPO_MODEL
        assert diagnosis.ok
        assert main(["doctor", path]) == 0
        assert "typo-model" in capsys.readouterr().out

    def test_corrupt_model_exits_three(self, model_file, tmp_path,
                                       capsys):
        _, path = model_file
        payload = json.loads(open(path).read())
        payload["domain"]["bias"] = 12.5       # digest now wrong
        bad = tmp_path / "model.json"
        bad.write_text(json.dumps(payload))
        assert main(["doctor", str(bad)]) == 3
        assert "digest" in capsys.readouterr().out.lower()

    def test_foreign_schema_exits_two(self, model_file, tmp_path, capsys):
        from repro.learned.model import model_digest

        _, path = model_file
        payload = json.loads(open(path).read())
        payload["schema_version"] = 99
        payload["digest"] = model_digest(payload)
        bad = tmp_path / "model.json"
        bad.write_text(json.dumps(payload))
        assert main(["doctor", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "schema" in out and "\n" not in out.strip()

    def test_torn_model_falls_back_to_name(self, model_file, tmp_path):
        from repro.doctor import KIND_TYPO_MODEL, diagnose_file

        _, path = model_file
        torn = tmp_path / "typo-model.json"
        torn.write_text(open(path).read()[:120])
        diagnosis = diagnose_file(str(torn))
        assert diagnosis.kind == KIND_TYPO_MODEL
        assert not diagnosis.ok
        assert diagnosis.exit_code == 3
