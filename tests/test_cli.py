"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_options(self):
        args = build_parser().parse_args(
            ["study", "--spam-scale", "1e-5", "--no-outage"])
        assert args.command == "study"
        assert args.spam_scale == 1e-5
        assert args.no_outage

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "typos", "gmail.com"])
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_typos_command(self, capsys):
        assert main(["typos", "gmail.com", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "DL-1 candidates of gmail.com" in out
        assert out.count("\n") >= 6

    def test_typos_fat_finger_only(self, capsys):
        main(["typos", "gmail.com", "--fat-finger-only", "--limit", "5"])
        out = capsys.readouterr().out
        assert "candidates of gmail.com" in out

    def test_check_typo_exits_nonzero(self, capsys):
        assert main(["check", "alice@gmial.com"]) == 1
        assert "gmail.com" in capsys.readouterr().out

    def test_check_clean_exits_zero(self, capsys):
        assert main(["check", "alice@gmail.com"]) == 0
        assert "looks fine" in capsys.readouterr().out

    def test_check_bare_domain(self, capsys):
        assert main(["check", "outlo0k.com"]) == 1
        assert "outlook.com" in capsys.readouterr().out

    def test_scan_command_small(self, capsys):
        assert main(["--seed", "3", "scan", "--targets", "5"]) == 0
        out = capsys.readouterr().out
        assert "registered ctypos" in out
        assert "starttls_ok" in out

    def test_scan_streaming_ranks(self, capsys):
        assert main(["--seed", "5", "scan", "--ranks", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Table 6" in out
        assert "b-io.co" in out
        assert "aggregate digest: sha256:" in out

    def test_scan_streaming_jobs_digest_matches_serial(self, capsys):
        assert main(["--seed", "5", "scan", "--ranks", "60",
                     "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["--seed", "5", "scan", "--ranks", "60",
                     "--jobs", "2"]) == 0
        sharded = capsys.readouterr().out
        assert serial == sharded
