"""Table 5 — honey-probe outcomes by WHOIS registration type.

Paper's values (50,995 domains probed)::

                   Public reg.  Private reg.
    No error        1,170        6,099
    Bounce          1,567        1,160
    Timeout        17,923        6,976
    Network Error   7,901        6,584
    Other error        93        1,522

Shape: errors dominate, privately-registered domains accept far more
often than public ones, bounces skew public.
"""


def test_table5_honey_probes(benchmark, honey_campaign, ecosystem_scan,
                             probe_result):
    # benchmark a small fresh probe wave; the session-wide campaign
    # supplies the full table
    targets = honey_campaign.probe_targets_from_scan(ecosystem_scan)[:40]
    benchmark(honey_campaign.run_probe_campaign, targets)

    table = probe_result.table
    print(f"\nTable 5 — probe outcomes over {probe_result.domains_probed} "
          "domains")
    print(f"{'outcome':15s} {'public':>8s} {'private':>8s}")
    for outcome, public, private in table.rows():
        print(f"{outcome:15s} {public:8d} {private:8d}")
    print(f"{'total':15s} {table.total(False):8d} {table.total(True):8d}")

    # private registrations accept much more often
    assert table.private["no_error"] > 1.3 * table.public["no_error"]
    # bounces skew public (legitimate look-alikes reject unknown users)
    assert table.public["bounce"] > table.private["bounce"]
    # errors dominate the public column
    public_errors = (table.public["timeout"] + table.public["network_error"]
                     + table.public["bounce"] + table.public["other_error"])
    assert public_errors > 2 * table.public["no_error"]
    # timeouts are the single largest failure mode overall (paper: 24,899)
    total_by_outcome = {outcome: table.public[outcome] + table.private[outcome]
                        for outcome, _, _ in table.rows()}
    worst_failure = max((k for k in total_by_outcome if k != "no_error"),
                        key=total_by_outcome.get)
    assert worst_failure == "timeout"
