"""Learned-detector throughput — the feature engine's speed gates.

The perfsmoke lane times the two learned lanes end to end and records
them into the ``learned_detector`` section of ``BENCH_perf.json``:

* **message lane** — vectorized featurize + score over a 4k-message
  corpus versus the per-message rule funnel on the same messages.  The
  issue's acceptance bar: the learned path must clear **5x** the funnel's
  per-message throughput.  (Summaries ride the stage-A projection in
  both paths, so the comparison is verdict work vs. matrix work.)
* **domain lane** — a 20k-rank feature sweep: the extraction walk over
  the lazy world, then the columnar pass (one ``block_matrix`` + one
  fused matmul/stump scoring call per block).

The slow lane (``test_learned_full_sweep_1m``) runs the Alexa-1M stretch
point: extract all ~2.6M registered-typo rows, then hold the issue's
second bar — the columnar featurize+score pass over the full universe
must finish in **under 30 seconds**.  Extraction wall-clock is recorded
honestly alongside (it rides the scan lane and is gated there).

First recording becomes the regression baseline; later perfsmoke runs
fail when either lane's throughput falls more than 2x below it.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone

import pytest

from repro.features import message_feature_matrix, run_sharded_featurize
from repro.learned import SCORE_THRESHOLD, train_typo_model
from repro.service.bench import record_learned_detector
from repro.spamfilter.funnel import FilterFunnel, Verdict
from repro.util import SeededRng, derive_seed
from repro.util.perf import throughput
from repro.workloads.datasets import DATASET_PROFILES, build_dataset

from test_perf_baseline import BENCH_PATH, REGRESSION_FACTOR, _load_bench

SEED = 606
TRAIN_RANKS = 4_000
TRAIN_DATASET = 400
#: per profile; four profiles -> a 4k-message bench corpus
BENCH_DATASET = 1_000
SWEEP_RANKS = 20_000

#: the issue's acceptance bar: vectorized message scoring vs the
#: per-message funnel
MIN_MESSAGE_SPEEDUP = 5.0
#: absolute floors, ~3x under the bench box's measured rates so 25%
#: single-core timer noise cannot flake them
MIN_LEARNED_EMAILS_PER_SEC = 60_000.0
MIN_COLUMNAR_ROWS_PER_SEC = 250_000.0

FULL_RANKS = 1_000_000
#: the issue's second bar: columnar featurize+score over the full
#: Alexa-1M universe
MAX_FULL_COLUMNAR_SECONDS = 30.0


def _bench_corpus():
    """The 4k-message mixed corpus, deterministic from the bench seed."""
    root = SeededRng(derive_seed(SEED, "bench-mail"))
    emails = []
    for name, profile in DATASET_PROFILES.items():
        emails.extend(build_dataset(profile, BENCH_DATASET,
                                    root.child(name)).emails)
    return emails


def _columnar_pass(model, sweep):
    """Score every block of a sweep; returns (rows, flagged, seconds)."""
    rows = flagged = 0
    start = time.perf_counter()
    for X, _, _ in sweep.matrices():
        rows += X.shape[0]
        flagged += int((model.domain.scores(X) >= SCORE_THRESHOLD).sum())
    return rows, flagged, time.perf_counter() - start


@pytest.mark.perfsmoke
def test_learned_detector_throughput():
    start = time.perf_counter()
    model, stats = train_typo_model(SEED, ranks=TRAIN_RANKS,
                                    dataset_size=TRAIN_DATASET)
    train_seconds = time.perf_counter() - start

    # -- message lane: per-message funnel vs one matmul ---------------
    emails = _bench_corpus()
    funnel = FilterFunnel(("workplace.example",))
    start = time.perf_counter()
    results = funnel.classify_corpus(emails)
    funnel_seconds = time.perf_counter() - start

    plain = FilterFunnel(("workplace.example",), enabled_layers=())
    pairs = [(tok, plain.summarize(tok)) for tok in emails]
    start = time.perf_counter()
    scores = model.message.scores(message_feature_matrix(pairs))
    learned_seconds = time.perf_counter() - start

    # honest before fast: both detectors actually fired on this corpus
    assert len(results) == len(emails) == len(scores)
    funnel_spam = sum(r.verdict is Verdict.SPAM for r in results)
    learned_spam = int((scores >= SCORE_THRESHOLD).sum())
    assert 0 < funnel_spam < len(emails)
    assert 0 < learned_spam < len(emails)

    funnel_rate = throughput(len(emails), funnel_seconds)
    learned_rate = throughput(len(emails), learned_seconds)
    speedup = learned_rate / funnel_rate

    # -- domain lane: extraction walk, then the columnar pass ---------
    start = time.perf_counter()
    sweep = run_sharded_featurize(SEED, SWEEP_RANKS, jobs=1)
    extract_seconds = time.perf_counter() - start
    rows, flagged, columnar_seconds = _columnar_pass(model, sweep)
    assert rows == sweep.n_rows > 0
    assert 0 < flagged < rows
    columnar_rate = throughput(rows, columnar_seconds)

    print(f"\ntrain ranks={TRAIN_RANKS} ds={TRAIN_DATASET}: "
          f"{train_seconds:.2f}s  digest {stats['model_digest'][:12]}")
    print(f"message lane: funnel {funnel_rate:>10,.0f} emails/s  "
          f"learned {learned_rate:>10,.0f} emails/s  ({speedup:.1f}x)")
    print(f"domain lane:  extract {sweep.n_rows:,} rows in "
          f"{extract_seconds:.2f}s  columnar {columnar_rate:,.0f} rows/s")

    entry = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "seed": SEED,
        "train_ranks": TRAIN_RANKS,
        "train_seconds": round(train_seconds, 3),
        "model_digest": stats["model_digest"],
        "message_corpus": len(emails),
        "funnel_emails_per_sec": round(funnel_rate, 1),
        "learned_emails_per_sec": round(learned_rate, 1),
        "message_speedup": round(speedup, 2),
        "sweep_ranks": SWEEP_RANKS,
        "sweep_rows": rows,
        "extract_seconds": round(extract_seconds, 3),
        "extract_rows_per_sec": round(throughput(rows, extract_seconds), 1),
        "columnar_seconds": round(columnar_seconds, 4),
        "columnar_rows_per_sec": round(columnar_rate, 1),
    }
    section = record_learned_detector(entry, BENCH_PATH)

    # acceptance floors
    assert speedup >= MIN_MESSAGE_SPEEDUP, (
        f"vectorized message scoring only {speedup:.1f}x the per-message "
        f"funnel (floor {MIN_MESSAGE_SPEEDUP}x)")
    assert learned_rate >= MIN_LEARNED_EMAILS_PER_SEC, (
        f"message featurize+score too slow: {learned_rate:,.0f} emails/s "
        f"(floor {MIN_LEARNED_EMAILS_PER_SEC:,.0f})")
    assert columnar_rate >= MIN_COLUMNAR_ROWS_PER_SEC, (
        f"columnar domain scoring too slow: {columnar_rate:,.0f} rows/s "
        f"(floor {MIN_COLUMNAR_ROWS_PER_SEC:,.0f})")

    # trajectory gates against the recorded baseline
    baseline = section["baseline"]
    assert learned_rate >= (
        baseline["learned_emails_per_sec"] / REGRESSION_FACTOR), (
        f"message lane regressed: {learned_rate:,.0f} emails/s vs baseline "
        f"{baseline['learned_emails_per_sec']:,.0f}/s (gate "
        f"{REGRESSION_FACTOR}x) — if this slowdown is intended, delete the "
        "learned_detector section of BENCH_perf.json to re-baseline")
    assert columnar_rate >= (
        baseline["columnar_rows_per_sec"] / REGRESSION_FACTOR), (
        f"columnar lane regressed: {columnar_rate:,.0f} rows/s vs baseline "
        f"{baseline['columnar_rows_per_sec']:,.0f}/s (gate "
        f"{REGRESSION_FACTOR}x)")


@pytest.mark.slow
def test_learned_full_sweep_1m():
    """The Alexa-1M stretch point: featurize + score the full universe.

    The gate is on the **columnar** stage — the pass the resident model
    re-runs whenever weights change over already-extracted blocks — not
    on the extraction walk, which streams the lazy world once and is
    throughput-gated in the scan lane; its wall-clock is recorded here
    honestly alongside.
    """
    model, _ = train_typo_model(SEED, ranks=TRAIN_RANKS,
                                dataset_size=TRAIN_DATASET)
    start = time.perf_counter()
    sweep = run_sharded_featurize(SEED, FULL_RANKS, jobs=1)
    extract_seconds = time.perf_counter() - start
    rows, flagged, columnar_seconds = _columnar_pass(model, sweep)
    assert rows == sweep.n_rows > 2_000_000
    assert 0 < flagged < rows

    print(f"\n{FULL_RANKS:>9,} ranks: extract {extract_seconds:6.1f}s "
          f"({rows:,} rows)  columnar {columnar_seconds:5.2f}s "
          f"({throughput(rows, columnar_seconds):,.0f} rows/s)")

    bench = _load_bench()
    section = bench.setdefault("learned_detector", {})
    section["full_sweep"] = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "seed": SEED,
        "ranks": FULL_RANKS,
        "rows": rows,
        "flagged": flagged,
        "extract_seconds": round(extract_seconds, 3),
        "columnar_seconds": round(columnar_seconds, 3),
        "columnar_rows_per_sec": round(
            throughput(rows, columnar_seconds), 1),
        "sweep_digest": sweep.digest(),
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    assert columnar_seconds < MAX_FULL_COLUMNAR_SECONDS, (
        f"full-universe columnar featurize+score took "
        f"{columnar_seconds:.1f}s (ceiling {MAX_FULL_COLUMNAR_SECONDS}s)")
