"""Serving benchmark: the resident query service under mixed traffic.

The perfsmoke lane's serving gate.  One modest but honest run — tens of
thousands of ranks, hundreds of thousands of lookups, a parity sample
against the brute-force scan — records p50/p99 latency, sustained QPS,
and index build time into the ``query_service`` section of
``BENCH_perf.json``, then holds the acceptance floor: a warm mixed
workload must sustain at least 50k lookups/sec with p99 at or under
1ms.  (The full-scale acceptance run is ``repro serve-bench --ranks
100000``; it clears the same floor by orders of magnitude.)
"""

from __future__ import annotations

import pytest

from repro.service import run_serve_bench
from repro.service.bench import record_query_service

from test_perf_baseline import BENCH_PATH, REGRESSION_FACTOR

SERVE_SEED = 606
SERVE_RANKS = 20_000
SERVE_LOOKUPS = 200_000
SERVE_POOL = 2048
PARITY_SAMPLE = 30

#: the issue's acceptance floor, held at perfsmoke scale too
MIN_QPS = 50_000.0
MAX_P99_US = 1_000.0


@pytest.mark.perfsmoke
def test_query_service_serving_floor():
    result = run_serve_bench(SERVE_SEED, SERVE_RANKS,
                             lookups=SERVE_LOOKUPS, pool_size=SERVE_POOL,
                             parity=PARITY_SAMPLE)
    for line in result.report_lines():
        print(line)

    # the run is honest before it is fast
    assert result.lookups == SERVE_LOOKUPS
    assert result.parity_checked == PARITY_SAMPLE
    assert result.verdict_counts.get("clean", 0) > 0
    assert result.verdict_counts.get("typo_risk", 0) > 0
    assert result.engine_hit_rate > 0.5  # warm regime, by construction

    section = record_query_service(result.entry(), BENCH_PATH)

    # acceptance floor
    assert result.qps >= MIN_QPS, (
        f"serving too slow: {result.qps:,.0f} lookups/sec "
        f"(floor {MIN_QPS:,.0f})")
    assert result.p99_us <= MAX_P99_US, (
        f"p99 latency too high: {result.p99_us:.1f}us "
        f"(ceiling {MAX_P99_US:.0f}us)")

    # trajectory gate against the recorded baseline
    baseline = section["baseline"]
    assert result.qps >= baseline["qps"] / REGRESSION_FACTOR, (
        f"serving QPS regressed: {result.qps:,.0f}/s vs baseline "
        f"{baseline['qps']:,.0f}/s (gate {REGRESSION_FACTOR}x) — if this "
        "slowdown is intended, delete the query_service section of "
        "BENCH_perf.json to re-baseline")
    assert result.p99_us <= baseline["p99_us"] * REGRESSION_FACTOR, (
        f"serving p99 regressed: {result.p99_us:.2f}us vs baseline "
        f"{baseline['p99_us']:.2f}us (gate {REGRESSION_FACTOR}x)")
