"""Serving benchmark: the resident query service under mixed traffic.

The perfsmoke lane's serving gate.  One modest but honest run — tens of
thousands of ranks, hundreds of thousands of lookups, a parity sample
against the brute-force scan — records p50/p99 latency, sustained QPS,
and index build time into the ``query_service`` section of
``BENCH_perf.json``, then holds the acceptance floor: a warm mixed
workload must sustain at least 50k lookups/sec with p99 at or under
1ms.  (The full-scale acceptance run is ``repro serve-bench --ranks
100000``; it clears the same floor by orders of magnitude.)
"""

from __future__ import annotations

import pytest

from repro.service import run_serve_bench
from repro.service.bench import record_query_service

from test_perf_baseline import BENCH_PATH, REGRESSION_FACTOR

SERVE_SEED = 606
SERVE_RANKS = 20_000
SERVE_LOOKUPS = 200_000
SERVE_POOL = 2048
PARITY_SAMPLE = 30

#: the issue's acceptance floor, held at perfsmoke scale too
MIN_QPS = 50_000.0
MAX_P99_US = 1_000.0


@pytest.mark.perfsmoke
def test_query_service_serving_floor():
    result = run_serve_bench(SERVE_SEED, SERVE_RANKS,
                             lookups=SERVE_LOOKUPS, pool_size=SERVE_POOL,
                             parity=PARITY_SAMPLE)
    for line in result.report_lines():
        print(line)

    # the run is honest before it is fast
    assert result.lookups == SERVE_LOOKUPS
    assert result.parity_checked == PARITY_SAMPLE
    assert result.verdict_counts.get("clean", 0) > 0
    assert result.verdict_counts.get("typo_risk", 0) > 0
    assert result.engine_hit_rate > 0.5  # warm regime, by construction

    section = record_query_service(result.entry(), BENCH_PATH)

    # acceptance floor
    assert result.qps >= MIN_QPS, (
        f"serving too slow: {result.qps:,.0f} lookups/sec "
        f"(floor {MIN_QPS:,.0f})")
    assert result.p99_us <= MAX_P99_US, (
        f"p99 latency too high: {result.p99_us:.1f}us "
        f"(ceiling {MAX_P99_US:.0f}us)")

    # trajectory gate against the recorded baseline
    baseline = section["baseline"]
    assert result.qps >= baseline["qps"] / REGRESSION_FACTOR, (
        f"serving QPS regressed: {result.qps:,.0f}/s vs baseline "
        f"{baseline['qps']:,.0f}/s (gate {REGRESSION_FACTOR}x) — if this "
        "slowdown is intended, delete the query_service section of "
        "BENCH_perf.json to re-baseline")
    assert result.p99_us <= baseline["p99_us"] * REGRESSION_FACTOR, (
        f"serving p99 regressed: {result.p99_us:.2f}us vs baseline "
        f"{baseline['p99_us']:.2f}us (gate {REGRESSION_FACTOR}x)")


# -- resilient serving under the demo fault plan --------------------------

CHAOS_RANKS = 20_000
CHAOS_LOOKUPS = 120_000

#: the issue's degraded-lane floor: rules-only serving stays cheap
MIN_RULES_ONLY_QPS = 20_000.0


@pytest.mark.perfsmoke
def test_service_chaos_floor():
    """The chaos lane's serving gate: replay, no drops, degraded QPS.

    Two identical runs pin the replay digest (same seed, plan, and
    workload must serve byte-identical verdict streams — shed and
    degraded labels included), no lookup is ever dropped, and the
    rules-only degraded lane clears its QPS floor.  The run lands in
    the ``service_chaos`` section of ``BENCH_perf.json``.
    """
    from repro.service import run_serve_chaos_bench
    from repro.service.bench import record_service_chaos

    result = run_serve_chaos_bench(SERVE_SEED, CHAOS_RANKS,
                                   lookups=CHAOS_LOOKUPS,
                                   pool_size=SERVE_POOL)
    for line in result.report_lines():
        print(line)

    # honest before fast: the plan actually bit
    assert result.lookups == CHAOS_LOOKUPS
    assert result.tripped > 0 and result.churn_swaps > 0
    assert result.shed_lookups > 0
    assert result.rules_only_lookups > 0

    # resilience floors
    assert result.dropped == 0, (
        f"{result.dropped} lookups dropped — the resilient server must "
        "answer every query")
    rules_only_qps = result.lane_qps.get("rules_only", 0.0)
    assert rules_only_qps >= MIN_RULES_ONLY_QPS, (
        f"rules-only degraded lane too slow: {rules_only_qps:,.0f}/s "
        f"(floor {MIN_RULES_ONLY_QPS:,.0f})")

    # replay stability: a second identical run serves identical bytes
    replay = run_serve_chaos_bench(SERVE_SEED, CHAOS_RANKS,
                                   lookups=CHAOS_LOOKUPS,
                                   pool_size=SERVE_POOL)
    assert replay.verdict_digest == result.verdict_digest, (
        "chaos serving is not replayable: two identical runs digested "
        "differently")

    section = record_service_chaos(result.entry(), BENCH_PATH)
    baseline = section["baseline"]
    assert result.qps >= baseline["qps"] / REGRESSION_FACTOR, (
        f"chaos serving QPS regressed: {result.qps:,.0f}/s vs baseline "
        f"{baseline['qps']:,.0f}/s (gate {REGRESSION_FACTOR}x) — if this "
        "slowdown is intended, delete the service_chaos section of "
        "BENCH_perf.json to re-baseline")


@pytest.mark.perfsmoke
def test_verdict_memo_hit_rate_across_capacity_boundary():
    """Satellite gate: no 0%-hit-rate cliff when the memo rotates.

    A workload whose hot set is re-served while a unique-query flood
    rotates the two-generation memo keeps a >= 40% overall hit rate —
    under the old wholesale ``clear()`` the same stream measured ~0%
    once the flood crossed the capacity boundary.
    """
    from repro.service import RiskEngine, TypoRiskIndex

    engine = RiskEngine(TypoRiskIndex(SERVE_SEED, 2_000),
                        max_cached_verdicts=256)
    hot = [f"hot-{position}.org" for position in range(40)]
    for position in range(8_000):
        if position % 2:
            engine.lookup(hot[(position // 2) % len(hot)])
        else:
            engine.lookup(f"flood-{position}.org")
    stats = engine.cache_stats()
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    print(f"\nmemo hit rate across capacity boundary: {hit_rate:.1%} "
          f"({stats['hits']} hits / {stats['misses']} misses, "
          f"size {stats['size']})")
    assert stats["size"] <= 256
    assert hit_rate >= 0.40, (
        f"two-generation memo hit rate collapsed: {hit_rate:.1%} "
        "(floor 40%) — hot entries are not surviving rotation")
