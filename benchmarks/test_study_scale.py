"""Paper-scale study engine throughput + memory — the ISSUE's acceptance bar.

Runs the 10x-scale study (``spam_scale`` ten times the perf-baseline
config) and records, under ``study_scale`` in ``BENCH_perf.json``:

* classify-phase throughput (emails delivered per second of classify
  wall-clock, best of three passes over the same retained corpus) — the
  gate requires at least 3x the serial classify rate recorded by
  ``test_perf_baseline`` at the seed commit (~9.4k emails/s);
* peak ``tracemalloc`` memory for the batch pipeline vs the
  bounded-memory streaming pipeline (``retain_messages=False`` plus a
  ``RecordDigestSink``) — the bounded peak must stay under half the
  batch peak, and must grow sublinearly in traffic (under 6x when the
  corpus grows 10x);
* the record-stream digest of the batch run and the multiset digest of
  the sink run, which must agree — the speed must not buy a different
  dataset.

Throughput is measured untraced (tracemalloc slows the interpreter
1.5-2.5x); the memory comparisons trace dedicated runs.  Marked slow —
the traced runs dominate, a few minutes single-core in total.
"""

from __future__ import annotations

import gc
import json
import time
import tracemalloc
from datetime import datetime, timezone

import pytest

from repro.experiment import (
    ExperimentConfig,
    RecordDigestSink,
    StudyRunner,
    record_multiset_digest,
    record_stream_digest,
)
from repro.experiment.classify import ClassifyContext, classify_corpus_records
from repro.util.perf import PerfRegistry, throughput

from test_perf_baseline import BENCH_PATH, _load_bench

SCALE_SEED = 606
BASE_SPAM_SCALE = 2e-4          # the perf-baseline study config
SCALE_FACTOR = 10
#: classify-phase throughput must beat the serial baseline by this factor
SPEEDUP_FACTOR = 3.0
#: bounded-memory peak must stay under this fraction of the batch peak
MEMORY_FRACTION = 0.5
#: and grow less than this when traffic grows by SCALE_FACTOR
MEMORY_GROWTH_LIMIT = 6.0
CLASSIFY_PASSES = 3


def _study_config(scale: float = SCALE_FACTOR, **overrides):
    return ExperimentConfig(seed=SCALE_SEED,
                            spam_scale=BASE_SPAM_SCALE * scale,
                            **overrides)


def _traced_peak_mb(config: ExperimentConfig, sink=None):
    """Peak traced memory (MB) and the results of one study run."""
    gc.collect()
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        runner = StudyRunner(config)
        results = runner.run(record_sink=sink) if sink else runner.run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6, results


@pytest.mark.slow
def test_study_scale_throughput_and_memory():
    # -- throughput (untraced): one full study, then best-of-N classify ----
    results = StudyRunner(_study_config()).run()
    delivered = results.delivered_count
    batch_digest = record_stream_digest(results.records)
    batch_multiset = record_multiset_digest(results.records)
    study_classify = results.perf["timers"]["classify"]["seconds"]

    messages = [record.tokenized.original for record in results.records]
    true_kind = {message.sequence: record.true_kind
                 for message, record in zip(messages, results.records)}
    context = ClassifyContext(
        our_domains=tuple(d.domain for d in results.corpus.domains),
        ip_to_domain=ClassifyContext.ip_map(results.infra),
        process_non_spam=True)
    best_seconds = float("inf")
    for _ in range(CLASSIFY_PASSES):
        start = time.perf_counter()
        classify_corpus_records(messages, context, true_kind,
                                PerfRegistry())
        best_seconds = min(best_seconds, time.perf_counter() - start)
    rate = throughput(delivered, best_seconds)
    print(f"\nclassify 10x: {best_seconds:.2f}s best of {CLASSIFY_PASSES} "
          f"({rate:,.0f} emails/s; in-study {study_classify:.2f}s)")

    del results, messages, true_kind
    gc.collect()

    # -- memory (traced): bounded-streaming sink vs batch ------------------
    sink = RecordDigestSink()
    bounded_peak, bounded_results = _traced_peak_mb(
        _study_config(streaming_classify=True, retain_messages=False),
        sink=sink)
    assert bounded_results.records == []
    assert sink.count == delivered
    assert sink.digest() == batch_multiset, (
        "bounded-memory streaming run produced a different record multiset")
    del bounded_results
    gc.collect()

    batch_peak, batch_results = _traced_peak_mb(_study_config())
    assert record_stream_digest(batch_results.records) == batch_digest, (
        "batch record stream is not deterministic across runs")
    del batch_results
    gc.collect()

    sink_1x = RecordDigestSink()
    bounded_1x_peak, results_1x = _traced_peak_mb(
        _study_config(scale=1, streaming_classify=True,
                      retain_messages=False), sink=sink_1x)
    delivered_1x = results_1x.delivered_count
    del results_1x
    print(f"peak memory: batch 10x {batch_peak:.0f} MB, bounded 10x "
          f"{bounded_peak:.0f} MB, bounded 1x {bounded_1x_peak:.0f} MB")

    # -- record ------------------------------------------------------------
    bench = _load_bench()
    baseline_rate = throughput(
        (bench.get("baseline") or {}).get("study", {}).get(
            "emails_delivered", 0),
        (bench.get("baseline") or {}).get("study", {}).get(
            "phase_seconds", {}).get("classify", 0)) or 9379.0
    bench["study_scale"] = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "config": {"seed": SCALE_SEED,
                   "spam_scale": BASE_SPAM_SCALE * SCALE_FACTOR},
        "emails_delivered": delivered,
        "classify_seconds_best": round(best_seconds, 3),
        "classify_seconds_in_study": round(study_classify, 3),
        "emails_classified_per_sec": round(rate, 1),
        "baseline_classify_per_sec": round(baseline_rate, 1),
        "speedup": round(rate / baseline_rate, 2),
        "record_stream_digest": batch_digest,
        "record_multiset_digest": batch_multiset,
        "peak_mb": {"batch_10x": round(batch_peak, 1),
                    "bounded_10x": round(bounded_peak, 1),
                    "bounded_1x": round(bounded_1x_peak, 1)},
        "deliveries_1x": delivered_1x,
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    # -- gates -------------------------------------------------------------
    assert rate >= SPEEDUP_FACTOR * baseline_rate, (
        f"classify phase ran at {rate:,.0f} emails/s — below "
        f"{SPEEDUP_FACTOR}x the {baseline_rate:,.0f}/s serial baseline")
    assert bounded_peak <= MEMORY_FRACTION * batch_peak, (
        f"bounded-memory peak {bounded_peak:.0f} MB is not under "
        f"{MEMORY_FRACTION:.0%} of the {batch_peak:.0f} MB batch peak")
    assert bounded_peak <= MEMORY_GROWTH_LIMIT * bounded_1x_peak, (
        f"bounded-memory peak grew {bounded_peak / bounded_1x_peak:.1f}x "
        f"for {SCALE_FACTOR}x traffic — not sublinear")
