"""Figure 9 — relative popularity of typo domains per mistake type.

Paper's shape (Alexa estimates over typos of the top-40 targets, MAD
outliers removed): deletion and transposition mistakes are significantly
more popular than addition and substitution — roughly an order of
magnitude on the log axis — with non-overlapping confidence intervals.
This is what justifies the projection's typo-type adjustment.
"""

from repro.extrapolate import popularity_by_edit_type, edit_type_scale_factors
from repro.util import SeededRng


def test_fig9_typo_popularity(benchmark, internet):
    popularity = benchmark(popularity_by_edit_type, internet,
                           SeededRng(909))

    print("\nFigure 9 — relative popularity by mistake type")
    print(f"{'type':15s} {'mean':>7s} {'95% CI':>17s} {'n':>6s}")
    for edit_type, entry in popularity.items():
        print(f"{edit_type:15s} {entry.mean:7.3f} "
              f"[{entry.ci_low:6.3f}, {entry.ci_high:6.3f}] "
              f"{entry.sample_count:6d}")
    factors = edit_type_scale_factors(popularity)
    print("projection scale factors:", {k: round(v, 2)
                                        for k, v in factors.items()})

    deletion = popularity["deletion"]
    transposition = popularity["transposition"]
    addition = popularity["addition"]
    substitution = popularity["substitution"]

    # deletion/transposition significantly above addition/substitution:
    # CIs must separate
    assert deletion.ci_low > addition.ci_high
    assert transposition.ci_low > addition.ci_high
    assert deletion.ci_low > substitution.ci_high
    # meaningful magnitude: several-fold difference
    assert deletion.mean > 2 * addition.mean
    # the derived adjustment factors follow
    assert factors["deletion"] > 1.5
    assert factors["transposition"] > 1.5
    assert factors["addition"] == 1.0
    assert factors["substitution"] == 1.0
