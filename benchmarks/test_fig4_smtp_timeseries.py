"""Figure 4 — daily SMTP-typo email counts.

Shape to reproduce: unlike the near-constant receiver stream, genuine
SMTP-typo traffic is sparse and bursty — users rarely misconfigure a mail
client, and fix it quickly when they do — while spam again dominates the
raw counts.
"""

from repro.analysis import daily_series


def test_fig4_smtp_timeseries(benchmark, study_results):
    series = benchmark(daily_series, study_results.records, "smtp",
                       study_results.window)
    receiver = daily_series(study_results.records, "receiver",
                            study_results.window)

    real = series.categories["real_typos"]
    print("\nFigure 4 — daily SMTP-candidate emails")
    print(f"genuine SMTP-typo days active: {series.active_days('real_typos')}"
          f" / {study_results.window.effective_days} collecting days")
    print(f"totals: spam={series.total('spam_filtered')} "
          f"filtered={series.total('reflection_and_frequency_filtered')} "
          f"real={series.total('real_typos')}")

    # spam dominates the SMTP stream even more than the receiver stream
    assert series.total("spam_filtered") > 3 * series.total("real_typos")
    # bursty: the busiest day carries an outsized share of genuine traffic
    busiest = max(real)
    total_real = sum(real)
    assert total_real > 0
    assert busiest >= 3  # batches, not a one-per-day trickle
    # sparser than the receiver stream
    assert series.active_days("real_typos") < \
        receiver.active_days("real_typos")
    # the outage hole exists here too
    for day in study_results.window.outage_days:
        assert real[day] == 0
