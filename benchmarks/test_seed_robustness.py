"""Robustness — headline numbers across independent world seeds.

Not a paper table: the reproduction's error bars.  One simulated seven
months is a single draw; this sweep reruns the study under several seeds
and checks that the shape claims quoted in EXPERIMENTS.md are properties
of the generative world, not of one lucky draw.
"""

from conftest import BENCH_JOBS

from repro.experiment import ExperimentConfig, run_seed_sweep

SEEDS = (11, 22, 33)
CONFIG = ExperimentConfig(spam_scale=2e-5)


def test_seed_robustness(benchmark):
    summary = benchmark.pedantic(run_seed_sweep, args=(SEEDS,),
                                 kwargs={"base_config": CONFIG,
                                         "jobs": BENCH_JOBS},
                                 iterations=1, rounds=1)

    print(f"\nheadline robustness across seeds {SEEDS}")
    print(f"{'headline':34s} {'mean':>14s} {'rel. wobble':>12s}")
    for name, distribution in summary.headlines.items():
        print(f"{name:34s} {distribution.mean:14,.0f} "
              f"{distribution.relative_half_width:12.1%}")
    print(f"funnel accuracy: >= {min(summary.funnel_accuracies):.1%}")

    # the calibrated quantities are stable across draws
    assert summary.stable("true_receiver_reflection", tolerance=0.5)
    assert summary.stable("passed_all_filters", tolerance=0.5)
    # every seed preserves the headline orderings
    for total, receiver, smtp in zip(
            summary.headlines["total_received"].values,
            summary.headlines["receiver_candidates"].values,
            summary.headlines["smtp_candidates"].values):
        assert smtp > receiver            # SMTP candidates dominate
        assert total > 5e7                # order of the paper's 119M
    for passed in summary.headlines["passed_all_filters"].values:
        assert 2_000 < passed < 20_000    # thousands, not millions
    # the funnel's agreement with ground truth is not seed luck
    assert min(summary.funnel_accuracies) > 0.9
