"""Ablation — what each funnel layer contributes (DESIGN.md extension).

Not a paper table: a layer-knockout sweep over the same labelled traffic,
reporting how much ground-truth spam leaks into the true-typo bin when
each layer is removed.  The paper's §8 observation that "spam filtering
is ... complex" and that SpamAssassin alone "might not be very reliable"
is quantified here.
"""

import pytest

from repro.core import TypoEmailKind, build_study_corpus
from repro.pipeline import tokenize
from repro.spamfilter import FilterFunnel
from repro.util import SeededRng
from repro.workloads import ReceiverTypoGenerator, SpamGenerator


@pytest.fixture(scope="module")
def traffic():
    corpus = build_study_corpus()
    rng = SeededRng(4242)
    spam = SpamGenerator(corpus, rng.child("spam"), volume_scale=2e-4)
    ham = ReceiverTypoGenerator(corpus, rng.child("ham"))
    emails, labels = [], []
    for day in range(60):
        for request in spam.emails_for_day(day) + ham.emails_for_day(day):
            message = request.message
            message.headers.insert(
                0, ("Received",
                    f"from x by {request.study_domain} (198.51.100.9)"))
            message.envelope_to = [request.recipient]
            emails.append(tokenize(message))
            labels.append(request.true_kind)
    return corpus, emails, labels


def _leak_and_loss(corpus, emails, labels, layers):
    funnel = FilterFunnel(corpus.domain_names(), enabled_layers=layers)
    results = funnel.classify_corpus(emails)
    spam_total = genuine_total = spam_leak = genuine_loss = 0
    for result, label in zip(results, labels):
        if label is TypoEmailKind.SPAM:
            spam_total += 1
            spam_leak += result.is_true_typo
        elif label is TypoEmailKind.RECEIVER:
            genuine_total += 1
            genuine_loss += not result.is_true_typo
    return (spam_leak / max(1, spam_total),
            genuine_loss / max(1, genuine_total))


def test_ablation_funnel_layers(benchmark, traffic):
    corpus, emails, labels = traffic
    full_layers = {1, 2, 3, 4, 5}

    leak_full, loss_full = benchmark(_leak_and_loss, corpus, emails, labels,
                                     full_layers)

    print(f"\nfunnel-layer ablation over {len(emails)} labelled emails")
    print(f"{'configuration':22s} {'spam leak':>10s} {'genuine loss':>13s}")
    print(f"{'full funnel':22s} {leak_full:10.2%} {loss_full:13.2%}")

    leaks = {}
    for removed in (1, 2, 3, 5):
        layers = full_layers - {removed}
        leak, loss = _leak_and_loss(corpus, emails, labels, layers)
        leaks[removed] = leak
        print(f"{'without layer ' + str(removed):22s} {leak:10.2%} "
              f"{loss:13.2%}")
    leak_l2_only, loss_l2_only = _leak_and_loss(corpus, emails, labels, {2})
    print(f"{'layer 2 alone':22s} {leak_l2_only:10.2%} {loss_l2_only:13.2%}")

    # the full funnel leaks the least
    assert all(leak >= leak_full for leak in leaks.values())
    # layers 2 and 5 are the workhorses: removing either hurts most
    ranked = sorted(leaks, key=leaks.get, reverse=True)
    assert set(ranked[:2]) == {2, 5}
    # but layer 2 alone is NOT enough — the paper's reason for layers 3-5
    assert leak_l2_only > 2 * leak_full
    # the funnel never eats a large share of genuine mail
    assert loss_full < 0.2
