"""§7.2 headline — the honey-token experiments' negative result.

Paper's numbers::

    probes: 1,170 public + 6,099 private acceptances out of 50,995 domains
    pilot (738 domains, <=4 per registrant): zero signals
    full run (4 designs x 7,269 accepting domains): 15 emails read,
        2 honey tokens accessed, multi-hour human lags, repeat accesses
        from different cities

Shape: squatters accept honey mail en masse but essentially never read or
act on it — "the threat, for now, appears to remain theoretical".
"""


def test_headline_honey(benchmark, honey_campaign, probe_result):
    accepting = probe_result.accepting_domains

    pilot_domains = honey_campaign.select_pilot_domains(
        accepting, max_per_registrant=4, pilot_size=738)
    pilot = honey_campaign.run_token_campaign(
        pilot_domains, designs=["email_credentials"])

    full = benchmark.pedantic(
        honey_campaign.run_token_campaign, args=(accepting,),
        iterations=1, rounds=1)

    print("\n§7.2 honey-token results")
    print(f"accepting domains: {len(accepting)} "
          f"of {probe_result.domains_probed} probed")
    print(f"pilot: {pilot.emails_sent} sent, {pilot.emails_accepted} "
          f"accepted, {len(pilot.domains_read)} read")
    print(f"full: {full.emails_sent} sent, {full.emails_accepted} accepted,"
          f" {full.emails_opened} opened")
    print(f"domains with reads: {len(full.domains_read)}, with token/"
          f"credential access: {len(full.domains_acted)}")
    for domain in full.domains_acted:
        lag_hours = full.monitor.first_access_lag(domain) / 3600.0
        locations = full.monitor.access_locations(domain)
        print(f"  {domain}: first access after {lag_hours:.1f}h "
              f"from {locations}")

    # mass acceptance...
    assert full.emails_accepted > 0.5 * full.emails_sent
    # ...but reads are the rare exception (paper: 15 of ~29k)
    assert full.emails_opened < 0.03 * full.emails_accepted
    # ...and acting on bait rarer still (paper: 2)
    assert len(full.domains_acted) <= max(6, len(full.domains_read))
    assert len(full.domains_acted) >= 1
    # the conservative pilot sees essentially nothing (paper: zero)
    assert len(pilot.domains_read) <= 3
    # human fingerprints: hours-scale lag on every access
    for domain in full.domains_read:
        assert full.monitor.first_access_lag(domain) > 1800
