"""Table 2 — precision and sensitivity of the sensitive-info scrubber.

Paper's values (Enron corpus, manual labels)::

    Sensitive info          F1    Prec.  Sens.
    Credit card number      0.96  0.93   1.00
    Social Security number  0.88  0.78   1.00
    Employer id. number     0.94  0.89   1.00
    Password                0.50  0.33   1.00
    Vehicle id. number      1.00  1.00   1.00
    Username                0.74  0.59   1.00
    Zip                     1.00  1.00   1.00
    Identification number   0.67  0.75   0.60
    Email address           0.99  1.00   0.98
    Phone number            0.89  0.83   0.95
    Date                    1.00  1.00   1.00

Here ground truth is planted, so the scores are exact computations; the
shape to reproduce is which detectors are precise and which are noisy.
"""

import math

from repro.pipeline import SensitiveScrubber
from repro.util import SeededRng
from repro.workloads import EnronLikeCorpus, evaluate_scrubber

CORPUS_SIZE = 800


def test_table2_scrubber(benchmark):
    corpus = EnronLikeCorpus(SeededRng(7)).generate(CORPUS_SIZE)
    scores = benchmark(evaluate_scrubber, corpus, SensitiveScrubber())

    print("\nTable 2 — scrubber precision/sensitivity "
          f"({CORPUS_SIZE} Enron-like emails)")
    print(f"{'kind':12s} {'F1':>5s} {'prec':>5s} {'sens':>5s}")
    for kind, score in scores.items():
        f1 = "-" if math.isnan(score.f1) else f"{score.f1:.2f}"
        print(f"{kind:12s} {f1:>5s} {score.precision:5.2f} {score.recall:5.2f}")

    # precise detectors stay precise...
    for kind in ("vin", "zip", "date", "email"):
        assert scores[kind].precision > 0.9, kind
    # ...noisy keyword detectors are noticeably less precise...
    for kind in ("password", "username", "idnumber"):
        assert scores[kind].precision < 0.9, kind
    # ...sensitivity is ~1.0 everywhere except the broad idnumber class
    for kind, score in scores.items():
        if kind == "idnumber":
            assert 0.4 < score.recall < 0.9
        else:
            assert score.recall > 0.9, kind
    # the paper's mid-precision band: creditcard/ssn/ein/phone
    for kind in ("creditcard", "ssn", "ein", "phone"):
        assert 0.6 < scores[kind].precision <= 1.0, kind
