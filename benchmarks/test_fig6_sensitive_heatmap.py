"""Figure 6 — heat map of sensitive-information types per typo domain.

Paper's stand-out cells: the yopmail typo domain collects usernames (128)
and passwords (16) — throwaway-address users register everywhere with
them — while provider typos see a scatter of card numbers (dinersclub,
jcb, mastercard), EINs, and VINs.
"""

from repro.analysis import sensitive_heatmap


def test_fig6_sensitive_heatmap(benchmark, study_results):
    heatmap = benchmark(sensitive_heatmap, study_results.records)

    print("\nFigure 6 — sensitive info found in true typo emails")
    print(f"{'domain':20s} {'label':12s} {'count':>5s}")
    for domain, label, count in heatmap.rows():
        print(f"{domain:20s} {label:12s} {count:5d}")
    print("totals by label:", heatmap.totals_by_label())

    totals = heatmap.totals_by_label()
    # credentials are the most common finds (disposable-mail effect)
    assert totals.get("username", 0) > 0
    assert totals.get("password", 0) > 0
    # at least one payment-card brand appears (the paper shows three)
    card_brands = {"visa", "mastercard", "amex", "dinersclub", "jcb",
                   "discover"}
    assert any(brand in totals for brand in card_brands)
    # disposable-provider typos dominate the credential columns
    disposable = [d.domain for d in study_results.corpus.domains
                  if d.target_domain is not None
                  and d.target_domain.category == "disposable"]
    disposable_credentials = sum(
        heatmap.get(domain, label)
        for domain in disposable for label in ("username", "password"))
    assert disposable_credentials > 0
    per_domain_credentials = {
        domain: heatmap.get(domain, "username") + heatmap.get(domain, "password")
        for domain in heatmap.domains()}
    top_credential_domain = max(per_domain_credentials,
                                key=per_domain_credentials.get)
    top_target = study_results.corpus.lookup(top_credential_domain)
    assert top_target is not None
