"""Figure 7 — attachment extensions among true typo emails.

Paper's counts: txt (4,571) and jpg (1,617) dominate, pdf (1,113) and the
office formats follow, with a long tail.  The spam mix differs sharply —
more exploitable formats — and every VirusTotal-known-malicious hash sat
in an email the funnel had already classified as spam.
"""

from repro.analysis import extension_histogram, malware_lookup
from repro.spamfilter import Verdict


def test_fig7_attachments(benchmark, study_results):
    histogram = benchmark(extension_histogram, study_results.records,
                          [Verdict.TRUE_TYPO])

    print("\nFigure 7 — attachment extensions among true typos")
    ordered = sorted(histogram.items(), key=lambda kv: -kv[1])
    for extension, count in ordered:
        print(f"{extension:6s} {count:5d}")

    spam_histogram = extension_histogram(study_results.records,
                                         verdicts=[Verdict.SPAM])
    lookup = malware_lookup(study_results.records,
                            study_results.malicious_hashes)
    print(f"spam mix: {sorted(spam_histogram.items(), key=lambda kv: -kv[1])[:8]}")
    print(f"malware db hits: {lookup.hashes_known_malicious} of "
          f"{lookup.hashes_checked} hashes; all in spam: "
          f"{lookup.malicious_emails_all_spam}")

    assert histogram, "true typos should carry some attachments"
    # txt/jpg-style everyday formats lead the true-typo mix
    top_extension, _ = ordered[0]
    assert top_extension in ("txt", "jpg", "pdf")
    # archives never survive the funnel (discarded as spam outright)
    assert "zip" not in histogram and "rar" not in histogram
    # the spam mix skews toward exploitable/archive formats
    risky = sum(spam_histogram.get(ext, 0)
                for ext in ("zip", "rar", "exe", "js", "docm", "xlsm"))
    assert risky > 0.2 * sum(spam_histogram.values())
    # paper: every known-malicious attachment was in a spam-classified email
    assert lookup.hashes_known_malicious > 0
    assert lookup.malicious_emails_all_spam
