"""Table 1 — DNS settings for a typo collection domain.

Paper's layout::

    FQDN             TTL  TYPE  priority  record
    *.exampel.com.   300  MX    1         exampel.com.
    exampel.com.     300  MX    1         exampel.com.
    *.exampel.com.   300  A     NA        1.1.1.1
    exampel.com.     300  A     NA        1.1.1.1
"""

from repro.dnssim import RecordType, collection_zone


def test_table1_dns_settings(benchmark):
    zone = benchmark(collection_zone, "exampel.com", "1.1.1.1")

    print("\nTable 1 — DNS settings for an example typo domain")
    print(zone.zone_file())

    # the four paper rows, exactly
    assert len(zone) == 4
    mx_names = {r.name for r in zone.records if r.rtype is RecordType.MX}
    a_names = {r.name for r in zone.records if r.rtype is RecordType.A}
    assert mx_names == {"*.exampel.com", "exampel.com"}
    assert a_names == {"*.exampel.com", "exampel.com"}
    assert all(r.ttl == 300 for r in zone.records)
    assert zone.mx_hosts("deep.sub.exampel.com") == ["exampel.com"]
    assert zone.a_addresses("deep.sub.exampel.com") == ["1.1.1.1"]
