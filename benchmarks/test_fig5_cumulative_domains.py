"""Figure 5 — cumulative receiver-typo share across provider typo domains.

Paper's shape: of the 27 receiver-typo domains targeting email providers,
two received the majority of all receiver typos and twelve received 99% —
typo-domain quality varies by orders of magnitude, driven by target
popularity and visual distance.
"""

from repro.analysis import figure5_curve


def test_fig5_cumulative_domains(benchmark, study_results):
    table = benchmark(figure5_curve, study_results.records,
                      study_results.corpus)

    print(f"\nFigure 5 — cumulative receiver typos over {len(table.entries)} "
          f"provider typo domains ({table.total} emails)")
    shares = table.cumulative_shares()
    for (domain, count), share in list(zip(table.entries, shares))[:15]:
        print(f"{domain:18s} {count:6d}  cumulative {share:6.1%}")

    assert table.total > 100
    # a couple of domains take the majority
    assert table.domains_for_share(0.5) <= 4
    # ~99% concentrates well before the tail
    assert table.domains_for_share(0.99) <= 0.7 * len(table.entries)
    # the winner is a typo of a top-3 provider with low visual distance
    top_domain, top_count = table.entries[0]
    registered = study_results.corpus.lookup(top_domain)
    assert registered.target in ("gmail.com", "outlook.com", "hotmail.com")
    assert top_count > 5 * table.entries[len(table.entries) // 2][1]
    # visual distance effect inside one target: outlo0k beats outmook
    counts = dict(table.entries)
    assert counts.get("outlo0k.com", 0) > counts.get("outmook.com", 0)
