"""Drift-resilience trajectory — the living-internet lane's speed gates.

The perfsmoke/chaos lane times the three moving parts of the drift
story and records them into the ``drift_resilience`` section of
``BENCH_perf.json``:

* **drill** — the end-to-end detect → shadow-retrain → gated-promote
  cycle (``run_drift_drill``), recording train and cycle wall-clock and
  asserting the scripted outcome: the campaign trips the monitor, the
  candidate promotes, and post-promote recall recovers the pre-drift
  floor.
* **scenario stepping** — ``ScenarioDriver`` day-loop overhead (steps
  per second over a multi-year timeline); this is pure bookkeeping that
  rides inside every study day, so it must stay orders of magnitude
  cheaper than the day itself.
* **chaos serving with the learned scorer** — the demo fault plan over
  a ``scorer="learned"`` engine, holding the zero-drop / zero-exception
  invariant while recording lookups per second.

First recording becomes the regression baseline; later runs fail when
any lane falls more than 2x below it (see
``test_drift_resilience_not_regressed`` in ``test_perf_baseline``).
The whole lane is budgeted under 60 seconds.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone

import pytest

from repro.faultsim import FaultPlan
from repro.learned import run_drift_drill, train_typo_model
from repro.scenario import ScenarioDriver, drift_drill_scenario
from repro.service import (
    LookupWorkload,
    ResilientServer,
    RiskEngine,
    TypoRiskIndex,
)
from repro.service.bench import record_drift_resilience
from repro.util.perf import throughput

from test_perf_baseline import BENCH_PATH, REGRESSION_FACTOR

SEED = 41
MAX_RANK = 700
SCENARIO_DAYS = 2_000
LOOKUPS = 2_000

#: absolute floors, far under measured rates so timer noise cannot
#: flake them; the trajectory gates do the real work
MIN_SCENARIO_STEPS_PER_SEC = 200.0
MIN_CHAOS_QPS = 1_000.0
MAX_LANE_SECONDS = 60.0


@pytest.mark.perfsmoke
@pytest.mark.chaos
def test_drift_resilience_floor(tmp_path):
    lane_start = time.perf_counter()

    # -- the drill: campaign -> trip -> retrain -> gated promote ------
    report = run_drift_drill(tmp_path, SEED, train_ranks=300,
                             train_dataset_size=40)
    assert report["decision"]["action"] == "promote"
    assert report["decision"]["drift"]["tripped"]
    assert report["window_recall_after"] >= \
        report["pre_drift_recall"] - 1e-9
    assert not report["disagreement"]["rolled_back"]

    # -- scenario stepping: day-loop bookkeeping overhead -------------
    driver = ScenarioDriver(drift_drill_scenario(SEED))
    start = time.perf_counter()
    driver.run(SCENARIO_DAYS)
    step_seconds = time.perf_counter() - start
    steps_per_sec = throughput(SCENARIO_DAYS, step_seconds)

    # -- chaos serving over the learned scorer ------------------------
    model, _ = train_typo_model(SEED, ranks=300, dataset_size=40)
    index = TypoRiskIndex(SEED, MAX_RANK)
    queries = list(LookupWorkload(SEED, MAX_RANK, pool_size=192,
                                  world=index.world).queries(LOOKUPS))
    plan = FaultPlan.service_chaos_demo(seed=SEED, lookups=LOOKUPS)
    server = ResilientServer(
        RiskEngine(index, scorer="learned", model=model), plan)
    start = time.perf_counter()
    verdicts = server.batch_lookup(queries)
    serve_seconds = time.perf_counter() - start
    qps = throughput(LOOKUPS, serve_seconds)
    # zero drops, zero exceptions: every query answered with a verdict
    assert len(verdicts) == len(queries)
    assert server.stats.answered == len(queries)

    lane_seconds = time.perf_counter() - lane_start
    print(f"\ndrill: train {report['train_seconds']:.2f}s  cycle "
          f"{report['cycle_seconds']:.2f}s  -> "
          f"{report['decision']['action']}")
    print(f"scenario: {SCENARIO_DAYS:,} days in {step_seconds:.2f}s "
          f"({steps_per_sec:,.0f} steps/s)")
    print(f"learned chaos serve: {qps:,.0f} lookups/s  "
          f"(lane total {lane_seconds:.1f}s)")

    entry = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "seed": SEED,
        "train_seconds": round(report["train_seconds"], 3),
        "cycle_seconds": round(report["cycle_seconds"], 3),
        "decision": report["decision"]["action"],
        "active_digest": report["active_digest"],
        "scenario_days": SCENARIO_DAYS,
        "scenario_steps_per_sec": round(steps_per_sec, 1),
        "chaos_lookups": LOOKUPS,
        "chaos_qps": round(qps, 1),
        "dropped": len(queries) - server.stats.answered,
        "lane_seconds": round(lane_seconds, 2),
    }
    section = record_drift_resilience(entry, BENCH_PATH)

    # acceptance floors
    assert lane_seconds < MAX_LANE_SECONDS, (
        f"drift-resilience lane took {lane_seconds:.1f}s "
        f"(budget {MAX_LANE_SECONDS}s)")
    assert steps_per_sec >= MIN_SCENARIO_STEPS_PER_SEC
    assert qps >= MIN_CHAOS_QPS

    # trajectory gates against the recorded baseline
    baseline = section["baseline"]
    assert entry["cycle_seconds"] <= max(
        baseline["cycle_seconds"] * REGRESSION_FACTOR, 1.0), (
        f"lifecycle cycle regressed: {entry['cycle_seconds']:.2f}s vs "
        f"baseline {baseline['cycle_seconds']:.2f}s (gate "
        f"{REGRESSION_FACTOR}x) — if this slowdown is intended, delete "
        "the drift_resilience section of BENCH_perf.json to re-baseline")
    assert steps_per_sec >= (
        baseline["scenario_steps_per_sec"] / REGRESSION_FACTOR), (
        f"scenario stepping regressed: {steps_per_sec:,.0f} steps/s vs "
        f"baseline {baseline['scenario_steps_per_sec']:,.0f}/s "
        f"(gate {REGRESSION_FACTOR}x)")
    assert qps >= baseline["chaos_qps"] / REGRESSION_FACTOR, (
        f"learned chaos serving regressed: {qps:,.0f}/s vs baseline "
        f"{baseline['chaos_qps']:,.0f}/s (gate {REGRESSION_FACTOR}x)")
