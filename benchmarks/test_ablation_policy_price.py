"""Ablation — the §8 price-policy intervention.

The paper: "Raising the cost of domain registration ... would definitely
drive most of the typosquatters out of business.  However these
intervention[s] would potentially have a high collateral damage on
legitimate domain owners."  This sweep quantifies both sides under
constant-elasticity demand.
"""

from conftest import BENCH_JOBS

from repro.defenses import break_even_price, policy_sweep
from repro.ecosystem import InternetConfig
from repro.util import SeededRng

MULTIPLIERS = (1.0, 2.0, 5.0, 10.0, 20.0)


def test_ablation_policy_price(benchmark):
    outcomes = benchmark(policy_sweep, SeededRng(888), MULTIPLIERS,
                         InternetConfig(num_filler_targets=15),
                         jobs=BENCH_JOBS)

    print("\nregistration-price policy sweep")
    print(f"{'price x':>8s} {'squatted':>9s} {'reduction':>10s} "
          f"{'legit kept':>11s} {'collateral':>11s}")
    for outcome in outcomes:
        print(f"{outcome.price_multiplier:8.1f} "
              f"{outcome.squatted_after:9d} "
              f"{outcome.squatting_reduction:10.1%} "
              f"{outcome.legitimate_after:11d} "
              f"{outcome.collateral_damage:11.1%}")
    print(f"break-even price for a 1,000-email/yr typo domain at 1 cent "
          f"per email: ${break_even_price(1_000):.2f}/yr")

    baseline = outcomes[0]
    assert baseline.squatting_reduction == 0.0
    reductions = [o.squatting_reduction for o in outcomes]
    # monotone squeeze on squatters
    assert all(a <= b + 0.02 for a, b in zip(reductions, reductions[1:]))
    # the strongest policy drives most squatters out ...
    assert reductions[-1] > 0.9
    # ... but the paper's caveat holds: collateral damage is real and grows
    damages = [o.collateral_damage for o in outcomes]
    assert damages[-1] > 0.2
    # yet squatters always hurt more than legitimate owners
    for outcome in outcomes[1:]:
        assert outcome.squatting_reduction > outcome.collateral_damage
