"""Figure 8 — cumulative typo domains by mail server and by registrant.

Paper's shape: the top 11 SMTP server domains handle mail for over a
third of typosquatting domains and 51 for the majority (<1% of servers
cover >74%); among clusterable registrants, the top 14 own 20% of
domains and a mere 2.3% of registrants own the majority, with a heavy
singleton tail.
"""

from repro.ecosystem import (
    cluster_registrants,
    concentration_curve,
    smallest_fraction_covering,
    top_share,
)


def test_fig8_concentration(benchmark, internet, ecosystem_scan):
    squat_domains = [w.domain for w in internet.squatting_domains()]
    clusters = benchmark(cluster_registrants, internet.whois, squat_domains)

    registrant_curve = concentration_curve([len(c) for c in clusters])
    mx_counts = ecosystem_scan.mx_domain_counts()
    mx_curve = concentration_curve(list(mx_counts.values()))

    print("\nFigure 8 — concentration of typo domains")
    print(f"registrant clusters: {registrant_curve.entities} "
          f"(top sizes {list(registrant_curve.entity_counts[:6])})")
    print(f"  top-14 registrants own {top_share(registrant_curve, 14):.1%}")
    print(f"  fraction of registrants owning the majority: "
          f"{smallest_fraction_covering(registrant_curve, 0.5):.2%}")
    print(f"mail servers: {mx_curve.entities} "
          f"(top sizes {list(mx_curve.entity_counts[:6])})")
    print(f"  top-11 servers serve {top_share(mx_curve, 11):.1%}")
    print(f"  fraction of servers covering 74%: "
          f"{smallest_fraction_covering(mx_curve, 0.74):.2%}")

    # registrants: few own much, most own one
    assert top_share(registrant_curve, 14) > 0.15          # paper: 20%
    assert smallest_fraction_covering(registrant_curve, 0.5) < 0.10
    singleton_clusters = sum(1 for c in clusters if len(c) == 1)
    assert singleton_clusters > 0.5 * len(clusters)        # heavy tail
    # mail servers: extreme concentration
    assert top_share(mx_curve, 11) > 0.33                  # paper: >1/3
    assert smallest_fraction_covering(mx_curve, 0.74) < 0.05
