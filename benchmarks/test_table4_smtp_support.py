"""Table 4 — SMTP support of wild candidate typo domains.

Paper's values (4.2M ctypos of Alexa's top 1M)::

    Support status               % total
    No MX or A record found      15.5
    No info                      34.4
    No email supp.                6.8
    Supp. email, no STARTTLS      0.0
    Supp. STARTTLS with errors    6.2
    Supp. STARTTLS w/o errors    37.1

Shape: ~43% of registered typo domains can receive mail, ~22% cannot,
~34% are unscannable; STARTTLS works nearly everywhere mail does.
"""

from repro.ecosystem import EcosystemScanner, SmtpSupport


def test_table4_smtp_support(benchmark, internet, ecosystem_scan):
    # benchmark a fresh scan of one popular target's typo space; the
    # session-wide scan provides the full table
    scanner = EcosystemScanner(internet)
    benchmark(scanner.scan, targets=["gmail.com"])

    scan = ecosystem_scan
    percentages = scan.support_percentages()

    print(f"\nTable 4 — SMTP support of {len(scan.results)} ctypos "
          f"(of {scan.generated_count} gtypos)")
    rows = [
        ("No MX or A record found", SmtpSupport.NO_DNS),
        ("No info", SmtpSupport.NO_INFO),
        ("No email supp.", SmtpSupport.NO_EMAIL),
        ("Supp. email, no STARTTLS", SmtpSupport.PLAIN),
        ("Supp. STARTTLS with errors", SmtpSupport.STARTTLS_ERRORS),
        ("Supp. STARTTLS w/o errors", SmtpSupport.STARTTLS_OK),
    ]
    table = scan.support_table()
    for label, support in rows:
        print(f"{label:28s} {table[support]:6d}  {percentages[support]:5.1f}%")

    supports_mail = (percentages[SmtpSupport.PLAIN]
                     + percentages[SmtpSupport.STARTTLS_ERRORS]
                     + percentages[SmtpSupport.STARTTLS_OK])
    cannot = percentages[SmtpSupport.NO_DNS] + percentages[SmtpSupport.NO_EMAIL]
    assert 25 < supports_mail < 60          # paper: 43.3%
    assert 12 < cannot < 40                 # paper: 22.3%
    assert 25 < percentages[SmtpSupport.NO_INFO] < 50   # paper: 34.4%
    assert percentages[SmtpSupport.PLAIN] < 1.0          # paper: ~0.0%
