"""Paper-scale streaming scan throughput — the ISSUE's acceptance bar.

Times the lazy-world streaming scan at 1k, 10k and 100k Alexa ranks and
records gtypos/s and ctypos/s into ``BENCH_perf.json`` under
``scan_scale``.  The paper's own crawl covered the .com zone against the
Alexa top 100k; this bench is the harness's equivalent ecosystem sweep,
with an Alexa-1M point (``test_scan_scale_1m``) as the full-universe
stretch run.

The 100k-rank entry is the acceptance gate: its ctypo throughput must be
at least 10x the retained-scan baseline recorded by
``test_perf_baseline`` (~6k ctypos/s at the seed commit).  Marked slow —
the three sweeps together take ~10s single-core; the 1M point adds
another ~45s.

Raw ctypos/s *must* fall as the universe grows: the paper's rank-decay
registration density means ranks 10k..100k contribute ~6x fewer
registrations per rank than ranks 1..10k, so a full-run throughput gate
would be comparing different workloads.  The anti-sublinearity gate in
``test_scan_no_sublinear_overhead`` (perfsmoke lane) holds the workload
fixed instead: scanning the *same* ranks 1..10k must run at the same
speed whether the surrounding universe is 10k or 100k ranks — per-rank
cost may not depend on ``max_rank``.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone

import pytest

from repro.ecosystem import WorldModel
from repro.experiment import run_sharded_scan
from repro.util.perf import throughput

from test_perf_baseline import BENCH_PATH, _load_bench

SCALE_SEED = 606
RANK_POINTS = (1_000, 10_000, 100_000)
#: The acceptance bar: the 100k-rank streaming scan must beat the
#: retained-scan baseline by this factor.
SPEEDUP_FACTOR = 10.0
#: ranks 1..10k inside a 100k universe must run at >= this fraction of
#: the same ranks inside a 10k universe (1.0 = no overhead at all; the
#: margin absorbs single-core timer noise, ~15% on the bench machine)
EQUAL_DENSITY_FLOOR = 0.9


@pytest.mark.slow
def test_scan_scale_throughput():
    points = []
    for ranks in RANK_POINTS:
        start = time.perf_counter()
        aggregates = run_sharded_scan(SCALE_SEED, ranks, jobs=1)
        wall = time.perf_counter() - start
        points.append({
            "ranks": ranks,
            "wall_seconds": round(wall, 3),
            "gtypos_generated": aggregates.generated_count,
            "ctypos_registered": aggregates.registered_count,
            "gtypos_per_sec": round(
                throughput(aggregates.generated_count, wall), 1),
            "ctypos_per_sec": round(
                throughput(aggregates.registered_count, wall), 1),
            "digest": aggregates.digest(),
        })
        print(f"\n{ranks:>7,} ranks: {wall:6.2f}s  "
              f"{points[-1]['ctypos_per_sec']:>10,.1f} ctypos/s  "
              f"{points[-1]['gtypos_per_sec']:>13,.0f} gtypos/s")

    bench = _load_bench()
    bench["scan_scale"] = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "seed": SCALE_SEED,
        "points": points,
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    # more ranks must never mean fewer registrations
    registered = [p["ctypos_registered"] for p in points]
    assert registered == sorted(registered)
    assert registered[0] > 0

    # the acceptance gate: 100k ranks at >= 10x the retained-scan baseline
    baseline = bench.get("baseline") or {}
    baseline_rate = (baseline.get("scan") or {}).get(
        "ctypos_scanned_per_sec", 6053.0)
    paper_scale = points[-1]
    assert paper_scale["ctypos_per_sec"] >= SPEEDUP_FACTOR * baseline_rate, (
        f"100k-rank streaming scan ran at "
        f"{paper_scale['ctypos_per_sec']:,.1f} ctypos/s — below "
        f"{SPEEDUP_FACTOR}x the {baseline_rate:,.1f}/s retained baseline")


@pytest.mark.slow
def test_scan_scale_1m():
    """The Alexa-1M stretch point: scan the full universe, record it.

    No throughput gate here — at 1M the registration density has decayed
    ~6x below the 10k point, so gating raw ctypos/s would re-litigate
    the density law (see the module docstring); the sublinearity gate
    lives in ``test_scan_no_sublinear_overhead``.  This point exists so
    ``BENCH_perf.json`` tracks the full-universe wall-clock across
    commits.
    """
    ranks = 1_000_000
    start = time.perf_counter()
    aggregates = run_sharded_scan(SCALE_SEED, ranks, jobs=1)
    wall = time.perf_counter() - start
    point = {
        "ranks": ranks,
        "wall_seconds": round(wall, 3),
        "gtypos_generated": aggregates.generated_count,
        "ctypos_registered": aggregates.registered_count,
        "gtypos_per_sec": round(
            throughput(aggregates.generated_count, wall), 1),
        "ctypos_per_sec": round(
            throughput(aggregates.registered_count, wall), 1),
        "digest": aggregates.digest(),
    }
    print(f"\n{ranks:>9,} ranks: {wall:6.2f}s  "
          f"{point['ctypos_per_sec']:>10,.1f} ctypos/s  "
          f"{point['gtypos_per_sec']:>13,.0f} gtypos/s")

    bench = _load_bench()
    scale = bench.setdefault("scan_scale", {"seed": SCALE_SEED, "points": []})
    scale["points"] = ([p for p in scale.get("points", ())
                        if p.get("ranks") != ranks] + [point])
    scale["points"].sort(key=lambda p: p["ranks"])
    scale["recorded_utc"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    assert aggregates.registered_count > 0
    # a rank's work must not depend on the universe size around it —
    # the 1M run may not be slower per rank than ~2x the 100k run
    by_ranks = {p["ranks"]: p for p in scale["points"]}
    if 100_000 in by_ranks:
        per_rank_100k = by_ranks[100_000]["wall_seconds"] / 100_000
        assert wall / ranks <= 2.0 * per_rank_100k, (
            "per-rank wall-clock degraded superlinearly between 100k "
            "and 1M ranks")


def _time_window_scan(max_rank: int, stop_rank: int = 10_001) -> float:
    """Cold-world wall-clock of scanning ranks 1..stop_rank-1.

    A fresh ``WorldModel`` per measurement is the point: the historic
    sublinearity bug was O(max_rank) *setup* work (materializing the
    whole target universe before the first rank), which a warm world
    would hide.
    """
    start = time.perf_counter()
    WorldModel(SCALE_SEED).scan_ranks(1, stop_rank, max_rank=max_rank)
    return time.perf_counter() - start


@pytest.mark.perfsmoke
def test_scan_no_sublinear_overhead():
    """Equal-density anti-sublinearity gate (the tentpole's regression
    guard): the same ranks must cost the same regardless of how large
    the surrounding universe is.  Best-of-3, interleaved so machine
    noise hits both variants alike.
    """
    small = []
    large = []
    for _ in range(3):
        small.append(_time_window_scan(max_rank=10_000))
        large.append(_time_window_scan(max_rank=100_000))
    ratio = min(small) / min(large)
    print(f"\nranks 1..10k: {min(small):.3f}s @10k universe, "
          f"{min(large):.3f}s @100k universe (ratio {ratio:.3f})")
    assert ratio >= EQUAL_DENSITY_FLOOR, (
        f"scanning ranks 1..10k slowed to {ratio:.2f}x of its 10k-universe "
        f"speed inside a 100k universe — setup or per-record cost is "
        f"scaling with max_rank again")
