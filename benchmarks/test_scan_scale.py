"""Paper-scale streaming scan throughput — the ISSUE's acceptance bar.

Times the lazy-world streaming scan at 1k, 10k and 100k Alexa ranks and
records gtypos/s and ctypos/s into ``BENCH_perf.json`` under
``scan_scale``.  The paper's own crawl covered the .com zone against the
Alexa top 100k; this bench is the harness's equivalent ecosystem sweep.

The 100k-rank entry is the acceptance gate: its ctypo throughput must be
at least 10x the retained-scan baseline recorded by
``test_perf_baseline`` (~6k ctypos/s at the seed commit).  Marked slow —
the three sweeps together take ~10s single-core, dominated by the 100k
run.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone

import pytest

from repro.experiment import run_sharded_scan
from repro.util.perf import throughput

from test_perf_baseline import BENCH_PATH, _load_bench

SCALE_SEED = 606
RANK_POINTS = (1_000, 10_000, 100_000)
#: The acceptance bar: the 100k-rank streaming scan must beat the
#: retained-scan baseline by this factor.
SPEEDUP_FACTOR = 10.0


@pytest.mark.slow
def test_scan_scale_throughput():
    points = []
    for ranks in RANK_POINTS:
        start = time.perf_counter()
        aggregates = run_sharded_scan(SCALE_SEED, ranks, jobs=1)
        wall = time.perf_counter() - start
        points.append({
            "ranks": ranks,
            "wall_seconds": round(wall, 3),
            "gtypos_generated": aggregates.generated_count,
            "ctypos_registered": aggregates.registered_count,
            "gtypos_per_sec": round(
                throughput(aggregates.generated_count, wall), 1),
            "ctypos_per_sec": round(
                throughput(aggregates.registered_count, wall), 1),
            "digest": aggregates.digest(),
        })
        print(f"\n{ranks:>7,} ranks: {wall:6.2f}s  "
              f"{points[-1]['ctypos_per_sec']:>10,.1f} ctypos/s  "
              f"{points[-1]['gtypos_per_sec']:>13,.0f} gtypos/s")

    bench = _load_bench()
    bench["scan_scale"] = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "seed": SCALE_SEED,
        "points": points,
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    # more ranks must never mean fewer registrations
    registered = [p["ctypos_registered"] for p in points]
    assert registered == sorted(registered)
    assert registered[0] > 0

    # the acceptance gate: 100k ranks at >= 10x the retained-scan baseline
    baseline = bench.get("baseline") or {}
    baseline_rate = (baseline.get("scan") or {}).get(
        "ctypos_scanned_per_sec", 6053.0)
    paper_scale = points[-1]
    assert paper_scale["ctypos_per_sec"] >= SPEEDUP_FACTOR * baseline_rate, (
        f"100k-rank streaming scan ran at "
        f"{paper_scale['ctypos_per_sec']:,.1f} ctypos/s — below "
        f"{SPEEDUP_FACTOR}x the {baseline_rate:,.1f}/s retained baseline")
