"""§6.2 headline — the regression projection over wild typo domains.

Paper's numbers::

    seed: 25 of our domains targeting gmail/hotmail/outlook/comcast/verizon
    fit R^2 = 0.74, leave-one-out R^2 = 0.63
    1,211 wild typosquatting domains of the 5 targets
    base projection      260,514 / year  (95% CI 22,577 - 905,174)
    typo-type adjusted   846,219 / year  (95% CI 58,460 - 4,039,500)
    attacker economics: under 2 cents per captured email

Shape: a solidly predictive but imperfect regression, a six-figure wild
projection with a wide asymmetric CI, a substantial upward typo-type
adjustment, and sub-2-cent email acquisition for the attacker.
"""

import pytest

from repro.extrapolate import (
    ProjectionExperiment,
    RegressionObservation,
    attacker_economics,
    cost_per_email,
)
from repro.extrapolate.projection import PROJECTION_TARGETS
from repro.util import SeededRng


@pytest.fixture(scope="module")
def seed_observations(study_results, internet):
    """The paper's seed: our measured domains of the 5 projection targets."""
    volumes = study_results.per_domain_yearly_true_typos()
    observations = []
    for domain in study_results.corpus.by_purpose("receiver"):
        if domain.target not in PROJECTION_TARGETS:
            continue
        if domain.candidate is None:
            continue
        rank = internet.alexa_rank(domain.target)
        if rank is None:
            continue
        observations.append(RegressionObservation(
            domain=domain.domain,
            target=domain.target,
            yearly_emails=volumes.get(domain.domain, 0.0),
            alexa_rank=rank,
            normalized_visual=domain.candidate.normalized_visual,
            fat_finger=domain.candidate.is_fat_finger,
        ))
    return observations


def test_headline_projection(benchmark, internet, seed_observations,
                             study_results):
    experiment = ProjectionExperiment(internet, SeededRng(606))
    own_domains = study_results.corpus.domain_names()
    report = benchmark(experiment.run, seed_observations,
                       exclude_domains=own_domains, n_bootstrap=800)

    print("\n§6.2 projection")
    for line in report.summary_lines():
        print(" ", line)

    economics = attacker_economics(study_results.per_domain_yearly_true_typos())
    wild_cost = cost_per_email(report.wild_domain_count,
                               report.adjusted_total)
    print(f"  study economics: {economics.domain_count} domains, "
          f"{economics.emails_per_year:,.0f} emails/yr, "
          f"${economics.cost_per_email:.3f}/email "
          f"(top-5 only: ${economics.top5_cost_per_email:.3f})")
    print(f"  wild economics: ${wild_cost:.4f}/email over "
          f"{report.wild_domain_count} domains")

    # a usable but imperfect fit, LOO below the training fit
    assert 0.5 < report.r_squared <= 1.0
    assert report.loo_r_squared <= report.r_squared
    # hundreds of wild typosquatting domains of the five targets
    assert 300 < report.wild_domain_count < 5_000       # paper: 1,211
    # a large yearly projection with an asymmetric CI around it
    assert report.base_total > 10_000
    assert report.base_ci[0] < report.base_total < report.base_ci[1]
    upper_spread = report.base_ci[1] - report.base_total
    lower_spread = report.base_total - report.base_ci[0]
    assert upper_spread > lower_spread                  # right-skewed
    # the typo-type adjustment raises the projection substantially
    assert report.adjusted_total > 1.1 * report.base_total
    assert report.adjusted_ci[1] > report.base_ci[1]
    # attacker acquires email for pennies apiece (the paper lands under
    # 2 cents; our adjustment factor is structurally smaller — only ~56
    # deletion/transposition candidates exist for five short labels — so
    # the per-domain yield is lower, but the "pennies, not dollars" claim
    # holds with a wide margin)
    assert wild_cost < 0.10
    assert economics.top5_cost_per_email < economics.cost_per_email
