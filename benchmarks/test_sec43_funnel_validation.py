"""§4.3 "Performance analysis" — validating the funnel by sampling.

Paper's numbers: a researcher manually read 5 surviving emails per
expected-receiver-typo domain — 77 labelled, 80% genuinely not spam —
plus 26 receiver-classified emails at SMTP-purpose domains, of which 25
were correctly identified.  The simulation replays the same protocol with
ground truth as the reader.
"""

from repro.experiment import (
    validate_receiver_typos_at_smtp_domains,
    validate_survivors_by_sampling,
)
from repro.util import SeededRng


def test_sec43_funnel_validation(benchmark, study_results):
    validation = benchmark(validate_survivors_by_sampling,
                           study_results.records, study_results.corpus,
                           SeededRng(43), 5)
    smtp_side = validate_receiver_typos_at_smtp_domains(
        study_results.records, study_results.corpus)

    print("\n§4.3 funnel validation by sampling")
    print(f"sampled surviving receiver typos: {validation.sampled} "
          f"(max 5 per domain, {len(validation.per_domain)} domains)")
    print(f"genuinely not spam: {validation.genuine} "
          f"({validation.genuine_fraction:.0%}; paper: 80%)")
    print(f"receiver typos at SMTP-purpose domains: {smtp_side.sampled} "
          f"checked, {smtp_side.genuine} correct "
          f"({smtp_side.genuine_fraction:.0%}; paper: 25 of 26)")

    # the paper's 80%-not-spam shape, with generous tolerance
    assert validation.sampled >= 50
    assert 0.6 < validation.genuine_fraction <= 1.0
    # the surprise finding holds up under ground truth
    assert smtp_side.sampled >= 10
    assert smtp_side.genuine_fraction > 0.85
