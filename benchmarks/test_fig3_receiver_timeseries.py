"""Figure 3 — daily receiver-typo email counts across the collection.

Three series on a log axis: spam-filtered, reflection-and-frequency-
filtered, and real email typos.  Shape to reproduce: spam dominates by
orders of magnitude, real receiver typos arrive at a near-constant daily
rate, and the collection gap (infrastructure overwhelmed) shows as a hole
in every series.
"""

from repro.analysis import daily_series

from conftest import STUDY_CONFIG


def _sparkline(values, width=60):
    """A coarse ASCII rendering of a daily series."""
    if not values:
        return ""
    bucket = max(1, len(values) // width)
    glyphs = " .:-=+*#%@"
    out = []
    for start in range(0, len(values), bucket):
        chunk = values[start:start + bucket]
        peak = max(chunk)
        level = 0 if peak == 0 else min(9, 1 + int(peak).bit_length())
        out.append(glyphs[level])
    return "".join(out)


def test_fig3_receiver_timeseries(benchmark, study_results):
    series = benchmark(daily_series, study_results.records, "receiver",
                       study_results.window)

    print("\nFigure 3 — daily receiver-candidate emails (ASCII, log-ish)")
    for name, values in series.categories.items():
        print(f"{name:38s} |{_sparkline(values)}|  total={sum(values)}")

    spam = series.categories["spam_filtered"]
    real = series.categories["real_typos"]
    window = study_results.window

    # spam dominates: by orders of magnitude once the spam subsampling
    # scale is undone (the simulation runs spam at spam_scale of real
    # volume; the paper's Figure 3 gap is ~3 orders of magnitude)
    descaled_spam = sum(spam) / STUDY_CONFIG.spam_scale
    descaled_real = sum(real) / STUDY_CONFIG.ham_scale
    assert descaled_spam > 100 * descaled_real
    assert sum(spam) > 0.2 * sum(real)  # visible even in raw counts
    # real typos arrive near-constantly: most collecting days see some
    collecting = [d for d in range(window.total_days) if window.is_collecting(d)]
    active = sum(1 for d in collecting if real[d] > 0)
    assert active > 0.7 * len(collecting)
    # the outage hole is empty in every series
    for day in window.outage_days:
        assert spam[day] == 0 and real[day] == 0
