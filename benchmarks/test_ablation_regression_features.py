"""Ablation — the §6 regression's feature set.

The paper selected three features: log Alexa rank, the normalised visual
distance (square-rooted), and the fat-finger indicator.  This knockout
sweep shows each carries signal — rank most of all (popularity dominates,
§4.4.2) — and that the model still generalises when an entire *target*
is held out, not just single domains.
"""

import pytest

from repro.extrapolate import (
    RegressionObservation,
    SqrtVolumeRegression,
    feature_knockouts,
    leave_one_target_out_r_squared,
)
from repro.extrapolate.projection import PROJECTION_TARGETS


@pytest.fixture(scope="module")
def observations(study_results, internet):
    volumes = study_results.per_domain_yearly_true_typos()
    out = []
    for domain in study_results.corpus.by_purpose("receiver"):
        if domain.target not in PROJECTION_TARGETS or domain.candidate is None:
            continue
        rank = internet.alexa_rank(domain.target)
        if rank is None:
            continue
        out.append(RegressionObservation(
            domain=domain.domain, target=domain.target,
            yearly_emails=volumes.get(domain.domain, 0.0),
            alexa_rank=rank,
            normalized_visual=domain.candidate.normalized_visual,
            fat_finger=domain.candidate.is_fat_finger))
    return out


def test_ablation_regression_features(benchmark, observations):
    knockouts = benchmark(feature_knockouts, observations)
    full_fit = SqrtVolumeRegression().fit(observations)
    loto = leave_one_target_out_r_squared(observations)

    print(f"\nregression feature ablation ({len(observations)} seed domains)")
    print(f"full model:        R^2 = {full_fit.r_squared:.3f} "
          f"(LOO {full_fit.loo_r_squared:.3f}, "
          f"leave-one-target-out {loto:.3f})")
    for knockout in knockouts:
        print(f"without {knockout.removed_feature:18s} "
              f"R^2 = {knockout.r_squared:.3f} "
              f"(drop {knockout.r_squared_drop:+.3f})")

    by_name = {k.removed_feature: k for k in knockouts}
    # every feature carries some signal
    for knockout in knockouts:
        assert knockout.r_squared_drop > -0.01
    # rank (popularity) and visual distance are the load-bearing features
    # — the two effects the paper's conclusion names ("popularity of
    # target domain, edit distance ..., and visual distance")
    assert by_name["log_alexa_rank"].r_squared_drop > 0.1
    assert by_name["sqrt_norm_visual"].r_squared_drop > 0.1
    assert by_name["fat_finger"].r_squared_drop <= max(
        by_name["log_alexa_rank"].r_squared_drop,
        by_name["sqrt_norm_visual"].r_squared_drop)
    # the model retains cross-target predictive power
    assert loto > 0.0
