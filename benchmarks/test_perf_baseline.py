"""Performance baseline — the repo's speed trajectory.

Not a paper table: the harness's own wall-clock and throughput, recorded
to ``BENCH_perf.json`` so future changes have a trajectory to compare
against.  Two workloads are timed:

* one full seven-month study run (the `study` CLI hot path), reporting
  emails simulated per second from the run's own perf snapshot;
* one wild-ecosystem scan, reporting registered ctypo domains scanned
  per second;
* one streaming lazy-world scan over the first 10k Alexa ranks,
  reporting generated gtypos and registered ctypos per second.

The first recorded run becomes the baseline; later runs append to the
history and **fail** when the study wall-clock — or either scan's
throughput — regresses more than 2x against that baseline.  An
accidental O(n^2) in a hot path shows up here before it shows up in a
reviewer's patience.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.ecosystem import EcosystemScanner, InternetConfig, build_internet
from repro.experiment import ExperimentConfig, StudyRunner, run_sharded_scan
from repro.util import SeededRng
from repro.util.perf import throughput

#: The canonical timing workload (matches the perf acceptance run).
PERF_CONFIG = ExperimentConfig(seed=606, spam_scale=2e-4)
SCAN_CONFIG = InternetConfig(num_filler_targets=40)
SCAN_SEED = 606
STREAM_RANKS = 10_000

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
#: Regression gate: fail when the study takes this many times the
#: recorded baseline wall-clock.
REGRESSION_FACTOR = 2.0
HISTORY_LIMIT = 50


def _load_bench() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {"baseline": None, "history": []}


def _timed_study():
    start = time.perf_counter()
    results = StudyRunner(PERF_CONFIG).run()
    return results, time.perf_counter() - start


def _timed_scan():
    start = time.perf_counter()
    internet = build_internet(SeededRng(SCAN_SEED, name="world"),
                              SCAN_CONFIG)
    scan = EcosystemScanner(internet).scan()
    return scan, time.perf_counter() - start


def _timed_stream():
    start = time.perf_counter()
    aggregates = run_sharded_scan(SCAN_SEED, STREAM_RANKS, jobs=1)
    return aggregates, time.perf_counter() - start


def test_perf_baseline(benchmark):
    ((results, study_wall), (scan, scan_wall),
     (stream, stream_wall)) = benchmark.pedantic(
        lambda: (_timed_study(), _timed_scan(), _timed_stream()),
        iterations=1, rounds=1)

    perf = results.perf or {}
    entry = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "study": {
            "config": {"seed": PERF_CONFIG.seed,
                       "spam_scale": PERF_CONFIG.spam_scale},
            "wall_seconds": round(study_wall, 3),
            "emails_sent": results.sent_count,
            "emails_delivered": results.delivered_count,
            "records": len(results.records),
            "throughput": perf.get("throughput", {}),
            "phase_seconds": {
                name: round(stat["seconds"], 3)
                for name, stat in perf.get("timers", {}).items()},
        },
        "scan": {
            "wall_seconds": round(scan_wall, 3),
            "gtypos_generated": scan.generated_count,
            "ctypos_registered": scan.registered_count,
            "ctypos_scanned_per_sec": round(
                throughput(scan.registered_count, scan_wall), 1),
        },
        "streaming_scan": {
            "ranks": STREAM_RANKS,
            "wall_seconds": round(stream_wall, 3),
            "gtypos_generated": stream.generated_count,
            "ctypos_registered": stream.registered_count,
            "gtypos_per_sec": round(
                throughput(stream.generated_count, stream_wall), 1),
            "ctypos_per_sec": round(
                throughput(stream.registered_count, stream_wall), 1),
        },
    }

    bench = _load_bench()
    if bench["baseline"] is None:
        bench["baseline"] = entry
    elif "streaming_scan" not in bench["baseline"]:
        # the streaming workload postdates the first baseline; back-fill
        # so later runs have a trajectory to gate against
        bench["baseline"]["streaming_scan"] = entry["streaming_scan"]
    bench["history"] = (bench["history"] + [entry])[-HISTORY_LIMIT:]
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    baseline_wall = bench["baseline"]["study"]["wall_seconds"]
    baseline_scan_rate = bench["baseline"]["scan"]["ctypos_scanned_per_sec"]
    baseline_stream_rate = \
        bench["baseline"]["streaming_scan"]["ctypos_per_sec"]
    sent_rate = entry["study"]["throughput"].get("emails_sent_per_sec", 0.0)
    print(f"\nstudy: {study_wall:.2f}s wall, "
          f"{sent_rate:,.0f} emails simulated/sec "
          f"(baseline {baseline_wall:.2f}s)")
    print(f"scan:  {scan_wall:.2f}s wall, "
          f"{entry['scan']['ctypos_scanned_per_sec']:,.1f} "
          "ctypos scanned/sec")
    print(f"stream: {stream_wall:.2f}s wall for {STREAM_RANKS:,} ranks, "
          f"{entry['streaming_scan']['ctypos_per_sec']:,.1f} ctypos/sec, "
          f"{entry['streaming_scan']['gtypos_per_sec']:,.0f} gtypos/sec")

    # sanity: the snapshot carries real throughput numbers
    assert sent_rate > 0
    assert entry["scan"]["ctypos_scanned_per_sec"] > 0
    assert entry["streaming_scan"]["ctypos_per_sec"] > 0
    # the regression gates
    assert study_wall <= REGRESSION_FACTOR * baseline_wall, (
        f"study run regressed: {study_wall:.2f}s vs recorded baseline "
        f"{baseline_wall:.2f}s (gate {REGRESSION_FACTOR}x) — if this "
        "slowdown is intended, delete BENCH_perf.json to re-baseline")
    assert (entry["scan"]["ctypos_scanned_per_sec"]
            >= baseline_scan_rate / REGRESSION_FACTOR), (
        f"scan throughput regressed: "
        f"{entry['scan']['ctypos_scanned_per_sec']:,.1f}/s vs baseline "
        f"{baseline_scan_rate:,.1f}/s (gate {REGRESSION_FACTOR}x)")
    assert (entry["streaming_scan"]["ctypos_per_sec"]
            >= baseline_stream_rate / REGRESSION_FACTOR), (
        f"streaming scan throughput regressed: "
        f"{entry['streaming_scan']['ctypos_per_sec']:,.1f}/s vs baseline "
        f"{baseline_stream_rate:,.1f}/s (gate {REGRESSION_FACTOR}x)")


def test_query_service_not_regressed():
    """Gate the recorded serving trajectory (query_service section).

    The serving benchmark (``test_query_service``, perfsmoke lane)
    records each run; this gate holds the *latest* recorded run within
    2x of the recorded baseline on both p99 latency and QPS, so a
    slowdown in the resident hot path fails the perf lane even when the
    serving bench itself was run elsewhere.
    """
    import pytest

    bench = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    section = bench.get("query_service")
    if not section:
        pytest.skip("no query_service section recorded yet — "
                    "run benchmarks/test_query_service.py first")
    baseline, latest = section["baseline"], section["latest"]
    assert latest["qps"] >= baseline["qps"] / REGRESSION_FACTOR, (
        f"serving QPS regressed: {latest['qps']:,.0f}/s vs baseline "
        f"{baseline['qps']:,.0f}/s (gate {REGRESSION_FACTOR}x)")
    assert latest["p99_us"] <= baseline["p99_us"] * REGRESSION_FACTOR, (
        f"serving p99 regressed: {latest['p99_us']:.2f}us vs baseline "
        f"{baseline['p99_us']:.2f}us (gate {REGRESSION_FACTOR}x)")
    assert latest["build_seconds"] <= max(
        baseline["build_seconds"] * REGRESSION_FACTOR, 1.0), (
        f"index build regressed: {latest['build_seconds']:.3f}s vs "
        f"baseline {baseline['build_seconds']:.3f}s")


def test_service_chaos_not_regressed():
    """Gate the recorded chaos-serving trajectory (service_chaos section).

    The chaos bench (``test_service_chaos_floor``, perfsmoke lane)
    records each run; this gate holds the latest recorded run within 2x
    of the recorded baseline QPS and keeps the zero-drop invariant, so
    a slowdown in the resilient serving path fails the perf lane even
    when the chaos bench itself was run elsewhere.
    """
    import pytest

    bench = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    section = bench.get("service_chaos")
    if not section:
        pytest.skip("no service_chaos section recorded yet — "
                    "run benchmarks/test_query_service.py first")
    baseline, latest = section["baseline"], section["latest"]
    assert latest["dropped"] == 0, (
        f"chaos serving dropped {latest['dropped']} lookups — the "
        "resilient server must answer every query")
    assert latest["qps"] >= baseline["qps"] / REGRESSION_FACTOR, (
        f"chaos serving QPS regressed: {latest['qps']:,.0f}/s vs baseline "
        f"{baseline['qps']:,.0f}/s (gate {REGRESSION_FACTOR}x)")


def test_learned_detector_not_regressed():
    """Gate the recorded learned-detector trajectory.

    The learned-detector bench (``test_learned_detector_throughput``,
    perfsmoke lane) records each run; this gate holds the latest
    recorded run within 2x of the recorded baseline on both lanes —
    vectorized message featurize+score and the columnar domain pass —
    so a slowdown in the feature engine fails the perf lane even when
    the detector bench itself was run elsewhere.
    """
    import pytest

    bench = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    section = bench.get("learned_detector")
    if not section:
        pytest.skip("no learned_detector section recorded yet — "
                    "run benchmarks/test_learned_detector.py first")
    baseline, latest = section["baseline"], section["latest"]
    assert (latest["learned_emails_per_sec"]
            >= baseline["learned_emails_per_sec"] / REGRESSION_FACTOR), (
        f"message featurize+score regressed: "
        f"{latest['learned_emails_per_sec']:,.0f} emails/s vs baseline "
        f"{baseline['learned_emails_per_sec']:,.0f}/s "
        f"(gate {REGRESSION_FACTOR}x)")
    assert (latest["columnar_rows_per_sec"]
            >= baseline["columnar_rows_per_sec"] / REGRESSION_FACTOR), (
        f"columnar domain scoring regressed: "
        f"{latest['columnar_rows_per_sec']:,.0f} rows/s vs baseline "
        f"{baseline['columnar_rows_per_sec']:,.0f}/s "
        f"(gate {REGRESSION_FACTOR}x)")
    assert latest["message_speedup"] >= 5.0, (
        f"learned message lane fell below the 5x funnel acceptance bar: "
        f"{latest['message_speedup']:.1f}x")


def test_drift_resilience_not_regressed():
    """Gate the recorded drift-resilience trajectory.

    The drift bench (``test_drift_resilience_floor``, perfsmoke/chaos
    lane) records each run; this gate holds the latest recorded run
    within 2x of the recorded baseline on the lifecycle cycle, the
    scenario stepping rate, and learned chaos serving QPS — and keeps
    the zero-drop invariant and the scripted promote — so a slowdown in
    the living-internet lane fails the perf lane even when the drift
    bench itself was run elsewhere.
    """
    import pytest

    bench = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    section = bench.get("drift_resilience")
    if not section:
        pytest.skip("no drift_resilience section recorded yet — "
                    "run benchmarks/test_drift_resilience.py first")
    baseline, latest = section["baseline"], section["latest"]
    assert latest["dropped"] == 0, (
        f"learned chaos serving dropped {latest['dropped']} lookups — "
        "the resilient server must answer every query")
    assert latest["decision"] == "promote", (
        "the drift drill no longer promotes its shadow-retrained "
        f"candidate (got {latest['decision']!r})")
    assert latest["cycle_seconds"] <= max(
        baseline["cycle_seconds"] * REGRESSION_FACTOR, 1.0), (
        f"lifecycle cycle regressed: {latest['cycle_seconds']:.2f}s vs "
        f"baseline {baseline['cycle_seconds']:.2f}s "
        f"(gate {REGRESSION_FACTOR}x)")
    assert (latest["scenario_steps_per_sec"]
            >= baseline["scenario_steps_per_sec"] / REGRESSION_FACTOR), (
        f"scenario stepping regressed: "
        f"{latest['scenario_steps_per_sec']:,.0f} steps/s vs baseline "
        f"{baseline['scenario_steps_per_sec']:,.0f}/s "
        f"(gate {REGRESSION_FACTOR}x)")
    assert latest["chaos_qps"] >= baseline["chaos_qps"] / REGRESSION_FACTOR, (
        f"learned chaos serving regressed: {latest['chaos_qps']:,.0f}/s "
        f"vs baseline {baseline['chaos_qps']:,.0f}/s "
        f"(gate {REGRESSION_FACTOR}x)")
