"""Table 6 — mail-exchanger concentration among accepting domains.

Paper's values::

    MX domain           Total   %     CDF    Private?
    b-io.co             3,171   43.6  43.6   Yes
    h-email.net         1,344   18.5  62.1   Yes
    mb5p.com              732   10.1  72.2   Yes
    m1bp.com              635    8.7  80.9   Yes
    mb1p.com              558    7.7  88.6   Yes
    hostedmxserver.com    225    3.1  91.7   Yes
    hope-mail.com         176    2.4  94.1   Yes
    m2bp.com               94    1.3  95.4   Yes
    google.com             61    0.8  96.2   No
    googlemail.com         34    0.5  96.7   No

Shape: ~95% of everything that accepted honey mail funnels into eight
privately-registered mail-server domains.
"""

from repro.ecosystem import SQUATTER_MX_POOL


def test_table6_mx_concentration(benchmark, probe_result, internet):
    rows = benchmark(probe_result.mx_table)

    print(f"\nTable 6 — MX domains of {len(probe_result.accepting_domains)} "
          "accepting domains")
    print(f"{'MX domain':22s} {'total':>6s} {'%':>6s} {'CDF':>6s}  private?")
    cdf = 0.0
    for host, count, percent in rows[:10]:
        cdf += percent
        record = internet.whois.lookup(host)
        private = "yes" if record is not None and record.is_private else "no"
        print(f"{host:22s} {count:6d} {percent:6.1f} {cdf:6.1f}  {private}")

    pool_hosts = {host for host, _, _ in SQUATTER_MX_POOL}
    top8 = rows[:8]
    top8_share = sum(percent for _, _, percent in top8)
    # the dominant mail hosts are the squatter pool, and they are private
    assert top8_share > 60.0                      # paper: 95.4%
    overlap = pool_hosts & {host for host, _, _ in top8}
    assert len(overlap) >= 5
    for host in overlap:
        record = internet.whois.lookup(host)
        assert record is not None and record.is_private
    # the single biggest host carries a disproportionate share
    assert rows[0][2] > 15.0                      # paper: 43.6%
    assert rows[0][0] in pool_hosts
