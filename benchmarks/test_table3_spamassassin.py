"""Table 3 — SpamAssassin-style scorer evaluated on four corpora.

Paper's values::

    Dataset       Precision  Recall
    TREC          0.98       0.79
    CSDMC         0.98       0.87
    SpamAssassin  0.97       0.84
    Untroubled    -          0.23

Shape: precision high wherever it is defined, recall mediocre and
*terrible* on the spam-only Untroubled archive — the finding that forced
the paper to add three more filtering layers.
"""

import math

import pytest

from repro.spamfilter import SpamAssassinScorer
from repro.util import SeededRng
from repro.workloads import DATASET_PROFILES, build_dataset, evaluate_spamassassin

DATASET_SIZE = 1200


@pytest.fixture(scope="module")
def datasets():
    return {name: build_dataset(profile, DATASET_SIZE,
                                SeededRng(5).child(name))
            for name, profile in DATASET_PROFILES.items()}


def test_table3_spamassassin(benchmark, datasets):
    scorer = SpamAssassinScorer()

    def evaluate_all():
        return {name: evaluate_spamassassin(dataset, scorer)
                for name, dataset in datasets.items()}

    scores = benchmark(evaluate_all)

    print(f"\nTable 3 — scorer on four datasets ({DATASET_SIZE} emails each)")
    print(f"{'dataset':14s} {'precision':>9s} {'recall':>7s}")
    for name, score in scores.items():
        # spam-only archive: precision is trivially 1.0 / meaningless,
        # so print the paper's "-"
        spam_only = datasets[name].spam_count == len(datasets[name])
        precision = ("-" if spam_only or math.isnan(score.precision)
                     else f"{score.precision:.2f}")
        print(f"{name:14s} {precision:>9s} {score.recall:7.2f}")

    for name in ("trec", "csdmc", "spamassassin"):
        assert scores[name].precision > 0.95, name
        assert 0.70 < scores[name].recall < 0.95, name
    # Untroubled: spam-only (no ham, so no false positives possible),
    # hard modern spam with terrible recall
    assert datasets["untroubled"].spam_count == len(datasets["untroubled"])
    assert scores["untroubled"].false_positives == 0
    assert scores["untroubled"].recall < 0.35
    # recall ordering: csdmc easiest, untroubled hardest
    assert scores["csdmc"].recall > scores["untroubled"].recall
