"""Shared worlds for the benchmark/reproduction harness.

Each benchmark file regenerates one of the paper's tables or figures.
The expensive artifacts — the seven-month study simulation, the simulated
Internet, its full scan, and the honey-probe campaign — are built once
per session and shared.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.volume import descaled_volume_report
from repro.ecosystem import EcosystemScanner, InternetConfig, build_internet
from repro.experiment import ExperimentConfig, StudyRunner
from repro.honey import HoneyCampaign
from repro.util import SeededRng

#: Worker processes for the multi-run benches (sweeps, ablations); the
#: results are identical for any value — set REPRO_BENCH_JOBS>1 on a
#: multi-core box to shorten wall-clock.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or None

#: One canonical configuration for every headline number.
STUDY_CONFIG = ExperimentConfig(seed=2016, spam_scale=2e-4)
INTERNET_CONFIG = InternetConfig(num_filler_targets=60)
WORLD_SEED = 20161105  # the paper's Alexa snapshot date


@pytest.fixture(scope="session")
def study_results():
    return StudyRunner(STUDY_CONFIG).run()


@pytest.fixture(scope="session")
def study_volume_report(study_results):
    smtp_domains = [d.domain for d in study_results.corpus.by_purpose("smtp")]
    return descaled_volume_report(
        study_results.records, study_results.window,
        STUDY_CONFIG.ham_scale, STUDY_CONFIG.spam_scale, smtp_domains)


@pytest.fixture(scope="session")
def internet():
    return build_internet(SeededRng(WORLD_SEED, name="world"),
                          INTERNET_CONFIG)


@pytest.fixture(scope="session")
def ecosystem_scan(internet):
    return EcosystemScanner(internet).scan()


@pytest.fixture(scope="session")
def honey_campaign(internet):
    return HoneyCampaign(internet, SeededRng(WORLD_SEED, name="honey"))


@pytest.fixture(scope="session")
def probe_result(honey_campaign, ecosystem_scan):
    targets = honey_campaign.probe_targets_from_scan(ecosystem_scan)
    return honey_campaign.run_probe_campaign(targets)
