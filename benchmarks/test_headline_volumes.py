"""§4.4.1 headline volumes — the study's yearly projections.

Paper's numbers::

    total received              118,894,960 / year
    receiver/reflection cand.    16,233,730 / year
    SMTP candidates             102,661,230 / year
    passed all filters                7,260 / year
    corrected genuine typos           6,041 / year
    SMTP typo band                415 - 5,970 / year
    receiver typos at SMTP domains     ~700 / year

All of these are regenerated from the simulated seven-month run, scale-
corrected back to real-world volume.
"""

from repro.analysis import smtp_persistence


def test_headline_volumes(benchmark, study_results, study_volume_report):
    report = study_volume_report
    benchmark(study_results.per_domain_yearly_true_typos)

    print("\n§4.4.1 headline volumes (yearly, scale-corrected)")
    print(f"total received:               {report.total_received:15,.0f}")
    print(f"receiver/reflection cand.:    {report.receiver_candidates:15,.0f}")
    print(f"SMTP candidates:              {report.smtp_candidates:15,.0f}")
    print(f"genuine passed all filters:   {report.passed_all_filters:15,.0f}")
    print(f"genuine receiver+reflection:  {report.true_receiver_reflection:15,.0f}")
    low, high = report.smtp_typo_range()
    print(f"SMTP typo band:               {low:10,.0f} - {high:,.0f}")
    print(f"receiver typos @ SMTP domains:{report.receiver_typos_at_smtp_domains:15,.0f}")
    print(f"raw survivors: {report.raw_survivors_total} "
          f"({report.survivor_spam_fraction:.0%} residual spam; paper's "
          "manual sample: 20%)")

    # order-of-magnitude agreement with the paper's projections
    assert 5e7 < report.total_received < 2.5e8          # ~118.9M
    assert 5e6 < report.receiver_candidates < 5e7       # ~16.2M
    assert 5e7 < report.smtp_candidates < 2e8           # ~102.7M
    assert report.smtp_candidates > 3 * report.receiver_candidates
    assert 2_000 < report.passed_all_filters < 20_000   # ~7,260
    assert 2_000 < report.true_receiver_reflection < 20_000  # ~6,041
    assert 50 < low < 2_000                             # ~415
    assert high < 20_000                                # ~5,970
    assert 100 < report.receiver_typos_at_smtp_domains < 3_000  # ~700

    # the SMTP persistence distribution backing §4.4.2
    stats = smtp_persistence(study_results.records,
                             include_frequency_filtered=True)
    print(f"SMTP persistence: {stats.single_email_fraction:.0%} single, "
          f"{stats.under_one_day_fraction:.0%} <1d, "
          f"{stats.under_one_week_fraction:.0%} <1w, "
          f"max {stats.max_persistence_days:.0f}d")
    assert stats.matches_paper_shape()
