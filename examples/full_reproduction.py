#!/usr/bin/env python
"""The whole paper in one command.

Runs every stage of the reproduction in sequence — the seven-month
collection study (§4), the ecosystem scan (§5), the regression projection
(§6), and the honey-email experiments (§7) — then writes a combined
Markdown report and the per-figure CSV data.

Run:  python examples/full_reproduction.py [output-dir]

Expect a few minutes of wall-clock; every stage prints its headline
result as it lands.
"""

import sys
import time
from pathlib import Path

from repro import ExperimentConfig, StudyRunner
from repro.analysis.volume import descaled_volume_report
from repro.ecosystem import EcosystemScanner, InternetConfig, build_internet
from repro.extrapolate import ProjectionExperiment, RegressionObservation
from repro.extrapolate.projection import PROJECTION_TARGETS
from repro.honey import HoneyCampaign
from repro.report import export_figure_data, render_study_report
from repro.util import SeededRng


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "reproduction-output")
    output_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()

    # -- §4: the collection study ------------------------------------------
    print("[1/4] §4 collection study (seven simulated months)...")
    config = ExperimentConfig(seed=2016, spam_scale=1e-4)
    results = StudyRunner(config).run()
    smtp_domains = [d.domain for d in results.corpus.by_purpose("smtp")]
    volumes = descaled_volume_report(results.records, results.window,
                                     config.ham_scale, config.spam_scale,
                                     smtp_domains)
    print(f"      {results.delivered_count} emails collected; "
          f"{volumes.passed_all_filters:,.0f} genuine typos/yr "
          "(paper: ~6,041)")

    # -- §5: the ecosystem scan -----------------------------------------------
    print("[2/4] §5 ecosystem scan...")
    internet = build_internet(SeededRng(20161105, name="world"),
                              InternetConfig(num_filler_targets=60))
    scan = EcosystemScanner(internet).scan()
    accepting = sum(1 for r in scan.results if r.support.can_accept_mail)
    print(f"      {scan.registered_count} wild ctypos; "
          f"{100 * accepting / len(scan.results):.0f}% can receive mail "
          "(paper: 43%)")

    # -- §6: the projection -------------------------------------------------------
    print("[3/4] §6 regression projection...")
    per_domain = results.per_domain_yearly_true_typos()
    observations = []
    for domain in results.corpus.by_purpose("receiver"):
        if domain.target not in PROJECTION_TARGETS or domain.candidate is None:
            continue
        rank = internet.alexa_rank(domain.target)
        if rank is None:
            continue
        observations.append(RegressionObservation(
            domain=domain.domain, target=domain.target,
            yearly_emails=per_domain.get(domain.domain, 0.0),
            alexa_rank=rank,
            normalized_visual=domain.candidate.normalized_visual,
            fat_finger=domain.candidate.is_fat_finger))
    experiment = ProjectionExperiment(internet, SeededRng(606))
    projection = experiment.run(observations,
                                exclude_domains=results.corpus.domain_names())
    print(f"      adjusted projection {projection.adjusted_total:,.0f} "
          f"emails/yr over {projection.wild_domain_count} wild domains "
          "(paper: 846,219 over 1,211)")

    # -- §7: the honey experiments ---------------------------------------------------
    print("[4/4] §7 honey experiments...")
    campaign = HoneyCampaign(internet, SeededRng(20161105, name="honey"))
    probe = campaign.run_probe_campaign(
        campaign.probe_targets_from_scan(scan))
    honey = campaign.run_token_campaign(probe.accepting_domains)
    print(f"      {honey.emails_accepted} honey emails accepted, "
          f"{len(honey.domains_read)} domains read them, "
          f"{len(honey.domains_acted)} acted on bait "
          "(paper: 15 reads, 2 accesses)")

    # -- outputs -----------------------------------------------------------------------
    report_path = output_dir / "study_report.md"
    report_path.write_text(render_study_report(results))
    written = export_figure_data(results, output_dir / "figures")

    extra = [
        "",
        "## Projection (§6)",
        "",
        *(f"* {line}" for line in projection.summary_lines()),
        "",
        "## Honey experiments (§7)",
        "",
        f"* probed {probe.domains_probed} domains; "
        f"{len(probe.accepting_domains)} accepted",
        f"* honey tokens: {honey.emails_sent} sent, "
        f"{honey.emails_accepted} accepted, {honey.emails_opened} opened",
        f"* domains with reads: {len(honey.domains_read)}; with bait "
        f"access: {len(honey.domains_acted)}",
    ]
    with report_path.open("a") as handle:
        handle.write("\n".join(extra) + "\n")

    elapsed = time.time() - started
    print(f"\ndone in {elapsed:.0f}s")
    print(f"report: {report_path}")
    print(f"figure data: {len(written)} files under {output_dir / 'figures'}")


if __name__ == "__main__":
    main()
