#!/usr/bin/env python
"""Scan the wild typosquatting ecosystem (paper Section 5).

Builds a simulated Internet with bulk squatters, resale inventories,
defensive registrations, and legitimate look-alikes, then runs the
paper's methodology against it: enumerate DL-1 typos of the popular
domains, keep the registered ones, collect MX/A records, probe SMTP
support zmap-style, cluster WHOIS registrants, and flag suspicious
name servers.

Run:  python examples/ecosystem_scan.py
"""

from repro.ecosystem import (
    EcosystemScanner,
    InternetConfig,
    SmtpSupport,
    analyze_nameservers,
    build_internet,
    cluster_registrants,
    concentration_curve,
    smallest_fraction_covering,
    suspicious_nameservers,
    top_share,
)
from repro.util import SeededRng


def main() -> None:
    rng = SeededRng(20161105, name="ecosystem-example")
    print("building a simulated Internet...")
    internet = build_internet(rng, InternetConfig(num_filler_targets=60))
    print(f"  {len(internet.alexa)} popular targets, "
          f"{len(internet.wild_domains)} registered candidate typo domains")

    print("\nscanning the DL-1 typo space (DNS walk + SMTP probes)...")
    scan = EcosystemScanner(internet).scan()
    print(f"  {scan.generated_count} gtypos enumerated, "
          f"{scan.registered_count} found registered")

    print("\nTable 4 — SMTP support:")
    percentages = scan.support_percentages()
    for support in SmtpSupport:
        print(f"  {support.value:25s} {percentages[support]:5.1f}%")

    print("\nregistrant concentration (Figure 8):")
    squatting = [w.domain for w in internet.squatting_domains()]
    clusters = cluster_registrants(internet.whois, squatting)
    curve = concentration_curve([len(c) for c in clusters])
    print(f"  {curve.entities} clusterable registrant entities")
    print(f"  top-14 own {top_share(curve, 14):.1%} of typo domains")
    print(f"  {smallest_fraction_covering(curve, 0.5):.1%} of registrants "
          "own the majority")
    largest = clusters[0]
    print(f"  largest portfolio: {len(largest)} domains "
          f"(registrant {largest.representative.registrant_name!r})")

    print("\nmail-server concentration:")
    mx_counts = scan.mx_domain_counts()
    mx_curve = concentration_curve(list(mx_counts.values()))
    print(f"  top-11 MX hosts serve {top_share(mx_curve, 11):.1%} "
          "of MX-bearing typo domains")

    print("\nsuspicious name servers (typo ratio far above baseline):")
    stats = analyze_nameservers(internet.registry, internet.whois,
                                [w.domain for w in internet.wild_domains],
                                benign_counts=internet.nameserver_benign_counts)
    overall = (sum(s.typo_domains for s in stats)
               / sum(s.total_domains for s in stats))
    print(f"  ecosystem baseline typo ratio: {overall:.1%}")
    for entry in suspicious_nameservers(stats)[:5]:
        print(f"  {entry.nameserver:28s} ratio {entry.typo_ratio:5.1%} "
              f"({entry.typo_domains} typo domains, "
              f"{entry.private_ratio_among_typos:.0%} private)")


if __name__ == "__main__":
    main()
