#!/usr/bin/env python
"""Attacker and defender economics of email typosquatting (paper §6 & §8).

Fits the paper's regression on a simulated study's measured per-domain
volumes, projects yearly email capture over the wild typo space of the
five big targets, prices the attack at $8.50 per .com registration, and
then switches sides: which typo domains should gmail.com register
defensively, and what does a protected email cost?

Run:  python examples/typosquatter_economics.py
"""

from repro import ExperimentConfig, StudyRunner
from repro.ecosystem import InternetConfig, build_internet
from repro.extrapolate import (
    ProjectionExperiment,
    RegressionObservation,
    attacker_economics,
    cost_per_email,
    defensive_registration_plan,
)
from repro.extrapolate.projection import PROJECTION_TARGETS
from repro.util import SeededRng


def main() -> None:
    print("running the collection study to get measured per-domain volume...")
    config = ExperimentConfig(seed=2016, spam_scale=1e-4)
    results = StudyRunner(config).run()
    volumes = results.per_domain_yearly_true_typos()

    print("building the wild ecosystem...")
    internet = build_internet(SeededRng(20161105, name="econ"),
                              InternetConfig(num_filler_targets=60))

    observations = []
    for domain in results.corpus.by_purpose("receiver"):
        if domain.target not in PROJECTION_TARGETS or domain.candidate is None:
            continue
        rank = internet.alexa_rank(domain.target)
        if rank is None:
            continue
        observations.append(RegressionObservation(
            domain=domain.domain, target=domain.target,
            yearly_emails=volumes.get(domain.domain, 0.0),
            alexa_rank=rank,
            normalized_visual=domain.candidate.normalized_visual,
            fat_finger=domain.candidate.is_fat_finger))
    print(f"regression seed: {len(observations)} measured domains of "
          f"{len(PROJECTION_TARGETS)} targets")

    experiment = ProjectionExperiment(internet, SeededRng(606))
    report = experiment.run(observations,
                            exclude_domains=results.corpus.domain_names())
    print()
    for line in report.summary_lines():
        print(" ", line)

    print("\n--- the attacker's ledger ---")
    economics = attacker_economics(volumes)
    print(f"our corpus: {economics.domain_count} domains for "
          f"${economics.yearly_cost:,.0f}/yr catch "
          f"{economics.emails_per_year:,.0f} emails/yr "
          f"=> ${economics.cost_per_email:.3f} per email")
    print(f"keeping only the five best domains: "
          f"${economics.top5_cost_per_email:.3f} per email")
    wild_cost = cost_per_email(report.wild_domain_count,
                               report.adjusted_total)
    print(f"a squatter owning all {report.wild_domain_count} wild typos of "
          f"the big five would pay ${wild_cost:.3f} per captured email")

    print("\n--- the defender's counter-ledger (paper §8) ---")
    domain_targets = {d.domain: d.target for d in results.corpus.domains}
    for target in ("gmail.com", "hushmail.com"):
        plan = defensive_registration_plan(volumes, domain_targets, target,
                                           budget_domains=5)
        if not plan.domains_to_register:
            continue
        print(f"{target}: registering {len(plan.domains_to_register)} typos "
              f"(${plan.yearly_cost:.0f}/yr) intercepts "
              f"{plan.emails_protected_per_year:,.0f} misdirected emails/yr "
              f"=> ${plan.cost_per_protected_email:.4f} per protected email")
    print("popular providers get far more protection per defensive dollar —"
          "\nthe paper's argument that defensive registration should start "
          "at the top.")


if __name__ == "__main__":
    main()
