#!/usr/bin/env python
"""Play the typosquatting victim (paper Section 7).

Sends benign probe emails to every wild typo domain that shows SMTP
life, tabulates acceptance by WHOIS registration type (Table 5) and the
mail-exchanger concentration of the accepters (Table 6), then runs the
honey-token experiment: four bait designs — provider credentials, shell
credentials, a monitored document link, a phoning-home DOCX — to every
accepting domain, watching for reads and credential abuse.

Run:  python examples/honey_experiment.py
"""

from repro.ecosystem import EcosystemScanner, InternetConfig, build_internet
from repro.honey import HoneyCampaign
from repro.util import SeededRng


def main() -> None:
    rng = SeededRng(20170515, name="honey-example")
    print("building the world and scanning for candidate domains...")
    internet = build_internet(rng.child("internet"),
                              InternetConfig(num_filler_targets=60))
    scan = EcosystemScanner(internet).scan()

    campaign = HoneyCampaign(internet, rng.child("campaign"))
    targets = campaign.probe_targets_from_scan(scan)
    print(f"probing {len(targets)} domains with benign test emails "
          "(ports 25/465/587)...")
    probe = campaign.run_probe_campaign(targets)

    print("\nTable 5 — probe outcomes:")
    print(f"  {'outcome':15s} {'public':>8s} {'private':>8s}")
    for outcome, public, private in probe.table.rows():
        print(f"  {outcome:15s} {public:8d} {private:8d}")

    print(f"\n{len(probe.accepting_domains)} domains accepted; their mail "
          "funnels into few hosts (Table 6):")
    for host, count, percent in probe.mx_table()[:8]:
        print(f"  {host:22s} {count:5d}  {percent:5.1f}%")

    pilot_domains = campaign.select_pilot_domains(probe.accepting_domains)
    print(f"\npilot: one honey email to {len(pilot_domains)} domains "
          "(max 4 per registrant)...")
    pilot = campaign.run_token_campaign(pilot_domains,
                                        designs=["email_credentials"])
    print(f"  accepted {pilot.emails_accepted}, demonstrably read: "
          f"{len(pilot.domains_read)}")

    print(f"\nfull run: 4 designs x {len(probe.accepting_domains)} "
          "accepting domains...")
    full = campaign.run_token_campaign(probe.accepting_domains)
    print(f"  sent {full.emails_sent}, accepted {full.emails_accepted}, "
          f"opened {full.emails_opened}")
    print(f"  domains with reads: {len(full.domains_read)}; with bait "
          f"access: {len(full.domains_acted)}")
    for domain in full.domains_acted:
        lag = full.monitor.first_access_lag(domain) / 3600.0
        locations = full.monitor.access_locations(domain)
        print(f"    {domain}: first access {lag:.1f}h after sending, "
              f"from {', '.join(dict.fromkeys(locations))}")

    print("\nconclusion (the paper's): collection is industrial, reading "
          "is the rare exception — the threat remains theoretical.")


if __name__ == "__main__":
    main()
