#!/usr/bin/env python
"""Walk individual emails through the five-layer filtering funnel (§4.3).

Shows, for a handful of hand-crafted messages, which layer claims each
one and why — the fastest way to understand what the funnel does:

  Layer 1  header sanity (relay / sender / recipient checks)
  Layer 2  SpamAssassin-style scoring + the ZIP/RAR hard rule
  Layer 3  collaborative filtering (repeat senders, repeated bodies)
  Layer 4  reflection-typo detection (automation fingerprints)
  Layer 5  frequency filtering (too-common sender/recipient/content)

Run:  python examples/spam_funnel_demo.py
"""

from repro.pipeline import tokenize
from repro.smtpsim import Attachment, EmailMessage
from repro.spamfilter import FilterFunnel, FunnelConfig

OUR_DOMAINS = ["gmial.com", "ohtlook.com", "smtpverizon.net"]


def _email(from_addr, to_addr, subject, body, relay="gmial.com",
           attachments=None, extra_headers=None):
    message = EmailMessage.create(from_addr, to_addr, subject, body,
                                  attachments=attachments,
                                  extra_headers=extra_headers)
    message.headers.insert(
        0, ("Received", f"from sender by {relay} (198.51.100.1)"))
    return message


def main() -> None:
    funnel = FilterFunnel(OUR_DOMAINS,
                          config=FunnelConfig(sender_frequency_threshold=3))

    cases = [
        ("honest receiver typo",
         _email("alice@university.example", "bob@gmial.com",
                "dinner friday", "hey bob, dinner friday at seven? - alice")),
        ("lottery spam",
         _email("win4237@lucky.top", "bob@gmial.com",
                "YOU HAVE WON!!!",
                "dear friend, you have won $1,000,000. claim your prize "
                "now, act now, risk free! http://a.top http://b.top "
                "http://c.top")),
        ("zip attachment",
         _email("docs@corp.example", "bob@gmial.com", "documents",
                "see attached",
                attachments=[Attachment("docs.zip", b"PK\x03\x04")])),
        ("repeat offender, now in disguise",
         _email("win4237@lucky.top", "carol@ohtlook.com",
                "meeting notes", "totally normal email body here",
                relay="ohtlook.com")),
        ("newsletter to a mistyped signup address",
         _email("noreply@deals.example", "dave@gmial.com",
                "weekly deals #817", "big savings inside. to unsubscribe "
                "reply stop.",
                extra_headers={"List-Unsubscribe": "<mailto:u@deals.example>"})),
        ("spoofed sender claiming to be us",
         _email("admin-bot@gmial.com", "bob@gmial.com", "hello",
                "please reset your settings")),
    ]

    print("layer-by-layer verdicts:\n")
    for label, message in cases:
        result = funnel.classify(tokenize(message))
        layer = f"layer {result.layer}" if result.layer else "survived"
        print(f"{label:40s} -> {result.verdict.value:12s} ({layer})")
        print(f"{'':43s}{result.reason}\n")

    print("and a chatty correspondent crossing the frequency threshold:")
    for i in range(4):
        message = _email("eve@elsewhere.example", f"user{i}@gmial.com",
                         f"note {i}", f"unique message number {i}")
        result = funnel.classify(tokenize(message))
        print(f"  email {i + 1}: {result.verdict.value} "
              f"({result.reason})")


if __name__ == "__main__":
    main()
