#!/usr/bin/env python
"""Quickstart: run a compact version of the paper's collection study.

Registers the 76-domain corpus on a simulated Internet, drives seven
months of typo/spam traffic through the catch-all infrastructure, runs
the five-layer filtering funnel, and prints the headline numbers the
paper reports in Section 4.4.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, StudyRunner
from repro.analysis import figure5_curve, smtp_persistence
from repro.analysis.volume import descaled_volume_report


def main() -> None:
    config = ExperimentConfig(seed=2016, spam_scale=1e-4)
    print("building the study world and simulating the collection window...")
    results = StudyRunner(config).run()

    print(f"\ncorpus: {len(results.corpus)} registered typo domains")
    print(f"collection window: {results.window.total_days} days "
          f"({results.window.effective_days} effective; the rest lost to "
          "the overwhelmed-infrastructure outage)")
    print(f"emails collected: {results.delivered_count}")

    correct, total = results.funnel_accuracy()
    print(f"filtering funnel agreement with ground truth: "
          f"{correct / total:.1%}")

    smtp_domains = [d.domain for d in results.corpus.by_purpose("smtp")]
    report = descaled_volume_report(results.records, results.window,
                                    config.ham_scale, config.spam_scale,
                                    smtp_domains)
    print("\nyearly projections (scale-corrected, paper values alongside):")
    print(f"  total received:       {report.total_received:14,.0f}   "
          "(paper: 118,894,960)")
    print(f"  receiver candidates:  {report.receiver_candidates:14,.0f}   "
          "(paper: 16,233,730)")
    print(f"  SMTP candidates:      {report.smtp_candidates:14,.0f}   "
          "(paper: 102,661,230)")
    print(f"  genuine typo emails:  {report.passed_all_filters:14,.0f}   "
          "(paper: ~6,041)")
    low, high = report.smtp_typo_range()
    print(f"  SMTP-typo band:       {low:7,.0f} - {high:,.0f}     "
          "(paper: 415 - 5,970)")

    table = figure5_curve(results.records, results.corpus)
    print(f"\ntop receiver-typo domains "
          f"(of {len(table.entries)}; Figure 5's concentration):")
    for domain, count in table.entries[:5]:
        target = results.corpus.lookup(domain).target
        print(f"  {domain:18s} {count:6d} emails   (typo of {target})")
    print(f"  -> {table.domains_for_share(0.5)} domains hold half of all "
          f"receiver typos; {table.domains_for_share(0.99)} hold 99%")

    persistence = smtp_persistence(results.records,
                                   include_frequency_filtered=True)
    print(f"\nSMTP-typo persistence ({persistence.sender_count} victims): "
          f"{persistence.single_email_fraction:.0%} sent a single email, "
          f"{persistence.under_one_week_fraction:.0%} fixed the typo "
          "within a week")


if __name__ == "__main__":
    main()
