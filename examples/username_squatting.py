#!/usr/bin/env python
"""Username typosquatting — the study the paper couldn't run (§8).

"aliec@gmail.com might receive a lot of email meant for alice@gmail.com.
However, without the collaboration of the email service provider, doing
an analysis of username typosquatting is impossible."

Here we *are* the provider: simulate a user base, find real accounts one
typo apart, estimate the intra-provider misdirected volume with the same
typing model as the domain study, and take the attacker's view — which
typo usernames of busy accounts are still free to register?

Run:  python examples/username_squatting.py
"""

from repro.defenses import (
    ProviderUserBase,
    estimate_misdirected_volume,
    find_collisions,
    squattable_usernames,
)
from repro.util import SeededRng


def main() -> None:
    print("simulating a provider with 20,000 mailboxes...")
    base = ProviderUserBase.generate(SeededRng(1701), "bigmail.example",
                                     size=20_000)
    total_inbound = sum(u.yearly_inbound for u in base.users)
    print(f"  total inbound volume: {total_inbound:,.0f} emails/yr")

    collisions = find_collisions(base)
    pairs = {tuple(sorted(c.pair)) for c in collisions}
    print(f"\n{len(pairs)} unordered account pairs sit one typo apart")
    for collision in collisions[:5]:
        print(f"  {collision.intended.username!r} -> "
              f"{collision.neighbour.username!r} "
              f"({collision.edit_type}, visual {collision.visual:.2f})")

    volume = estimate_misdirected_volume(collisions)
    print(f"\nestimated intra-provider misdirected mail: "
          f"{volume:,.0f} emails/yr "
          f"({volume / total_inbound:.4%} of all inbound)")

    print("\nthe attacker's view — free typo usernames of busy accounts:")
    for name, expected in squattable_usernames(base, top_n=8):
        print(f"  register {name!r}: ~{expected:,.0f} captured emails/yr, "
              "at zero registration cost")

    print("\nunlike domains, usernames cost nothing — providers can close "
          "this with\nregistration-time typo distance checks against "
          "high-traffic accounts.")


if __name__ == "__main__":
    main()
