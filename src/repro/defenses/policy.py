"""Policy interventions against typosquatting (paper §8).

The paper discusses raising registration prices and requiring registrant
identification (the .cn precedent), noting both would "drive most of the
typosquatters out of business" at the cost of collateral damage to
legitimate registrants.  This module models that trade-off: squatting is
a volume business with thin per-domain margins, so squatter demand is
far more price-elastic than that of a business registering its own name.

``simulate_price_policy`` rebuilds the wild ecosystem under a price
multiplier and measures what happens to squatted vs. legitimate
registrations; ``break_even_price`` asks when a given typo domain stops
being profitable to a squatter outright.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.ecosystem.internet import (
    InternetConfig,
    OwnerType,
    SimulatedInternet,
    build_internet,
)
from repro.extrapolate.economics import DOMAIN_PRICE_PER_YEAR
from repro.util.rand import SeededRng

__all__ = ["PolicyOutcome", "simulate_price_policy", "break_even_price",
           "SQUATTER_PRICE_ELASTICITY", "LEGITIMATE_PRICE_ELASTICITY"]

#: Demand elasticities: a bulk squatter's margin per domain is pennies,
#: so demand collapses quickly with price; a business registering its own
#: brand barely reacts.
SQUATTER_PRICE_ELASTICITY = 1.8
LEGITIMATE_PRICE_ELASTICITY = 0.25


@dataclass(frozen=True)
class PolicyOutcome:
    """Effect of a registration-price multiplier on the ecosystem."""

    price_multiplier: float
    squatted_before: int
    squatted_after: int
    legitimate_before: int
    legitimate_after: int

    @property
    def squatting_reduction(self) -> float:
        if self.squatted_before == 0:
            return 0.0
        return 1.0 - self.squatted_after / self.squatted_before

    @property
    def collateral_damage(self) -> float:
        """Fraction of legitimate registrations lost to the policy."""
        if self.legitimate_before == 0:
            return 0.0
        return 1.0 - self.legitimate_after / self.legitimate_before


def _demand_factor(multiplier: float, elasticity: float) -> float:
    if multiplier <= 0:
        raise ValueError("price multiplier must be positive")
    return multiplier ** (-elasticity)


def simulate_price_policy(rng: SeededRng,
                          price_multiplier: float,
                          config: Optional[InternetConfig] = None,
                          squatter_elasticity: float = SQUATTER_PRICE_ELASTICITY,
                          legitimate_elasticity: float = LEGITIMATE_PRICE_ELASTICITY
                          ) -> PolicyOutcome:
    """Build the ecosystem at baseline and under the policy; compare.

    The policy enters as a thinning of registrations: each squatted
    registration survives with probability ``multiplier^-e_squatter``,
    each legitimate one with ``multiplier^-e_legit`` — the standard
    constant-elasticity demand response, applied to the same world draw
    so the comparison is paired.
    """
    config = config or InternetConfig(num_filler_targets=30)
    internet = build_internet(rng.child("world"), config)

    squatters = internet.squatting_domains()
    legitimate = [w for w in internet.wild_domains
                  if w.owner_type is OwnerType.LEGITIMATE]

    survive_squat = _demand_factor(price_multiplier, squatter_elasticity)
    survive_legit = _demand_factor(price_multiplier, legitimate_elasticity)

    thin_rng = rng.child("policy-thinning")
    squatted_after = sum(1 for _ in squatters
                         if thin_rng.bernoulli(min(1.0, survive_squat)))
    legitimate_after = sum(1 for _ in legitimate
                           if thin_rng.bernoulli(min(1.0, survive_legit)))

    return PolicyOutcome(
        price_multiplier=price_multiplier,
        squatted_before=len(squatters),
        squatted_after=squatted_after,
        legitimate_before=len(legitimate),
        legitimate_after=legitimate_after,
    )


def break_even_price(yearly_emails: float, value_per_email: float = 0.01,
                     ) -> float:
    """The registration price at which one typo domain stops paying.

    A squatter whose captured email is worth ``value_per_email`` breaks
    even when the yearly registration fee equals the yearly haul; above
    that, the domain is registered only by mistake or for resale.
    """
    if yearly_emails < 0:
        raise ValueError("yearly_emails must be non-negative")
    return yearly_emails * value_per_email


def _policy_job(work: tuple) -> PolicyOutcome:
    """Module-level worker so the sweep can fan out over processes."""
    rng, multiplier, config = work
    return simulate_price_policy(rng, multiplier, config=config)


def policy_sweep(rng: SeededRng, multipliers: Sequence[float],
                 config: Optional[InternetConfig] = None,
                 jobs: Optional[int] = None) -> List[PolicyOutcome]:
    """One outcome per price multiplier (the ablation bench's sweep).

    Each multiplier rebuilds its own world from an independent child
    seed, so the outcomes are identical for any ``jobs`` count.
    """
    from repro.experiment.parallel import parallel_map

    work = [(rng.child(f"m-{multiplier}"), multiplier, config)
            for multiplier in multipliers]
    return parallel_map(_policy_job, work, jobs=jobs)
