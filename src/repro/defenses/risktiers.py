"""Risk tiers and actions for the resident typo-risk query service.

The serving layer (``repro.service``) reduces a lookup to one scalar
risk score in ``[0, 1]``; this module owns the *policy* that turns the
score into an operational decision, mirroring the tiered responses in
Spaulding et al.'s typosquatting-landscape survey: block outright,
rewrite to the intended target (autocorrect), flag for the recipient,
queue for human review, or allow.  Keeping thresholds here — in
``defenses``, beside the autocorrect and price-policy levers — lets a
deployment tune its appetite without touching the engine, and lets the
parity tests pin that any two engines sharing a policy produce
byte-identical verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["RiskPolicy", "TIER_ACTIONS", "TIERS"]

#: tier -> action, in descending severity; "none" is the clean/unrelated
#: tier (no candidate target within one edit)
TIER_ACTIONS = {
    "critical": "block",
    "high": "rewrite",
    "medium": "flag",
    "review": "review",
    "low": "allow",
    "none": "allow",
}

#: tier names in descending severity
TIERS: Tuple[str, ...] = ("critical", "high", "medium", "review", "low")


@dataclass(frozen=True)
class RiskPolicy:
    """Score thresholds mapping a risk score to a tier (and action).

    Thresholds are inclusive lower bounds and must descend strictly:
    ``score >= critical`` blocks, down through the review band —
    scores the scorer cannot confidently place, routed to a human
    review queue instead of an automated action — to ``low``/allow.
    The defaults put every *registered* ctypo of a popular target at
    high or critical, and generated-but-unregistered typos of obscure
    fillers at low.
    """

    critical: float = 0.80
    high: float = 0.55
    medium: float = 0.35
    review: float = 0.18

    def __post_init__(self) -> None:
        bounds = (self.critical, self.high, self.medium, self.review)
        if not all(0.0 < b <= 1.0 for b in bounds):
            raise ValueError("risk thresholds must lie in (0, 1]")
        if not all(a > b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                "risk thresholds must descend strictly: "
                f"critical={self.critical} high={self.high} "
                f"medium={self.medium} review={self.review}")

    def tier_for(self, score: float) -> Tuple[str, str]:
        """``(tier, action)`` for a risk score in [0, 1]."""
        if score >= self.critical:
            return "critical", TIER_ACTIONS["critical"]
        if score >= self.high:
            return "high", TIER_ACTIONS["high"]
        if score >= self.medium:
            return "medium", TIER_ACTIONS["medium"]
        if score >= self.review:
            return "review", TIER_ACTIONS["review"]
        return "low", TIER_ACTIONS["low"]
