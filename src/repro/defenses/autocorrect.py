"""Typo-correction for email input fields (paper §8, "Possible defenses").

The paper suggests integrating typo correction "into any input field: at
SMTP setup phase, registrations, email recipient, or when giving contact
information in online forms".  This module is that tool: given a typed
email address (or bare domain), decide whether the domain is probably a
typo of a well-known mail domain and, if so, suggest the correction.

The scoring mirrors the study's own findings about which mistakes real
users make: DL-1 closeness is necessary; fat-finger (adjacent-key)
mistakes and visually-confusable edits are *more* likely to be accidental;
deletion/transposition mistakes are the most frequent types (Figure 9);
and the more popular the candidate target, the more likely the intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.distances import classify_edit, visual_distance
from repro.core.targets import EMAIL_TARGETS, TargetDomain
from repro.core.typogen import TypoGenerator, split_domain

__all__ = ["Suggestion", "TypoCorrector"]

#: Edit-type priors from Figure 9 (deletion/transposition dominate).
_EDIT_TYPE_PRIOR = {
    "deletion": 1.0,
    "transposition": 0.9,
    "substitution": 0.45,
    "addition": 0.25,
}


@dataclass(frozen=True)
class Suggestion:
    """A proposed correction with its confidence in [0, 1]."""

    typed: str
    suggested: str
    confidence: float
    edit_type: str

    def render(self) -> str:
        """A user-facing did-you-mean line."""
        return f"did you mean {self.suggested!r}? (typed {self.typed!r})"


class TypoCorrector:
    """Suggests corrections for likely-mistyped mail domains.

    Parameters
    ----------
    known_domains:
        The protected domain list; defaults to the study's target list.
    whitelist:
        Domains that must never be "corrected" even though they sit at
        DL-1 of a protected domain — the deployment knob that protects
        legitimate look-alike businesses from being rewritten away.
    threshold:
        Minimum confidence to emit a suggestion.
    """

    def __init__(self, known_domains: Optional[Iterable[str]] = None,
                 whitelist: Iterable[str] = (),
                 threshold: float = 0.25) -> None:
        if known_domains is None:
            self._targets: List[Tuple[str, float]] = [
                (t.name, t.email_share) for t in EMAIL_TARGETS]
        else:
            domains = list(known_domains)
            weight = 1.0 / max(1, len(domains))
            self._targets = [(d.lower(), weight) for d in domains]
        self._known = {name for name, _ in self._targets}
        self._whitelist = {d.lower() for d in whitelist}
        self._generator = TypoGenerator()
        self.threshold = threshold

    # -- public API ----------------------------------------------------------

    def check_address(self, address: str) -> Optional[Suggestion]:
        """Check ``user@domain``; returns a suggestion or None."""
        if "@" not in address:
            raise ValueError(f"not an email address: {address!r}")
        local, _, domain = address.rpartition("@")
        suggestion = self.check_domain(domain)
        if suggestion is None:
            return None
        return Suggestion(
            typed=address,
            suggested=f"{local}@{suggestion.suggested}",
            confidence=suggestion.confidence,
            edit_type=suggestion.edit_type,
        )

    def check_domain(self, domain: str) -> Optional[Suggestion]:
        """Check a bare domain; returns the best suggestion or None."""
        domain = domain.strip().lower().rstrip(".")
        if not domain or "." not in domain:
            return None
        if domain in self._known or domain in self._whitelist:
            return None

        best: Optional[Suggestion] = None
        for target, popularity in self._targets:
            candidate = self._score(domain, target, popularity)
            if candidate is None:
                continue
            if best is None or candidate.confidence > best.confidence:
                best = candidate
        if best is not None and best.confidence >= self.threshold:
            return best
        return None

    def suggestions(self, domain: str, limit: int = 3) -> List[Suggestion]:
        """All plausible corrections, best first (for UI pickers)."""
        domain = domain.strip().lower().rstrip(".")
        if domain in self._known or domain in self._whitelist:
            return []
        out = []
        for target, popularity in self._targets:
            candidate = self._score(domain, target, popularity)
            if candidate is not None and candidate.confidence >= self.threshold:
                out.append(candidate)
        out.sort(key=lambda s: -s.confidence)
        return out[:limit]

    # -- scoring ------------------------------------------------------------------

    def _score(self, domain: str, target: str,
               popularity: float) -> Optional[Suggestion]:
        try:
            typed_label, typed_tld = split_domain(domain)
            target_label, target_tld = split_domain(target)
        except ValueError:
            return None
        if typed_tld != target_tld:
            return None
        edit = classify_edit(target_label, typed_label)
        if edit is None:
            return None
        edit_type, _ = edit

        prior = _EDIT_TYPE_PRIOR.get(edit_type, 0.3)
        # invisible edits are the ones users actually make and miss
        visual = visual_distance(target_label, typed_label)
        visibility_factor = 1.0 / (1.0 + visual)
        # popularity prior: normalise against the most popular target
        top_share = max(share for _, share in self._targets)
        popularity_factor = 0.4 + 0.6 * (popularity / top_share)

        confidence = min(1.0, prior * visibility_factor * popularity_factor)
        return Suggestion(typed=domain, suggested=target,
                          confidence=confidence, edit_type=edit_type)
