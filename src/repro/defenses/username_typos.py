"""Username typosquatting — the paper's declared future work (§8).

"A major limitation of this study is that it only considers domain
typosquatting, and not username typosquatting.  For instance
aliec@gmail.com might receive a lot of email meant for alice@gmail.com.
However, without the collaboration of the email service provider, doing
an analysis of username typosquatting is impossible."

Here we *are* the provider: this module simulates one mail provider's
user base, finds username pairs at DL-1 of each other (collision pairs),
and estimates the intra-provider misdirected volume using the same
Pt/(1-Pc) typing model the domain analysis uses.  Two results mirror the
domain-side findings: short, popular usernames collide far more, and an
attacker registering typo usernames of high-traffic accounts captures
mail at near-zero cost (a mailbox is free, unlike a domain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.distances import classify_edit, visual_distance
from repro.util.rand import SeededRng
from repro.workloads.textgen import FIRST_NAMES, LAST_NAMES

__all__ = ["ProviderUserBase", "UsernameCollision", "find_collisions",
           "estimate_misdirected_volume", "squattable_usernames"]

_USERNAME_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789._"


@dataclass(frozen=True)
class ProviderUser:
    """One mailbox at the simulated provider."""

    username: str
    yearly_inbound: float   # emails addressed to this user per year


@dataclass
class ProviderUserBase:
    """A provider's view of its own user population."""

    domain: str
    users: List[ProviderUser] = field(default_factory=list)

    def usernames(self) -> Set[str]:
        """Every registered username at the provider."""
        return {u.username for u in self.users}

    def __len__(self) -> int:
        return len(self.users)

    @classmethod
    def generate(cls, rng: SeededRng, domain: str, size: int,
                 mean_yearly_inbound: float = 2_000.0) -> "ProviderUserBase":
        """Mint a user base with realistic name-derived usernames.

        Collisions arise naturally: first.last combinations repeat, and
        users disambiguate with digits — putting many accounts at DL-1 of
        each other, exactly the situation the paper worried about.
        """
        users: List[ProviderUser] = []
        seen: Set[str] = set()
        while len(users) < size:
            first = rng.choice(FIRST_NAMES)
            last = rng.choice(LAST_NAMES)
            style = rng.random()
            if style < 0.4:
                name = f"{first}.{last}"
            elif style < 0.7:
                name = f"{first}{last[0]}{rng.randint(1, 99)}"
            else:
                name = f"{first}{rng.randint(1950, 2005)}"
            if name in seen:
                name = f"{name}{rng.randint(0, 9)}"
            if name in seen:
                continue
            seen.add(name)
            # heavy-tailed inbound volume (a few very busy accounts)
            volume = mean_yearly_inbound * rng.lognormal(0.0, 1.0)
            users.append(ProviderUser(username=name, yearly_inbound=volume))
        return cls(domain=domain, users=users)


@dataclass(frozen=True)
class UsernameCollision:
    """Two real accounts one typo apart: mail for one can reach the other."""

    intended: ProviderUser
    neighbour: ProviderUser
    edit_type: str
    visual: float

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.intended.username, self.neighbour.username)


def _deletion_variants(name: str) -> Iterator[str]:
    for i in range(len(name)):
        yield name[:i] + name[i + 1:]


def find_collisions(base: ProviderUserBase,
                    max_pairs: Optional[int] = None) -> List[UsernameCollision]:
    """All ordered DL-1 username pairs within the provider.

    Uses deletion-neighbourhood hashing (two strings are DL-1 only if
    they share a deletion variant or one is a deletion of the other), so
    the pass stays near-linear in the user count rather than quadratic.
    """
    by_variant: Dict[str, List[int]] = {}
    for index, user in enumerate(base.users):
        for variant in set(_deletion_variants(user.username)):
            by_variant.setdefault(variant, []).append(index)
        by_variant.setdefault(user.username, []).append(index)

    candidate_pairs: Set[Tuple[int, int]] = set()
    for indices in by_variant.values():
        if len(indices) < 2:
            continue
        for i in indices:
            for j in indices:
                if i != j:
                    candidate_pairs.add((i, j))

    collisions: List[UsernameCollision] = []
    for i, j in sorted(candidate_pairs):
        intended = base.users[i]
        neighbour = base.users[j]
        edit = classify_edit(intended.username, neighbour.username)
        if edit is None:
            continue
        collisions.append(UsernameCollision(
            intended=intended,
            neighbour=neighbour,
            edit_type=edit[0],
            visual=visual_distance(intended.username, neighbour.username),
        ))
        if max_pairs is not None and len(collisions) >= max_pairs:
            break
    return collisions


def estimate_misdirected_volume(collisions: Sequence[UsernameCollision],
                                base_typo_probability: float = 0.004,
                                correction_floor: float = 0.45) -> float:
    """Yearly intra-provider misdirected email across collision pairs.

    The same E * Pt * (1 - Pc) structure as the domain model: each
    intended account's inbound volume leaks toward its neighbour at the
    typing-mistake rate, attenuated by the (visibility-driven) correction
    probability.
    """
    total = 0.0
    for collision in collisions:
        visibility = min(1.0, collision.visual)
        correction = correction_floor + (0.995 - correction_floor) * visibility
        # one specific neighbour captures a slice of the overall typo mass
        per_neighbour_pt = base_typo_probability / max(
            8, len(collision.intended.username) * 3)
        total += (collision.intended.yearly_inbound
                  * per_neighbour_pt * (1.0 - correction))
    return total


def squattable_usernames(base: ProviderUserBase, top_n: int = 10,
                         ) -> List[Tuple[str, float]]:
    """The attacker's view: unregistered DL-1 neighbours of busy accounts.

    Returns (candidate username, expected yearly capture) for the best
    *available* typo usernames of the provider's highest-volume accounts
    — free to register, unlike domains.
    """
    taken = base.usernames()
    busiest = sorted(base.users, key=lambda u: -u.yearly_inbound)[:top_n * 3]
    out: List[Tuple[str, float]] = []
    seen: Set[str] = set()
    for user in busiest:
        for variant in _deletion_variants(user.username):
            if len(variant) < 3 or variant in taken or variant in seen:
                continue
            seen.add(variant)
            expected = (user.yearly_inbound * 0.004
                        / max(8, len(user.username) * 3) * 0.5)
            out.append((variant, expected))
    out.sort(key=lambda pair: -pair[1])
    return out[:top_n]
