"""Defenses and extensions (paper §8): autocorrect, policy, username typos."""

from repro.defenses.autocorrect import Suggestion, TypoCorrector
from repro.defenses.risktiers import TIER_ACTIONS, TIERS, RiskPolicy
from repro.defenses.policy import (
    LEGITIMATE_PRICE_ELASTICITY,
    SQUATTER_PRICE_ELASTICITY,
    PolicyOutcome,
    break_even_price,
    policy_sweep,
    simulate_price_policy,
)
from repro.defenses.username_typos import (
    ProviderUserBase,
    UsernameCollision,
    estimate_misdirected_volume,
    find_collisions,
    squattable_usernames,
)

__all__ = [
    "TypoCorrector",
    "Suggestion",
    "RiskPolicy",
    "TIER_ACTIONS",
    "TIERS",
    "simulate_price_policy",
    "policy_sweep",
    "break_even_price",
    "PolicyOutcome",
    "SQUATTER_PRICE_ELASTICITY",
    "LEGITIMATE_PRICE_ELASTICITY",
    "ProviderUserBase",
    "UsernameCollision",
    "find_collisions",
    "estimate_misdirected_volume",
    "squattable_usernames",
]
