"""Target-domain selection and the study's registered-domain corpus.

The paper registered 76 typo domains, chosen to (1) target the most popular
email providers so a measurable signal arrives, (2) cover the different
DL-1 mistake types, and (3) separate the three typo-email kinds: plain
receiver typos of provider domains, SMTP-server typos of ISP smtp hosts,
and reflection typos of disposable-address providers.

Twenty-seven of the receiver-typo domains are named in the paper (Figure
5); we pin those exactly and fill the remainder of the 76 according to the
published strategy, so per-domain analyses run over the same corpus shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.typogen import TypoCandidate, TypoGenerator, split_domain

__all__ = [
    "TargetDomain",
    "RegisteredTypoDomain",
    "StudyCorpus",
    "EMAIL_TARGETS",
    "build_study_corpus",
]


@dataclass(frozen=True)
class TargetDomain:
    """A legitimate domain targeted by typosquatters.

    ``alexa_rank`` is the (simulated) Alexa global rank; ``email_share`` is
    the fraction of worldwide email volume its users account for, the knob
    from which expected typo-email volume derives (hypothesis H3: typo
    volume is proportional to target volume).
    """

    name: str
    alexa_rank: int
    email_share: float
    category: str  # provider | isp | financial | disposable | bulk

    @property
    def label(self) -> str:
        return split_domain(self.name)[0]


#: Simulated popularity for the paper's target list.  Ranks loosely follow
#: 2016 Alexa; email shares follow provider market share (gmail dominant,
#: hotmail/outlook next, long tail after).
EMAIL_TARGETS: List[TargetDomain] = [
    TargetDomain("gmail.com", 1, 0.32, "provider"),
    TargetDomain("hotmail.com", 9, 0.14, "provider"),
    TargetDomain("outlook.com", 20, 0.12, "provider"),
    TargetDomain("yahoo.com", 5, 0.10, "provider"),
    TargetDomain("icloud.com", 38, 0.035, "provider"),
    TargetDomain("aol.com", 60, 0.02, "provider"),
    TargetDomain("gmx.com", 1500, 0.008, "provider"),
    TargetDomain("zohomail.com", 900, 0.006, "provider"),
    TargetDomain("rediffmail.com", 1100, 0.005, "provider"),
    TargetDomain("hushmail.com", 22000, 0.0015, "provider"),
    TargetDomain("mailchimp.com", 400, 0.02, "bulk"),
    TargetDomain("sendgrid.com", 1700, 0.015, "bulk"),
    TargetDomain("10minutemail.com", 7000, 0.006, "disposable"),
    TargetDomain("yopmail.com", 6000, 0.009, "disposable"),
    TargetDomain("comcast.net", 250, 0.012, "isp"),
    TargetDomain("verizon.net", 350, 0.010, "isp"),
    TargetDomain("att.net", 450, 0.008, "isp"),
    TargetDomain("cox.net", 800, 0.004, "isp"),
    TargetDomain("twc.com", 1200, 0.003, "isp"),
    TargetDomain("paypal.com", 45, 0.006, "financial"),
    TargetDomain("chase.com", 150, 0.004, "financial"),
]

_TARGETS_BY_NAME: Dict[str, TargetDomain] = {t.name: t for t in EMAIL_TARGETS}


@dataclass(frozen=True)
class RegisteredTypoDomain:
    """One of the study's registered typo domains.

    ``purpose`` mirrors the paper's corpus design: ``receiver`` domains are
    DL-1 typos of provider domains; ``smtp`` domains are typos of ISP SMTP
    host names (e.g. ``smtpverizon.net`` for ``smtp.verizon.net``, and
    missing-dot variants like ``mx4hotmail.com``); ``reflection`` domains
    target disposable-address providers where signup typos concentrate.
    """

    domain: str
    target: str
    purpose: str  # receiver | smtp | reflection
    candidate: Optional[TypoCandidate] = None
    #: the paper §4.3: "Some of our domains might have also been
    #: previously registered, and could still appear in certain
    #: promotional lists" — a residual-spam source the funnel must absorb
    previously_registered: bool = False

    @property
    def target_domain(self) -> Optional[TargetDomain]:
        return _TARGETS_BY_NAME.get(self.target)


#: The 27 receiver-typo domains named in the paper's Figure 5, in the
#: figure's (traffic-ordered) sequence, mapped to their targets.
PAPER_FIGURE5_DOMAINS: List[tuple] = [
    ("ohtlook.com", "outlook.com"),
    ("outlo0k.com", "outlook.com"),
    ("hovmail.com", "hotmail.com"),
    ("gmaiql.com", "gmail.com"),
    ("outmook.com", "outlook.com"),
    ("ho6mail.com", "hotmail.com"),
    ("ouulook.com", "outlook.com"),
    ("oetlook.com", "outlook.com"),
    ("ouvlook.com", "outlook.com"),
    ("o7tlook.com", "outlook.com"),
    ("zohomil.com", "zohomail.com"),
    ("verizo0n.com", "verizon.net"),
    ("comcasu.com", "comcast.net"),
    ("comcas5.com", "comcast.net"),
    ("comaast.com", "comcast.net"),
    ("coicast.com", "comcast.net"),
    ("ou6look.com", "outlook.com"),
    ("verhzon.com", "verizon.net"),
    ("comcawst.com", "comcast.net"),
    ("comca3t.com", "comcast.net"),
    ("evrizon.com", "verizon.net"),
    ("gmai-l.com", "gmail.com"),
    ("ve5izon.com", "verizon.net"),
    ("vebizon.com", "verizon.net"),
    ("vepizon.com", "verizon.net"),
    ("vermzon.com", "verizon.net"),
    ("zohomial.com", "zohomail.com"),
]

#: Additional domains named elsewhere in the paper.
PAPER_EXTRA_DOMAINS: List[tuple] = [
    ("yopail.com", "yopmail.com", "reflection"),       # Figure 6
    ("yopmial.com", "yopmail.com", "reflection"),
    ("10minutemial.com", "10minutemail.com", "reflection"),
    ("10minutemaul.com", "10minutemail.com", "reflection"),
    ("mailchimo.com", "mailchimp.com", "reflection"),
    ("sendgrud.com", "sendgrid.com", "reflection"),
    ("smtpverizon.net", "verizon.net", "smtp"),        # Figure 1
    ("mx4hotmail.com", "hotmail.com", "smtp"),         # Section 4.4.1
]

#: SMTP-typo host names: missing-dot variants of ISP/provider SMTP hosts.
_SMTP_TYPO_SPECS: List[tuple] = [
    ("smtpcomcast.net", "comcast.net"),
    ("smtpatt.net", "att.net"),
    ("smtpcox.net", "cox.net"),
    ("smtptwc.com", "twc.com"),
    ("smtpgmial.com", "gmail.com"),
    ("mailverizon.net", "verizon.net"),
    ("mailcomcast.net", "comcast.net"),
    ("smtppaypal.com", "paypal.com"),
    ("smtpchase.com", "chase.com"),
    ("mxchase.com", "chase.com"),
    ("mxpaypal.com", "paypal.com"),
    ("smtpaol.com", "aol.com"),
    ("smtpgmx.com", "gmx.com"),
    ("smtpyahoo.com", "yahoo.com"),
    ("mx2comcast.net", "comcast.net"),
    ("mx1verizon.net", "verizon.net"),
]

#: Receiver-typo fill domains targeting the remaining providers, following
#: the paper's strategy (mostly FF-1 mistakes of top providers).
_RECEIVER_FILL_SPECS: List[tuple] = [
    ("gmaul.com", "gmail.com"),
    ("gnail.com", "gmail.com"),
    ("gmqil.com", "gmail.com"),
    ("hptmail.com", "hotmail.com"),
    ("hotmaul.com", "hotmail.com"),
    ("hoymail.com", "hotmail.com"),
    ("yshoo.com", "yahoo.com"),
    ("uahoo.com", "yahoo.com"),
    ("yajoo.com", "yahoo.com"),
    ("icliud.com", "icloud.com"),
    ("icoud.com", "icloud.com"),
    ("aoll.com", "aol.com"),
    ("apl.com", "aol.com"),
    ("gmz.com", "gmx.com"),
    ("zohomqil.com", "zohomail.com"),
    ("rediffmsil.com", "rediffmail.com"),
    ("rediffmaik.com", "rediffmail.com"),
    ("hushmaul.com", "hushmail.com"),
    ("hushmsil.com", "hushmail.com"),
    ("comczst.net", "comcast.net"),
    ("verizpn.net", "verizon.net"),
    ("atr.net", "att.net"),
    ("coz.net", "cox.net"),
    ("paypql.com", "paypal.com"),
    ("chsse.com", "chase.com"),
]


@dataclass
class StudyCorpus:
    """The complete registered corpus with purpose-wise views."""

    domains: List[RegisteredTypoDomain] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [d.domain for d in self.domains]
        if len(names) != len(set(names)):
            raise ValueError("duplicate domains in corpus")

    def by_purpose(self, purpose: str) -> List[RegisteredTypoDomain]:
        return [d for d in self.domains if d.purpose == purpose]

    def by_target(self, target: str) -> List[RegisteredTypoDomain]:
        return [d for d in self.domains if d.target == target]

    def domain_names(self) -> List[str]:
        return [d.domain for d in self.domains]

    def lookup(self, domain: str) -> Optional[RegisteredTypoDomain]:
        for d in self.domains:
            if d.domain == domain:
                return d
        return None

    def targets(self) -> List[str]:
        seen: List[str] = []
        for d in self.domains:
            if d.target not in seen:
                seen.append(d.target)
        return seen

    def __len__(self) -> int:
        return len(self.domains)


def _annotate(generator: TypoGenerator, domain: str,
              target: str) -> Optional[TypoCandidate]:
    try:
        return generator.annotate(target, domain)
    except ValueError:
        return None


def build_study_corpus() -> StudyCorpus:
    """Construct the 76-domain study corpus.

    Uses the paper's named domains where available, then fills with the
    strategy-consistent specs above.  Receiver-typo domains get DL-1
    feature annotations; SMTP-typo domains target subdomain-style names
    (missing-dot), which are not DL-1 of the registrable domain and carry
    no candidate annotation.
    """
    generator = TypoGenerator()
    domains: List[RegisteredTypoDomain] = []

    # deterministic subset with a registration history: every third
    # Figure-5 domain was owned before and lingers on old mailing lists
    previously = {name for index, (name, _) in enumerate(PAPER_FIGURE5_DOMAINS)
                  if index % 3 == 0}

    for name, target in PAPER_FIGURE5_DOMAINS:
        domains.append(RegisteredTypoDomain(
            domain=name, target=target, purpose="receiver",
            candidate=_annotate(generator, name, target),
            previously_registered=name in previously))

    for spec in PAPER_EXTRA_DOMAINS:
        name, target, purpose = spec
        domains.append(RegisteredTypoDomain(
            domain=name, target=target, purpose=purpose,
            candidate=_annotate(generator, name, target)))

    for name, target in _SMTP_TYPO_SPECS:
        domains.append(RegisteredTypoDomain(
            domain=name, target=target, purpose="smtp", candidate=None))

    for name, target in _RECEIVER_FILL_SPECS:
        domains.append(RegisteredTypoDomain(
            domain=name, target=target, purpose="receiver",
            candidate=_annotate(generator, name, target)))

    corpus = StudyCorpus(domains=domains)
    if len(corpus) != 76:
        raise AssertionError(
            f"study corpus must contain 76 domains, got {len(corpus)}")
    return corpus
