"""Core typosquatting analysis: distances, typo generation, taxonomy, targets."""

from repro.core.distances import (
    classify_edit,
    damerau_levenshtein,
    fat_finger_distance,
    is_dl1,
    is_ff1,
    visual_distance,
)
from repro.core.keyboard import are_adjacent, key_position, qwerty_adjacency
from repro.core.targets import (
    EMAIL_TARGETS,
    RegisteredTypoDomain,
    StudyCorpus,
    TargetDomain,
    build_study_corpus,
)
from repro.core.taxonomy import (
    DomainClass,
    DomainVerdict,
    TypoEmailKind,
    classify_domain,
)
from repro.core.typogen import DOMAIN_ALPHABET, TypoCandidate, TypoGenerator, split_domain

__all__ = [
    "damerau_levenshtein",
    "is_dl1",
    "fat_finger_distance",
    "is_ff1",
    "visual_distance",
    "classify_edit",
    "qwerty_adjacency",
    "are_adjacent",
    "key_position",
    "TypoGenerator",
    "TypoCandidate",
    "DOMAIN_ALPHABET",
    "split_domain",
    "DomainClass",
    "DomainVerdict",
    "TypoEmailKind",
    "classify_domain",
    "TargetDomain",
    "RegisteredTypoDomain",
    "StudyCorpus",
    "EMAIL_TARGETS",
    "build_study_corpus",
]
