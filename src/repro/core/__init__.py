"""Core typosquatting analysis: distances, typo generation, taxonomy, targets."""

from repro.core.distances import (
    classify_edit,
    clear_distance_caches,
    damerau_levenshtein,
    distance_cache_stats,
    fat_finger_distance,
    is_dl1,
    is_ff1,
    set_distance_caches_enabled,
    visual_distance,
)
from repro.core.keyboard import are_adjacent, key_position, qwerty_adjacency
from repro.core.targets import (
    EMAIL_TARGETS,
    RegisteredTypoDomain,
    StudyCorpus,
    TargetDomain,
    build_study_corpus,
)
from repro.core.taxonomy import (
    DomainClass,
    DomainVerdict,
    TypoEmailKind,
    classify_domain,
)
from repro.core.typogen import (
    DOMAIN_ALPHABET,
    TypoCandidate,
    TypoGenerator,
    clear_typogen_cache,
    set_typogen_cache_enabled,
    split_domain,
    typogen_cache_stats,
)


def set_kernel_caches_enabled(enabled: bool) -> None:
    """Toggle every pure-kernel memoization layer (distances + typogen)."""
    set_distance_caches_enabled(enabled)
    set_typogen_cache_enabled(enabled)


def clear_kernel_caches() -> None:
    """Drop all memoized kernel results (distances + typogen)."""
    clear_distance_caches()
    clear_typogen_cache()


def kernel_cache_stats() -> dict:
    """Hit/miss/size counters for every kernel cache, by cache name."""
    stats = dict(distance_cache_stats())
    stats["typogen_candidates"] = typogen_cache_stats()
    return stats


__all__ = [
    "damerau_levenshtein",
    "is_dl1",
    "fat_finger_distance",
    "is_ff1",
    "visual_distance",
    "classify_edit",
    "qwerty_adjacency",
    "are_adjacent",
    "key_position",
    "TypoGenerator",
    "TypoCandidate",
    "DOMAIN_ALPHABET",
    "split_domain",
    "DomainClass",
    "DomainVerdict",
    "TypoEmailKind",
    "classify_domain",
    "TargetDomain",
    "RegisteredTypoDomain",
    "StudyCorpus",
    "EMAIL_TARGETS",
    "build_study_corpus",
    "set_kernel_caches_enabled",
    "clear_kernel_caches",
    "kernel_cache_stats",
    "set_distance_caches_enabled",
    "clear_distance_caches",
    "distance_cache_stats",
    "set_typogen_cache_enabled",
    "clear_typogen_cache",
    "typogen_cache_stats",
]
