"""Generation of typo domains ("gtypos", paper Sections 3 and 5.1).

Given a target domain, enumerate every DL-1 variation of its registrable
label — additions, deletions, substitutions, and adjacent transpositions —
optionally restricted to fat-finger (QWERTY-adjacent) mistakes, and
annotate each candidate with the features the paper's regression uses:
edit type, edit position, fat-finger distance, and visual distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.core.distances import (
    classify_edit,
    fat_finger_distance,
    visual_distance,
)
from repro.core.keyboard import qwerty_adjacency

__all__ = [
    "TypoCandidate",
    "TypoGenerator",
    "split_domain",
    "DOMAIN_ALPHABET",
    "set_typogen_cache_enabled",
    "clear_typogen_cache",
    "typogen_cache_stats",
]

#: Characters legal in a registrable DNS label (LDH rule, no leading/trailing
#: hyphen — enforced by the generator).
DOMAIN_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-"


def split_domain(domain: str) -> tuple:
    """Split ``label.tld`` into (label, tld); raises for bare labels."""
    domain = domain.lower().rstrip(".")
    if "." not in domain:
        raise ValueError(f"domain {domain!r} has no TLD")
    label, _, tld = domain.rpartition(".")
    if not label or not tld:
        raise ValueError(f"malformed domain {domain!r}")
    return label, tld


# -- candidate memoization ----------------------------------------------------
#
# Candidate enumeration is a pure function of (alphabet, fat_finger_only,
# target): the study harness regenerates the same ~20 target labels for
# every model calibration and every sweep seed.  The cache is shared across
# generator instances, keyed by the generator's configuration, explicitly
# size-bounded, and seed-independent.  ``TypoCandidate`` is frozen, so the
# cached tuples are safe to share; :meth:`TypoGenerator.generate` hands out
# a fresh list each call because callers sort the result in place.

_CANDIDATE_CACHE: dict = {}
_CANDIDATE_CACHE_MAX = 4096
_CANDIDATE_CACHE_ENABLED = True
_CANDIDATE_CACHE_HITS = 0
_CANDIDATE_CACHE_MISSES = 0


def set_typogen_cache_enabled(enabled: bool) -> None:
    """Enable/disable the shared candidate cache (cleared on any toggle)."""
    global _CANDIDATE_CACHE_ENABLED
    _CANDIDATE_CACHE_ENABLED = bool(enabled)
    clear_typogen_cache()


def clear_typogen_cache() -> None:
    """Drop every memoized candidate list."""
    _CANDIDATE_CACHE.clear()


def typogen_cache_stats() -> dict:
    """``{"hits", "misses", "size"}`` for the shared candidate cache."""
    return {"hits": _CANDIDATE_CACHE_HITS,
            "misses": _CANDIDATE_CACHE_MISSES,
            "size": len(_CANDIDATE_CACHE)}


def _valid_label(label: str) -> bool:
    if not label or len(label) > 63:
        return False
    if label[0] == "-" or label[-1] == "-":
        return False
    return all(ch in DOMAIN_ALPHABET for ch in label)


@dataclass(frozen=True)
class TypoCandidate:
    """A generated typo domain with its regression features."""

    domain: str
    target: str
    edit_type: str           # addition | deletion | substitution | transposition
    edit_index: int          # index into the target label
    fat_finger: int          # FF distance (1 when QWERTY-adjacent mistake)
    visual: float            # heuristic visual distance

    @property
    def is_fat_finger(self) -> bool:
        return self.fat_finger == 1

    @property
    def normalized_visual(self) -> float:
        """Visual distance normalised by target label length (paper §6.2)."""
        label, _ = split_domain(self.target)
        return self.visual / max(1, len(label))


class TypoGenerator:
    """Enumerate DL-1 typo candidates of target domains.

    Parameters
    ----------
    alphabet:
        Characters considered for additions/substitutions.
    fat_finger_only:
        When True, only mistakes reachable by a QWERTY slip are generated
        (adjacent-key substitutions/insertions, plus all deletions and
        transpositions, which require no specific geometry).  This mirrors
        the paper's registration strategy ("most of the typo domains we
        generated have a fat-finger distance of one").
    """

    def __init__(self, alphabet: str = DOMAIN_ALPHABET,
                 fat_finger_only: bool = False) -> None:
        self.alphabet = alphabet
        self.fat_finger_only = fat_finger_only

    # -- enumeration -------------------------------------------------------

    def generate(self, target: str) -> List[TypoCandidate]:
        """All distinct DL-1 typo candidates of ``target`` (same TLD)."""
        if not _CANDIDATE_CACHE_ENABLED:
            return self._generate_uncached(target)
        global _CANDIDATE_CACHE_HITS, _CANDIDATE_CACHE_MISSES
        key = (self.alphabet, self.fat_finger_only, target)
        cached = _CANDIDATE_CACHE.get(key)
        if cached is not None:
            _CANDIDATE_CACHE_HITS += 1
            return list(cached)
        _CANDIDATE_CACHE_MISSES += 1
        out = self._generate_uncached(target)
        if len(_CANDIDATE_CACHE) >= _CANDIDATE_CACHE_MAX:
            _CANDIDATE_CACHE.clear()
        _CANDIDATE_CACHE[key] = tuple(out)
        return out

    def _generate_uncached(self, target: str) -> List[TypoCandidate]:
        label, tld = split_domain(target)
        seen: Set[str] = {label}
        out: List[TypoCandidate] = []
        for typo_label, edit_type, index in self._edits(label):
            if typo_label in seen or not _valid_label(typo_label):
                continue
            seen.add(typo_label)
            domain = f"{typo_label}.{tld}"
            out.append(self._candidate(domain, target, edit_type, index,
                                        label, typo_label))
        return out

    def generate_many(self, targets: Iterable[str]) -> List[TypoCandidate]:
        """Typo candidates for a collection of targets, deduplicated.

        When a candidate string is a DL-1 typo of several targets it is
        attributed to the *first* target in iteration order, mirroring how
        a registrant can only serve one squatting purpose per name.
        """
        seen: Set[str] = set()
        out: List[TypoCandidate] = []
        for target in targets:
            for cand in self.generate(target):
                if cand.domain not in seen:
                    seen.add(cand.domain)
                    out.append(cand)
        return out

    def _edits(self, label: str) -> Iterator[tuple]:
        # deletions
        for i in range(len(label)):
            yield label[:i] + label[i + 1:], "deletion", i
        # transpositions of distinct neighbours
        for i in range(len(label) - 1):
            if label[i] != label[i + 1]:
                yield (label[:i] + label[i + 1] + label[i] + label[i + 2:],
                       "transposition", i)
        # substitutions
        for i in range(len(label)):
            choices = self._substitution_chars(label[i])
            for ch in choices:
                if ch != label[i]:
                    yield label[:i] + ch + label[i + 1:], "substitution", i
        # additions
        for i in range(len(label) + 1):
            choices = self._insertion_chars(label, i)
            for ch in choices:
                yield label[:i] + ch + label[i:], "addition", i

    def _substitution_chars(self, original: str) -> Sequence[str]:
        if self.fat_finger_only:
            return sorted(qwerty_adjacency(original) & set(self.alphabet))
        return self.alphabet

    def _insertion_chars(self, label: str, index: int) -> Sequence[str]:
        if not self.fat_finger_only:
            return self.alphabet
        candidates: Set[str] = set()
        if index > 0:
            candidates.add(label[index - 1])
            candidates.update(qwerty_adjacency(label[index - 1]))
        if index < len(label):
            candidates.add(label[index])
            candidates.update(qwerty_adjacency(label[index]))
        return sorted(candidates & set(self.alphabet))

    # -- feature annotation --------------------------------------------------

    def _candidate(self, domain: str, target: str, edit_type: str, index: int,
                   label: str, typo_label: str) -> TypoCandidate:
        ff = fat_finger_distance(label, typo_label, max_interesting=1)
        vis = visual_distance(label, typo_label)
        return TypoCandidate(domain=domain, target=target, edit_type=edit_type,
                             edit_index=index, fat_finger=ff, visual=vis)

    # -- targeted lookups ------------------------------------------------------

    def annotate(self, target: str, typo_domain: str) -> Optional[TypoCandidate]:
        """Annotate an existing domain as a typo of ``target`` (or None)."""
        label, tld = split_domain(target)
        typo_label, typo_tld = split_domain(typo_domain)
        if tld != typo_tld:
            return None
        edit = classify_edit(label, typo_label)
        if edit is None:
            return None
        edit_type, index = edit
        return self._candidate(typo_domain, target, edit_type, index,
                               label, typo_label)
