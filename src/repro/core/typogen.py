"""Generation of typo domains ("gtypos", paper Sections 3 and 5.1).

Given a target domain, enumerate every DL-1 variation of its registrable
label — additions, deletions, substitutions, and adjacent transpositions —
optionally restricted to fat-finger (QWERTY-adjacent) mistakes, and
annotate each candidate with the features the paper's regression uses:
edit type, edit position, fat-finger distance, and visual distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.core.distances import (
    classify_edit,
    fat_finger_for_edit,
    visual_distance_for_edit,
)
from repro.core.keyboard import qwerty_adjacency

__all__ = [
    "TypoCandidate",
    "TypoGenerator",
    "split_domain",
    "public_suffix",
    "registrable_domain",
    "MULTI_LABEL_SUFFIXES",
    "DOMAIN_ALPHABET",
    "EditOp",
    "enumerate_edit_ops",
    "apply_edit",
    "set_typogen_cache_enabled",
    "clear_typogen_cache",
    "typogen_cache_stats",
]

#: Characters legal in a registrable DNS label (LDH rule, no leading/trailing
#: hyphen — enforced by the generator).
DOMAIN_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-"

_DOMAIN_ALPHABET_SET = frozenset(DOMAIN_ALPHABET)

#: Multi-label public suffixes the harness recognises (the ccTLD slice of
#: the Public Suffix List that actually shows up in mail-host names).  A
#: registrable domain is one label below its public suffix, so
#: ``mx1.foo.co.uk`` groups under ``foo.co.uk``, not ``co.uk``.
MULTI_LABEL_SUFFIXES = frozenset({
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
    "com.au", "net.au", "org.au", "co.nz", "org.nz", "net.nz",
    "co.jp", "ne.jp", "or.jp", "ac.jp",
    "com.br", "net.br", "org.br", "com.cn", "net.cn", "com.mx",
    "co.in", "net.in", "co.kr", "com.sg", "com.tr", "co.za",
    "com.ar", "com.hk", "com.tw", "co.th", "com.my", "co.id",
})


def public_suffix(domain: str) -> str:
    """The public suffix of ``domain``: multi-label where recognised."""
    labels = domain.lower().rstrip(".").split(".")
    if len(labels) >= 3 and ".".join(labels[-2:]) in MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-2:])
    return labels[-1]


def registrable_domain(host: str) -> str:
    """The registrable (suffix-plus-one) domain of a host name.

    ``mx1.foo.co.uk`` -> ``foo.co.uk``; ``mx.gmail.com`` -> ``gmail.com``;
    a bare registrable name (or a bare suffix) comes back unchanged.
    """
    host = host.lower().rstrip(".")
    labels = host.split(".")
    suffix = public_suffix(host)
    keep = suffix.count(".") + 2  # suffix labels plus the registrable label
    if len(labels) <= keep:
        return host
    return ".".join(labels[-keep:])


def split_domain(domain: str) -> tuple:
    """Split ``label.suffix`` into (label, suffix); raises for bare labels.

    The suffix is the public suffix (``co.uk``-style multi-label suffixes
    included), so the label is always the registrable label.
    """
    domain = domain.lower().rstrip(".")
    if "." not in domain:
        raise ValueError(f"domain {domain!r} has no TLD")
    suffix = public_suffix(domain)
    label = domain[:-(len(suffix) + 1)]
    if not label or not suffix:
        raise ValueError(f"malformed domain {domain!r}")
    return label, suffix


# -- candidate memoization ----------------------------------------------------
#
# Candidate enumeration is a pure function of (alphabet, fat_finger_only,
# target): the study harness regenerates the same ~20 target labels for
# every model calibration and every sweep seed.  The cache is shared across
# generator instances, keyed by the generator's configuration, explicitly
# size-bounded, and seed-independent.  ``TypoCandidate`` is frozen, so the
# cached tuples are safe to share; :meth:`TypoGenerator.generate` hands out
# a fresh list each call because callers sort the result in place.

_CANDIDATE_CACHE: dict = {}
_CANDIDATE_CACHE_MAX = 4096
_CANDIDATE_CACHE_ENABLED = True
_CANDIDATE_CACHE_HITS = 0
_CANDIDATE_CACHE_MISSES = 0


def set_typogen_cache_enabled(enabled: bool) -> None:
    """Enable/disable the shared candidate cache (cleared on any toggle)."""
    global _CANDIDATE_CACHE_ENABLED
    _CANDIDATE_CACHE_ENABLED = bool(enabled)
    clear_typogen_cache()


def clear_typogen_cache() -> None:
    """Drop every memoized candidate list and zero the hit/miss counters.

    Matches :func:`repro.core.distances.clear_distance_caches`: stats
    describe the run since the last clear, not the process lifetime.
    """
    global _CANDIDATE_CACHE_HITS, _CANDIDATE_CACHE_MISSES
    _CANDIDATE_CACHE.clear()
    _CANDIDATE_CACHE_HITS = 0
    _CANDIDATE_CACHE_MISSES = 0


def typogen_cache_stats() -> dict:
    """``{"hits", "misses", "size"}`` for the shared candidate cache."""
    return {"hits": _CANDIDATE_CACHE_HITS,
            "misses": _CANDIDATE_CACHE_MISSES,
            "size": len(_CANDIDATE_CACHE)}


def _valid_label(label: str) -> bool:
    if not label or len(label) > 63:
        return False
    if label[0] == "-" or label[-1] == "-":
        return False
    return all(ch in _DOMAIN_ALPHABET_SET for ch in label)


# -- the DL-1 edit-operation kernel ------------------------------------------
#
# One DL-1 candidate is fully described by ``(op, index, char)``; the kernel
# enumerates these tuples directly — deduplicated (equal-character runs
# collapse deletions and insertions) and validity-filtered (LDH rule,
# length bounds) — without building a typo string or re-classifying the
# edit.  The paper-scale ecosystem scan walks ~500 of these per ranked
# target and registers almost none of them, so candidate *strings* are only
# materialized for the few that matter.  ``TypoGenerator`` itself is built
# on the same kernel, which keeps the two enumeration orders identical by
# construction (the parity tests compare against a naive reference).

EditOp = tuple  # (op: str, index: int, char: str) — char "" for del/transposition


def apply_edit(label: str, op: str, index: int, char: str = "") -> str:
    """The typo label produced by one DL-1 edit of ``label``."""
    if op == "deletion":
        return label[:index] + label[index + 1:]
    if op == "transposition":
        return (label[:index] + label[index + 1] + label[index]
                + label[index + 2:])
    if op == "substitution":
        return label[:index] + char + label[index + 1:]
    if op == "addition":
        return label[:index] + char + label[index:]
    raise ValueError(f"unknown edit operation {op!r}")


def enumerate_edit_ops(label: str, alphabet: str = DOMAIN_ALPHABET,
                       fat_finger_only: bool = False) -> list:
    """All distinct, valid DL-1 edit ops of ``label``, in generation order.

    Order matches the classic seen-set enumeration: deletions, adjacent
    transpositions, substitutions (position-major, alphabet order), then
    additions — with duplicates (equal-char runs) and labels violating the
    LDH/length rules skipped.  Each entry is ``(op, index, char)``.
    """
    length = len(label)
    if not all(ch in _DOMAIN_ALPHABET_SET for ch in label):
        return _enumerate_edit_ops_strict(label, alphabet, fat_finger_only)
    out: list = []
    append = out.append

    # deletions: dedup to the first index of an equal-character run; the
    # result keeps both end characters unless an end character is removed
    if 2 <= length <= 64:
        for i in range(length):
            if i > 0 and label[i] == label[i - 1]:
                continue  # same string as deleting the previous position
            if i == 0 and label[1] == "-":
                continue
            if i == length - 1 and label[length - 2] == "-":
                continue
            append(("deletion", i, ""))

    if length <= 63:
        # transpositions of distinct neighbours
        for i in range(length - 1):
            if label[i] == label[i + 1]:
                continue
            if i == 0 and label[1] == "-":
                continue
            if i + 1 == length - 1 and label[i] == "-":
                continue
            append(("transposition", i, ""))

        # substitutions
        for i in range(length):
            original = label[i]
            boundary = i == 0 or i == length - 1
            for ch in _substitution_choices(original, alphabet,
                                            fat_finger_only):
                if ch == original:
                    continue
                if boundary and ch == "-":
                    continue
                append(("substitution", i, ch))

    # additions: dedup inserting ``ch`` into a run of ``ch`` to the first slot
    if length + 1 <= 63:
        for i in range(length + 1):
            choices = _insertion_choices(label, i, alphabet, fat_finger_only)
            for ch in choices:
                if i > 0 and label[i - 1] == ch:
                    continue  # same string as inserting one slot earlier
                if (i == 0 or i == length) and ch == "-":
                    continue
                append(("addition", i, ch))
    return out


def _enumerate_edit_ops_strict(label: str, alphabet: str,
                               fat_finger_only: bool) -> list:
    """Fallback for labels with characters outside the LDH alphabet.

    Builds each candidate string and applies the full validity check, so
    edits that *retain* an illegal character are filtered exactly as the
    seen-set enumeration did.
    """
    out: list = []
    seen = {label}
    for i in range(len(label)):
        _strict_add(out, seen, label, "deletion", i, "")
    for i in range(len(label) - 1):
        if label[i] != label[i + 1]:
            _strict_add(out, seen, label, "transposition", i, "")
    for i in range(len(label)):
        for ch in _substitution_choices(label[i], alphabet, fat_finger_only):
            if ch != label[i]:
                _strict_add(out, seen, label, "substitution", i, ch)
    for i in range(len(label) + 1):
        for ch in _insertion_choices(label, i, alphabet, fat_finger_only):
            _strict_add(out, seen, label, "addition", i, ch)
    return out


def _strict_add(out: list, seen: set, label: str, op: str, index: int,
                char: str) -> None:
    typo = apply_edit(label, op, index, char)
    if typo in seen or not _valid_label(typo):
        return
    seen.add(typo)
    out.append((op, index, char))


def _substitution_choices(original: str, alphabet: str,
                          fat_finger_only: bool):
    if fat_finger_only:
        return sorted(qwerty_adjacency(original) & set(alphabet))
    return alphabet


def _insertion_choices(label: str, index: int, alphabet: str,
                       fat_finger_only: bool):
    if not fat_finger_only:
        return alphabet
    candidates: Set[str] = set()
    if index > 0:
        candidates.add(label[index - 1])
        candidates.update(qwerty_adjacency(label[index - 1]))
    if index < len(label):
        candidates.add(label[index])
        candidates.update(qwerty_adjacency(label[index]))
    return sorted(candidates & set(alphabet))


@dataclass(frozen=True)
class TypoCandidate:
    """A generated typo domain with its regression features."""

    domain: str
    target: str
    edit_type: str           # addition | deletion | substitution | transposition
    edit_index: int          # index into the target label
    fat_finger: int          # FF distance (1 when QWERTY-adjacent mistake)
    visual: float            # heuristic visual distance

    @property
    def is_fat_finger(self) -> bool:
        return self.fat_finger == 1

    @property
    def normalized_visual(self) -> float:
        """Visual distance normalised by target label length (paper §6.2)."""
        label, _ = split_domain(self.target)
        return self.visual / max(1, len(label))


class TypoGenerator:
    """Enumerate DL-1 typo candidates of target domains.

    Parameters
    ----------
    alphabet:
        Characters considered for additions/substitutions.
    fat_finger_only:
        When True, only mistakes reachable by a QWERTY slip are generated
        (adjacent-key substitutions/insertions, plus all deletions and
        transpositions, which require no specific geometry).  This mirrors
        the paper's registration strategy ("most of the typo domains we
        generated have a fat-finger distance of one").
    """

    def __init__(self, alphabet: str = DOMAIN_ALPHABET,
                 fat_finger_only: bool = False) -> None:
        self.alphabet = alphabet
        self.fat_finger_only = fat_finger_only

    # -- enumeration -------------------------------------------------------

    def generate(self, target: str) -> List[TypoCandidate]:
        """All distinct DL-1 typo candidates of ``target`` (same TLD)."""
        if not _CANDIDATE_CACHE_ENABLED:
            return self._generate_uncached(target)
        global _CANDIDATE_CACHE_HITS, _CANDIDATE_CACHE_MISSES
        key = (self.alphabet, self.fat_finger_only, target)
        cached = _CANDIDATE_CACHE.get(key)
        if cached is not None:
            _CANDIDATE_CACHE_HITS += 1
            return list(cached)
        _CANDIDATE_CACHE_MISSES += 1
        out = self._generate_uncached(target)
        if len(_CANDIDATE_CACHE) >= _CANDIDATE_CACHE_MAX:
            _CANDIDATE_CACHE.clear()
        _CANDIDATE_CACHE[key] = tuple(out)
        return out

    def _generate_uncached(self, target: str) -> List[TypoCandidate]:
        label, tld = split_domain(target)
        out: List[TypoCandidate] = []
        for op, index, ch in enumerate_edit_ops(label, self.alphabet,
                                                self.fat_finger_only):
            typo_label = apply_edit(label, op, index, ch)
            out.append(TypoCandidate(
                domain=f"{typo_label}.{tld}", target=target, edit_type=op,
                edit_index=index,
                fat_finger=fat_finger_for_edit(label, op, index, ch),
                visual=visual_distance_for_edit(label, op, index, ch)))
        return out

    def generate_many(self, targets: Iterable[str]) -> List[TypoCandidate]:
        """Typo candidates for a collection of targets, deduplicated.

        When a candidate string is a DL-1 typo of several targets it is
        attributed to the *first* target in iteration order, mirroring how
        a registrant can only serve one squatting purpose per name.
        """
        seen: Set[str] = set()
        out: List[TypoCandidate] = []
        for target in targets:
            for cand in self.generate(target):
                if cand.domain not in seen:
                    seen.add(cand.domain)
                    out.append(cand)
        return out

    # -- targeted lookups ------------------------------------------------------

    def annotate(self, target: str, typo_domain: str) -> Optional[TypoCandidate]:
        """Annotate an existing domain as a typo of ``target`` (or None)."""
        label, tld = split_domain(target)
        typo_label, typo_tld = split_domain(typo_domain)
        if tld != typo_tld:
            return None
        edit = classify_edit(label, typo_label)
        if edit is None:
            return None
        edit_type, index = edit
        if edit_type == "substitution":
            char = typo_label[index]
        elif edit_type == "addition":
            char = typo_label[index]
        else:
            char = ""
        return TypoCandidate(
            domain=typo_domain, target=target, edit_type=edit_type,
            edit_index=index,
            fat_finger=fat_finger_for_edit(label, edit_type, index, char),
            visual=visual_distance_for_edit(label, edit_type, index, char))
