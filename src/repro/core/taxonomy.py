"""Typosquatting taxonomy (paper Section 3).

Two orthogonal taxonomies from the paper:

* **Domains** (after Szurdi et al. 2014): *generated typo domains* (gtypos)
  are lexically-close strings; *candidate typo domains* (ctypos) are the
  registered subset; *typosquatting domains* are ctypos registered by a
  different entity to benefit from traffic meant for the target.

* **Misdirected emails**: *receiver typos* (sender mistyped recipient's
  domain), *reflection typos* (user mistyped their own address when
  registering with a service, which then mails the wrong address), and
  *SMTP typos* (user mistyped the SMTP server name in their mail client so
  all their outgoing mail goes to the squatter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DomainClass",
    "TypoEmailKind",
    "DomainVerdict",
    "classify_domain",
]


class DomainClass(enum.Enum):
    """Lexical/registration status of a domain relative to a target."""

    GENERATED_TYPO = "gtypo"          # lexically close, not necessarily registered
    CANDIDATE_TYPO = "ctypo"          # gtypo that is actually registered
    TYPOSQUATTING = "typosquatting"   # ctypo registered by another entity, for traffic
    LEGITIMATE = "legitimate"         # registered but plausibly an honest name
    UNRELATED = "unrelated"


class TypoEmailKind(enum.Enum):
    """Which user mistake produced a misdirected email."""

    RECEIVER = "receiver"      # sender mistyped recipient domain
    REFLECTION = "reflection"  # victim mistyped own address at signup
    SMTP = "smtp"              # victim mistyped SMTP server in client config
    SPAM = "spam"              # not a typo at all — unsolicited bulk email

    @property
    def is_typo(self) -> bool:
        return self is not TypoEmailKind.SPAM


@dataclass(frozen=True)
class DomainVerdict:
    """Result of classifying a candidate domain against a target."""

    domain: str
    target: Optional[str]
    domain_class: DomainClass
    registered: bool
    same_owner: bool

    @property
    def is_squatting(self) -> bool:
        return self.domain_class is DomainClass.TYPOSQUATTING


def classify_domain(domain: str, target: Optional[str], registered: bool,
                    same_owner_as_target: bool,
                    looks_intentional: bool = True) -> DomainVerdict:
    """Apply the Szurdi et al. taxonomy to one domain.

    Parameters
    ----------
    domain, target:
        The candidate and (when lexically close) the target it resembles;
        ``target=None`` means the name is not close to any target.
    registered:
        Whether the name currently resolves to a registrant.
    same_owner_as_target:
        Whether WHOIS clustering attributes the name to the target's owner
        — defensive registrations are *not* typosquatting.
    looks_intentional:
        Whether the registration appears aimed at capturing the target's
        traffic (as opposed to an honest business that happens to be at
        DL-1 of a popular name).  Upstream heuristics (parking pages, MX
        concentration, bulk registrants) set this flag.
    """
    if target is None:
        return DomainVerdict(domain, None, DomainClass.UNRELATED,
                             registered, same_owner_as_target)
    if not registered:
        return DomainVerdict(domain, target, DomainClass.GENERATED_TYPO,
                             False, False)
    if same_owner_as_target:
        return DomainVerdict(domain, target, DomainClass.LEGITIMATE,
                             True, True)
    if looks_intentional:
        return DomainVerdict(domain, target, DomainClass.TYPOSQUATTING,
                             True, False)
    return DomainVerdict(domain, target, DomainClass.CANDIDATE_TYPO,
                         True, False)
