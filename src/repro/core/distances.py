"""Distance metrics between domain names (paper Section 3).

Three metrics drive the study:

* **Damerau-Levenshtein (DL)** — minimum number of single-character
  insertions, deletions, substitutions, or transpositions of adjacent
  characters.  Typosquatting work conventionally uses DL-1.
* **Fat-finger (FF)** — Moore & Edelman's restriction of the same
  operations to keys adjacent on a QWERTY keyboard.  FF-1 implies DL-1.
* **Visual distance** — a heuristic score of how *visually different* the
  typo looks from the original; confusing ``o`` with ``0`` is far less
  noticeable than confusing ``o`` with ``x``.  The paper finds visual
  distance matters more than keyboard distance for how much traffic a typo
  domain receives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.keyboard import qwerty_adjacency

__all__ = [
    "damerau_levenshtein",
    "is_dl1",
    "fat_finger_distance",
    "fat_finger_for_edit",
    "is_ff1",
    "visual_distance",
    "visual_distance_for_edit",
    "char_visual_cost",
    "position_weight",
    "classify_edit",
    "EditOperation",
    "set_distance_caches_enabled",
    "clear_distance_caches",
    "distance_cache_stats",
]


# -- kernel memoization -------------------------------------------------------
#
# All three metrics are pure functions of their string arguments, so their
# results can be shared across every caller in the process — the typo
# generator recomputes the same fat-finger neighbourhood for each of a
# target's ~500 candidates, and the study/sweep harnesses revisit the same
# ~20 target labels run after run.  Caches are explicit dicts (faster than
# ``functools.lru_cache`` for these tiny keys), size-bounded by wholesale
# clearing when full (eviction order is irrelevant for pure functions), and
# seed-independent.

_CACHE_MAX_ENTRIES = 1 << 16

_FF_NEIGHBOURS_CACHE: Dict[str, Tuple[str, ...]] = {}
_FF_NEIGHBOUR_SET_CACHE: Dict[str, frozenset] = {}
_FF_DISTANCE_CACHE: Dict[Tuple[str, str, int], int] = {}
_VISUAL_CACHE: Dict[Tuple[str, str], float] = {}
_DL_CACHE: Dict[Tuple[str, str], int] = {}

_ALL_CACHES = {
    "ff_neighbours": _FF_NEIGHBOURS_CACHE,
    "ff_neighbour_sets": _FF_NEIGHBOUR_SET_CACHE,
    "ff_distance": _FF_DISTANCE_CACHE,
    "visual": _VISUAL_CACHE,
    "damerau_levenshtein": _DL_CACHE,
}

_CACHES_ENABLED = True
_CACHE_HITS: Dict[str, int] = {name: 0 for name in _ALL_CACHES}
_CACHE_MISSES: Dict[str, int] = {name: 0 for name in _ALL_CACHES}


def set_distance_caches_enabled(enabled: bool) -> None:
    """Enable/disable the kernel caches (cleared on any toggle)."""
    global _CACHES_ENABLED
    _CACHES_ENABLED = bool(enabled)
    clear_distance_caches()


def clear_distance_caches() -> None:
    """Drop every memoized result and zero the hit/miss counters.

    Counters reset alongside the entries so a hit rate computed from
    :func:`distance_cache_stats` always describes the run since the last
    clear, not the whole process lifetime.
    """
    for name, cache in _ALL_CACHES.items():
        cache.clear()
        _CACHE_HITS[name] = 0
        _CACHE_MISSES[name] = 0


def distance_cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{"hits", "misses", "size"}`` counters."""
    return {name: {"hits": _CACHE_HITS[name],
                   "misses": _CACHE_MISSES[name],
                   "size": len(cache)}
            for name, cache in _ALL_CACHES.items()}


def _bounded_store(cache: dict, key, value) -> None:
    if len(cache) >= _CACHE_MAX_ENTRIES:
        cache.clear()
    cache[key] = value


def damerau_levenshtein(a: str, b: str) -> int:
    """Unrestricted Damerau-Levenshtein distance.

    Implements the full (not "optimal string alignment") variant with a
    dynamic program over the alphabet of characters seen, so transposed
    characters can be edited again afterwards.
    """
    if a == b:
        return 0
    if _CACHES_ENABLED:
        cached = _DL_CACHE.get((a, b))
        if cached is not None:
            _CACHE_HITS["damerau_levenshtein"] += 1
            return cached
        _CACHE_MISSES["damerau_levenshtein"] += 1
        result = _damerau_levenshtein_uncached(a, b)
        _bounded_store(_DL_CACHE, (a, b), result)
        return result
    return _damerau_levenshtein_uncached(a, b)


def _damerau_levenshtein_uncached(a: str, b: str) -> int:
    len_a, len_b = len(a), len(b)
    if len_a == 0:
        return len_b
    if len_b == 0:
        return len_a

    max_dist = len_a + len_b
    # last row in which each character was seen in `a`
    last_seen: Dict[str, int] = {}
    # (len_a + 2) x (len_b + 2) table with a sentinel row/column of max_dist
    table = [[max_dist] * (len_b + 2) for _ in range(len_a + 2)]
    for i in range(len_a + 1):
        table[i + 1][1] = i
    for j in range(len_b + 1):
        table[1][j + 1] = j

    for i in range(1, len_a + 1):
        last_match_col = 0
        for j in range(1, len_b + 1):
            row_of_last_match = last_seen.get(b[j - 1], 0)
            col_of_last_match = last_match_col
            if a[i - 1] == b[j - 1]:
                cost = 0
                last_match_col = j
            else:
                cost = 1
            table[i + 1][j + 1] = min(
                table[i][j] + cost,                      # substitution / match
                table[i + 1][j] + 1,                     # insertion
                table[i][j + 1] + 1,                     # deletion
                table[row_of_last_match][col_of_last_match]
                + (i - row_of_last_match - 1) + 1
                + (j - col_of_last_match - 1),           # transposition
            )
        last_seen[a[i - 1]] = i
    return table[len_a + 1][len_b + 1]


def is_dl1(a: str, b: str) -> bool:
    """True when the two strings are at Damerau-Levenshtein distance one."""
    return damerau_levenshtein(a, b) == 1


EditOperation = str  # "addition" | "deletion" | "substitution" | "transposition"


def classify_edit(original: str, typo: str) -> Optional[Tuple[EditOperation, int]]:
    """Classify a DL-1 pair into (operation, index-in-original).

    Returns ``None`` when the pair is not at DL distance exactly one.  The
    index is where the edit happens in ``original`` (for an addition, the
    position in ``original`` *before* which the extra character appears in
    ``typo``).
    """
    if original == typo:
        return None
    len_o, len_t = len(original), len(typo)

    if len_t == len_o + 1:  # addition
        for i in range(len_o + 1):
            if original[:i] + typo[i] + original[i:] == typo:
                return ("addition", i)
        return None
    if len_t == len_o - 1:  # deletion
        for i in range(len_o):
            if original[:i] + original[i + 1:] == typo:
                return ("deletion", i)
        return None
    if len_t == len_o:
        diffs = [i for i in range(len_o) if original[i] != typo[i]]
        if len(diffs) == 1:
            return ("substitution", diffs[0])
        if (len(diffs) == 2 and diffs[1] == diffs[0] + 1
                and original[diffs[0]] == typo[diffs[1]]
                and original[diffs[1]] == typo[diffs[0]]):
            return ("transposition", diffs[0])
        return None
    return None


def fat_finger_distance(a: str, b: str, max_interesting: int = 3) -> int:
    """Fat-finger distance: DL operations restricted to QWERTY-adjacent keys.

    Substitutions must swap QWERTY-adjacent keys; insertions must insert a
    character adjacent to one of its string neighbours (the slip that
    produces doubled/neighbour keys); deletions and transpositions are
    always allowed (dropping or swapping characters needs no specific key
    geometry).  Computed by BFS over the edit graph up to
    ``max_interesting``; beyond that the function returns
    ``max_interesting + 1`` as an "effectively far" sentinel, which keeps
    the metric cheap for the bulk-generation workloads.
    """
    if a == b:
        return 0
    if _CACHES_ENABLED:
        key = (a, b, max_interesting)
        cached = _FF_DISTANCE_CACHE.get(key)
        if cached is not None:
            _CACHE_HITS["ff_distance"] += 1
            return cached
        _CACHE_MISSES["ff_distance"] += 1
        result = _fat_finger_distance_uncached(a, b, max_interesting)
        _bounded_store(_FF_DISTANCE_CACHE, key, result)
        return result
    return _fat_finger_distance_uncached(a, b, max_interesting)


def _fat_finger_distance_uncached(a: str, b: str, max_interesting: int) -> int:
    if max_interesting == 1:
        # depth-1 BFS is exactly a membership test; the set form turns the
        # typo generator's ~500 probes per target label into O(1) lookups
        return 1 if b in _ff_neighbour_set(a) else 2
    frontier = {a}
    seen = {a}
    for depth in range(1, max_interesting + 1):
        next_frontier = set()
        for s in frontier:
            for neighbour in _ff_neighbours(s):
                if neighbour == b:
                    return depth
                if neighbour not in seen and abs(len(neighbour) - len(b)) <= (
                        max_interesting - depth):
                    seen.add(neighbour)
                    next_frontier.add(neighbour)
        frontier = next_frontier
        if not frontier:
            break
    return max_interesting + 1


def _ff_neighbours(s: str):
    """All strings one fat-finger operation away from ``s``.

    Returns an immutable (cacheable) sequence; the BFS in
    :func:`fat_finger_distance` re-visits the same strings constantly, and
    the typo generator probes one root label per candidate batch.
    """
    if _CACHES_ENABLED:
        cached = _FF_NEIGHBOURS_CACHE.get(s)
        if cached is not None:
            _CACHE_HITS["ff_neighbours"] += 1
            return cached
        _CACHE_MISSES["ff_neighbours"] += 1
        result = tuple(_ff_neighbours_uncached(s))
        _bounded_store(_FF_NEIGHBOURS_CACHE, s, result)
        return result
    return _ff_neighbours_uncached(s)


def _ff_neighbour_set(s: str) -> frozenset:
    """The fat-finger neighbourhood of ``s`` as a set, for membership tests."""
    if _CACHES_ENABLED:
        cached = _FF_NEIGHBOUR_SET_CACHE.get(s)
        if cached is None:
            cached = frozenset(_ff_neighbours(s))
            _bounded_store(_FF_NEIGHBOUR_SET_CACHE, s, cached)
        return cached
    return frozenset(_ff_neighbours(s))


def _ff_neighbours_uncached(s: str) -> List[str]:
    out: List[str] = []
    # substitutions by an adjacent key
    for i, ch in enumerate(s):
        for adj in sorted(_adjacent_chars(ch)):
            out.append(s[:i] + adj + s[i + 1:])
    # insertions of a key adjacent to either string-neighbour (or a repeat)
    for i in range(len(s) + 1):
        candidates = set()
        if i > 0:
            candidates.add(s[i - 1])
            candidates.update(_adjacent_chars(s[i - 1]))
        if i < len(s):
            candidates.add(s[i])
            candidates.update(_adjacent_chars(s[i]))
        for ch in sorted(candidates):
            out.append(s[:i] + ch + s[i:])
    # deletions
    for i in range(len(s)):
        out.append(s[:i] + s[i + 1:])
    # transpositions of neighbours
    for i in range(len(s) - 1):
        if s[i] != s[i + 1]:
            out.append(s[:i] + s[i + 1] + s[i] + s[i + 2:])
    return out


def _adjacent_chars(ch: str):
    return qwerty_adjacency(ch)


def is_ff1(a: str, b: str) -> bool:
    """True when the two strings are at fat-finger distance one."""
    edit = classify_edit(a, b) or classify_edit(b, a)
    if edit is None:
        return False
    return fat_finger_distance(a, b, max_interesting=1) == 1


# -- visual distance -------------------------------------------------------

#: Pairs of characters that look nearly identical in common typefaces.
#: Scores are the perceptual cost of the swap: 0 is indistinguishable.
_VISUAL_CONFUSION: Dict[frozenset, float] = {}


def _add_confusions(pairs, cost: float) -> None:
    for a, b in pairs:
        _VISUAL_CONFUSION[frozenset((a, b))] = cost


# Nearly indistinguishable glyph pairs (letter/digit and letter/letter).
_add_confusions([("o", "0"), ("l", "1"), ("i", "1"), ("i", "l"),
                 ("rn", "m"), ("vv", "w")], 0.1)
# Easily confused but distinguishable on inspection.
_add_confusions([("e", "c"), ("a", "o"), ("u", "v"), ("n", "m"),
                 ("g", "q"), ("b", "d"), ("s", "5"), ("b", "8"),
                 ("z", "2"), ("g", "9"), ("q", "9"), ("i", "j"),
                 ("t", "f"), ("h", "b"), ("u", "y")], 0.35)


def _char_visual_cost(a: str, b: str) -> float:
    """Visual cost of substituting ``a`` by ``b`` (both single chars)."""
    if a == b:
        return 0.0
    key = frozenset((a.lower(), b.lower()))
    if key in _VISUAL_CONFUSION:
        return _VISUAL_CONFUSION[key]
    both_digits = a.isdigit() and b.isdigit()
    both_letters = a.isalpha() and b.isalpha()
    if both_digits:
        return 0.8
    if both_letters:
        return 1.0
    # mixing classes (letter vs digit vs punctuation) is the most visible,
    # except for the known confusable pairs handled above
    return 1.4


def visual_distance(original: str, typo: str) -> float:
    """Heuristic visual distance between a target name and its DL-1 typo.

    The paper's heuristic captures two effects: *what* changed (confusable
    glyph swaps are nearly invisible) and *where* (edits in the middle of a
    long name are harder to notice than edits at either end, where readers
    fixate).  For multi-glyph confusions (``rn``/``m``), the digram rule
    applies.  Non-DL-1 pairs get the sum of per-position substitution costs
    as a fallback, so the function is total.
    """
    if original == typo:
        return 0.0
    if _CACHES_ENABLED:
        key = (original, typo)
        cached = _VISUAL_CACHE.get(key)
        if cached is not None:
            _CACHE_HITS["visual"] += 1
            return cached
        _CACHE_MISSES["visual"] += 1
        result = _visual_distance_uncached(original, typo)
        _bounded_store(_VISUAL_CACHE, key, result)
        return result
    return _visual_distance_uncached(original, typo)


def _visual_distance_uncached(original: str, typo: str) -> float:
    digram_cost = _digram_confusion_cost(original, typo)
    edit = classify_edit(original, typo)
    if edit is None:
        # rn<->m style confusions are DL-2 but nearly invisible
        if digram_cost is not None:
            return digram_cost
        # Fallback: align character-wise, charging length difference fully.
        base = sum(_char_visual_cost(a, b) for a, b in zip(original, typo))
        return base + 1.2 * abs(len(original) - len(typo))

    op, index = edit
    position_weight = _position_weight(index, len(original))

    if op == "substitution":
        cost = _char_visual_cost(original[index], typo[index])
    elif op == "transposition":
        # Swapped neighbours barely change the word shape.
        cost = 0.5
    elif op == "deletion":
        removed = original[index]
        doubled = (index + 1 < len(original)
                   and original[index + 1] == removed) or (
                       index > 0 and original[index - 1] == removed)
        cost = 0.3 if doubled else 0.9
        # deleting a character out of "rn" might leave something that reads
        # the same; handled by the digram table below
    else:  # addition
        added = typo[index]
        doubles = (index < len(original) and original[index] == added) or (
            index > 0 and original[index - 1] == added)
        cost = 0.3 if doubles else 1.0

    # Digram confusions: check whether the edit produced an rn<->m style swap.
    if digram_cost is not None:
        cost = min(cost, digram_cost)

    return cost * position_weight


# The handful of multi-glyph confusions (rn/m, vv/w), extracted once from
# the confusion table so the per-call loop doesn't re-sort every pair.
_DIGRAM_CONFUSIONS: Tuple[Tuple[str, str, float], ...] = tuple(
    (items[0], items[1], pair_cost)
    for pair, pair_cost in _VISUAL_CONFUSION.items()
    for items in (sorted(pair, key=len),)
    if len(items) == 2 and len(items[0]) != len(items[1]))


def _digram_confusion_cost(original: str, typo: str) -> Optional[float]:
    for short, long, pair_cost in _DIGRAM_CONFUSIONS:
        if original.replace(long, short) == typo or typo.replace(long, short) == original:
            return pair_cost
        if original.replace(short, long) == typo or typo.replace(short, long) == original:
            return pair_cost
    return None


def _position_weight(index: int, length: int) -> float:
    """Weight edits by position: first/last characters are most visible."""
    if length <= 1:
        return 1.0
    if index == 0:
        return 1.3
    if index >= length - 1:
        return 1.15
    # Interior positions: mild bowl shape, minimum mid-word.
    rel = index / (length - 1)
    return 0.85 + 0.3 * abs(rel - 0.5)


def position_weight(index: int, length: int) -> float:
    """Public form of the positional visibility weight (paper §3)."""
    return _position_weight(index, length)


def char_visual_cost(a: str, b: str) -> float:
    """Public form of the single-character substitution cost table."""
    return _char_visual_cost(a, b)


# -- direct per-edit kernels --------------------------------------------------
#
# When the caller already knows *which* DL-1 edit produced a typo (the typo
# generator does), the general metrics above waste most of their time
# rediscovering it: ``visual_distance`` re-classifies the edit and probes
# the digram table, ``fat_finger_distance`` materializes the whole
# neighbourhood of the source string.  These kernels compute the identical
# values straight from ``(operation, index, char)``.  The digram confusions
# (rn/m, vv/w) change string length by the number of occurrences replaced,
# which no single DL-1 edit can reproduce, so they never apply to generated
# candidates — an equivalence the typo-generator parity tests pin down.


def visual_distance_for_edit(label: str, op: EditOperation, index: int,
                             char: str = "") -> float:
    """``visual_distance(label, typo)`` for a known DL-1 edit of ``label``.

    ``char`` is the substituted/inserted character (ignored for deletions
    and transpositions).  ``index`` follows :func:`classify_edit`: the
    position of the edit in ``label`` (for additions, the position the new
    character is inserted *before*, in ``0..len(label)``).
    """
    length = len(label)
    if op == "substitution":
        cost = _char_visual_cost(label[index], char)
    elif op == "transposition":
        cost = 0.5
    elif op == "deletion":
        removed = label[index]
        doubled = (index + 1 < length and label[index + 1] == removed) or (
            index > 0 and label[index - 1] == removed)
        cost = 0.3 if doubled else 0.9
    elif op == "addition":
        doubles = (index < length and label[index] == char) or (
            index > 0 and label[index - 1] == char)
        cost = 0.3 if doubles else 1.0
    else:
        raise ValueError(f"unknown edit operation {op!r}")
    return cost * _position_weight(index, length)


def fat_finger_for_edit(label: str, op: EditOperation, index: int,
                        char: str = "") -> int:
    """``fat_finger_distance(label, typo, max_interesting=1)`` for a known edit.

    Mirrors :func:`_ff_neighbours_uncached`: deletions and transpositions
    need no key geometry (always distance 1); substitutions must swap
    QWERTY-adjacent keys; insertions must repeat a string-neighbour or hit
    a key adjacent to one.
    """
    if op in ("deletion", "transposition"):
        return 1
    if op == "substitution":
        return 1 if char in qwerty_adjacency(label[index]) else 2
    if op == "addition":
        if index > 0 and (char == label[index - 1]
                          or char in qwerty_adjacency(label[index - 1])):
            return 1
        if index < len(label) and (char == label[index]
                                   or char in qwerty_adjacency(label[index])):
            return 1
        return 2
    raise ValueError(f"unknown edit operation {op!r}")
