"""QWERTY keyboard geometry.

The paper's fat-finger distance (after Moore & Edelman) restricts the usual
edit operations to *letters adjacent on a QWERTY keyboard*.  This module
models the physical layout once so both the distance metric and the typo
generators agree on adjacency.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

__all__ = ["QWERTY_ROWS", "qwerty_adjacency", "are_adjacent", "key_position"]

#: Physical rows with their horizontal stagger (row offset in key-widths).
#: The digit row sits above the top letter row; offsets approximate a
#: standard ANSI keyboard.
QWERTY_ROWS: List[Tuple[str, float]] = [
    ("1234567890-", 0.0),
    ("qwertyuiop", 0.5),
    ("asdfghjkl", 0.75),
    ("zxcvbnm", 1.25),
]

_POSITIONS: Dict[str, Tuple[float, float]] = {}
for _row_index, (_row, _offset) in enumerate(QWERTY_ROWS):
    for _col, _ch in enumerate(_row):
        _POSITIONS[_ch] = (_row_index, _offset + _col)


def key_position(char: str) -> Tuple[float, float]:
    """(row, column) of a key; raises KeyError for unknown characters."""
    return _POSITIONS[char.lower()]


def _build_adjacency() -> Dict[str, FrozenSet[str]]:
    adjacency: Dict[str, set] = {ch: set() for ch in _POSITIONS}
    for a, (row_a, col_a) in _POSITIONS.items():
        for b, (row_b, col_b) in _POSITIONS.items():
            if a == b:
                continue
            row_diff = abs(row_a - row_b)
            col_diff = abs(col_a - col_b)
            if row_diff == 0 and col_diff <= 1.0:
                adjacency[a].add(b)
            elif row_diff == 1 and col_diff <= 1.0:
                adjacency[a].add(b)
    return {ch: frozenset(neigh) for ch, neigh in adjacency.items()}


_ADJACENCY: Dict[str, FrozenSet[str]] = _build_adjacency()


def qwerty_adjacency(char: str) -> FrozenSet[str]:
    """The set of keys physically adjacent to ``char`` (empty if unknown)."""
    return _ADJACENCY.get(char.lower(), frozenset())


def are_adjacent(a: str, b: str) -> bool:
    """True when the two keys neighbour each other on a QWERTY keyboard."""
    return b.lower() in qwerty_adjacency(a)
