"""Email tokenisation (paper Fig. 2, "Tokenize e-mail" stage).

Splits a received message into the three parts the pipeline treats
differently: header metadata (kept as structured fields), the body text,
and the attachments (handed to text extraction).  The tokenizer is also
where ZIP/RAR attachments are flagged — the paper discards those outright
during filtering because every one they inspected was spam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.smtpsim.message import Attachment, EmailMessage

__all__ = ["HeaderMetadata", "TokenizedEmail", "tokenize"]

#: Attachment extensions that the filtering step treats as spam outright.
ARCHIVE_EXTENSIONS = frozenset({"zip", "rar"})


@dataclass(frozen=True)
class HeaderMetadata:
    """The header fields the filtering layers inspect."""

    from_field: Optional[str]
    to_field: Optional[str]
    subject: str
    reply_to: Optional[str]
    return_path: Optional[str]
    sender_field: Optional[str]
    list_unsubscribe: Optional[str]
    received_chain: tuple
    envelope_from: Optional[str]
    envelope_to: tuple
    received_by_ip: Optional[str]
    received_at: float


@dataclass
class TokenizedEmail:
    """A tokenised message: metadata + body + attachments."""

    metadata: HeaderMetadata
    body: str
    attachments: List[Attachment] = field(default_factory=list)
    original: Optional[EmailMessage] = None

    @property
    def has_archive_attachment(self) -> bool:
        return any(a.extension in ARCHIVE_EXTENSIONS for a in self.attachments)

    @property
    def attachment_extensions(self) -> List[str]:
        return [a.extension for a in self.attachments]


def tokenize(message: EmailMessage) -> TokenizedEmail:
    """Tokenise one received message."""
    metadata = HeaderMetadata(
        from_field=message.get_header("From"),
        to_field=message.get_header("To"),
        subject=message.subject,
        reply_to=message.get_header("Reply-To"),
        return_path=message.get_header("Return-Path"),
        sender_field=message.get_header("Sender"),
        list_unsubscribe=message.get_header("List-Unsubscribe"),
        received_chain=tuple(message.get_all_headers("Received")),
        envelope_from=message.envelope_from,
        envelope_to=tuple(message.envelope_to),
        received_by_ip=message.received_by_ip,
        received_at=message.received_at,
    )
    return TokenizedEmail(
        metadata=metadata,
        body=message.body,
        attachments=list(message.attachments),
        original=message,
    )
