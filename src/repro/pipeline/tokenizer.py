"""Email tokenisation (paper Fig. 2, "Tokenize e-mail" stage).

Splits a received message into the three parts the pipeline treats
differently: header metadata (kept as structured fields), the body text,
and the attachments (handed to text extraction).  The tokenizer is also
where ZIP/RAR attachments are flagged — the paper discards those outright
during filtering because every one they inspected was spam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.smtpsim.message import Attachment, EmailMessage

__all__ = ["HeaderMetadata", "TokenizedEmail", "tokenize"]

#: Attachment extensions that the filtering step treats as spam outright.
ARCHIVE_EXTENSIONS = frozenset({"zip", "rar"})


@dataclass(frozen=True)
class HeaderMetadata:
    """The header fields the filtering layers inspect."""

    from_field: Optional[str]
    to_field: Optional[str]
    subject: str
    reply_to: Optional[str]
    return_path: Optional[str]
    sender_field: Optional[str]
    list_unsubscribe: Optional[str]
    received_chain: tuple
    envelope_from: Optional[str]
    envelope_to: tuple
    received_by_ip: Optional[str]
    received_at: float


@dataclass
class TokenizedEmail:
    """A tokenised message: metadata + body + attachments."""

    metadata: HeaderMetadata
    body: str
    attachments: List[Attachment] = field(default_factory=list)
    original: Optional[EmailMessage] = None

    @property
    def has_archive_attachment(self) -> bool:
        return any(a.extension in ARCHIVE_EXTENSIONS for a in self.attachments)

    @property
    def attachment_extensions(self) -> List[str]:
        return [a.extension for a in self.attachments]

    # -- canonical dict (study-checkpoint persistence) ----------------------

    def to_canonical_dict(self) -> Dict:
        """JSON-ready projection of the token, back-reference included.

        ``original`` is ``None`` in bounded-memory mode (the raw message
        was released when the summary was taken); when retained it rides
        along via :meth:`EmailMessage.to_canonical_dict`, so either
        memory mode round-trips losslessly.
        """
        import base64

        meta = self.metadata
        return {
            "metadata": {
                "from_field": meta.from_field,
                "to_field": meta.to_field,
                "subject": meta.subject,
                "reply_to": meta.reply_to,
                "return_path": meta.return_path,
                "sender_field": meta.sender_field,
                "list_unsubscribe": meta.list_unsubscribe,
                "received_chain": list(meta.received_chain),
                "envelope_from": meta.envelope_from,
                "envelope_to": list(meta.envelope_to),
                "received_by_ip": meta.received_by_ip,
                "received_at": meta.received_at,
            },
            "body": self.body,
            "attachments": [
                {"filename": a.filename,
                 "content": base64.b64encode(a.content).decode("ascii"),
                 "content_type": a.content_type}
                for a in self.attachments],
            "original": (self.original.to_canonical_dict()
                         if self.original is not None else None),
        }

    @classmethod
    def from_canonical_dict(cls, data: Dict) -> "TokenizedEmail":
        import base64

        meta = data["metadata"]
        metadata = HeaderMetadata(
            from_field=meta["from_field"],
            to_field=meta["to_field"],
            subject=meta["subject"],
            reply_to=meta["reply_to"],
            return_path=meta["return_path"],
            sender_field=meta["sender_field"],
            list_unsubscribe=meta["list_unsubscribe"],
            received_chain=tuple(meta["received_chain"]),
            envelope_from=meta["envelope_from"],
            envelope_to=tuple(meta["envelope_to"]),
            received_by_ip=meta["received_by_ip"],
            received_at=meta["received_at"],
        )
        original = data["original"]
        return cls(
            metadata=metadata,
            body=data["body"],
            attachments=[
                Attachment(filename=entry["filename"],
                           content=base64.b64decode(entry["content"]),
                           content_type=entry["content_type"])
                for entry in data["attachments"]],
            original=(EmailMessage.from_canonical_dict(original)
                      if original is not None else None),
        )


#: headers whose *first* value the metadata keeps
_FIRST_VALUE_HEADERS = frozenset({
    "from", "to", "subject", "reply-to", "return-path",
    "sender", "list-unsubscribe",
})


def tokenize(message: EmailMessage,
             retain_original: bool = True) -> TokenizedEmail:
    """Tokenise one received message.

    One pass over the header list collects every field the metadata
    needs (the accessor-per-field version rescanned the list eight
    times).  ``retain_original=False`` drops the back-reference to the
    raw message so the bounded-memory streaming classifier can release
    it once the summary is taken.
    """
    first: Dict[str, str] = {}
    received = []
    keep_first = first.setdefault
    wanted = _FIRST_VALUE_HEADERS
    for key, value in message.headers:
        lowered = key.lower()
        if lowered == "received":
            received.append(value)
        elif lowered in wanted:
            keep_first(lowered, value)
    get = first.get
    # the frozen dataclass __init__ pays one object.__setattr__ per field;
    # on the classify hot path that is measurable, so fill __dict__ directly
    # (repr/eq/hash behaviour is unchanged — only construction is bypassed)
    metadata = HeaderMetadata.__new__(HeaderMetadata)
    metadata.__dict__.update({
        "from_field": get("from"),
        "to_field": get("to"),
        "subject": get("subject") or "",
        "reply_to": get("reply-to"),
        "return_path": get("return-path"),
        "sender_field": get("sender"),
        "list_unsubscribe": get("list-unsubscribe"),
        "received_chain": tuple(received),
        "envelope_from": message.envelope_from,
        "envelope_to": tuple(message.envelope_to),
        "received_by_ip": message.received_by_ip,
        "received_at": message.received_at,
    })
    tok = TokenizedEmail.__new__(TokenizedEmail)
    tok.__dict__ = {
        "metadata": metadata,
        "body": message.body,
        "attachments": list(message.attachments),
        "original": message if retain_original else None,
    }
    return tok
