"""Email processing pipeline: tokenize, extract, scrub, encrypt (paper Fig. 2)."""

from repro.pipeline.extraction import (
    SUPPORTED_EXTENSIONS,
    ExtractionError,
    extract_text,
)
from repro.pipeline.processor import (
    EmailProcessor,
    ProcessedAttachment,
    ProcessedEmail,
)
from repro.pipeline.sensitive import (
    SENTINEL,
    ScrubResult,
    SensitiveMatch,
    SensitiveScrubber,
    card_brand,
    luhn_valid,
)
from repro.pipeline.tokenizer import (
    ARCHIVE_EXTENSIONS,
    HeaderMetadata,
    TokenizedEmail,
    tokenize,
)

__all__ = [
    "tokenize",
    "TokenizedEmail",
    "HeaderMetadata",
    "ARCHIVE_EXTENSIONS",
    "extract_text",
    "ExtractionError",
    "SUPPORTED_EXTENSIONS",
    "SensitiveScrubber",
    "SensitiveMatch",
    "ScrubResult",
    "SENTINEL",
    "luhn_valid",
    "card_brand",
    "EmailProcessor",
    "ProcessedEmail",
    "ProcessedAttachment",
]
