"""Text extraction from attachments (paper Fig. 2, Textract stage).

The real study ran Textract, which understands dozens of formats and even
performs OCR on images.  Our simulated attachments carry their payload in
a light container format per extension, and this module is the *only*
component that knows how to open each container — exactly the role
Textract plays.  Unknown binary formats yield no text (but no error), and
image formats go through a pretend-OCR that recovers embedded text marked
by the workload generators.

Container conventions (produced by :mod:`repro.workloads`):

* ``txt``/``ics``/``xml``/``html``/``rtf`` — text, possibly with markup.
* ``pdf``  — ``%PDF-SIM\\n`` header followed by page text.
* ``docx``/``docm``/``pptx`` — ``PK-OOXML\\n`` header followed by XML-ish
  paragraphs ``<w:t>...</w:t>``.
* ``xls``/``xlsx`` — ``XLS-SIM\\n`` header, one cell per line ``A1=value``.
* ``jpg``/``jpeg``/``png``/``gif`` — binary-ish blob; OCR-able text appears
  after an ``OCR:`` marker (absent marker = picture with no text).
* ``zip``/``rar`` — opaque archives; extraction refuses them (the
  filtering pipeline has already discarded these as spam).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.smtpsim.message import Attachment

__all__ = ["extract_text", "ExtractionError", "SUPPORTED_EXTENSIONS"]


class ExtractionError(ValueError):
    """Raised for containers extraction must not open (archives)."""


_PLAIN_TEXT = {"txt", "ics", "csv", "log", "eml"}
_MARKUP = {"html", "htm", "xml", "rtf"}
_PDF = {"pdf"}
_OOXML = {"docx", "docm", "doc", "pptx"}
_SHEET = {"xls", "xlsx", "xlsm"}
_IMAGE = {"jpg", "jpeg", "png", "gif", "bmp", "tiff"}
_ARCHIVE = {"zip", "rar"}

SUPPORTED_EXTENSIONS = frozenset(
    _PLAIN_TEXT | _MARKUP | _PDF | _OOXML | _SHEET | _IMAGE)

_TAG_RE = re.compile(r"<[^>]+>")
_OOXML_TEXT_RE = re.compile(r"<w:t>(.*?)</w:t>", re.DOTALL)


def extract_text(attachment: Attachment) -> Optional[str]:
    """Extract readable text from an attachment.

    Returns ``None`` when the format holds no recoverable text (e.g. an
    image without OCR-able content, or an unknown binary format) and
    raises :class:`ExtractionError` for archives.
    """
    extension = attachment.extension
    if extension in _ARCHIVE:
        raise ExtractionError(
            f"refusing to open archive attachment {attachment.filename!r}")

    try:
        raw = attachment.content.decode("utf-8")
    except UnicodeDecodeError:
        raw = attachment.content.decode("utf-8", errors="ignore")

    if extension in _PLAIN_TEXT:
        return raw
    if extension in _MARKUP:
        return _TAG_RE.sub(" ", raw)
    if extension in _PDF:
        return _strip_container_header(raw, "%PDF-SIM")
    if extension in _OOXML:
        body = _strip_container_header(raw, "PK-OOXML")
        if body is None:
            return None
        paragraphs = _OOXML_TEXT_RE.findall(body)
        return "\n".join(paragraphs) if paragraphs else _TAG_RE.sub(" ", body)
    if extension in _SHEET:
        body = _strip_container_header(raw, "XLS-SIM")
        if body is None:
            return None
        cells = []
        for line in body.splitlines():
            _, _, value = line.partition("=")
            if value:
                cells.append(value)
        return "\n".join(cells)
    if extension in _IMAGE:
        return _simulated_ocr(raw)
    # unknown format: Textract gives up silently
    return None


def _strip_container_header(raw: str, marker: str) -> Optional[str]:
    if not raw.startswith(marker):
        return None
    _, _, body = raw.partition("\n")
    return body


def _simulated_ocr(raw: str) -> Optional[str]:
    """OCR stand-in: recover text after an ``OCR:`` marker, if present."""
    marker = "OCR:"
    position = raw.find(marker)
    if position == -1:
        return None
    return raw[position + len(marker):].strip()
