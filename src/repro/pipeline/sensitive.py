"""Sensitive-information detection and scrubbing (paper Fig. 2 + Table 2).

The study's IRB protocol demanded that personal identifiers be removed
*before* storage: identifiers are replaced by salted hashes wrapped in the
paper's ``*_|R|_*`` sentinel, and, as a final safety net, every remaining
digit in the text is zeroed (the paper's filtered example shows "Book us 0
rooms" for "Book us 3 rooms").

Detectors cover the HIPAA identifier list as instantiated in Table 2:
credit card numbers (Luhn-validated, with brand classification — Figure 6
breaks card findings down by brand), Social Security numbers, Employer
Identification numbers, passwords, Vehicle Identification numbers,
usernames, ZIP codes, generic identification numbers, email addresses,
phone numbers, and dates.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Pattern, Sequence, Tuple

from repro.util.textcache import BoundedMemo

__all__ = [
    "SensitiveKind",
    "SensitiveMatch",
    "ScrubResult",
    "SensitiveScrubber",
    "luhn_valid",
    "card_brand",
    "SENTINEL",
]

SENTINEL = "*_|R|_*"

#: Identifier kinds, in match-priority order (earlier wins on overlap).
SENSITIVE_KINDS = (
    "creditcard",
    "ssn",
    "ein",
    "vin",
    "phone",
    "date",
    "email",
    "zip",
    "password",
    "username",
    "idnumber",
)

SensitiveKind = str


def luhn_valid(digits: str) -> bool:
    """Luhn checksum over a string of decimal digits."""
    if not digits.isdigit() or len(digits) < 12:
        return False
    total = 0
    for index, char in enumerate(reversed(digits)):
        value = int(char)
        if index % 2 == 1:
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return total % 10 == 0


def card_brand(digits: str) -> Optional[str]:
    """Classify a PAN into its network by IIN prefix (Figure 6 labels)."""
    if digits.startswith("4") and len(digits) in (13, 16, 19):
        return "visa"
    if (digits[:2] in ("51", "52", "53", "54", "55")
            or (len(digits) >= 4 and "2221" <= digits[:4] <= "2720")) \
            and len(digits) == 16:
        return "mastercard"
    if digits[:2] in ("34", "37") and len(digits) == 15:
        return "amex"
    if len(digits) == 16 and digits[:4].isdigit() and 3528 <= int(digits[:4]) <= 3589:
        return "jcb"
    if (digits[:3] in ("300", "301", "302", "303", "304", "305")
            or digits[:2] in ("36", "38")) and len(digits) in (14, 16):
        return "dinersclub"
    if digits.startswith("6011") or digits[:2] == "65":
        return "discover"
    return None


@dataclass(frozen=True)
class SensitiveMatch:
    """One identifier found in a text."""

    kind: SensitiveKind
    text: str
    start: int
    end: int
    detail: str = ""  # card brand for creditcard matches

    @property
    def figure6_label(self) -> str:
        """The label Figure 6 groups by: card brand, else the kind."""
        if self.kind == "creditcard" and self.detail:
            return self.detail
        return self.kind


@dataclass(frozen=True)
class ScrubResult:
    """Output of scrubbing: sanitised text plus what was found."""

    text: str
    matches: Tuple[SensitiveMatch, ...]

    def kinds_found(self) -> List[str]:
        """Sorted distinct identifier kinds found."""
        return sorted({m.kind for m in self.matches})

    def count_by_label(self) -> Dict[str, int]:
        """Occurrences per Figure-6 label (card brand or kind)."""
        counts: Dict[str, int] = {}
        for match in self.matches:
            label = match.figure6_label
            counts[label] = counts.get(label, 0) + 1
        return counts


# --- detector implementation ------------------------------------------------

#: corpus-wide scrub cache, keyed by (salt, text); see SensitiveScrubber.scrub
_SCRUB_MEMO = BoundedMemo("sensitive.scrub")

_HAS_DIGIT_RE = re.compile(r"\d")
_CARD_RE = re.compile(r"(?<![\d-])(?:\d[ -]?){12,18}\d(?![\d-])")
_SSN_RE = re.compile(r"\b\d{3}-\d{2}-\d{4}\b")
_SSN_CONTEXT_RE = re.compile(
    r"\b(?:ssn|social security(?: number| no\.?)?)\s*[:#]?\s*(\d{9})\b",
    re.IGNORECASE)
_EIN_RE = re.compile(r"\b\d{2}-\d{7}\b")
_VIN_RE = re.compile(
    r"\b(?=[A-HJ-NPR-Z0-9]{17}\b)(?=[A-HJ-NPR-Z0-9]*\d)(?=[A-HJ-NPR-Z0-9]*[A-HJ-NPR-Z])"
    r"[A-HJ-NPR-Z0-9]{17}\b")
_PHONE_RE = re.compile(
    r"(?<![\d-])(?:\+?1[ .-]?)?(?:\(\d{3}\)|\d{3})[ .-]\d{3}[ .-]\d{4}(?![\d-])")
_EMAIL_RE = re.compile(r"\b[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\.[a-zA-Z]{2,}\b")
_ZIP_RE = re.compile(
    r"(?:\b[A-Z]{2}[,]?\s+(\d{5}(?:-\d{4})?)\b)|(?:\bzip(?:\s*code)?\s*[:#]?\s*(\d{5}(?:-\d{4})?)\b)",
    re.IGNORECASE)
_PASSWORD_RE = re.compile(
    r"\b(?:password|passwd|pwd|passcode)\s*(?:is|[:=])?\s+(\S+)", re.IGNORECASE)
_USERNAME_RE = re.compile(
    r"\b(?:username|user name|user id|userid|login)\s*(?:is|[:=])?\s+(\S+)",
    re.IGNORECASE)
_IDNUMBER_RE = re.compile(
    r"\b(?:id(?:entification)? number|member id|account number|case (?:id|number)|"
    r"reference number|record number|policy number)\s*[:#]?\s*([A-Za-z0-9-]{4,20})\b",
    re.IGNORECASE)
_DATE_RES = (
    re.compile(r"\b\d{4}-\d{2}-\d{2}\b"),
    re.compile(r"\b\d{1,2}/\d{1,2}/\d{2,4}\b"),
    re.compile(
        r"\b(?:Jan(?:uary)?|Feb(?:ruary)?|Mar(?:ch)?|Apr(?:il)?|May|Jun(?:e)?|"
        r"Jul(?:y)?|Aug(?:ust)?|Sep(?:tember)?|Oct(?:ober)?|Nov(?:ember)?|"
        r"Dec(?:ember)?)\.? \d{1,2},? \d{4}\b"),
    re.compile(r"\b[Ee]xp\.? ?\d{2}/\d{2,4}\b"),
)


class SensitiveScrubber:
    """Finds and removes sensitive identifiers from text.

    ``salt`` keys the replacement hashes so equal identifiers map to equal
    tokens within a study but tokens are not invertible across studies.
    """

    def __init__(self, salt: str = "repro-study-salt") -> None:
        self._salt = salt

    # -- detection ----------------------------------------------------------

    def find(self, text: str) -> List[SensitiveMatch]:
        """All identifier matches, overlaps resolved by kind priority."""
        candidates: List[SensitiveMatch] = []
        # every numeric-identifier pattern requires at least one digit, so
        # one digit scan gates eleven regex passes for digit-free bodies
        has_digit = _HAS_DIGIT_RE.search(text) is not None
        if has_digit:
            candidates.extend(self._find_cards(text))
            candidates.extend(_simple(text, _SSN_RE, "ssn"))
            candidates.extend(_group(text, _SSN_CONTEXT_RE, "ssn", group=1))
            candidates.extend(_simple(text, _EIN_RE, "ein"))
            candidates.extend(_simple(text, _VIN_RE, "vin"))
            candidates.extend(_simple(text, _PHONE_RE, "phone"))
            for pattern in _DATE_RES:
                candidates.extend(_simple(text, pattern, "date"))
        candidates.extend(_simple(text, _EMAIL_RE, "email"))
        if has_digit:
            candidates.extend(_zip_matches(text))
        candidates.extend(_group(text, _PASSWORD_RE, "password", group=1))
        candidates.extend(_group(text, _USERNAME_RE, "username", group=1))
        candidates.extend(_group(text, _IDNUMBER_RE, "idnumber", group=1))
        return _resolve_overlaps(candidates)

    def _find_cards(self, text: str) -> List[SensitiveMatch]:
        out: List[SensitiveMatch] = []
        for match in _CARD_RE.finditer(text):
            digits = re.sub(r"[ -]", "", match.group())
            if not 13 <= len(digits) <= 19:
                continue
            if not luhn_valid(digits):
                continue
            brand = card_brand(digits) or "unknown-card"
            out.append(SensitiveMatch("creditcard", match.group(),
                                      match.start(), match.end(), brand))
        return out

    # -- scrubbing -------------------------------------------------------------

    def scrub(self, text: str) -> ScrubResult:
        """Replace identifiers with sentinel tokens, then zero all digits.

        Pure per ``(salt, text)`` and :class:`ScrubResult` is frozen, so
        results are shared through a corpus-wide memo — spam campaigns
        reuse bodies heavily, and scrubbing is the pipeline's single most
        expensive per-message step.
        """
        key = (self._salt, text)
        result = _SCRUB_MEMO.table.get(key)
        if result is not None:
            _SCRUB_MEMO.hits += 1
            return result
        result = self._scrub_uncached(text)
        _SCRUB_MEMO.put(key, result)
        return result

    def _scrub_uncached(self, text: str) -> ScrubResult:
        matches = self.find(text)
        if not matches:
            if _HAS_DIGIT_RE.search(text) is None:
                return ScrubResult(text=text, matches=())
            return ScrubResult(text=_HAS_DIGIT_RE.sub("0", text), matches=())
        pieces: List[str] = []
        cursor = 0
        for match in matches:
            pieces.append(text[cursor:match.start])
            pieces.append(self._replacement(match))
            cursor = match.end
        pieces.append(text[cursor:])
        sanitised = "".join(pieces)
        sanitised = _HAS_DIGIT_RE.sub("0", sanitised)
        return ScrubResult(text=sanitised, matches=tuple(matches))

    def _replacement(self, match: SensitiveMatch) -> str:
        token = hashlib.sha256(
            (self._salt + match.text).encode("utf-8")).hexdigest()[:10]
        label = match.figure6_label
        return f"{SENTINEL}{label}*{token}{SENTINEL}"

    def salted_hash(self, value: str) -> str:
        """The stable pseudonym for one identifier value."""
        return hashlib.sha256((self._salt + value).encode("utf-8")).hexdigest()[:10]


# -- helpers --------------------------------------------------------------------


def _simple(text: str, pattern: Pattern, kind: str) -> List[SensitiveMatch]:
    return [SensitiveMatch(kind, m.group(), m.start(), m.end())
            for m in pattern.finditer(text)]


def _group(text: str, pattern: Pattern, kind: str,
           group: int) -> List[SensitiveMatch]:
    out = []
    for m in pattern.finditer(text):
        if m.group(group) is None:
            continue
        out.append(SensitiveMatch(kind, m.group(group),
                                  m.start(group), m.end(group)))
    return out


def _zip_matches(text: str) -> List[SensitiveMatch]:
    out = []
    for m in _ZIP_RE.finditer(text):
        for group_index in (1, 2):
            if m.group(group_index):
                out.append(SensitiveMatch("zip", m.group(group_index),
                                          m.start(group_index),
                                          m.end(group_index)))
    return out


def _resolve_overlaps(candidates: List[SensitiveMatch]) -> List[SensitiveMatch]:
    """Keep at most one match per text span, preferring higher-priority kinds."""
    priority = {kind: i for i, kind in enumerate(SENSITIVE_KINDS)}
    ordered = sorted(candidates,
                     key=lambda m: (priority.get(m.kind, 99), m.start, -(m.end - m.start)))
    kept: List[SensitiveMatch] = []
    for candidate in ordered:
        if any(not (candidate.end <= k.start or candidate.start >= k.end)
               for k in kept):
            continue
        kept.append(candidate)
    kept.sort(key=lambda m: m.start)
    return kept
