"""The end-to-end processing pipeline (paper Fig. 2).

Order of operations for each received email, exactly as the paper wires
them: tokenize → (SpamAssassin scoring happens in the filtering funnel) →
text extraction over body and attachments → sensitive-information
scrubbing → encryption of every part into the store.  The pipeline's
output, :class:`ProcessedEmail`, carries only sanitised text and metadata
— the raw message is never retained in plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.infra.storage import EncryptedStore
from repro.pipeline.extraction import ExtractionError, extract_text
from repro.pipeline.sensitive import ScrubResult, SensitiveScrubber
from repro.pipeline.tokenizer import HeaderMetadata, TokenizedEmail, tokenize
from repro.smtpsim.message import EmailMessage

__all__ = ["ProcessedEmail", "ProcessedAttachment", "EmailProcessor"]


@dataclass(frozen=True)
class ProcessedAttachment:
    """Sanitised view of one attachment."""

    filename: str
    extension: str
    sha256: str
    extracted: bool
    scrubbed_text: str
    sensitive_labels: Tuple[str, ...]
    stored_record_id: Optional[str]


@dataclass
class ProcessedEmail:
    """What the study retains about one email."""

    metadata: HeaderMetadata
    scrubbed_body: str
    body_sensitive_labels: Tuple[str, ...]
    attachments: List[ProcessedAttachment] = field(default_factory=list)
    header_record_id: Optional[str] = None
    body_record_id: Optional[str] = None
    #: set by the filtering funnel afterwards
    classification: Optional[str] = None

    @property
    def all_sensitive_labels(self) -> List[str]:
        labels = list(self.body_sensitive_labels)
        for attachment in self.attachments:
            labels.extend(attachment.sensitive_labels)
        return labels

    def sensitive_counts(self) -> Dict[str, int]:
        """Occurrences per sensitive label across body and attachments."""
        counts: Dict[str, int] = {}
        for label in self.all_sensitive_labels:
            counts[label] = counts.get(label, 0) + 1
        return counts


class EmailProcessor:
    """Runs the Fig. 2 pipeline over received messages.

    ``store`` is optional: the analyses only need the sanitised metadata,
    and the heavy end-to-end simulation skips at-rest encryption for
    speed; the integration tests exercise both configurations.
    """

    def __init__(self, scrubber: Optional[SensitiveScrubber] = None,
                 store: Optional[EncryptedStore] = None) -> None:
        self.scrubber = scrubber or SensitiveScrubber()
        self.store = store

    def process(self, message: Optional[EmailMessage],
                tokenized: Optional[TokenizedEmail] = None) -> ProcessedEmail:
        """Run the full Fig. 2 pipeline over one received message.

        ``tokenized`` lets callers that already tokenized the message (the
        study runner does, for the funnel) skip the repeat parse — with it,
        ``message`` may be None, which is how the bounded-memory streaming
        classifier processes mail whose raw original it already released.
        """
        if tokenized is None:
            if message is None:
                raise ValueError("process() needs a message or a tokenized")
            tokenized = tokenize(message)
        body_result = self.scrubber.scrub(tokenized.body)

        processed_attachments = [
            self._process_attachment(attachment)
            for attachment in tokenized.attachments
        ]

        header_record = body_record = None
        if self.store is not None:
            header_record = self.store.put(
                _render_headers(tokenized).encode("utf-8"), kind="header")
            body_record = self.store.put(
                body_result.text.encode("utf-8"), kind="body")

        return ProcessedEmail(
            metadata=tokenized.metadata,
            scrubbed_body=body_result.text,
            body_sensitive_labels=tuple(
                m.figure6_label for m in body_result.matches),
            attachments=processed_attachments,
            header_record_id=header_record,
            body_record_id=body_record,
        )

    def _process_attachment(self, attachment) -> ProcessedAttachment:
        try:
            text = extract_text(attachment)
        except ExtractionError:
            text = None
        if text is None:
            scrub = ScrubResult(text="", matches=())
            extracted = False
        else:
            scrub = self.scrubber.scrub(text)
            extracted = True

        record_id = None
        if self.store is not None and extracted:
            record_id = self.store.put(scrub.text.encode("utf-8"),
                                       kind="attachment")
        return ProcessedAttachment(
            filename=attachment.filename,
            extension=attachment.extension,
            sha256=attachment.sha256(),
            extracted=extracted,
            scrubbed_text=scrub.text,
            sensitive_labels=tuple(m.figure6_label for m in scrub.matches),
            stored_record_id=record_id,
        )


def _render_headers(tokenized: TokenizedEmail) -> str:
    metadata = tokenized.metadata
    fields = [
        ("From", metadata.from_field),
        ("To", metadata.to_field),
        ("Subject", metadata.subject),
        ("Reply-To", metadata.reply_to),
        ("Return-Path", metadata.return_path),
    ]
    return "\n".join(f"{k}: {v}" for k, v in fields if v)
