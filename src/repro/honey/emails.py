"""Honey email designs (paper §7.1).

Four designs, each carrying a different monitorable bait, plus an inlined
1x1 tracking pixel hosted on a VPS the researchers control:

1. login credentials for an account at a major email provider;
2. login credentials for a shell account on a researcher-controlled VPS;
3. a link to a "tax document" on a document-sharing service with access
   logging;
4. a DOCX attachment with (fake) payment information that signals back
   when opened (DOCX readers fetch external resources more often than
   PDF readers — the paper picked DOCX for exactly that reason).

Every bait artifact gets an identifier that is unique per (recipient
domain, design) so that any later access can be attributed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.smtpsim.message import Attachment, EmailMessage

__all__ = ["HoneyDesign", "HoneyBait", "make_honey_email", "HONEY_DESIGNS",
           "make_probe_email"]

HONEY_DESIGNS = ("email_credentials", "shell_credentials",
                 "document_link", "docx_payment")

_PIXEL_HOST = "cdn-metrics.study-vps.example"
_DOCS_HOST = "docshare.example"
_SHELL_HOST = "shell.study-vps.example"


@dataclass(frozen=True)
class HoneyBait:
    """The monitorable artifacts embedded in one honey email."""

    design: str
    recipient_domain: str
    pixel_id: str
    credential_id: Optional[str] = None   # honey account this email leaks
    token_id: Optional[str] = None        # document/attachment token

    @property
    def pixel_url(self) -> str:
        return f"http://{_PIXEL_HOST}/px/{self.pixel_id}.gif"


def _stable_id(*parts: str) -> str:
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]


def make_honey_email(design: str, recipient: str,
                     sender: str = "julia.meyers@personal-mail.example"
                     ) -> Tuple[EmailMessage, HoneyBait]:
    """Build one honey email of the given design for ``recipient``.

    Wording mimics real user-to-user interactions (the paper piloted the
    templates on group members to make sure they read as plausible and
    passed spam filters).
    """
    if design not in HONEY_DESIGNS:
        raise ValueError(f"unknown honey design {design!r}")
    domain = recipient.rpartition("@")[2]
    pixel_id = _stable_id("pixel", design, domain)
    bait = HoneyBait(design=design, recipient_domain=domain,
                     pixel_id=pixel_id)

    pixel_tag = f'<img src="{bait.pixel_url}" width="1" height="1">'

    if design == "email_credentials":
        credential_id = _stable_id("mail-cred", domain)
        bait = HoneyBait(design, domain, pixel_id, credential_id=credential_id)
        body = (
            "hey, as promised here is the login for the shared inbox:\n"
            f"account: team.{credential_id[:6]}@bigmail.example\n"
            f"password: Sp2016-{credential_id[6:12]}\n"
            "delete this after you save it somewhere safe.\n" + pixel_tag)
        subject = "shared inbox login"
        attachments: List[Attachment] = []
    elif design == "shell_credentials":
        credential_id = _stable_id("shell-cred", domain)
        bait = HoneyBait(design, domain, pixel_id, credential_id=credential_id)
        body = (
            "the staging box is up again. ssh in with\n"
            f"host: {_SHELL_HOST}\n"
            f"user: deploy_{credential_id[:6]}\n"
            f"pass: {credential_id[6:14]}\n"
            "ping me if the build is still broken.\n" + pixel_tag)
        subject = "staging box access"
        attachments = []
    elif design == "document_link":
        token_id = _stable_id("doc", domain)
        bait = HoneyBait(design, domain, pixel_id, token_id=token_id)
        body = (
            "i shared the tax document you asked about:\n"
            f"http://{_DOCS_HOST}/d/{token_id}\n"
            "let me know if the numbers look right before friday.\n"
            + pixel_tag)
        subject = "tax document for review"
        attachments = []
    else:  # docx_payment
        token_id = _stable_id("docx", domain)
        bait = HoneyBait(design, domain, pixel_id, token_id=token_id)
        docx_body = (f"PK-OOXML\n<w:t>payment details attached</w:t>"
                     f"<w:t>HONEYTOKEN:{token_id}</w:t>"
                     f"<w:t>routing 000000 account 00000000</w:t>")
        attachments = [Attachment("payment_details.docx",
                                  docx_body.encode("utf-8"))]
        body = ("attached are the payment details for the invoice. "
                "double check the account number please.\n" + pixel_tag)
        subject = "invoice payment details"

    message = EmailMessage.create(from_addr=sender, to_addr=recipient,
                                  subject=subject, body=body,
                                  attachments=attachments)
    return message, bait


def make_probe_email(recipient: str,
                     sender: str = "probe@study-vps.example"
                     ) -> EmailMessage:
    """The first experiment's benign test email (no sensitive content)."""
    return EmailMessage.create(
        from_addr=sender, to_addr=recipient,
        subject="test",
        body="test message, please ignore.")
