"""Typosquatter behaviour models (what happens *after* an email is accepted).

The paper's central negative result: squatters have the infrastructure to
collect email in bulk, yet almost nobody reads what they catch — 22 reads
and 2 bait accesses across ~30,000 honey emails, with multi-hour lags and
repeat accesses from different cities suggesting the rare readers are
human.  The behaviour model encodes that world:

* bulk operations are fully automated — mail is parked, never opened;
* a small fraction of owners occasionally skim captured mail by hand,
  hours to days later, in an image-loading client about 70% of the time;
* a tiny fraction of *those* act on bait (opening the shared document,
  trying the shell credentials), sometimes repeatedly, from more than
  one location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.ecosystem.internet import OwnerType, SimulatedInternet
from repro.honey.emails import HoneyBait
from repro.honey.monitor import AccessEvent, AccessKind, AccessMonitor
from repro.util.rand import SeededRng

__all__ = ["SquatterBehaviorConfig", "SquatterBehaviorModel"]

_LOCATIONS = (
    "Caracas, VE", "Orlando, US", "Warsaw, PL", "Kyiv, UA",
    "Lagos, NG", "Bucharest, RO", "Manila, PH", "Phoenix, US",
)

_HOURS = 3600.0
_DAYS = 86400.0


@dataclass(frozen=True)
class SquatterBehaviorConfig:
    """Read/act probabilities per owner, calibrated to §7.2's rarity."""

    #: probability that a given owner ever skims captured mail at all
    #: bulk collection is automated end to end; mid-size operators
    #: occasionally skim; a legitimate look-alike has a human reading
    #: its mailbox by definition (8 of the paper's 19 private-side reads
    #: were legitimate domains)
    reader_rate_bulk: float = 0.004
    reader_rate_medium: float = 0.02
    reader_rate_small: float = 0.008
    reader_rate_legitimate: float = 0.03

    #: given a reader owner, probability one accepted email gets opened
    open_probability: float = 0.25
    #: probability an opened email loads remote images (fires the pixel)
    image_load_probability: float = 0.7
    #: probability an opened bait email's token/credential gets tried
    act_on_bait_probability: float = 0.12
    #: probability an acted-on bait is revisited later from elsewhere
    revisit_probability: float = 0.5


class SquatterBehaviorModel:
    """Turns accepted honey emails into (rare) access events."""

    def __init__(self, internet: SimulatedInternet, rng: SeededRng,
                 config: Optional[SquatterBehaviorConfig] = None) -> None:
        self._internet = internet
        self._rng = rng
        self._config = config or SquatterBehaviorConfig()
        self._readers: Optional[set] = None

    # -- owner disposition ------------------------------------------------------

    def _designate_readers(self) -> set:
        """Pick exactly rate*count reader owners per type.

        A fixed quota (rather than an independent coin per owner) keeps
        the "rare exception" calibrated: the paper's world demonstrably
        contained a handful of readers, not a binomial that sometimes
        rounds to zero.
        """
        config = self._config
        rates = {
            OwnerType.BULK_SQUATTER: config.reader_rate_bulk,
            OwnerType.MEDIUM_SQUATTER: config.reader_rate_medium,
            OwnerType.SMALL_SQUATTER: config.reader_rate_small,
            OwnerType.LEGITIMATE: config.reader_rate_legitimate,
            OwnerType.DEFENSIVE: 0.0,
        }
        owners_by_type: Dict[OwnerType, List[str]] = {}
        for wild in self._internet.wild_domains:
            bucket = owners_by_type.setdefault(wild.owner_type, [])
            if wild.owner_id not in bucket:
                bucket.append(wild.owner_id)
        readers = set()
        pick_rng = self._rng.child("designate-readers")
        for owner_type, owners in owners_by_type.items():
            rate = rates[owner_type]
            if rate <= 0 or not owners:
                continue
            quota = max(1, round(rate * len(owners))) if rate * len(owners) \
                >= 0.5 else 0
            if quota > 0:
                readers.update(pick_rng.sample(owners,
                                               min(quota, len(owners))))
        return readers

    def _owner_is_reader(self, domain: str) -> bool:
        wild = self._internet.ground_truth(domain)
        if wild is None:
            return False
        if self._readers is None:
            self._readers = self._designate_readers()
        return wild.owner_id in self._readers

    # -- behaviour -----------------------------------------------------------------

    def process_accepted_email(self, bait: HoneyBait,
                               monitor: AccessMonitor) -> bool:
        """Simulate what (if anything) the squatter does with one email.

        Returns True when the email was opened by a human.
        """
        domain = bait.recipient_domain
        if not self._owner_is_reader(domain):
            return False
        rng = self._rng.child(f"read-{domain}-{bait.design}")
        config = self._config
        if not rng.bernoulli(config.open_probability):
            return False

        # humans get to captured mailboxes hours or days later
        lag = rng.uniform(0.5 * _HOURS, 4 * _DAYS)
        location = rng.choice(_LOCATIONS)
        if rng.bernoulli(config.image_load_probability):
            monitor.record(AccessEvent(AccessKind.PIXEL_FETCH, bait.pixel_id,
                                       lag, location, domain))

        if rng.bernoulli(config.act_on_bait_probability):
            self._act_on_bait(bait, monitor, rng, lag, location)
        return True

    def _act_on_bait(self, bait: HoneyBait, monitor: AccessMonitor,
                     rng: SeededRng, open_lag: float, location: str) -> None:
        act_lag = open_lag + rng.uniform(0.2 * _HOURS, 2 * _HOURS)
        if bait.design == "document_link" and bait.token_id:
            monitor.record(AccessEvent(AccessKind.DOCUMENT_VIEW,
                                       bait.token_id, act_lag, location,
                                       bait.recipient_domain))
        elif bait.design == "shell_credentials" and bait.credential_id:
            monitor.record(AccessEvent(AccessKind.SHELL_LOGIN,
                                       bait.credential_id, act_lag, location,
                                       bait.recipient_domain))
        elif bait.design == "email_credentials" and bait.credential_id:
            monitor.record(AccessEvent(AccessKind.EMAIL_LOGIN,
                                       bait.credential_id, act_lag, location,
                                       bait.recipient_domain))
        elif bait.design == "docx_payment" and bait.token_id:
            monitor.record(AccessEvent(AccessKind.TOKEN_PING,
                                       bait.token_id, act_lag, location,
                                       bait.recipient_domain))

        if rng.bernoulli(self._config.revisit_probability):
            # the Caracas/Orlando anecdote: days later, another location
            revisit_lag = act_lag + rng.uniform(2 * _DAYS, 15 * _DAYS)
            other_location = rng.choice(
                [loc for loc in _LOCATIONS if loc != location])
            kind = (AccessKind.DOCUMENT_VIEW
                    if bait.design == "document_link"
                    else AccessKind.PIXEL_FETCH)
            artifact = bait.token_id or bait.pixel_id
            monitor.record(AccessEvent(kind, artifact, revisit_lag,
                                       other_location,
                                       bait.recipient_domain))
