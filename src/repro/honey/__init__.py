"""Honey-email experiments: playing the typosquatting victim (paper §7)."""

from repro.honey.campaign import (
    HoneyCampaign,
    HoneyTokenResult,
    PROBE_OUTCOMES,
    ProbeCampaignResult,
    ProbeOutcomeTable,
)
from repro.honey.emails import (
    HONEY_DESIGNS,
    HoneyBait,
    make_honey_email,
    make_probe_email,
)
from repro.honey.monitor import AccessEvent, AccessKind, AccessMonitor
from repro.honey.squatters import SquatterBehaviorConfig, SquatterBehaviorModel

__all__ = [
    "make_honey_email",
    "make_probe_email",
    "HoneyBait",
    "HONEY_DESIGNS",
    "AccessMonitor",
    "AccessEvent",
    "AccessKind",
    "SquatterBehaviorModel",
    "SquatterBehaviorConfig",
    "HoneyCampaign",
    "ProbeCampaignResult",
    "ProbeOutcomeTable",
    "PROBE_OUTCOMES",
    "HoneyTokenResult",
]
