"""The honey-email campaigns (paper §7.1's two measurement experiments).

**Probe experiment** — benign test emails to every candidate domain that
shows any sign of SMTP life, one per listening port (25/465/587),
tabulating the outcome per public/private WHOIS registration: Table 5's
no-error / bounce / timeout / network-error / other matrix, plus the MX
concentration of the accepting domains (Table 6).

**Honey-token experiment** — a conservative pilot (at most four domains
per identified registrant) followed by the full run: all four honey
designs to every domain that accepted probes, then watching the monitor
for reads and bait accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dnssim import Resolver
from repro.ecosystem.internet import SimulatedInternet
from repro.ecosystem.scanner import EcosystemScan, ScanResult
from repro.honey.emails import (
    HONEY_DESIGNS,
    HoneyBait,
    make_honey_email,
    make_probe_email,
)
from repro.honey.monitor import AccessMonitor
from repro.honey.squatters import SquatterBehaviorModel
from repro.smtpsim import SendStatus, SmtpClient
from repro.smtpsim.protocol import SMTP_PORTS
from repro.util.rand import SeededRng

__all__ = ["ProbeOutcomeTable", "ProbeCampaignResult", "HoneyCampaign",
           "HoneyTokenResult"]

#: Table 5's row labels in order.
PROBE_OUTCOMES = ("no_error", "bounce", "timeout", "network_error",
                  "other_error")

_STATUS_TO_OUTCOME = {
    SendStatus.DELIVERED: "no_error",
    SendStatus.BOUNCED: "bounce",
    SendStatus.TIMEOUT: "timeout",
    SendStatus.NETWORK_ERROR: "network_error",
    SendStatus.OTHER_ERROR: "other_error",
    SendStatus.NO_ROUTE: "network_error",
    # honey probes are one-shot: a tempfail that would be retried by a
    # real MTA is tabulated with the other transient errors
    SendStatus.TEMPFAIL: "other_error",
}


@dataclass
class ProbeOutcomeTable:
    """Table 5: probe outcomes split by WHOIS registration privacy."""

    public: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in PROBE_OUTCOMES})
    private: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in PROBE_OUTCOMES})

    def record(self, outcome: str, is_private: bool) -> None:
        """Count one probe outcome in the right WHOIS column."""
        table = self.private if is_private else self.public
        table[outcome] += 1

    def total(self, is_private: bool) -> int:
        """Column total for the public or private side."""
        table = self.private if is_private else self.public
        return sum(table.values())

    def rows(self) -> List[Tuple[str, int, int]]:
        """Table 5 rows: (outcome, public count, private count)."""
        return [(outcome, self.public[outcome], self.private[outcome])
                for outcome in PROBE_OUTCOMES]


@dataclass
class ProbeCampaignResult:
    table: ProbeOutcomeTable
    accepting_domains: List[str]
    mx_of_accepting: Dict[str, int]
    domains_probed: int

    def mx_table(self) -> List[Tuple[str, int, float]]:
        """Table 6 rows: (mx domain, count, percent), descending."""
        total = sum(self.mx_of_accepting.values())
        rows = sorted(self.mx_of_accepting.items(), key=lambda kv: -kv[1])
        return [(host, count, 100.0 * count / total if total else 0.0)
                for host, count in rows]


@dataclass
class HoneyTokenResult:
    emails_sent: int
    emails_accepted: int
    emails_opened: int
    monitor: AccessMonitor

    @property
    def domains_read(self) -> List[str]:
        return self.monitor.domains_with_reads()

    @property
    def domains_acted(self) -> List[str]:
        return self.monitor.domains_with_token_access()


class HoneyCampaign:
    """Runs both §7 experiments against the simulated ecosystem."""

    def __init__(self, internet: SimulatedInternet, rng: SeededRng,
                 behavior: Optional[SquatterBehaviorModel] = None) -> None:
        self._internet = internet
        self._rng = rng
        self._client = SmtpClient(Resolver(internet.registry),
                                  internet.network,
                                  helo_hostname="probe.study-vps.example")
        self._behavior = behavior or SquatterBehaviorModel(
            internet, rng.child("squatters"))

    # -- experiment 1: probes ----------------------------------------------------

    def probe_targets_from_scan(self, scan: EcosystemScan) -> List[ScanResult]:
        """Domains worth probing: anything with a resolvable mail path.

        The paper selected domains that listened on some SMTP port per
        zmap — i.e. everything except the clearly mail-dead names.
        """
        from repro.ecosystem.internet import SmtpSupport
        return [r for r in scan.results
                if r.support is not SmtpSupport.NO_DNS and r.addresses]

    def run_probe_campaign(self, targets: Sequence[ScanResult]
                           ) -> ProbeCampaignResult:
        """Probe every target on the three SMTP ports (Table 5/6)."""
        table = ProbeOutcomeTable()
        accepting: List[str] = []
        mx_counts: Dict[str, int] = {}

        for result in targets:
            best = self._probe_domain(result.domain)
            table.record(best, result.whois_private)
            if best == "no_error":
                accepting.append(result.domain)
                mx = result.primary_mx_domain or result.domain
                mx_counts[mx] = mx_counts.get(mx, 0) + 1

        return ProbeCampaignResult(table=table,
                                   accepting_domains=accepting,
                                   mx_of_accepting=mx_counts,
                                   domains_probed=len(targets))

    def _probe_domain(self, domain: str) -> str:
        """Send one probe per standard port; report the best outcome."""
        precedence = ("no_error", "bounce", "other_error", "network_error",
                      "timeout")
        best = "timeout"
        recipient = f"test@{domain}"
        for port in SMTP_PORTS:
            message = make_probe_email(recipient)
            result = self._client.send(message, recipient=recipient,
                                       port=port)
            outcome = _STATUS_TO_OUTCOME[result.status]
            if precedence.index(outcome) < precedence.index(best):
                best = outcome
        return best

    # -- experiment 2: honey tokens --------------------------------------------------

    def select_pilot_domains(self, accepting: Sequence[str],
                             max_per_registrant: int = 4,
                             pilot_size: int = 738) -> List[str]:
        """The pilot's conservative selection: at most four per registrant."""
        per_owner: Dict[str, int] = {}
        chosen: List[str] = []
        for domain in accepting:
            wild = self._internet.ground_truth(domain)
            owner = wild.owner_id if wild else f"unknown-{domain}"
            if per_owner.get(owner, 0) >= max_per_registrant:
                continue
            per_owner[owner] = per_owner.get(owner, 0) + 1
            chosen.append(domain)
            if len(chosen) >= pilot_size:
                break
        return chosen

    def run_token_campaign(self, domains: Sequence[str],
                           designs: Sequence[str] = HONEY_DESIGNS,
                           monitor: Optional[AccessMonitor] = None
                           ) -> HoneyTokenResult:
        """Send the given honey designs to each domain, once each."""
        monitor = monitor if monitor is not None else AccessMonitor()
        sent = accepted = opened = 0
        for domain in domains:
            recipient = f"accounts@{domain}"
            for design in designs:
                message, bait = make_honey_email(design, recipient)
                sent += 1
                result = self._client.send(message, recipient=recipient)
                if result.status is not SendStatus.DELIVERED:
                    continue
                accepted += 1
                if self._behavior.process_accepted_email(bait, monitor):
                    opened += 1
        return HoneyTokenResult(emails_sent=sent, emails_accepted=accepted,
                                emails_opened=opened, monitor=monitor)
