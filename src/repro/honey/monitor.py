"""Access monitoring for honey artifacts (paper §7.1's logging side).

The researchers logged: tracking-pixel fetches (email opened in an
image-loading client), document-share views, shell login attempts, and
email-account logins.  Every event carries a timestamp and a coarse
source location, because the paper leaned on both — multi-hour lags and
multi-city accesses — to argue the reads were human.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["AccessKind", "AccessEvent", "AccessMonitor"]


class AccessKind(enum.Enum):
    """The monitorable access channels of the honey artifacts."""
    PIXEL_FETCH = "pixel_fetch"           # email opened with images on
    DOCUMENT_VIEW = "document_view"       # doc-share link followed
    SHELL_LOGIN = "shell_login"           # ssh attempt on the honey box
    EMAIL_LOGIN = "email_login"           # login to the honey mail account
    TOKEN_PING = "token_ping"             # DOCX phoned home


@dataclass(frozen=True)
class AccessEvent:
    kind: AccessKind
    artifact_id: str       # pixel_id / token_id / credential_id
    timestamp: float       # seconds since the honey emails were sent
    source_location: str   # coarse geo, e.g. "Caracas, VE"
    domain: str            # the honey-mailed domain this artifact maps to


class AccessMonitor:
    """Collects and queries access events."""

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []

    def record(self, event: AccessEvent) -> None:
        """Log one access event."""
        self.events.append(event)

    def events_of_kind(self, kind: AccessKind) -> List[AccessEvent]:
        """Every logged event of one kind."""
        return [e for e in self.events if e.kind is kind]

    def domains_with_reads(self) -> List[str]:
        """Domains where the email was demonstrably opened."""
        return sorted({e.domain for e in self.events
                       if e.kind is AccessKind.PIXEL_FETCH})

    def domains_with_token_access(self) -> List[str]:
        """Domains where a bait credential/document was actually used."""
        bait_kinds = (AccessKind.DOCUMENT_VIEW, AccessKind.SHELL_LOGIN,
                      AccessKind.EMAIL_LOGIN, AccessKind.TOKEN_PING)
        return sorted({e.domain for e in self.events if e.kind in bait_kinds})

    def first_access_lag(self, domain: str) -> Optional[float]:
        """Seconds from send to the first access at ``domain``, or None."""
        lags = [e.timestamp for e in self.events if e.domain == domain]
        return min(lags) if lags else None

    def access_locations(self, domain: str) -> List[str]:
        """Coarse source locations of every access at ``domain``."""
        return [e.source_location for e in self.events if e.domain == domain]

    def __len__(self) -> int:
        return len(self.events)
