"""The paper's projection regression (Section 6.2).

A linear regression in square-root space: the dependent variable is
``sqrt(yearly typo emails)`` and the features are exactly the paper's —
the target's Alexa rank (log-transformed), the square root of the visual
distance normalised by target length, and the fat-finger indicator.  The
paper reports R² = 0.74 on the fit and 0.63 under leave-one-out
cross-validation, then projects the fitted model over the 1,211 wild
typosquatting domains of five popular targets with a 95% CI.

Confidence intervals for the projected *total* come from a parametric
bootstrap: coefficient draws from the estimated sampling distribution
N(b, σ²(XᵀX)⁻¹) plus residual noise, with totals re-assembled in count
space — reproducing the paper's strongly asymmetric interval
(22,577 – 905,174 around 260,514).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.rand import SeededRng

__all__ = ["RegressionObservation", "FitResult", "SqrtVolumeRegression"]


@dataclass(frozen=True)
class RegressionObservation:
    """One domain's measured (or to-be-predicted) traffic and features."""

    domain: str
    target: str
    yearly_emails: float      # 0.0 for prediction-only rows
    alexa_rank: int
    normalized_visual: float
    fat_finger: bool

    def feature_vector(self) -> List[float]:
        """The design-matrix row: intercept, log rank, sqrt visual, FF."""
        return [
            1.0,
            math.log(max(1, self.alexa_rank)),
            math.sqrt(max(0.0, self.normalized_visual)),
            1.0 if self.fat_finger else 0.0,
        ]


FEATURE_NAMES = ("intercept", "log_alexa_rank", "sqrt_norm_visual",
                 "fat_finger")


@dataclass
class FitResult:
    coefficients: np.ndarray
    r_squared: float
    loo_r_squared: float
    residual_variance: float
    coefficient_covariance: np.ndarray
    n_observations: int

    def coefficient(self, name: str) -> float:
        """The fitted coefficient of one named feature."""
        return float(self.coefficients[FEATURE_NAMES.index(name)])


class SqrtVolumeRegression:
    """OLS in sqrt-count space with LOO-CV and bootstrap projection."""

    def __init__(self) -> None:
        self._fit: Optional[FitResult] = None

    @property
    def fit_result(self) -> FitResult:
        if self._fit is None:
            raise RuntimeError("call fit() first")
        return self._fit

    # -- fitting --------------------------------------------------------------

    def fit(self, observations: Sequence[RegressionObservation]) -> FitResult:
        """OLS fit in sqrt space with R-squared and LOO-CV."""
        if len(observations) < len(FEATURE_NAMES) + 1:
            raise ValueError(
                f"need more than {len(FEATURE_NAMES)} observations, "
                f"got {len(observations)}")
        design = np.array([o.feature_vector() for o in observations])
        response = np.sqrt(np.array([o.yearly_emails for o in observations]))

        coefficients, *_ = np.linalg.lstsq(design, response, rcond=None)
        fitted = design @ coefficients
        residuals = response - fitted
        ss_res = float(residuals @ residuals)
        ss_tot = float(((response - response.mean()) ** 2).sum())
        r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else float("nan")

        dof = len(observations) - len(FEATURE_NAMES)
        residual_variance = ss_res / max(1, dof)
        gram_inverse = np.linalg.pinv(design.T @ design)
        covariance = residual_variance * gram_inverse

        loo = self._loo_r_squared(design, response)
        self._fit = FitResult(
            coefficients=coefficients,
            r_squared=r_squared,
            loo_r_squared=loo,
            residual_variance=residual_variance,
            coefficient_covariance=covariance,
            n_observations=len(observations),
        )
        return self._fit

    @staticmethod
    def _loo_r_squared(design: np.ndarray, response: np.ndarray) -> float:
        predictions = np.zeros_like(response)
        n = len(response)
        for leave in range(n):
            mask = np.arange(n) != leave
            coeffs, *_ = np.linalg.lstsq(design[mask], response[mask],
                                         rcond=None)
            predictions[leave] = design[leave] @ coeffs
        ss_res = float(((response - predictions) ** 2).sum())
        ss_tot = float(((response - response.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else float("nan")

    # -- prediction ----------------------------------------------------------------

    def predict(self, observations: Sequence[RegressionObservation],
                scale_factors: Optional[Sequence[float]] = None
                ) -> np.ndarray:
        """Point predictions of yearly emails (count space, >= 0).

        ``scale_factors`` multiplies each domain's predicted *count* —
        used for the typo-type adjustment of Section 6.2 (deletion and
        transposition typos receive more traffic than the
        addition/substitution typos the model was trained on).
        """
        fit = self.fit_result
        design = np.array([o.feature_vector() for o in observations])
        sqrt_predictions = np.clip(design @ fit.coefficients, 0.0, None)
        counts = sqrt_predictions ** 2
        if scale_factors is not None:
            counts = counts * np.asarray(scale_factors, dtype=float)
        return counts

    def predict_total_with_ci(self, observations: Sequence[RegressionObservation],
                              rng: SeededRng,
                              scale_factors: Optional[Sequence[float]] = None,
                              n_bootstrap: int = 2000,
                              confidence: float = 0.95
                              ) -> Tuple[float, float, float]:
        """(total, ci_low, ci_high) for the summed yearly volume."""
        fit = self.fit_result
        design = np.array([o.feature_vector() for o in observations])
        scales = (np.asarray(scale_factors, dtype=float)
                  if scale_factors is not None
                  else np.ones(len(observations)))

        point_total = float(self.predict(observations, scale_factors).sum())

        np_rng = rng.numpy_rng()
        coefficient_draws = np_rng.multivariate_normal(
            fit.coefficients, fit.coefficient_covariance, size=n_bootstrap)
        totals = np.empty(n_bootstrap)
        sigma = math.sqrt(fit.residual_variance)
        for b in range(n_bootstrap):
            sqrt_pred = design @ coefficient_draws[b]
            sqrt_pred = sqrt_pred + np_rng.normal(0.0, sigma,
                                                  size=len(observations))
            counts = np.clip(sqrt_pred, 0.0, None) ** 2 * scales
            totals[b] = counts.sum()
        alpha = (1.0 - confidence) / 2.0
        low, high = np.quantile(totals, [alpha, 1.0 - alpha])
        return point_total, float(low), float(high)
