"""Sensitivity of the §6 regression to its feature set and seed data.

Two analyses the paper implies but does not print:

* **feature knockout** — refit with each feature removed and report the
  R² drop; the paper's claim that rank, visual distance, and fat-finger
  status all carry signal predicts every knockout hurts, with rank (the
  popularity proxy) hurting most;
* **leave-one-target-out** — the harsher cousin of the paper's
  leave-one-out CV: hold out *all* domains of one target and predict
  them from the rest, testing whether the model generalises across
  targets rather than interpolating within them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.extrapolate.regression import (
    FEATURE_NAMES,
    RegressionObservation,
    SqrtVolumeRegression,
)

__all__ = ["FeatureKnockout", "feature_knockouts",
           "leave_one_target_out_r_squared"]


@dataclass(frozen=True)
class FeatureKnockout:
    """Fit quality with one feature removed."""

    removed_feature: str
    r_squared: float
    r_squared_drop: float


def _masked_matrix(observations: Sequence[RegressionObservation],
                   masked_index: int) -> np.ndarray:
    """Zero one design column: the column contributes nothing and its
    coefficient is harmless under the least-squares pseudo-inverse."""
    design = np.array([o.feature_vector() for o in observations])
    design[:, masked_index] = 0.0
    return design


def feature_knockouts(observations: Sequence[RegressionObservation]
                      ) -> List[FeatureKnockout]:
    """R² with each non-intercept feature knocked out."""
    response = np.sqrt(np.array([o.yearly_emails for o in observations]))
    ss_tot = float(((response - response.mean()) ** 2).sum())

    def r_squared_for(design: np.ndarray) -> float:
        coefficients, *_ = np.linalg.lstsq(design, response, rcond=None)
        residuals = response - design @ coefficients
        return 1.0 - float(residuals @ residuals) / ss_tot

    full_design = np.array([o.feature_vector() for o in observations])
    full_r2 = r_squared_for(full_design)

    out: List[FeatureKnockout] = []
    for index, name in enumerate(FEATURE_NAMES):
        if name == "intercept":
            continue
        reduced = r_squared_for(_masked_matrix(observations, index))
        out.append(FeatureKnockout(removed_feature=name,
                                   r_squared=reduced,
                                   r_squared_drop=full_r2 - reduced))
    return out


def leave_one_target_out_r_squared(
        observations: Sequence[RegressionObservation]) -> float:
    """R² of cross-target prediction (hold out one target at a time).

    Requires observations from at least two targets; raises otherwise.
    """
    targets = sorted({o.target for o in observations})
    if len(targets) < 2:
        raise ValueError("need observations from at least two targets")

    response = np.sqrt(np.array([o.yearly_emails for o in observations]))
    predictions = np.zeros_like(response)
    design = np.array([o.feature_vector() for o in observations])
    target_of = np.array([targets.index(o.target) for o in observations])

    for held_out in range(len(targets)):
        train = target_of != held_out
        test = ~train
        if not test.any() or train.sum() <= design.shape[1]:
            continue
        coefficients, *_ = np.linalg.lstsq(design[train], response[train],
                                           rcond=None)
        predictions[test] = design[test] @ coefficients

    ss_res = float(((response - predictions) ** 2).sum())
    ss_tot = float(((response - response.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else float("nan")
