"""The end-to-end projection experiment (paper Section 6).

Pipeline, exactly as the paper runs it:

1. take the study's 25 seed domains targeting the five projection targets
   (gmail, hotmail, outlook, comcast, verizon) with their measured yearly
   true-typo volumes;
2. fit the sqrt-space regression on (log Alexa rank, normalised visual
   distance, fat-finger flag);
3. enumerate the wild typosquatting domains of those five targets
   (excluding defensive registrations and the study's own domains);
4. project total yearly email volume with a 95% CI;
5. re-project with the Figure-9 edit-type adjustment, since the wild set
   is rich in deletion/transposition typos the training set lacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ecosystem.internet import OwnerType, SimulatedInternet, WildDomain
from repro.extrapolate.regression import (
    RegressionObservation,
    SqrtVolumeRegression,
)
from repro.extrapolate.typo_popularity import (
    EditTypePopularity,
    edit_type_scale_factors,
    popularity_by_edit_type,
)
from repro.util.rand import SeededRng

__all__ = ["PROJECTION_TARGETS", "ProjectionReport", "ProjectionExperiment"]

#: The paper's five projection targets.
PROJECTION_TARGETS = ("gmail.com", "hotmail.com", "outlook.com",
                      "comcast.net", "verizon.net")


@dataclass
class ProjectionReport:
    """Everything Section 6.2 reports."""

    seed_domain_count: int
    wild_domain_count: int
    r_squared: float
    loo_r_squared: float
    base_total: float
    base_ci: Tuple[float, float]
    adjusted_total: float
    adjusted_ci: Tuple[float, float]
    edit_type_popularity: Dict[str, EditTypePopularity]
    scale_factors: Dict[str, float]

    def summary_lines(self) -> List[str]:
        """Human-readable lines mirroring the paper's Section 6.2 text."""
        low, high = self.base_ci
        alow, ahigh = self.adjusted_ci
        return [
            f"seed domains: {self.seed_domain_count}",
            f"wild typosquatting domains of 5 targets: {self.wild_domain_count}",
            f"fit R^2 = {self.r_squared:.2f}, LOO-CV R^2 = {self.loo_r_squared:.2f}",
            f"base projection: {self.base_total:,.0f} emails/yr "
            f"(95% CI {low:,.0f} - {high:,.0f})",
            f"typo-type adjusted: {self.adjusted_total:,.0f} emails/yr "
            f"(95% CI {alow:,.0f} - {ahigh:,.0f})",
        ]


class ProjectionExperiment:
    """Runs the Section 6 methodology against a simulated world."""

    def __init__(self, internet: SimulatedInternet, rng: SeededRng,
                 targets: Sequence[str] = PROJECTION_TARGETS) -> None:
        self._internet = internet
        self._rng = rng
        self._targets = tuple(targets)

    # -- data assembly ------------------------------------------------------

    def wild_observations(self, exclude_domains: Sequence[str] = ()
                          ) -> List[RegressionObservation]:
        """Prediction rows for the wild ctypos of the projection targets.

        Excludes defensive registrations (not typosquatting) and any
        domains in ``exclude_domains`` (the study's own registrations).
        """
        excluded = {d.lower() for d in exclude_domains}
        rows: List[RegressionObservation] = []
        for wild in self._internet.wild_domains:
            if wild.target not in self._targets:
                continue
            if wild.owner_type is OwnerType.DEFENSIVE:
                continue
            if wild.domain in excluded:
                continue
            rank = self._internet.alexa_rank(wild.target) or 10_000
            rows.append(RegressionObservation(
                domain=wild.domain,
                target=wild.target,
                yearly_emails=0.0,
                alexa_rank=rank,
                normalized_visual=wild.candidate.normalized_visual,
                fat_finger=wild.candidate.is_fat_finger,
            ))
        return rows

    def _wild_scale_factors(self, rows: Sequence[RegressionObservation],
                            factors: Mapping[str, float]) -> List[float]:
        by_domain = {w.domain: w for w in self._internet.wild_domains}
        scales = []
        for row in rows:
            wild = by_domain[row.domain]
            scales.append(factors.get(wild.candidate.edit_type, 1.0))
        return scales

    # -- the experiment ------------------------------------------------------

    def run(self, seed_observations: Sequence[RegressionObservation],
            exclude_domains: Sequence[str] = (),
            n_bootstrap: int = 2000) -> ProjectionReport:
        """Fit on the study's measurements and project over the wild set."""
        regression = SqrtVolumeRegression()
        fit = regression.fit(seed_observations)

        wild_rows = self.wild_observations(exclude_domains=exclude_domains)
        base_total, base_low, base_high = regression.predict_total_with_ci(
            wild_rows, self._rng.child("base-ci"), n_bootstrap=n_bootstrap)

        popularity = popularity_by_edit_type(
            self._internet, self._rng.child("figure9"))
        factors = edit_type_scale_factors(popularity)
        scales = self._wild_scale_factors(wild_rows, factors)
        adj_total, adj_low, adj_high = regression.predict_total_with_ci(
            wild_rows, self._rng.child("adjusted-ci"),
            scale_factors=scales, n_bootstrap=n_bootstrap)

        return ProjectionReport(
            seed_domain_count=len(seed_observations),
            wild_domain_count=len(wild_rows),
            r_squared=fit.r_squared,
            loo_r_squared=fit.loo_r_squared,
            base_total=base_total,
            base_ci=(base_low, base_high),
            adjusted_total=adj_total,
            adjusted_ci=(adj_low, adj_high),
            edit_type_popularity=popularity,
            scale_factors=factors,
        )
