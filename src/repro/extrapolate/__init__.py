"""Extrapolation: regression projection, typo-type popularity, economics (paper §6)."""

from repro.extrapolate.economics import (
    DOMAIN_PRICE_PER_YEAR,
    AttackerEconomics,
    DefenderPlan,
    attacker_economics,
    cost_per_email,
    defensive_registration_plan,
)
from repro.extrapolate.projection import (
    PROJECTION_TARGETS,
    ProjectionExperiment,
    ProjectionReport,
)
from repro.extrapolate.regression import (
    FEATURE_NAMES,
    FitResult,
    RegressionObservation,
    SqrtVolumeRegression,
)
from repro.extrapolate.sensitivity import (
    FeatureKnockout,
    feature_knockouts,
    leave_one_target_out_r_squared,
)
from repro.extrapolate.typo_popularity import (
    EDIT_TYPES,
    EditTypePopularity,
    edit_type_scale_factors,
    estimate_typo_popularity,
    popularity_by_edit_type,
)

__all__ = [
    "RegressionObservation",
    "SqrtVolumeRegression",
    "FitResult",
    "FEATURE_NAMES",
    "ProjectionExperiment",
    "ProjectionReport",
    "PROJECTION_TARGETS",
    "EditTypePopularity",
    "EDIT_TYPES",
    "popularity_by_edit_type",
    "edit_type_scale_factors",
    "estimate_typo_popularity",
    "attacker_economics",
    "AttackerEconomics",
    "cost_per_email",
    "defensive_registration_plan",
    "DefenderPlan",
    "DOMAIN_PRICE_PER_YEAR",
    "FeatureKnockout",
    "feature_knockouts",
    "leave_one_target_out_r_squared",
]
