"""Economic analyses (paper §6.2 "Economic implications" and §8 defenses).

Two sides of the same ledger:

* the **attacker**: registering .com domains at ~$8.50/year, a squatter
  acquires misdirected email for under two cents apiece (the paper's
  headline), and under a penny when keeping only the top-performing
  domains;
* the **defender**: large providers registering their own typo space
  defensively get the most protection per dollar, because typo traffic
  concentrates on typos of popular targets (paper §8, "Possible
  defenses").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DOMAIN_PRICE_PER_YEAR",
    "cost_per_email",
    "AttackerEconomics",
    "attacker_economics",
    "DefenderPlan",
    "defensive_registration_plan",
]

#: The paper's quoted .com registration price.
DOMAIN_PRICE_PER_YEAR = 8.5


def cost_per_email(domain_count: int, emails_per_year: float,
                   price_per_domain: float = DOMAIN_PRICE_PER_YEAR) -> float:
    """Dollars paid per captured email (registration costs only)."""
    if emails_per_year <= 0:
        return float("inf")
    return domain_count * price_per_domain / emails_per_year


@dataclass(frozen=True)
class AttackerEconomics:
    domain_count: int
    emails_per_year: float
    yearly_cost: float
    cost_per_email: float
    top5_cost_per_email: float  # keeping only the five best domains


def attacker_economics(per_domain_yearly: Mapping[str, float],
                       price_per_domain: float = DOMAIN_PRICE_PER_YEAR
                       ) -> AttackerEconomics:
    """Attacker-side summary over a measured per-domain volume map."""
    domain_count = len(per_domain_yearly)
    total = sum(per_domain_yearly.values())
    top5 = sorted(per_domain_yearly.values(), reverse=True)[:5]
    top5_total = sum(top5)
    return AttackerEconomics(
        domain_count=domain_count,
        emails_per_year=total,
        yearly_cost=domain_count * price_per_domain,
        cost_per_email=cost_per_email(domain_count, total, price_per_domain),
        top5_cost_per_email=cost_per_email(min(5, domain_count), top5_total,
                                           price_per_domain),
    )


@dataclass(frozen=True)
class DefenderPlan:
    """A defensive-registration budget for one provider."""

    target: str
    domains_to_register: Tuple[str, ...]
    yearly_cost: float
    emails_protected_per_year: float

    @property
    def cost_per_protected_email(self) -> float:
        if self.emails_protected_per_year <= 0:
            return float("inf")
        return self.yearly_cost / self.emails_protected_per_year


def defensive_registration_plan(per_domain_yearly: Mapping[str, float],
                                domain_targets: Mapping[str, str],
                                target: str,
                                budget_domains: Optional[int] = None,
                                price_per_domain: float = DOMAIN_PRICE_PER_YEAR
                                ) -> DefenderPlan:
    """Greedy defensive plan: register the highest-traffic typos first.

    ``per_domain_yearly`` maps typo domain → expected misdirected volume;
    ``domain_targets`` maps typo domain → its target.  The greedy order
    maximises protected email per dollar, the paper's argument for why
    big providers get the largest impact per defensive registration.
    """
    candidates = [(volume, domain)
                  for domain, volume in per_domain_yearly.items()
                  if domain_targets.get(domain) == target]
    candidates.sort(reverse=True)
    if budget_domains is not None:
        candidates = candidates[:budget_domains]
    domains = tuple(domain for _, domain in candidates)
    protected = sum(volume for volume, _ in candidates)
    return DefenderPlan(
        target=target,
        domains_to_register=domains,
        yearly_cost=len(domains) * price_per_domain,
        emails_protected_per_year=protected,
    )
