"""Typing-mistake popularity by edit type (paper Figure 9).

The authors could not register deletion/transposition typos of the big
providers (all taken), so their regression was trained on
addition/substitution domains.  To extend the projection they measured,
from Alexa traffic estimates of wild typo domains of the top-40 targets,
how much more popular deletion and transposition typos are — after
removing MAD outliers (accidentally-legitimate domains with huge traffic)
— and scaled the projection accordingly.

Here the "Alexa traffic estimate" for a wild typo domain is derived from
the simulated world's ground-truth typing model plus heavy-tailed
measurement noise, which is exactly the position the authors were in:
they observed a noisy popularity proxy whose mean structure was created
by real users' typing behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ecosystem.internet import OwnerType, SimulatedInternet, WildDomain
from repro.util.rand import SeededRng
from repro.util.stats import mad_outliers, mean_confidence_interval
from repro.workloads.typo_model import TypingMistakeModel

__all__ = [
    "EditTypePopularity",
    "estimate_typo_popularity",
    "popularity_by_edit_type",
    "edit_type_scale_factors",
]

EDIT_TYPES = ("addition", "transposition", "deletion", "substitution")


@dataclass(frozen=True)
class EditTypePopularity:
    """Figure 9's per-edit-type summary."""

    edit_type: str
    mean: float
    ci_low: float
    ci_high: float
    sample_count: int


def estimate_typo_popularity(wild: WildDomain, model: TypingMistakeModel,
                             rng: SeededRng,
                             noise_sigma: float = 0.8) -> float:
    """A noisy Alexa-style popularity estimate for one wild typo domain."""
    base = model.mistype_probability(wild.candidate) * (
        1.0 - model.correction_probability(wild.candidate))
    return base * rng.lognormal(0.0, noise_sigma)


def popularity_by_edit_type(internet: SimulatedInternet,
                            rng: SeededRng,
                            top_n_targets: int = 40,
                            model: Optional[TypingMistakeModel] = None,
                            outlier_rate: float = 0.01
                            ) -> Dict[str, EditTypePopularity]:
    """Figure 9: relative popularity of typo domains per mistake type.

    Popularity estimates are normalised per target (so a typo of gmail and
    a typo of a mid-tier site are comparable), MAD outliers are removed
    per target — including the occasional accidentally-popular legitimate
    look-alike, which is injected here exactly because the paper had to
    defend against it — and the per-type mean plus 95% CI is reported.
    """
    model = model or TypingMistakeModel()
    top_targets = [entry.domain for entry in internet.alexa[:top_n_targets]]
    wanted = set(top_targets)

    by_target: Dict[str, List[Tuple[WildDomain, float]]] = {}
    for wild in internet.wild_domains:
        if wild.target not in wanted:
            continue
        if wild.owner_type is OwnerType.DEFENSIVE:
            continue
        popularity = estimate_typo_popularity(wild, model, rng)
        if wild.owner_type is OwnerType.LEGITIMATE and rng.bernoulli(0.3):
            # accidentally-popular legitimate neighbour: it has its own
            # audience, far above what typing mistakes would generate
            popularity *= rng.uniform(50, 500)
        by_target.setdefault(wild.target, []).append((wild, popularity))

    samples: Dict[str, List[float]] = {t: [] for t in EDIT_TYPES}
    for target, entries in by_target.items():
        values = [popularity for _, popularity in entries]
        if len(values) < 3:
            continue
        mean_value = sum(values) / len(values)
        if mean_value <= 0:
            continue
        outliers = set(mad_outliers(values))
        for index, (wild, popularity) in enumerate(entries):
            if index in outliers:
                continue
            samples[wild.candidate.edit_type].append(popularity / mean_value)

    out: Dict[str, EditTypePopularity] = {}
    for edit_type in EDIT_TYPES:
        values = samples[edit_type]
        if not values:
            out[edit_type] = EditTypePopularity(edit_type, float("nan"),
                                                float("nan"), float("nan"), 0)
            continue
        mean, low, high = mean_confidence_interval(values)
        out[edit_type] = EditTypePopularity(edit_type, mean, low, high,
                                            len(values))
    return out


def edit_type_scale_factors(popularity: Mapping[str, EditTypePopularity]
                            ) -> Dict[str, float]:
    """Per-edit-type projection multipliers (Section 6.2's adjustment).

    The regression is trained on addition/substitution domains, so those
    types scale by 1.0; deletion and transposition scale by their mean
    popularity relative to the addition/substitution average.
    """
    baseline_types = ("addition", "substitution")
    baseline_values = [popularity[t].mean for t in baseline_types
                       if popularity[t].sample_count > 0
                       and not math.isnan(popularity[t].mean)]
    if not baseline_values:
        raise ValueError("no baseline (addition/substitution) samples")
    baseline = sum(baseline_values) / len(baseline_values)

    factors: Dict[str, float] = {}
    for edit_type in EDIT_TYPES:
        entry = popularity[edit_type]
        if edit_type in baseline_types or entry.sample_count == 0 \
                or math.isnan(entry.mean):
            factors[edit_type] = 1.0
        else:
            factors[edit_type] = max(1.0, entry.mean / baseline)
    return factors
