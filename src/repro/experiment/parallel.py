"""Parallel multi-seed study engine.

One simulated seven-month study is a single draw from the generative
world; the robustness sweeps, the ablation benches, and the calibration
workflows all need *many* draws.  This module fans independent
:class:`StudyRunner` configurations out over worker processes:

* every run is fully determined by its :class:`ExperimentConfig` (seed
  included), so results are identical whether computed serially or on a
  pool — :func:`record_stream_digest` makes that property testable;
* workers return :class:`StudySample`, a picklable projection of
  :class:`~repro.experiment.runner.StudyResults` — the live
  infrastructure (SMTP servers holding policy closures) never crosses a
  process boundary;
* child seeds come from :func:`~repro.util.rand.derive_seed`, so a
  parallel sweep's seed list is itself reproducible from one base seed.

On machines without usable worker processes (or for ``jobs=None``)
everything degrades to the serial path with the same outputs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.analysis.records import CollectedRecord
from repro.core.targets import StudyCorpus
from repro.ecosystem.aggregates import ScanAggregates
from repro.ecosystem.internet import InternetConfig
from repro.experiment.config import ExperimentConfig
from repro.experiment.runner import StudyResults, StudyRunner
from repro.faultsim.plan import FaultPlan, InjectedWorkerCrash
from repro.util.perf import PerfRegistry
# parallel_map and the fallback counter moved to repro.util.pool (the
# classify pipeline needs them without importing the study engine);
# re-exported here so existing imports keep working
from repro.util.pool import (                                    # noqa: F401
    _note_pool_fallback,
    parallel_map,
    pool_fallback_count,
)
from repro.util.errors import CheckpointCorruptError, CheckpointMismatchError
from repro.util.rand import derive_seed
from repro.util.simtime import CollectionWindow

__all__ = [
    "StudySample",
    "run_study_sample",
    "run_study_samples",
    "derive_child_seeds",
    "parallel_map",
    "pool_fallback_count",
    "record_stream_digest",
    "record_content_key",
    "record_content_digest",
    "record_multiset_digest",
    "RecordDigestSink",
    "ScanShardTask",
    "ScanShard",
    "run_scan_shard",
    "fold_shard_perf",
    "partition_ranks",
    "run_sharded_scan",
    "ShardRetryPolicy",
    "ShardOutcome",
    "ResilientScanResult",
    "ScanCheckpoint",
    "run_resilient_scan",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class StudySample:
    """The picklable cross-process view of one completed study run.

    Everything the sweep/analysis layers consume survives the trip:
    records, corpus, window, counts, and the perf snapshot.  The live
    infrastructure objects stay behind in the worker.
    """

    config: ExperimentConfig
    corpus: StudyCorpus
    window: CollectionWindow
    records: Tuple[CollectedRecord, ...]
    malicious_hashes: FrozenSet[str]
    sent_count: int
    delivered_count: int
    funnel_correct: int
    funnel_total: int
    perf: Optional[Dict] = None
    robustness: Optional[Dict] = None

    @property
    def seed(self) -> int:
        return self.config.seed

    def true_typo_records(self) -> List[CollectedRecord]:
        """The records that survived every filter layer."""
        return [r for r in self.records if r.is_true_typo]

    def funnel_accuracy(self) -> Tuple[int, int]:
        """(correct, total) verdicts vs. ground truth, as computed in-run."""
        return self.funnel_correct, self.funnel_total

    def record_digest(self) -> str:
        """Content digest of the record stream (for determinism checks)."""
        return record_stream_digest(self.records)


def sample_from_results(results: StudyResults) -> StudySample:
    """Project live :class:`StudyResults` onto the picklable sample."""
    correct, total = results.funnel_accuracy()
    return StudySample(
        config=results.config,
        corpus=results.corpus,
        window=results.window,
        records=tuple(results.records),
        malicious_hashes=frozenset(results.malicious_hashes),
        sent_count=results.sent_count,
        delivered_count=results.delivered_count,
        funnel_correct=correct,
        funnel_total=total,
        perf=results.perf,
        robustness=results.robustness,
    )


def run_study_sample(config: ExperimentConfig) -> StudySample:
    """Run one full study and return its picklable sample.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can ship
    it to workers by name.
    """
    return sample_from_results(StudyRunner(config).run())


def derive_child_seeds(base_seed: int, count: int,
                       name: str = "parallel-study") -> List[int]:
    """``count`` deterministic, distinct child seeds of ``base_seed``.

    Uses the same SHA-256 derivation as :meth:`SeededRng.child`, so a
    sweep's whole seed list is reproducible from (base_seed, name).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [derive_seed(base_seed, f"{name}-{index}")
            for index in range(count)]


def run_study_samples(configs: Sequence[ExperimentConfig],
                      jobs: Optional[int] = None) -> List[StudySample]:
    """Run one study per config, optionally on a process pool.

    Results come back in input order and are identical to the serial
    path: each run is a pure function of its config.  If the pool broke
    and the engine degraded to serial, every returned sample's perf
    snapshot carries a ``parallel.pool_fallback`` counter.
    """
    perf = PerfRegistry()
    samples = parallel_map(run_study_sample, configs, jobs=jobs, perf=perf)
    fallbacks = perf.counters.get("parallel.pool_fallback", 0)
    if fallbacks:
        for sample in samples:
            if sample.perf is not None:
                sample.perf.setdefault("counters", {})[
                    "parallel.pool_fallback"] = fallbacks
    return samples


# -- the sharded ecosystem scan ----------------------------------------------
#
# A paper-scale DL-1 scan is embarrassingly parallel over Alexa ranks:
# every per-rank stream of the lazy world model is keyed by
# ``derive_seed(seed, f"...-{rank}")``, so a worker needs nothing from its
# neighbours.  Workers stream each rank's registered-candidate states
# through a generator (never a list), fold them into
# :class:`~repro.ecosystem.aggregates.ScanAggregates`, and ship only those
# counts back; the merged digest is byte-identical to the serial scan's.


@dataclass(frozen=True)
class ScanShardTask:
    """One worker's share of a sharded ecosystem scan (picklable)."""

    seed: int
    start_rank: int            # inclusive
    stop_rank: int             # exclusive
    #: size of the whole scan's target universe — must be the same for
    #: every shard, or target-collision skipping diverges from serial
    max_rank: int
    config: Optional[InternetConfig] = None
    exclude: Tuple[str, ...] = ()
    #: chaos schedule; crash/hang specs whose rank falls in this shard's
    #: range fire on matching attempts (see :meth:`FaultPlan.crash_spec_for_shard`)
    fault_plan: Optional[FaultPlan] = None
    #: 1-based retry attempt — requeued shards run with ``attempt+1``, so
    #: a spec with ``failures=N`` kills attempts 1..N and lets N+1 pass
    attempt: int = 1
    #: churn generations of the evolved world, as sorted (rank, generation)
    #: pairs (a tuple so the task stays hashable/picklable); empty means
    #: the pristine day-0 world
    churn: Tuple[Tuple[int, int], ...] = ()
    #: collect per-phase wall-clock (shard setup vs shard work, and the
    #: scan loop's setup/draw/probe split) into ``ScanShard.perf``
    collect_perf: bool = False


@dataclass(frozen=True)
class ScanShard:
    """A completed shard: its rank range and streaming aggregates."""

    start_rank: int
    stop_rank: int
    aggregates: ScanAggregates
    #: :meth:`PerfRegistry.snapshot` of the shard's phase timers, when
    #: the task asked for them (picklable plain dicts)
    perf: Optional[Dict] = None


def run_scan_shard(task: ScanShardTask) -> ScanShard:
    """Scan one rank range of the lazy world (module-level for pickling)."""
    from repro.ecosystem.world import WorldModel

    if task.fault_plan is not None:
        spec = task.fault_plan.crash_spec_for_shard(
            task.start_rank, task.stop_rank, task.attempt)
        if spec is not None:
            if spec.mode == "hang":
                time.sleep(spec.hang_seconds)
            else:
                raise InjectedWorkerCrash(
                    f"injected crash in shard [{task.start_rank},"
                    f"{task.stop_rank}) attempt {task.attempt}")
    perf = PerfRegistry() if task.collect_perf else None
    setup_start = time.perf_counter()
    world = WorldModel(task.seed, task.config,
                       churn=dict(task.churn) if task.churn else None)
    setup_seconds = time.perf_counter() - setup_start
    work_start = time.perf_counter()
    aggregates = world.scan_ranks(task.start_rank, task.stop_rank,
                                  max_rank=task.max_rank,
                                  exclude=task.exclude, perf=perf)
    if perf is not None:
        perf.add_seconds("scan.shard_setup_seconds", setup_seconds)
        perf.add_seconds("scan.shard_work_seconds",
                         time.perf_counter() - work_start)
    return ScanShard(start_rank=task.start_rank, stop_rank=task.stop_rank,
                     aggregates=aggregates,
                     perf=perf.snapshot() if perf is not None else None)


def fold_shard_perf(perf: Optional[PerfRegistry],
                    shard_perf: Optional[Dict]) -> None:
    """Fold one shard's perf snapshot into the driver-side registry."""
    if perf is None or not shard_perf:
        return
    for name, stat in shard_perf.get("timers", {}).items():
        perf.add_seconds(name, stat["seconds"], calls=stat["calls"])
    for name, amount in shard_perf.get("counters", {}).items():
        perf.count(name, amount)


def partition_ranks(max_rank: int,
                    shards: int) -> List[Tuple[int, int]]:
    """Split ranks ``1..max_rank`` into contiguous half-open ranges.

    Every rank lands in exactly one ``[start, stop)`` range (ranks are
    shard-atomic); ranges differ in size by at most one.
    """
    if max_rank < 1:
        raise ValueError("max_rank must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, max_rank)
    base, extra = divmod(max_rank, shards)
    ranges: List[Tuple[int, int]] = []
    start = 1
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def run_sharded_scan(seed: int, max_rank: int, jobs: Optional[int] = None,
                     config: Optional[InternetConfig] = None,
                     exclude: Sequence[str] = (),
                     churn: Sequence[Tuple[int, int]] = (),
                     perf: Optional[PerfRegistry] = None) -> ScanAggregates:
    """Scan ranks ``1..max_rank`` of the lazy world, fanned over workers.

    ``jobs=None`` or ``1`` runs serially in-process; either way the
    merged aggregates (and their digest) are identical, which the shard
    determinism tests pin down.  ``churn`` evolves the world by the
    given (rank, generation) pairs (see :mod:`repro.ecosystem.delta`);
    ``perf`` collects the per-phase timers (setup/draw/probe per shard,
    plus ``scan.merge_seconds`` for the fold) into one registry.
    """
    shard_count = jobs if jobs and jobs > 1 else 1
    tasks = [ScanShardTask(seed=seed, start_rank=start, stop_rank=stop,
                           max_rank=max_rank, config=config,
                           exclude=tuple(exclude),
                           churn=tuple(churn),
                           collect_perf=perf is not None)
             for start, stop in partition_ranks(max_rank, shard_count)]
    shards = parallel_map(run_scan_shard, tasks, jobs=jobs)
    merge_start = time.perf_counter()
    merged = ScanAggregates()
    for shard in shards:
        merged.merge(shard.aggregates)
    merge_seconds = time.perf_counter() - merge_start
    if perf is not None:
        for shard in shards:
            fold_shard_perf(perf, shard.perf)
        perf.add_seconds("scan.merge_seconds", merge_seconds)
    return merged


# -- self-healing sharded scans ----------------------------------------------
#
# ``run_sharded_scan`` assumes every worker survives; at paper scale (days
# of wall-clock over millions of ranks) that assumption fails.  The
# resilient driver below treats each shard as a retryable unit of work:
# crashed or timed-out shards are requeued with backoff, completed shards
# are checkpointed as canonical :class:`ScanAggregates` dicts so an
# interrupted run resumes where it died, and when retries are exhausted
# the result is explicitly *degraded* — it names the exact unscanned rank
# ranges instead of silently returning partial counts.


@dataclass(frozen=True)
class ShardRetryPolicy:
    """Retry/timeout discipline for one sharded scan.

    ``shard_timeout_seconds=None`` disables the per-shard timeout (hung
    workers are then indistinguishable from slow ones).  Backoff between
    attempts is real wall-clock sleep — keep it at 0 in tests.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    shard_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if (self.shard_timeout_seconds is not None
                and self.shard_timeout_seconds <= 0):
            raise ValueError("shard_timeout_seconds must be positive")

    def delay_before(self, attempt: int) -> float:
        """Seconds to back off before retry ``attempt`` (2-based)."""
        if self.backoff_seconds <= 0 or attempt <= 1:
            return 0.0
        return self.backoff_seconds * self.backoff_factor ** (attempt - 2)


@dataclass(frozen=True)
class ShardOutcome:
    """How one shard's rank range ended up: scanned, resumed, or lost."""

    start_rank: int
    stop_rank: int
    status: str                # "completed" | "resumed" | "failed"
    attempts: int              # 0 for checkpoint-resumed shards
    error: Optional[str] = None


@dataclass(frozen=True)
class ResilientScanResult:
    """A completed (possibly degraded) self-healing sharded scan.

    ``degraded`` is True iff any shard exhausted its retries; the merged
    ``aggregates`` then cover only the scanned ranges, and
    ``unscanned_ranges`` names the holes exactly so a follow-up run (or
    a checkpoint resume) can fill them.
    """

    aggregates: ScanAggregates
    outcomes: Tuple[ShardOutcome, ...]
    degraded: bool
    unscanned_ranges: Tuple[Tuple[int, int], ...]
    attempts_total: int
    plan_digest: Optional[str] = None

    def summary_lines(self) -> List[str]:
        """Human-readable robustness report for CLI/report output."""
        completed = sum(1 for o in self.outcomes if o.status == "completed")
        resumed = sum(1 for o in self.outcomes if o.status == "resumed")
        lines = [
            f"shards: {len(self.outcomes)} "
            f"(completed {completed}, resumed {resumed}, "
            f"failed {len(self.unscanned_ranges)})",
            f"attempts: {self.attempts_total}",
        ]
        if self.plan_digest is not None:
            lines.append(f"fault plan digest: {self.plan_digest}")
        if self.degraded:
            ranges = ", ".join(f"[{start},{stop})"
                               for start, stop in self.unscanned_ranges)
            lines.append(f"DEGRADED — unscanned rank ranges: {ranges}")
        else:
            lines.append("complete — every rank range scanned")
        return lines


class ScanCheckpoint:
    """Durable shard-level progress for one (seed, max_rank) scan.

    One JSON file maps ``"start-stop"`` range keys to canonical
    :class:`ScanAggregates` dicts.  Writes are atomic (tmp + rename), and
    the canonical round-trip preserves digests exactly, so a resumed scan
    is byte-identical to an uninterrupted one.  Loading a checkpoint
    written for a different seed or universe size is an error, not a
    silent wrong answer.
    """

    def __init__(self, path: Union[str, Path], seed: int,
                 max_rank: int) -> None:
        self.path = Path(path)
        self.seed = seed
        self.max_rank = max_rank
        self._shards: Dict[Tuple[int, int], ScanAggregates] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                raise ValueError("checkpoint root is not an object")
        except (ValueError, UnicodeDecodeError) as error:
            # torn write, truncation, or plain corruption: a clear
            # diagnosis (and exit code 3), not a bare JSONDecodeError
            raise CheckpointCorruptError(
                f"scan checkpoint {self.path} is unreadable "
                f"({error}); delete it to start fresh") from error
        if data.get("seed") != self.seed or data.get("max_rank") != self.max_rank:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was written for "
                f"seed={data.get('seed')} max_rank={data.get('max_rank')}, "
                f"not seed={self.seed} max_rank={self.max_rank}")
        try:
            for key, payload in data.get("shards", {}).items():
                start_text, _, stop_text = key.partition("-")
                self._shards[(int(start_text), int(stop_text))] = (
                    ScanAggregates.from_canonical_dict(payload))
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise CheckpointCorruptError(
                f"scan checkpoint {self.path} has a malformed shard "
                f"payload ({error}); delete it to start fresh") from error

    def get(self, start_rank: int, stop_rank: int
            ) -> Optional[ScanAggregates]:
        return self._shards.get((start_rank, stop_rank))

    def record(self, start_rank: int, stop_rank: int,
               aggregates: ScanAggregates) -> None:
        """Persist one completed shard (atomic rewrite of the file)."""
        self._shards[(start_rank, stop_rank)] = aggregates
        self._write()

    @property
    def completed_count(self) -> int:
        return len(self._shards)

    def _write(self) -> None:
        payload = {
            "seed": self.seed,
            "max_rank": self.max_rank,
            "shards": {f"{start}-{stop}": aggregates.canonical_dict()
                       for (start, stop), aggregates
                       in sorted(self._shards.items())},
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        # fsync before the rename: os.replace is atomic against *other
        # writers*, but without the flush a crash can still publish a
        # torn file (the rename survives, the data blocks may not)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


def _map_shards_guarded(tasks: Sequence[ScanShardTask],
                        jobs: Optional[int],
                        retry: ShardRetryPolicy,
                        perf: Optional[PerfRegistry]
                        ) -> List[Union[ScanShard, str]]:
    """Run every task, trapping per-task failures as error strings.

    Unlike :func:`parallel_map`, one crashing/hanging shard never takes
    the round down: its slot holds the error text and the caller decides
    whether to requeue.  Pool-level breakage (unpicklable work, sandbox
    without workers) still degrades loudly to the serial path.
    """
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return _serial_shards_guarded(tasks)
    try:
        results: List[Union[ScanShard, str]] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            futures = [pool.submit(run_scan_shard, task) for task in tasks]
            for future in futures:
                try:
                    results.append(
                        future.result(timeout=retry.shard_timeout_seconds))
                except FutureTimeoutError:
                    future.cancel()
                    results.append(
                        f"shard timed out after "
                        f"{retry.shard_timeout_seconds}s")
                except BrokenProcessPool:
                    raise
                except Exception as error:
                    results.append(f"{type(error).__name__}: {error}")
        return results
    except (pickle.PicklingError, AttributeError, BrokenProcessPool,
            OSError) as error:
        _note_pool_fallback(error, perf)
        return _serial_shards_guarded(tasks)


def _serial_shards_guarded(tasks: Sequence[ScanShardTask]
                           ) -> List[Union[ScanShard, str]]:
    results: List[Union[ScanShard, str]] = []
    for task in tasks:
        try:
            results.append(run_scan_shard(task))
        except Exception as error:
            results.append(f"{type(error).__name__}: {error}")
    return results


def run_resilient_scan(seed: int, max_rank: int, jobs: Optional[int] = None,
                       config: Optional[InternetConfig] = None,
                       exclude: Sequence[str] = (),
                       fault_plan: Optional[FaultPlan] = None,
                       retry: Optional[ShardRetryPolicy] = None,
                       checkpoint_path: Optional[Union[str, Path]] = None,
                       perf: Optional[PerfRegistry] = None
                       ) -> ResilientScanResult:
    """Self-healing sharded scan: crashed shards requeue, progress persists.

    The happy path merges to the same digest as :func:`run_sharded_scan`
    (and the serial scan) for any jobs count — shard work is a pure
    function of its rank range.  Injected crashes/hangs from
    ``fault_plan`` (and real worker failures) are retried up to
    ``retry.max_attempts`` with optional backoff; shards that still fail
    are reported as explicit unscanned ranges rather than silently
    missing counts.  With ``checkpoint_path``, completed shards are
    written through a :class:`ScanCheckpoint` and skipped on re-runs.
    """
    retry = retry if retry is not None else ShardRetryPolicy()
    shard_count = jobs if jobs and jobs > 1 else 1
    ranges = partition_ranks(max_rank, shard_count)
    checkpoint = (ScanCheckpoint(checkpoint_path, seed, max_rank)
                  if checkpoint_path is not None else None)

    completed: Dict[Tuple[int, int], ScanAggregates] = {}
    resumed: set = set()
    attempts_made: Dict[Tuple[int, int], int] = {}
    errors: Dict[Tuple[int, int], str] = {}

    pending: List[Tuple[int, int, int]] = []   # (start, stop, attempt)
    for start, stop in ranges:
        cached = checkpoint.get(start, stop) if checkpoint else None
        if cached is not None:
            completed[(start, stop)] = cached
            resumed.add((start, stop))
            attempts_made[(start, stop)] = 0
        else:
            pending.append((start, stop, 1))

    while pending:
        for _, _, attempt in pending:
            delay = retry.delay_before(attempt)
            if delay > 0:
                time.sleep(delay)
                break   # one backoff per round, not per shard
        tasks = [ScanShardTask(seed=seed, start_rank=start, stop_rank=stop,
                               max_rank=max_rank, config=config,
                               exclude=tuple(exclude),
                               fault_plan=fault_plan, attempt=attempt,
                               collect_perf=perf is not None)
                 for start, stop, attempt in pending]
        results = _map_shards_guarded(tasks, jobs, retry, perf)
        requeued: List[Tuple[int, int, int]] = []
        for task, result in zip(tasks, results):
            key = (task.start_rank, task.stop_rank)
            attempts_made[key] = task.attempt
            if isinstance(result, ScanShard):
                completed[key] = result.aggregates
                fold_shard_perf(perf, result.perf)
                if checkpoint is not None:
                    checkpoint.record(task.start_rank, task.stop_rank,
                                      result.aggregates)
            elif task.attempt < retry.max_attempts:
                if perf is not None:
                    perf.count("scan.shard_retries")
                requeued.append((task.start_rank, task.stop_rank,
                                 task.attempt + 1))
            else:
                errors[key] = result
        pending = requeued

    merged = ScanAggregates()
    outcomes: List[ShardOutcome] = []
    unscanned: List[Tuple[int, int]] = []
    for start, stop in ranges:
        key = (start, stop)
        if key in completed:
            merged.merge(completed[key])
            status = "resumed" if key in resumed else "completed"
            outcomes.append(ShardOutcome(start, stop, status,
                                         attempts_made[key]))
        else:
            unscanned.append(key)
            outcomes.append(ShardOutcome(start, stop, "failed",
                                         attempts_made[key],
                                         error=errors.get(key)))
    if perf is not None and unscanned:
        perf.count("scan.unscanned_ranges", len(unscanned))
    return ResilientScanResult(
        aggregates=merged,
        outcomes=tuple(outcomes),
        degraded=bool(unscanned),
        unscanned_ranges=tuple(unscanned),
        attempts_total=sum(attempts_made.values()),
        plan_digest=fault_plan.digest() if fault_plan is not None else None,
    )


def record_stream_digest(records: Iterable[CollectedRecord]) -> str:
    """SHA-256 over the full repr of every record, in stream order.

    Two runs produce the same digest iff their record streams match
    field-for-field — the byte-identical bar the cached and parallel
    paths are held to.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(repr(record).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def record_content_key(record: CollectedRecord) -> bytes:
    """Canonical content projection of one record, minus the raw message.

    The bounded-memory streaming mode releases each delivered message
    once its record is emitted (``tokenized.original=None``), so
    :func:`record_stream_digest` — which hashes the full repr, original
    included — cannot compare it against a retaining run.  This key
    covers every analysis-visible field *except* the back-reference, and
    is identical whether or not the original was retained.
    """
    tok = record.tokenized
    parts = (
        repr(tok.metadata),
        tok.body,
        repr(tok.attachments),
        repr(record.result),
        repr(record.study_domain),
        repr(record.timestamp),
        repr(record.true_kind),
        repr(record.processed),
    )
    return "\x1f".join(parts).encode("utf-8")


def record_content_digest(records: Iterable[CollectedRecord]) -> str:
    """Ordered SHA-256 over :func:`record_content_key`, in stream order.

    Comparable between retaining and bounded runs of the same driver
    (both emit records in arrival order).
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(record_content_key(record))
        digest.update(b"\x00")
    return digest.hexdigest()


_MULTISET_MODULUS = 1 << 256


def record_multiset_digest(records: Iterable[CollectedRecord]) -> str:
    """Order-independent digest: sum of per-record key hashes mod 2^256.

    The sink-mode streaming classifier emits terminal records in
    decision order and provisional ones at finalize, so its stream is a
    *permutation* of the batch stream; summing the per-record hashes
    makes equality checkable without buffering either side.
    """
    total = 0
    for record in records:
        key_hash = hashlib.sha256(record_content_key(record)).digest()
        total = (total + int.from_bytes(key_hash, "big")) % _MULTISET_MODULUS
    return f"{total:064x}"


class RecordDigestSink:
    """A ``record_sink`` that keeps counts and a multiset digest only.

    The memory-model endpoint: a paper-scale streaming run can verify
    its record stream against a batch run's
    :func:`record_multiset_digest` while retaining O(1) state.
    """

    def __init__(self) -> None:
        self.count = 0
        self.true_typo_count = 0
        self._total = 0

    def __call__(self, record: CollectedRecord) -> None:
        self.count += 1
        if record.is_true_typo:
            self.true_typo_count += 1
        key_hash = hashlib.sha256(record_content_key(record)).digest()
        self._total = ((self._total + int.from_bytes(key_hash, "big"))
                       % _MULTISET_MODULUS)

    def digest(self) -> str:
        return f"{self._total:064x}"

    # -- durable state (the study checkpoint's sink payload) -----------------

    def state_dict(self) -> Dict:
        """The sink's O(1) accumulator state, JSON-ready."""
        return {
            "count": self.count,
            "true_typo_count": self.true_typo_count,
            "total": f"{self._total:064x}",
        }

    def restore_state(self, data: Dict) -> None:
        self.count = data["count"]
        self.true_typo_count = data["true_typo_count"]
        self._total = int(data["total"], 16)
