"""Parallel multi-seed study engine.

One simulated seven-month study is a single draw from the generative
world; the robustness sweeps, the ablation benches, and the calibration
workflows all need *many* draws.  This module fans independent
:class:`StudyRunner` configurations out over worker processes:

* every run is fully determined by its :class:`ExperimentConfig` (seed
  included), so results are identical whether computed serially or on a
  pool — :func:`record_stream_digest` makes that property testable;
* workers return :class:`StudySample`, a picklable projection of
  :class:`~repro.experiment.runner.StudyResults` — the live
  infrastructure (SMTP servers holding policy closures) never crosses a
  process boundary;
* child seeds come from :func:`~repro.util.rand.derive_seed`, so a
  parallel sweep's seed list is itself reproducible from one base seed.

On machines without usable worker processes (or for ``jobs=None``)
everything degrades to the serial path with the same outputs.
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.analysis.records import CollectedRecord
from repro.core.targets import StudyCorpus
from repro.ecosystem.aggregates import ScanAggregates
from repro.ecosystem.internet import InternetConfig
from repro.experiment.config import ExperimentConfig
from repro.experiment.runner import StudyResults, StudyRunner
from repro.util.rand import derive_seed
from repro.util.simtime import CollectionWindow

__all__ = [
    "StudySample",
    "run_study_sample",
    "run_study_samples",
    "derive_child_seeds",
    "parallel_map",
    "record_stream_digest",
    "ScanShardTask",
    "ScanShard",
    "run_scan_shard",
    "partition_ranks",
    "run_sharded_scan",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class StudySample:
    """The picklable cross-process view of one completed study run.

    Everything the sweep/analysis layers consume survives the trip:
    records, corpus, window, counts, and the perf snapshot.  The live
    infrastructure objects stay behind in the worker.
    """

    config: ExperimentConfig
    corpus: StudyCorpus
    window: CollectionWindow
    records: Tuple[CollectedRecord, ...]
    malicious_hashes: FrozenSet[str]
    sent_count: int
    delivered_count: int
    funnel_correct: int
    funnel_total: int
    perf: Optional[Dict] = None

    @property
    def seed(self) -> int:
        return self.config.seed

    def true_typo_records(self) -> List[CollectedRecord]:
        """The records that survived every filter layer."""
        return [r for r in self.records if r.is_true_typo]

    def funnel_accuracy(self) -> Tuple[int, int]:
        """(correct, total) verdicts vs. ground truth, as computed in-run."""
        return self.funnel_correct, self.funnel_total

    def record_digest(self) -> str:
        """Content digest of the record stream (for determinism checks)."""
        return record_stream_digest(self.records)


def sample_from_results(results: StudyResults) -> StudySample:
    """Project live :class:`StudyResults` onto the picklable sample."""
    correct, total = results.funnel_accuracy()
    return StudySample(
        config=results.config,
        corpus=results.corpus,
        window=results.window,
        records=tuple(results.records),
        malicious_hashes=frozenset(results.malicious_hashes),
        sent_count=results.sent_count,
        delivered_count=results.delivered_count,
        funnel_correct=correct,
        funnel_total=total,
        perf=results.perf,
    )


def run_study_sample(config: ExperimentConfig) -> StudySample:
    """Run one full study and return its picklable sample.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can ship
    it to workers by name.
    """
    return sample_from_results(StudyRunner(config).run())


def derive_child_seeds(base_seed: int, count: int,
                       name: str = "parallel-study") -> List[int]:
    """``count`` deterministic, distinct child seeds of ``base_seed``.

    Uses the same SHA-256 derivation as :meth:`SeededRng.child`, so a
    sweep's whole seed list is reproducible from (base_seed, name).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [derive_seed(base_seed, f"{name}-{index}")
            for index in range(count)]


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: Optional[int] = None) -> List[R]:
    """Order-preserving map over worker processes, serial when ``jobs<=1``.

    Falls back to the serial path when the pool cannot be used at all
    (unpicklable work or a sandbox without worker processes); exceptions
    raised by ``fn`` itself propagate unchanged in both modes.
    """
    work = list(items)
    if jobs is None or jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            return list(pool.map(fn, work))
    except (pickle.PicklingError, AttributeError, BrokenProcessPool,
            OSError):
        # AttributeError is how lambdas/closures fail to pickle; a real
        # AttributeError from ``fn`` re-raises identically on the serial
        # retry, so nothing is masked.
        return [fn(item) for item in work]


def run_study_samples(configs: Sequence[ExperimentConfig],
                      jobs: Optional[int] = None) -> List[StudySample]:
    """Run one study per config, optionally on a process pool.

    Results come back in input order and are identical to the serial
    path: each run is a pure function of its config.
    """
    return parallel_map(run_study_sample, configs, jobs=jobs)


# -- the sharded ecosystem scan ----------------------------------------------
#
# A paper-scale DL-1 scan is embarrassingly parallel over Alexa ranks:
# every per-rank stream of the lazy world model is keyed by
# ``derive_seed(seed, f"...-{rank}")``, so a worker needs nothing from its
# neighbours.  Workers stream each rank's registered-candidate states
# through a generator (never a list), fold them into
# :class:`~repro.ecosystem.aggregates.ScanAggregates`, and ship only those
# counts back; the merged digest is byte-identical to the serial scan's.


@dataclass(frozen=True)
class ScanShardTask:
    """One worker's share of a sharded ecosystem scan (picklable)."""

    seed: int
    start_rank: int            # inclusive
    stop_rank: int             # exclusive
    #: size of the whole scan's target universe — must be the same for
    #: every shard, or target-collision skipping diverges from serial
    max_rank: int
    config: Optional[InternetConfig] = None
    exclude: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ScanShard:
    """A completed shard: its rank range and streaming aggregates."""

    start_rank: int
    stop_rank: int
    aggregates: ScanAggregates


def run_scan_shard(task: ScanShardTask) -> ScanShard:
    """Scan one rank range of the lazy world (module-level for pickling)."""
    from repro.ecosystem.world import WorldModel

    world = WorldModel(task.seed, task.config)
    aggregates = world.scan_ranks(task.start_rank, task.stop_rank,
                                  max_rank=task.max_rank,
                                  exclude=task.exclude)
    return ScanShard(start_rank=task.start_rank, stop_rank=task.stop_rank,
                     aggregates=aggregates)


def partition_ranks(max_rank: int,
                    shards: int) -> List[Tuple[int, int]]:
    """Split ranks ``1..max_rank`` into contiguous half-open ranges.

    Every rank lands in exactly one ``[start, stop)`` range (ranks are
    shard-atomic); ranges differ in size by at most one.
    """
    if max_rank < 1:
        raise ValueError("max_rank must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, max_rank)
    base, extra = divmod(max_rank, shards)
    ranges: List[Tuple[int, int]] = []
    start = 1
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def run_sharded_scan(seed: int, max_rank: int, jobs: Optional[int] = None,
                     config: Optional[InternetConfig] = None,
                     exclude: Sequence[str] = ()) -> ScanAggregates:
    """Scan ranks ``1..max_rank`` of the lazy world, fanned over workers.

    ``jobs=None`` or ``1`` runs serially in-process; either way the
    merged aggregates (and their digest) are identical, which the shard
    determinism tests pin down.
    """
    shard_count = jobs if jobs and jobs > 1 else 1
    tasks = [ScanShardTask(seed=seed, start_rank=start, stop_rank=stop,
                           max_rank=max_rank, config=config,
                           exclude=tuple(exclude))
             for start, stop in partition_ranks(max_rank, shard_count)]
    shards = parallel_map(run_scan_shard, tasks, jobs=jobs)
    merged = ScanAggregates()
    for shard in shards:
        merged.merge(shard.aggregates)
    return merged


def record_stream_digest(records: Iterable[CollectedRecord]) -> str:
    """SHA-256 over the full repr of every record, in stream order.

    Two runs produce the same digest iff their record streams match
    field-for-field — the byte-identical bar the cached and parallel
    paths are held to.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(repr(record).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
