"""Funnel validation by sampling (paper §4.3, "Performance analysis").

The paper validated its funnel by manually reading samples: 5 random
surviving emails per expected-receiver-typo domain (77 labelled, 80%
genuinely not spam), plus 26 receiver-classified emails arriving at
domains built for SMTP typos (25 of 26 correctly identified).  The
simulation replays that protocol with ground truth standing in for the
manual reader — same sampling design, exact labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord
from repro.core.targets import StudyCorpus
from repro.core.taxonomy import TypoEmailKind
from repro.util.rand import SeededRng

__all__ = ["SampledValidation", "validate_survivors_by_sampling",
           "validate_receiver_typos_at_smtp_domains"]


@dataclass
class SampledValidation:
    """Outcome of one §4.3-style manual-analysis replay."""

    sampled: int
    genuine: int
    per_domain: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def genuine_fraction(self) -> float:
        return self.genuine / self.sampled if self.sampled else float("nan")


def validate_survivors_by_sampling(records: Sequence[CollectedRecord],
                                   corpus: StudyCorpus,
                                   rng: SeededRng,
                                   per_domain_sample: int = 5
                                   ) -> SampledValidation:
    """Sample surviving receiver typos per domain and check them.

    Mirrors the paper: up to ``per_domain_sample`` surviving emails per
    receiver-purpose domain, "read" against ground truth.  The paper's
    reader found 80% genuinely non-spam; the simulation's number is the
    honest analogue (surviving stealth spam is the 20%).
    """
    survivors_by_domain: Dict[str, List[CollectedRecord]] = {}
    receiver_domains = {d.domain for d in corpus.by_purpose("receiver")}
    for record in records:
        if not record.is_true_typo or record.result.kind != "receiver":
            continue
        domain = (record.study_domain or "").lower()
        if domain in receiver_domains:
            survivors_by_domain.setdefault(domain, []).append(record)

    validation = SampledValidation(sampled=0, genuine=0)
    for domain in sorted(survivors_by_domain):
        pool = survivors_by_domain[domain]
        sample = (pool if len(pool) <= per_domain_sample
                  else rng.sample(pool, per_domain_sample))
        genuine = sum(1 for record in sample
                      if record.true_kind is not None
                      and record.true_kind is not TypoEmailKind.SPAM)
        validation.sampled += len(sample)
        validation.genuine += genuine
        validation.per_domain[domain] = (genuine, len(sample))
    return validation


def validate_receiver_typos_at_smtp_domains(
        records: Sequence[CollectedRecord],
        corpus: StudyCorpus) -> SampledValidation:
    """Check the surprise finding: receiver typos at SMTP-purpose domains.

    The paper analysed 26 such emails and found 25 were correctly
    identified as receiver typos.  Here every such record is checked
    against ground truth (no sampling needed — the truth is free).
    """
    smtp_domains = {d.domain for d in corpus.by_purpose("smtp")}
    validation = SampledValidation(sampled=0, genuine=0)
    for record in records:
        if not record.is_true_typo or record.result.kind != "receiver":
            continue
        domain = (record.study_domain or "").lower()
        if domain not in smtp_domains:
            continue
        genuine = (record.true_kind is not None
                   and record.true_kind is TypoEmailKind.RECEIVER)
        validation.sampled += 1
        validation.genuine += int(genuine)
        tally = validation.per_domain.setdefault(domain, (0, 0))
        validation.per_domain[domain] = (tally[0] + int(genuine),
                                         tally[1] + 1)
    return validation
