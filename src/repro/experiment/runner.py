"""The end-to-end seven-month study simulation (paper Section 4).

Wires everything together the way Figure 1 does: the 76-domain corpus is
registered with catch-all zones, each domain gets a dedicated VPS
forwarding into the main collection server, and four traffic generators
(receiver typos, reflection typos, SMTP typos, spam) drive day-by-day
SMTP deliveries across the collection window — including the outage days
on which the overwhelmed infrastructure recorded nothing.  Afterwards the
corpus flows through the processing pipeline and the five-layer funnel,
yielding the :class:`CollectedRecord` stream every §4.4 analysis and
figure consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from pathlib import Path
from typing import Union

from repro.analysis.records import CollectedRecord
from repro.core.targets import StudyCorpus, build_study_corpus
from repro.core.taxonomy import TypoEmailKind
from repro.dnssim import DomainRegistry, Resolver
from repro.experiment.checkpoint import StudyCheckpoint, config_identity
from repro.experiment.classify import (
    ClassifyContext,
    RecordSink,
    StreamingClassifier,
    classify_corpus_records,
)
from repro.experiment.config import ExperimentConfig
from repro.faultsim.inject import FaultyResolver, StudyFaultInjector
from repro.faultsim.plan import InjectedStudyCrash
from repro.infra import CollectionInfrastructure, provision_study
from repro.smtpsim import Network, SmtpClient
from repro.smtpsim.message import EmailMessage
from repro.smtpsim.retryqueue import RetryQueue
from repro.spamfilter.funnel import Verdict
from repro.util.errors import CheckpointMismatchError, ConfigError
from repro.util.perf import PerfRegistry, throughput
from repro.util.rand import SeededRng
from repro.util.simtime import SECONDS_PER_DAY, CollectionWindow, paper_window
from repro.util.textcache import memo_totals
from repro.workloads.events import SendRequest
from repro.workloads.hamgen import ReceiverTypoGenerator
from repro.workloads.reflection import ReflectionTypoGenerator
from repro.workloads.smtp_typo import SmtpTypoGenerator
from repro.workloads.spamgen import SpamGenerator

__all__ = ["StudyResults", "StudyRunner", "DurableStudyOutcome",
           "run_durable_study"]


@dataclass
class StudyResults:
    """Everything a completed run exposes to the analyses."""

    config: ExperimentConfig
    corpus: StudyCorpus
    window: CollectionWindow
    infra: CollectionInfrastructure
    records: List[CollectedRecord]
    malicious_hashes: Set[str]
    sent_count: int = 0
    delivered_count: int = 0
    #: per-phase timers and call/byte counters (see :mod:`repro.util.perf`)
    perf: Optional[Dict] = None
    #: fault-injection accounting (plan digest, injected faults, retry
    #: queue stats, collector gap/coverage report) — None without a plan
    robustness: Optional[Dict] = None

    # -- convenience views ---------------------------------------------------

    def true_typo_records(self) -> List[CollectedRecord]:
        """The records that survived every filter layer."""
        return [r for r in self.records if r.is_true_typo]

    def per_domain_yearly_true_typos(self) -> Dict[str, float]:
        """Measured yearly receiver-typo volume per study domain.

        This is the dependent variable of the Section 6 regression —
        exactly what the paper measured on its own registrations.
        """
        counts: Dict[str, int] = {}
        for record in self.records:
            if not record.is_true_typo or record.result.kind != "receiver":
                continue
            if record.study_domain:
                counts[record.study_domain] = counts.get(
                    record.study_domain, 0) + 1
        project = self.window.yearly_projection
        scale = self.config.ham_scale
        return {domain: project(count) / scale
                for domain, count in counts.items()}

    def funnel_accuracy(self) -> Tuple[int, int]:
        """(correct, total) of verdicts vs. ground truth.

        Correctness follows the study's purpose: ground-truth spam must
        *not* end up in the true-typo bin (whether Layer 1–3 or the
        frequency layer removed it is immaterial); reflection mail should
        be flagged as automated (or frequency-filtered — recurring
        automated streams are); receiver typos must survive; SMTP typos
        may survive or land in the frequency band the paper itself treats
        as ambiguous (its 415–5,970/yr range).
        """
        correct = total = 0
        for record in self.records:
            if record.true_kind is None:
                continue
            total += 1
            verdict = record.verdict
            if record.true_kind is TypoEmailKind.SPAM:
                correct += verdict is not Verdict.TRUE_TYPO
            elif record.true_kind is TypoEmailKind.REFLECTION:
                correct += verdict in (Verdict.REFLECTION,
                                       Verdict.FREQUENCY_FILTERED)
            elif record.true_kind is TypoEmailKind.SMTP:
                correct += verdict in (Verdict.TRUE_TYPO,
                                       Verdict.FREQUENCY_FILTERED)
            else:
                correct += verdict is Verdict.TRUE_TYPO
        return correct, total


class StudyRunner:
    """Builds the world and runs the collection experiment."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._rng = SeededRng(self.config.seed, name="study")

    def run(self, record_sink: Optional[RecordSink] = None,
            checkpoint_path: Optional[Union[str, Path]] = None,
            resume: bool = False,
            checkpoint_interval: int = 1) -> StudyResults:
        """Provision the world, simulate the window, classify everything.

        ``record_sink`` (streaming mode only) receives each
        :class:`CollectedRecord` as its verdict becomes final instead of
        accumulating them; the returned results then carry an empty
        record list.

        ``checkpoint_path`` turns on the durable engine: the full
        simulation state is snapshotted at day boundaries (every
        ``checkpoint_interval`` days, atomically) so a killed run can be
        restarted with the same path and continue from the last completed
        day — producing the byte-identical record stream an
        uninterrupted run would have.  If the file already exists the
        run resumes from it; ``resume=True`` additionally *requires* it
        to exist.
        """
        config = self.config
        if record_sink is not None and not config.streaming_classify:
            raise ValueError("record_sink requires streaming_classify=True")
        perf = PerfRegistry()
        cache_hits0, cache_misses0 = memo_totals()
        with perf.timer("run"):
            with perf.timer("provision"):
                corpus = build_study_corpus()
                registry = DomainRegistry()
                network = Network(self._rng.child("network"))
                infra = provision_study(corpus, registry, network)
                collector = infra.collector
                if config.smtp_forwarding:
                    from repro.infra.forwarding import attach_forwarding

                    attach_forwarding(infra, network)
                window = paper_window(outage_spans=config.outage_spans)

            # -- fault injection (only when a non-trivial plan is given:
            # the fault-free paths below must stay byte-identical)
            plan = config.fault_plan
            injector: Optional[StudyFaultInjector] = None
            retry_queue: Optional[RetryQueue] = None
            if plan is not None and not plan.is_empty:
                injector = StudyFaultInjector(plan, window.total_days)
                retry_queue = RetryQueue(plan.retry)
                collector.schedule_outage_days(injector.drop_days())
                for server in infra.servers.values():
                    server.fault_gate = injector.make_gate(server.hostname)

            # classification pipeline shared by batch and streaming modes
            typo_model = None
            if config.detector != "funnel":
                if config.model_path is None:
                    raise ConfigError(
                        f"detector {config.detector!r} needs a trained "
                        "model artifact; pass a model path "
                        "(see `repro train`)")
                from repro.learned.model import load_model

                typo_model = load_model(config.model_path)

            # -- living-internet scenario + drift-resilient lifecycle --------
            scenario = config.scenario
            scenario_driver = None
            lifecycle = None
            lifecycle_events: List[Dict] = []
            if scenario is not None:
                from repro.scenario.driver import ScenarioDriver

                scenario_driver = ScenarioDriver(scenario)
                if any(event.retrain for event in scenario.events):
                    if typo_model is None:
                        raise ConfigError(
                            "the scenario schedules retrain=True campaign "
                            "events, which drive the learned-model "
                            "lifecycle; run with detector='learned' (or "
                            "'both') and a trained model artifact")
                    lifecycle_dir = config.model_dir
                    if lifecycle_dir is None and checkpoint_path is not None:
                        lifecycle_dir = str(checkpoint_path) + ".models"
                    if lifecycle_dir is None:
                        raise ConfigError(
                            "retrain events need a directory for the "
                            "active/candidate/previous model artifacts; "
                            "set model_dir or run with a checkpoint path")
                    from repro.learned.lifecycle import ModelLifecycle

                    lifecycle = ModelLifecycle(lifecycle_dir,
                                               seed=scenario.seed)
                    # every (re)start replays the lifecycle fold from the
                    # same initial model: promoted artifacts are pure
                    # functions of (scenario, model), so crashed and
                    # crash-free runs converge on identical bytes
                    lifecycle.initialize(typo_model, overwrite=True)
            classify_context = ClassifyContext(
                our_domains=tuple(corpus.domain_names()),
                ip_to_domain=ClassifyContext.ip_map(infra),
                process_non_spam=config.process_non_spam,
                retain_original=config.retain_messages,
                featurize=typo_model is not None,
            )
            true_kind_by_seq: Dict[int, TypoEmailKind] = {}
            classifier: Optional[StreamingClassifier] = None
            if config.streaming_classify:
                collector.enable_streaming(
                    retain_corpus=config.retain_messages)
                classifier = StreamingClassifier(
                    classify_context, true_kind_by_seq, perf,
                    record_sink=record_sink)

            with perf.timer("build_generators"):
                generators = self._build_generators(corpus)
            resolver = Resolver(registry)
            if injector is not None:
                resolver = FaultyResolver(resolver, injector)
            client = SmtpClient(resolver, network)
            our_domains = frozenset(corpus.domain_names())
            # suffix tuple for C-speed subdomain checks (str.endswith
            # accepts a tuple); rebuilt once per run, not per email
            our_suffixes = tuple("." + d for d in our_domains)

            # -- durability: day-granular checkpoint/resume ------------------
            mode = ("sink" if classifier is not None
                    and record_sink is not None
                    else "refeed" if classifier is not None else "batch")
            checkpoint: Optional[StudyCheckpoint] = None
            identity: Optional[Dict] = None
            # keyed "12" (day boundary) / "12:retrain" (mid-retrain phase)
            crash_attempts: Dict[str, int] = {}
            checkpoints_written = 0
            start_day = 0
            resumed_from: Optional[int] = None
            sent = 0
            if plan is not None and plan.study_crashes \
                    and checkpoint_path is None:
                raise ConfigError(
                    "the fault plan schedules study-day crashes, which "
                    "only make sense with a checkpoint to resume from; "
                    "run the study with a checkpoint path")
            if checkpoint_path is not None:
                if (classifier is not None and record_sink is None
                        and not config.retain_messages):
                    raise ConfigError(
                        "bounded-memory checkpointing without a record "
                        "sink would lose already-classified records on "
                        "resume; retain messages or attach a restorable "
                        "record sink")
                if mode == "sink" and not (
                        callable(getattr(record_sink, "state_dict", None))
                        and callable(getattr(record_sink,
                                             "restore_state", None))):
                    raise ConfigError(
                        "checkpointing in sink mode needs a sink with "
                        "state_dict()/restore_state() "
                        "(e.g. RecordDigestSink)")
                checkpoint = StudyCheckpoint(checkpoint_path)
                identity = config_identity(config)
                if resume or checkpoint.exists():
                    payload = checkpoint.load(identity)
                    state = payload["state"]
                    if state.get("mode") != mode:
                        raise CheckpointMismatchError(
                            f"checkpoint {checkpoint.path} was written "
                            f"in {state.get('mode')!r} mode but this run "
                            f"is {mode!r} (record sink or retention "
                            f"changed); refusing to resume")
                    start_day = payload["next_day"]
                    resumed_from = start_day
                    crash_attempts = StudyCheckpoint.crash_attempts_from(
                        payload)
                    with perf.timer("checkpoint"):
                        sent, retry_queue = self._restore_state(
                            state, mode, collector, retry_queue, injector,
                            generators, classifier, record_sink,
                            true_kind_by_seq)
                    if scenario_driver is not None:
                        saved_driver = state.get("scenario_driver")
                        if saved_driver is not None:
                            scenario_driver.restore_state(saved_driver)
                        else:
                            scenario_driver.run(start_day)
                    if lifecycle is not None and start_day > 0:
                        # replay completed days' lifecycle cycles (their
                        # crash budgets are exhausted, so no hooks): the
                        # same initial model + the same campaign windows
                        # reproduce byte-identical promoted artifacts
                        with perf.timer("lifecycle"):
                            for scenario_day in range(1, start_day + 1):
                                for event in scenario.events_on(
                                        scenario_day):
                                    if event.retrain:
                                        lifecycle_events.append(
                                            self._run_lifecycle_cycle(
                                                lifecycle, scenario.seed,
                                                event))

            for day in range(start_day, window.total_days):
                retrain_crash = None
                retrain_attempt = 0
                if checkpoint is not None:
                    crash_spec = None
                    if plan is not None and any(
                            spec.day == day and spec.phase == "day"
                            for spec in plan.study_crashes):
                        attempt = crash_attempts.get(str(day), 0) + 1
                        crash_attempts[str(day)] = attempt
                        crash_spec = plan.crash_spec_for_study_day(
                            day, attempt)
                    if plan is not None and any(
                            spec.day == day and spec.phase == "retrain"
                            for spec in plan.study_crashes):
                        key = f"{day}:retrain"
                        retrain_attempt = crash_attempts.get(key, 0) + 1
                        crash_attempts[key] = retrain_attempt
                        retrain_crash = plan.crash_spec_for_study_day(
                            day, retrain_attempt, phase="retrain")
                    interval_due = (day > start_day and day
                                    % max(1, checkpoint_interval) == 0)
                    if (interval_due or crash_spec is not None
                            or retrain_crash is not None):
                        # a firing crash spec always forces a save (even
                        # off-interval): the persisted attempt counter is
                        # what guarantees the resumed run makes progress
                        with perf.timer("checkpoint"):
                            checkpoint.save(
                                identity, day, crash_attempts,
                                self._capture_state(
                                    mode, sent, true_kind_by_seq,
                                    collector, retry_queue, injector,
                                    generators, classifier, record_sink,
                                    scenario_driver))
                        checkpoints_written += 1
                    if crash_spec is not None:
                        raise InjectedStudyCrash(
                            f"injected study crash at day {day} (attempt "
                            f"{crash_attempts[str(day)]} of "
                            f"{crash_spec.failures} scheduled failures)")
                if injector is not None:
                    injector.begin_day(day)
                collector.begin_day(day,
                                    collecting=window.is_collecting(day))
                if scenario_driver is not None:
                    # scenario day N fires during study day N-1, so the
                    # pre-day checkpoint above brackets the event boundary
                    scenario_driver.step()
                    if lifecycle is not None:
                        for event in scenario.events_on(
                                scenario_driver.day):
                            if not event.retrain:
                                continue
                            with perf.timer("lifecycle"):
                                lifecycle_events.append(
                                    self._run_lifecycle_cycle(
                                        lifecycle, scenario.seed, event,
                                        crash_spec=retrain_crash,
                                        day=day,
                                        attempt=retrain_attempt))
                if retry_queue is not None and len(retry_queue):
                    with perf.timer("retry"):
                        self._drain_retries(client, retry_queue,
                                            (day + 1) * SECONDS_PER_DAY)
                with perf.timer("generate"):
                    requests: List[SendRequest] = []
                    for generator in generators:
                        requests.extend(generator.emails_for_day(day))
                    requests.sort(key=lambda r: r.timestamp)
                with perf.timer("deliver"):
                    for request in requests:
                        sent += 1
                        # monotone send sequence: the attribution key
                        # (object ids are reused once streaming mode
                        # releases delivered messages)
                        request.sequence = sent
                        request.message.sequence = sent
                        true_kind_by_seq[sent] = request.true_kind
                        perf.count("deliver.body_bytes",
                                   len(request.message.body))
                        attempt = self._deliver(client, infra, our_domains,
                                                our_suffixes, request)
                        if retry_queue is not None and attempt is not None:
                            result, route, ip = attempt
                            retry_queue.offer(
                                request.message, result.recipient, result,
                                request.timestamp, mode=route,
                                port=request.smtp_port, ip=ip,
                                context=request)
                if classifier is not None:
                    with perf.timer("classify"):
                        classifier.feed(collector.drain_pending())
            if checkpoint is not None:
                # terminal snapshot: next_day == total_days documents a
                # completed window; a resume from it skips straight to
                # the final retry drain + classification
                with perf.timer("checkpoint"):
                    checkpoint.save(
                        identity, window.total_days, crash_attempts,
                        self._capture_state(
                            mode, sent, true_kind_by_seq, collector,
                            retry_queue, injector, generators,
                            classifier, record_sink, scenario_driver))
                checkpoints_written += 1
            collector.set_outage(False)
            if retry_queue is not None:
                # the queue survives the window's last day: one final
                # drain, then everything left gives up with a DSN
                end_of_window = window.total_days * SECONDS_PER_DAY
                with perf.timer("retry"):
                    self._drain_retries(client, retry_queue, end_of_window)
                    retry_queue.expire_remaining(end_of_window)

            # the lifecycle's final active model (a promoted candidate,
            # or the initial artifact if every gate held/rejected) is
            # what classifies the corpus — the whole point of healing
            # drift before the batch detector runs
            active_model = typo_model
            if lifecycle is not None:
                active_model = lifecycle.active()
            with perf.timer("classify"):
                if classifier is not None:
                    classifier.feed(collector.drain_pending())
                    records = classifier.finalize()
                else:
                    records = classify_corpus_records(
                        collector.corpus, classify_context,
                        true_kind_by_seq, perf,
                        jobs=config.classify_jobs,
                        detector=config.detector,
                        model=active_model)
        delivered = collector.stats.ingested
        cache_hits, cache_misses = memo_totals()
        perf.count("emails.sent", sent)
        perf.count("emails.delivered", delivered)
        perf.count("records", classifier.emitted_count
                   if classifier is not None else len(records))
        perf.count("classify.text_cache_hits", cache_hits - cache_hits0)
        perf.count("classify.text_cache_misses",
                   cache_misses - cache_misses0)
        robustness: Optional[Dict] = None
        if injector is not None:
            perf.count("faults.injected", injector.stats.total_injected)
            perf.count("retry.recovered", retry_queue.stats.recovered)
            robustness = {
                "plan_digest": plan.digest(),
                "plan_seed": plan.seed,
                "faults": injector.stats.as_dict(),
                "retry": retry_queue.stats.as_dict(),
                "collector": collector.coverage_report(window.total_days),
            }
        if checkpoint is not None:
            if robustness is None:
                robustness = {}
            robustness["durability"] = {
                "checkpoint_path": str(checkpoint.path),
                "resumed_from_day": resumed_from,
                "checkpoints_written": checkpoints_written,
                "crash_attempts": {str(key): count for key, count
                                   in sorted(crash_attempts.items())},
            }
        if scenario_driver is not None:
            if robustness is None:
                robustness = {}
            robustness["scenario"] = {
                "name": scenario.name,
                "digest": scenario.digest(),
                "days": scenario_driver.day,
                "samples": [dict(sample)
                            for sample in scenario_driver.samples],
                "timeline_digest": scenario_driver.timeline_digest(),
                "lifecycle": ({
                    "events": lifecycle_events,
                    "decisions_digest": lifecycle.decisions_digest(),
                    "drift_digest": lifecycle.monitor().digest(),
                    "active_digest": lifecycle.active().digest(),
                } if lifecycle is not None else None),
            }
        snapshot = perf.snapshot(extra={
            "throughput": {
                "emails_sent_per_sec": throughput(sent, perf.seconds("run")),
                "emails_delivered_per_sec": throughput(
                    delivered, perf.seconds("run")),
            },
        })
        spam_generator = generators[-1]
        return StudyResults(
            config=config,
            corpus=corpus,
            window=window,
            infra=infra,
            records=records,
            malicious_hashes=set(spam_generator.malicious_hashes),
            sent_count=sent,
            delivered_count=delivered,
            perf=snapshot,
            robustness=robustness,
        )

    # -- durable state (what the study checkpoint persists) ------------------

    def _capture_state(self, mode: str, sent: int,
                       true_kind_by_seq: Dict[int, TypoEmailKind],
                       collector, retry_queue: Optional[RetryQueue],
                       injector: Optional[StudyFaultInjector],
                       generators: List,
                       classifier: Optional[StreamingClassifier],
                       record_sink: Optional[RecordSink],
                       scenario_driver=None) -> Dict:
        """The full day-boundary state block, JSON-clean.

        Everything that can diverge between a resumed and an
        uninterrupted run is here: RNG stream positions (the whole child
        tree), the send-sequence counter and kind attribution, collector
        accounting, the retained corpus (batch/refeed modes), pending
        retry jobs with their backoff positions, injector greylist,
        generator episode/campaign state, and — in sink mode — the
        classifier fold plus the sink accumulator.  Stateless pieces
        (resolver, SMTP client, infra wiring) are rebuilt from the
        config on resume.
        """
        state = {
            "mode": mode,
            "sent": sent,
            "rng": self._rng.capture_state_tree(),
            "true_kind_by_seq": {str(seq): kind.value for seq, kind
                                 in true_kind_by_seq.items()},
            "collector": collector.state_dict(),
            "corpus": ([message.to_canonical_dict()
                        for message in collector.corpus]
                       if self.config.retain_messages else None),
            "retry_queue": (retry_queue.to_canonical_dict()
                            if retry_queue is not None else None),
            "injector": (injector.state_dict()
                         if injector is not None else None),
            "smtp_typo_generator": generators[2].state_dict(),
            "spam_generator": generators[3].state_dict(),
            "classifier": (classifier.state_dict()
                           if mode == "sink" else None),
            "sink": (record_sink.state_dict()
                     if mode == "sink" else None),
        }
        # key present only for scenario runs: checkpoint bytes for every
        # pre-scenario configuration stay exactly what they were
        if scenario_driver is not None:
            state["scenario_driver"] = scenario_driver.state_dict()
        return state

    def _restore_state(self, state: Dict, mode: str, collector,
                       retry_queue: Optional[RetryQueue],
                       injector: Optional[StudyFaultInjector],
                       generators: List,
                       classifier: Optional[StreamingClassifier],
                       record_sink: Optional[RecordSink],
                       true_kind_by_seq: Dict[int, TypoEmailKind],
                       ) -> Tuple[int, Optional[RetryQueue]]:
        """Rewind a freshly built world to the checkpointed day boundary.

        The world was just constructed through the normal code path (so
        every init-time RNG draw already happened in the original
        order); this only restores the *positions* each stream had
        reached, plus all accumulated mutable state.  Returns the
        restored send counter and the (re-built) retry queue.
        """
        self._rng.restore_state_tree(state["rng"])
        for seq, value in state["true_kind_by_seq"].items():
            true_kind_by_seq[int(seq)] = TypoEmailKind(value)
        collector.restore_state(state["collector"])
        if state["corpus"] is not None:
            collector.corpus[:] = [
                EmailMessage.from_canonical_dict(entry)
                for entry in state["corpus"]]
        if retry_queue is not None:
            retry_queue = RetryQueue.from_canonical_dict(
                state["retry_queue"])
        if injector is not None:
            injector.restore_state(state["injector"])
        generators[2].restore_state(state["smtp_typo_generator"])
        generators[3].restore_state(state["spam_generator"])
        if classifier is not None:
            if mode == "sink":
                classifier.restore_state(state["classifier"])
                record_sink.restore_state(state["sink"])
            else:
                # refeed mode: replay the retained corpus through the
                # fresh funnel in its original ingest order — the fold
                # is batch-boundary independent, so this reproduces the
                # classifier state exactly without persisting it
                classifier.feed(list(collector.corpus))
        return state["sent"], retry_queue

    def _run_lifecycle_cycle(self, lifecycle, seed: int, event, *,
                             crash_spec=None, day: Optional[int] = None,
                             attempt: int = 0) -> Dict:
        """One retrain event's detect → retrain → gate → promote cycle.

        ``crash_spec`` (a retrain-phase :class:`StudyCrashSpec`) injects
        the in-process SIGKILL stand-in at the candidate-saved boundary
        — after the shadow retrain persisted its candidate, before the
        gated promote — exactly the window the resume path must heal.
        The post-cycle live-disagreement check runs on the monitor's
        baseline window, so a bad promote demotes itself immediately.
        """
        from repro.learned.lifecycle import campaign_message_window

        def hook(phase: str) -> None:
            if crash_spec is not None and phase == "candidate_saved":
                raise InjectedStudyCrash(
                    f"injected retrain crash at day {day} during "
                    f"{event.name!r} (attempt {attempt} of "
                    f"{crash_spec.failures} scheduled failures)")

        window_X, window_y = campaign_message_window(
            lifecycle.active(), seed, event.name,
            pool_size=event.pool_size, evasion_bias=event.evasion_bias)
        decision = lifecycle.run_cycle(event.name, window_X, window_y,
                                       phase_hook=hook)
        disagreement = lifecycle.check_live_disagreement(
            lifecycle.monitor().baseline_X)
        return {"event": event.name, "scenario_day": event.day,
                "decision": decision.to_dict(),
                "disagreement": disagreement}

    # -- internals ----------------------------------------------------------

    def _build_generators(self, corpus: StudyCorpus) -> List:
        config = self.config
        receiver = ReceiverTypoGenerator(
            corpus, self._rng.child("receiver"),
            yearly_true_typos=config.yearly_true_typos,
            volume_scale=config.ham_scale,
            smtp_domain_leak_rate=config.smtp_domain_leak_rate)
        reflection = ReflectionTypoGenerator(
            corpus, self._rng.child("reflection"),
            signups_per_domain=config.reflection_signups_per_domain,
            volume_scale=config.ham_scale)
        smtp_typo = SmtpTypoGenerator(
            corpus, self._rng.child("smtp-typo"),
            events_per_year=config.smtp_typo_events_per_year,
            volume_scale=config.ham_scale)
        spam = SpamGenerator(corpus, self._rng.child("spam"),
                             config=config.spam,
                             volume_scale=config.spam_scale)
        return [receiver, reflection, smtp_typo, spam]

    def _deliver(self, client: SmtpClient, infra: CollectionInfrastructure,
                 our_domains: Set[str], our_suffixes: Tuple[str, ...],
                 request: SendRequest):
        """One first delivery attempt; returns (result, mode, ip) or None.

        The return value feeds the retry queue when a fault plan is
        active; fault-free runs ignore it, so the attempt itself is
        unchanged from the original single-shot semantics.
        """
        recipient_domain = request.recipient.rpartition("@")[2].lower()
        addressed_to_us = (recipient_domain in our_domains
                           or recipient_domain.endswith(our_suffixes))
        if addressed_to_us:
            # normal MX-routed delivery: sender's MTA resolves our zone
            result = client.send(request.message,
                                 recipient=request.recipient,
                                 port=request.smtp_port,
                                 timestamp=request.timestamp)
            return result, "mx", None
        # third-party recipient: the connection only reaches us because
        # the victim's client (or a port-scanning spammer) targets the
        # study domain's VPS IP directly
        ip = infra.ip_for(request.study_domain) if request.study_domain \
            else None
        if ip is None:
            return None
        result = client.send_to_ip(request.message, request.recipient, ip,
                                   port=request.smtp_port,
                                   timestamp=request.timestamp)
        return result, "ip", ip

    def _drain_retries(self, client: SmtpClient, retry_queue: RetryQueue,
                       before: float) -> None:
        """Attempt every queued delivery due before ``before``.

        Jobs replay their original route (MX resolution or direct-to-IP)
        at their scheduled retry time; outcomes fold back into the queue
        (recovered / requeued with backoff / give-up DSN).
        """
        for job in retry_queue.due(before):
            if job.mode == "ip":
                result = client.send_to_ip(job.message, job.recipient,
                                           job.ip, port=job.port,
                                           timestamp=job.next_attempt)
            else:
                result = client.send(job.message, recipient=job.recipient,
                                     port=job.port,
                                     timestamp=job.next_attempt)
            retry_queue.settle(job, result, job.next_attempt)


@dataclass
class DurableStudyOutcome:
    """What :func:`run_durable_study` hands back after healing a run."""

    results: StudyResults
    restarts: int
    record_sink: Optional[RecordSink] = None


def run_durable_study(config: ExperimentConfig,
                      checkpoint_path: Union[str, Path],
                      record_sink_factory=None,
                      max_restarts: Optional[int] = None,
                      checkpoint_interval: int = 1) -> DurableStudyOutcome:
    """Run a checkpointed study to completion through injected crashes.

    :class:`~repro.faultsim.plan.InjectedStudyCrash` is the faultsim's
    in-process stand-in for a SIGKILL at a day boundary; this driver
    plays the operator's supervisor loop — build a fresh process-worth
    of world (new :class:`StudyRunner`, new sink from the factory) and
    resume from the checkpoint, until the run completes.

    ``max_restarts`` bounds the healing; it defaults to the plan's total
    scheduled failures, so a plan-driven chaos run finishes exactly and
    anything beyond the budget (a genuinely wedged run) re-raises.
    """
    plan = config.fault_plan
    if max_restarts is None:
        max_restarts = sum(spec.failures for spec
                           in (plan.study_crashes if plan is not None
                               else ()))
    restarts = 0
    while True:
        sink = record_sink_factory() if record_sink_factory else None
        runner = StudyRunner(config)
        try:
            results = runner.run(record_sink=sink,
                                 checkpoint_path=checkpoint_path,
                                 checkpoint_interval=checkpoint_interval)
            return DurableStudyOutcome(results=results, restarts=restarts,
                                       record_sink=sink)
        except InjectedStudyCrash:
            restarts += 1
            if restarts > max_restarts:
                raise

