"""The end-to-end seven-month study simulation (paper Section 4).

Wires everything together the way Figure 1 does: the 76-domain corpus is
registered with catch-all zones, each domain gets a dedicated VPS
forwarding into the main collection server, and four traffic generators
(receiver typos, reflection typos, SMTP typos, spam) drive day-by-day
SMTP deliveries across the collection window — including the outage days
on which the overwhelmed infrastructure recorded nothing.  Afterwards the
corpus flows through the processing pipeline and the five-layer funnel,
yielding the :class:`CollectedRecord` stream every §4.4 analysis and
figure consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.records import CollectedRecord
from repro.core.targets import StudyCorpus, build_study_corpus
from repro.core.taxonomy import TypoEmailKind
from repro.dnssim import DomainRegistry, Resolver
from repro.experiment.classify import (
    ClassifyContext,
    RecordSink,
    StreamingClassifier,
    classify_corpus_records,
)
from repro.experiment.config import ExperimentConfig
from repro.faultsim.inject import FaultyResolver, StudyFaultInjector
from repro.infra import CollectionInfrastructure, provision_study
from repro.smtpsim import Network, SmtpClient
from repro.smtpsim.retryqueue import RetryQueue
from repro.spamfilter.funnel import Verdict
from repro.util.perf import PerfRegistry, throughput
from repro.util.rand import SeededRng
from repro.util.simtime import SECONDS_PER_DAY, CollectionWindow, paper_window
from repro.util.textcache import memo_totals
from repro.workloads.events import SendRequest
from repro.workloads.hamgen import ReceiverTypoGenerator
from repro.workloads.reflection import ReflectionTypoGenerator
from repro.workloads.smtp_typo import SmtpTypoGenerator
from repro.workloads.spamgen import SpamGenerator

__all__ = ["StudyResults", "StudyRunner"]


@dataclass
class StudyResults:
    """Everything a completed run exposes to the analyses."""

    config: ExperimentConfig
    corpus: StudyCorpus
    window: CollectionWindow
    infra: CollectionInfrastructure
    records: List[CollectedRecord]
    malicious_hashes: Set[str]
    sent_count: int = 0
    delivered_count: int = 0
    #: per-phase timers and call/byte counters (see :mod:`repro.util.perf`)
    perf: Optional[Dict] = None
    #: fault-injection accounting (plan digest, injected faults, retry
    #: queue stats, collector gap/coverage report) — None without a plan
    robustness: Optional[Dict] = None

    # -- convenience views ---------------------------------------------------

    def true_typo_records(self) -> List[CollectedRecord]:
        """The records that survived every filter layer."""
        return [r for r in self.records if r.is_true_typo]

    def per_domain_yearly_true_typos(self) -> Dict[str, float]:
        """Measured yearly receiver-typo volume per study domain.

        This is the dependent variable of the Section 6 regression —
        exactly what the paper measured on its own registrations.
        """
        counts: Dict[str, int] = {}
        for record in self.records:
            if not record.is_true_typo or record.result.kind != "receiver":
                continue
            if record.study_domain:
                counts[record.study_domain] = counts.get(
                    record.study_domain, 0) + 1
        project = self.window.yearly_projection
        scale = self.config.ham_scale
        return {domain: project(count) / scale
                for domain, count in counts.items()}

    def funnel_accuracy(self) -> Tuple[int, int]:
        """(correct, total) of verdicts vs. ground truth.

        Correctness follows the study's purpose: ground-truth spam must
        *not* end up in the true-typo bin (whether Layer 1–3 or the
        frequency layer removed it is immaterial); reflection mail should
        be flagged as automated (or frequency-filtered — recurring
        automated streams are); receiver typos must survive; SMTP typos
        may survive or land in the frequency band the paper itself treats
        as ambiguous (its 415–5,970/yr range).
        """
        correct = total = 0
        for record in self.records:
            if record.true_kind is None:
                continue
            total += 1
            verdict = record.verdict
            if record.true_kind is TypoEmailKind.SPAM:
                correct += verdict is not Verdict.TRUE_TYPO
            elif record.true_kind is TypoEmailKind.REFLECTION:
                correct += verdict in (Verdict.REFLECTION,
                                       Verdict.FREQUENCY_FILTERED)
            elif record.true_kind is TypoEmailKind.SMTP:
                correct += verdict in (Verdict.TRUE_TYPO,
                                       Verdict.FREQUENCY_FILTERED)
            else:
                correct += verdict is Verdict.TRUE_TYPO
        return correct, total


class StudyRunner:
    """Builds the world and runs the collection experiment."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._rng = SeededRng(self.config.seed, name="study")

    def run(self, record_sink: Optional[RecordSink] = None) -> StudyResults:
        """Provision the world, simulate the window, classify everything.

        ``record_sink`` (streaming mode only) receives each
        :class:`CollectedRecord` as its verdict becomes final instead of
        accumulating them; the returned results then carry an empty
        record list.
        """
        config = self.config
        if record_sink is not None and not config.streaming_classify:
            raise ValueError("record_sink requires streaming_classify=True")
        perf = PerfRegistry()
        cache_hits0, cache_misses0 = memo_totals()
        with perf.timer("run"):
            with perf.timer("provision"):
                corpus = build_study_corpus()
                registry = DomainRegistry()
                network = Network(self._rng.child("network"))
                infra = provision_study(corpus, registry, network)
                collector = infra.collector
                if config.smtp_forwarding:
                    from repro.infra.forwarding import attach_forwarding

                    attach_forwarding(infra, network)
                window = paper_window(outage_spans=config.outage_spans)

            # -- fault injection (only when a non-trivial plan is given:
            # the fault-free paths below must stay byte-identical)
            plan = config.fault_plan
            injector: Optional[StudyFaultInjector] = None
            retry_queue: Optional[RetryQueue] = None
            if plan is not None and not plan.is_empty:
                injector = StudyFaultInjector(plan, window.total_days)
                retry_queue = RetryQueue(plan.retry)
                collector.schedule_outage_days(injector.drop_days())
                for server in infra.servers.values():
                    server.fault_gate = injector.make_gate(server.hostname)

            # classification pipeline shared by batch and streaming modes
            classify_context = ClassifyContext(
                our_domains=tuple(corpus.domain_names()),
                ip_to_domain=ClassifyContext.ip_map(infra),
                process_non_spam=config.process_non_spam,
                retain_original=config.retain_messages,
            )
            true_kind_by_seq: Dict[int, TypoEmailKind] = {}
            classifier: Optional[StreamingClassifier] = None
            if config.streaming_classify:
                collector.enable_streaming(
                    retain_corpus=config.retain_messages)
                classifier = StreamingClassifier(
                    classify_context, true_kind_by_seq, perf,
                    record_sink=record_sink)

            with perf.timer("build_generators"):
                generators = self._build_generators(corpus)
            resolver = Resolver(registry)
            if injector is not None:
                resolver = FaultyResolver(resolver, injector)
            client = SmtpClient(resolver, network)
            our_domains = frozenset(corpus.domain_names())
            # suffix tuple for C-speed subdomain checks (str.endswith
            # accepts a tuple); rebuilt once per run, not per email
            our_suffixes = tuple("." + d for d in our_domains)

            sent = 0
            for day in range(window.total_days):
                if injector is not None:
                    injector.begin_day(day)
                collector.begin_day(day,
                                    collecting=window.is_collecting(day))
                if retry_queue is not None and len(retry_queue):
                    with perf.timer("retry"):
                        self._drain_retries(client, retry_queue,
                                            (day + 1) * SECONDS_PER_DAY)
                with perf.timer("generate"):
                    requests: List[SendRequest] = []
                    for generator in generators:
                        requests.extend(generator.emails_for_day(day))
                    requests.sort(key=lambda r: r.timestamp)
                with perf.timer("deliver"):
                    for request in requests:
                        sent += 1
                        # monotone send sequence: the attribution key
                        # (object ids are reused once streaming mode
                        # releases delivered messages)
                        request.sequence = sent
                        request.message.sequence = sent
                        true_kind_by_seq[sent] = request.true_kind
                        perf.count("deliver.body_bytes",
                                   len(request.message.body))
                        attempt = self._deliver(client, infra, our_domains,
                                                our_suffixes, request)
                        if retry_queue is not None and attempt is not None:
                            result, mode, ip = attempt
                            retry_queue.offer(
                                request.message, result.recipient, result,
                                request.timestamp, mode=mode,
                                port=request.smtp_port, ip=ip,
                                context=request)
                if classifier is not None:
                    with perf.timer("classify"):
                        classifier.feed(collector.drain_pending())
            collector.set_outage(False)
            if retry_queue is not None:
                # the queue survives the window's last day: one final
                # drain, then everything left gives up with a DSN
                end_of_window = window.total_days * SECONDS_PER_DAY
                with perf.timer("retry"):
                    self._drain_retries(client, retry_queue, end_of_window)
                    retry_queue.expire_remaining(end_of_window)

            with perf.timer("classify"):
                if classifier is not None:
                    classifier.feed(collector.drain_pending())
                    records = classifier.finalize()
                else:
                    records = classify_corpus_records(
                        collector.corpus, classify_context,
                        true_kind_by_seq, perf,
                        jobs=config.classify_jobs)
        delivered = collector.stats.ingested
        cache_hits, cache_misses = memo_totals()
        perf.count("emails.sent", sent)
        perf.count("emails.delivered", delivered)
        perf.count("records", classifier.emitted_count
                   if classifier is not None else len(records))
        perf.count("classify.text_cache_hits", cache_hits - cache_hits0)
        perf.count("classify.text_cache_misses",
                   cache_misses - cache_misses0)
        robustness: Optional[Dict] = None
        if injector is not None:
            perf.count("faults.injected", injector.stats.total_injected)
            perf.count("retry.recovered", retry_queue.stats.recovered)
            robustness = {
                "plan_digest": plan.digest(),
                "plan_seed": plan.seed,
                "faults": injector.stats.as_dict(),
                "retry": retry_queue.stats.as_dict(),
                "collector": collector.coverage_report(window.total_days),
            }
        snapshot = perf.snapshot(extra={
            "throughput": {
                "emails_sent_per_sec": throughput(sent, perf.seconds("run")),
                "emails_delivered_per_sec": throughput(
                    delivered, perf.seconds("run")),
            },
        })
        spam_generator = generators[-1]
        return StudyResults(
            config=config,
            corpus=corpus,
            window=window,
            infra=infra,
            records=records,
            malicious_hashes=set(spam_generator.malicious_hashes),
            sent_count=sent,
            delivered_count=delivered,
            perf=snapshot,
            robustness=robustness,
        )

    # -- internals ----------------------------------------------------------

    def _build_generators(self, corpus: StudyCorpus) -> List:
        config = self.config
        receiver = ReceiverTypoGenerator(
            corpus, self._rng.child("receiver"),
            yearly_true_typos=config.yearly_true_typos,
            volume_scale=config.ham_scale,
            smtp_domain_leak_rate=config.smtp_domain_leak_rate)
        reflection = ReflectionTypoGenerator(
            corpus, self._rng.child("reflection"),
            signups_per_domain=config.reflection_signups_per_domain,
            volume_scale=config.ham_scale)
        smtp_typo = SmtpTypoGenerator(
            corpus, self._rng.child("smtp-typo"),
            events_per_year=config.smtp_typo_events_per_year,
            volume_scale=config.ham_scale)
        spam = SpamGenerator(corpus, self._rng.child("spam"),
                             config=config.spam,
                             volume_scale=config.spam_scale)
        return [receiver, reflection, smtp_typo, spam]

    def _deliver(self, client: SmtpClient, infra: CollectionInfrastructure,
                 our_domains: Set[str], our_suffixes: Tuple[str, ...],
                 request: SendRequest):
        """One first delivery attempt; returns (result, mode, ip) or None.

        The return value feeds the retry queue when a fault plan is
        active; fault-free runs ignore it, so the attempt itself is
        unchanged from the original single-shot semantics.
        """
        recipient_domain = request.recipient.rpartition("@")[2].lower()
        addressed_to_us = (recipient_domain in our_domains
                           or recipient_domain.endswith(our_suffixes))
        if addressed_to_us:
            # normal MX-routed delivery: sender's MTA resolves our zone
            result = client.send(request.message,
                                 recipient=request.recipient,
                                 port=request.smtp_port,
                                 timestamp=request.timestamp)
            return result, "mx", None
        # third-party recipient: the connection only reaches us because
        # the victim's client (or a port-scanning spammer) targets the
        # study domain's VPS IP directly
        ip = infra.ip_for(request.study_domain) if request.study_domain \
            else None
        if ip is None:
            return None
        result = client.send_to_ip(request.message, request.recipient, ip,
                                   port=request.smtp_port,
                                   timestamp=request.timestamp)
        return result, "ip", ip

    def _drain_retries(self, client: SmtpClient, retry_queue: RetryQueue,
                       before: float) -> None:
        """Attempt every queued delivery due before ``before``.

        Jobs replay their original route (MX resolution or direct-to-IP)
        at their scheduled retry time; outcomes fold back into the queue
        (recovered / requeued with backoff / give-up DSN).
        """
        for job in retry_queue.due(before):
            if job.mode == "ip":
                result = client.send_to_ip(job.message, job.recipient,
                                           job.ip, port=job.port,
                                           timestamp=job.next_attempt)
            else:
                result = client.send(job.message, recipient=job.recipient,
                                     port=job.port,
                                     timestamp=job.next_attempt)
            retry_queue.settle(job, result, job.next_attempt)

