"""End-to-end study simulation: configuration, runner, and validation."""

from repro.experiment.classify import (
    ClassifyContext,
    StreamingClassifier,
    classify_corpus_records,
    partition_messages_by_day,
)
from repro.experiment.config import ExperimentConfig
from repro.experiment.parallel import (
    RecordDigestSink,
    ResilientScanResult,
    ScanCheckpoint,
    ScanShard,
    ScanShardTask,
    ShardOutcome,
    ShardRetryPolicy,
    StudySample,
    derive_child_seeds,
    parallel_map,
    partition_ranks,
    pool_fallback_count,
    record_content_digest,
    record_multiset_digest,
    record_stream_digest,
    run_resilient_scan,
    run_scan_shard,
    run_sharded_scan,
    run_study_sample,
    run_study_samples,
)
from repro.experiment.checkpoint import (
    STUDY_CHECKPOINT_FORMAT,
    StudyCheckpoint,
    config_identity,
)
from repro.experiment.runner import (
    DurableStudyOutcome,
    StudyResults,
    StudyRunner,
    run_durable_study,
)
from repro.experiment.sweep import (
    HeadlineDistribution,
    SweepSummary,
    run_seed_sweep,
)
from repro.experiment.validation import (
    SampledValidation,
    validate_receiver_typos_at_smtp_domains,
    validate_survivors_by_sampling,
)

__all__ = [
    "ExperimentConfig",
    "StudyRunner",
    "StudyResults",
    "ClassifyContext",
    "StreamingClassifier",
    "classify_corpus_records",
    "partition_messages_by_day",
    "RecordDigestSink",
    "record_content_digest",
    "record_multiset_digest",
    "SampledValidation",
    "validate_survivors_by_sampling",
    "validate_receiver_typos_at_smtp_domains",
    "run_seed_sweep",
    "SweepSummary",
    "HeadlineDistribution",
    "StudySample",
    "run_study_sample",
    "run_study_samples",
    "derive_child_seeds",
    "parallel_map",
    "record_stream_digest",
    "ScanShardTask",
    "ScanShard",
    "run_scan_shard",
    "partition_ranks",
    "run_sharded_scan",
    "pool_fallback_count",
    "ShardRetryPolicy",
    "ShardOutcome",
    "ResilientScanResult",
    "ScanCheckpoint",
    "run_resilient_scan",
    "STUDY_CHECKPOINT_FORMAT",
    "StudyCheckpoint",
    "config_identity",
    "DurableStudyOutcome",
    "run_durable_study",
]
