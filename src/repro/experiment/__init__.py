"""End-to-end study simulation: configuration, runner, and validation."""

from repro.experiment.config import ExperimentConfig
from repro.experiment.runner import StudyResults, StudyRunner
from repro.experiment.sweep import (
    HeadlineDistribution,
    SweepSummary,
    run_seed_sweep,
)
from repro.experiment.validation import (
    SampledValidation,
    validate_receiver_typos_at_smtp_domains,
    validate_survivors_by_sampling,
)

__all__ = [
    "ExperimentConfig",
    "StudyRunner",
    "StudyResults",
    "SampledValidation",
    "validate_survivors_by_sampling",
    "validate_receiver_typos_at_smtp_domains",
    "run_seed_sweep",
    "SweepSummary",
    "HeadlineDistribution",
]
