"""Multi-seed robustness sweeps over the headline numbers.

A single simulated seven months is one draw from the generative world;
before quoting shape agreements with the paper, it is worth knowing how
much the headline numbers wobble across seeds.  The sweep runs the study
under several seeds and summarises each headline quantity with a mean and
normal-theory confidence interval — the reproduction's error bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.volume import VolumeReport, descaled_volume_report
from repro.experiment.config import ExperimentConfig
from repro.experiment.parallel import StudySample, run_study_samples
from repro.util.stats import mean_confidence_interval

__all__ = ["HeadlineDistribution", "SweepSummary", "run_seed_sweep"]

#: The headline quantities tracked across seeds, as report extractors.
_HEADLINES: Dict[str, Callable[[VolumeReport], float]] = {
    "total_received": lambda r: r.total_received,
    "receiver_candidates": lambda r: r.receiver_candidates,
    "smtp_candidates": lambda r: r.smtp_candidates,
    "passed_all_filters": lambda r: r.passed_all_filters,
    "true_receiver_reflection": lambda r: r.true_receiver_reflection,
    "smtp_band_low": lambda r: r.smtp_typo_range()[0],
    "smtp_band_high": lambda r: r.smtp_typo_range()[1],
    "receiver_typos_at_smtp_domains":
        lambda r: r.receiver_typos_at_smtp_domains,
}


@dataclass(frozen=True)
class HeadlineDistribution:
    """One quantity's behaviour across seeds."""

    name: str
    values: Tuple[float, ...]
    mean: float
    ci_low: float
    ci_high: float

    @property
    def relative_half_width(self) -> float:
        """CI half-width over the mean — the wobble, dimensionless."""
        if self.mean == 0:
            return float("inf")
        return (self.ci_high - self.ci_low) / 2.0 / abs(self.mean)


@dataclass
class SweepSummary:
    seeds: Tuple[int, ...]
    headlines: Dict[str, HeadlineDistribution] = field(default_factory=dict)
    funnel_accuracies: Tuple[float, ...] = ()

    def stable(self, name: str, tolerance: float = 0.5) -> bool:
        """Whether a headline's relative wobble stays under ``tolerance``."""
        return self.headlines[name].relative_half_width < tolerance


def run_seed_sweep(seeds: Sequence[int],
                   base_config: Optional[ExperimentConfig] = None,
                   jobs: Optional[int] = None) -> SweepSummary:
    """Run the study once per seed and summarise the headline spread.

    ``jobs`` fans the per-seed runs out over worker processes (see
    :mod:`repro.experiment.parallel`); every run is a pure function of
    its config, so the summary is identical for any worker count.
    """
    if len(seeds) < 2:
        raise ValueError("a sweep needs at least two seeds")
    base_config = base_config or ExperimentConfig()

    configs = [replace(base_config, seed=seed) for seed in seeds]
    results: List[StudySample] = run_study_samples(configs, jobs=jobs)

    samples: Dict[str, List[float]] = {name: [] for name in _HEADLINES}
    accuracies: List[float] = []
    for config, sample in zip(configs, results):
        smtp_domains = [d.domain
                        for d in sample.corpus.by_purpose("smtp")]
        report = descaled_volume_report(list(sample.records), sample.window,
                                        config.ham_scale, config.spam_scale,
                                        smtp_domains)
        for name, extractor in _HEADLINES.items():
            samples[name].append(extractor(report))
        correct, total = sample.funnel_accuracy()
        accuracies.append(correct / max(1, total))

    summary = SweepSummary(seeds=tuple(seeds),
                           funnel_accuracies=tuple(accuracies))
    for name, values in samples.items():
        mean, low, high = mean_confidence_interval(values)
        summary.headlines[name] = HeadlineDistribution(
            name=name, values=tuple(values), mean=mean,
            ci_low=low, ci_high=high)
    return summary
