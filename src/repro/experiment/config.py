"""Configuration of the end-to-end seven-month study simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.faultsim.plan import FaultPlan
from repro.scenario.timeline import Scenario
from repro.workloads.spamgen import SpamConfig

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for a full study run.

    Two scales govern traffic volume.  ``ham_scale`` applies to the true
    typo streams (receiver, reflection, SMTP mistakes) and defaults to
    1.0 — the real-world rates are only a few thousand emails a year and
    simulating them in full is cheap.  ``spam_scale`` applies to the spam
    streams, whose real volume (~119M/year) would be pointless to
    simulate; the default keeps spam dominant by an order of magnitude
    (preserving the classification problem's imbalance) while staying
    fast.  Analyses that quote paper-comparable yearly numbers divide
    each stream by its scale (see ``analysis.volume``).
    """

    seed: int = 2016
    ham_scale: float = 1.0
    spam_scale: float = 5e-4
    #: collection outage day-spans (start, end), mirroring the paper's
    #: lost months; empty tuple = perfect collection
    outage_spans: Tuple[Tuple[int, int], ...] = ((75, 135),)
    #: yearly true receiver/reflection typo calibration (paper: ~6,041)
    yearly_true_typos: float = 5300.0
    #: receiver typos arriving at SMTP-purpose domains (paper: ~700/yr)
    smtp_domain_leak_rate: float = 700.0
    #: new SMTP-typo victims per year across the corpus
    smtp_typo_events_per_year: float = 220.0
    #: reflection signups per reflection-purpose domain
    reflection_signups_per_domain: int = 6
    spam: SpamConfig = field(default_factory=SpamConfig)
    #: scrub+process non-spam emails (needed for Figure 6)
    process_non_spam: bool = True
    #: route mail through the Figure-1 two-hop topology (VPS relays over
    #: SMTP to the central collector) instead of a direct callback
    smtp_forwarding: bool = True
    #: deterministic chaos schedule (see :mod:`repro.faultsim`); None or
    #: an empty plan reproduces the fault-free byte stream exactly
    fault_plan: Optional[FaultPlan] = None
    #: worker processes for the classify stage's pure per-message work
    #: (None/1 = inline); the record stream is byte-identical at any value
    classify_jobs: Optional[int] = None
    #: classify day-by-day inside the window loop instead of batching the
    #: whole corpus at the end; same record stream, different schedule
    streaming_classify: bool = False
    #: keep delivered messages in the collector corpus after their record
    #: is emitted; False bounds memory at paper scale (streaming only)
    retain_messages: bool = True
    #: spam arm of the post-window batch classification: "funnel" (the
    #: rule layers, default), "learned" (the trained model replaces the
    #: funnel's spam verdicts), or "both" (union of the two)
    detector: str = "funnel"
    #: path to a persisted ``repro-typo-model@1`` artifact; required
    #: whenever ``detector`` is not "funnel"
    model_path: Optional[str] = None
    #: living-internet timeline driven alongside the study day loop
    #: (see :mod:`repro.scenario`); None = today's static world,
    #: byte-identical to running without a scenario at all
    scenario: Optional[Scenario] = None
    #: directory for the drift lifecycle's active/candidate/previous
    #: model artifacts; defaults to ``<checkpoint>.models`` when a
    #: checkpoint path is given.  Only consulted when the scenario
    #: schedules ``retrain=True`` campaign events under a learned
    #: detector
    model_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.ham_scale <= 0 or self.spam_scale <= 0:
            raise ValueError("scales must be positive")
        if self.yearly_true_typos < 0:
            raise ValueError("yearly_true_typos must be non-negative")
        if self.classify_jobs is not None and self.classify_jobs < 1:
            raise ValueError("classify_jobs must be >= 1")
        if not self.retain_messages and not self.streaming_classify:
            raise ValueError(
                "retain_messages=False requires streaming_classify=True")
        if self.detector not in ("funnel", "learned", "both"):
            raise ValueError(
                "detector must be one of: funnel, learned, both")
        if self.detector != "funnel" and self.streaming_classify:
            raise ValueError(
                "the learned detector runs in the batch classifier; "
                "disable streaming_classify")
        if self.scenario is not None and any(
                event.retrain for event in self.scenario.events) \
                and self.detector == "funnel" and self.model_dir:
            raise ValueError(
                "model_dir is only meaningful when retrain events run "
                "under a learned detector (detector != 'funnel')")
