"""The study's two-stage classification pipeline (batch, parallel, streaming).

``StudyRunner._classify`` historically tokenized and classified the whole
delivered corpus serially, after the window loop, with everything held in
memory.  This module splits that work along the funnel's stage boundary
(see :mod:`repro.spamfilter.funnel`):

* **Stage A** — pure per-message work: tokenize, Layer-1/2/4 evaluation
  via :meth:`FilterFunnel.summarize`, study-domain attribution, and (in
  the parallel path) speculative scrub/processing.  Pure means it can be
  fanned over a :class:`ProcessPoolExecutor` in deterministic day-ordered
  batches, or run day-by-day inside the window loop.
* **Stage B** — the serial stateful fold (:class:`SummaryFold`): the
  collaborative database, corpus-wide frequencies, and the retroactive
  pass, consuming stage-A summaries in arrival order.

Because stage B always sees summaries in arrival order, the emitted
:class:`CollectedRecord` stream is byte-identical across the serial,
parallel (any ``jobs``), and day-streamed drivers — pinned by
``record_stream_digest`` in the classify-pipeline tests.

The bounded-memory variant (:class:`StreamingClassifier` with
``retain_messages=False``) drops each raw message once its summary is
taken (``tokenize(..., retain_original=False)``) and keeps only compact
per-survivor state for the retroactive pass; with a ``record_sink`` it
emits terminal records as they are decided and retains nothing at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord
from repro.core.taxonomy import TypoEmailKind
from repro.pipeline.processor import EmailProcessor
from repro.pipeline.tokenizer import TokenizedEmail, tokenize
from repro.smtpsim.message import EmailMessage
from repro.spamfilter.funnel import (
    FilterFunnel,
    FilterResult,
    FunnelConfig,
    MessageSummary,
    SummaryFold,
    Verdict,
)
from repro.util.perf import PerfRegistry, paused_gc
from repro.util.pool import parallel_map

__all__ = [
    "ClassifyContext",
    "StageAItem",
    "StageAChunk",
    "StageAChunkResult",
    "run_stage_a_chunk",
    "partition_messages_by_day",
    "apply_learned_detector",
    "classify_corpus_records",
    "StreamingClassifier",
]

RecordSink = Callable[[CollectedRecord], None]

SECONDS_PER_DAY = 86_400


@dataclass(frozen=True)
class ClassifyContext:
    """Everything stage A needs, picklable so workers can rebuild it.

    ``our_domains`` keeps the corpus iteration order — suffix attribution
    scans suffixes in that order, and the serial implementation's
    first-match semantics must be preserved exactly.  ``ip_to_domain``
    replaces the collection infrastructure's linear
    :meth:`~repro.infra.provisioning.CollectionInfrastructure.domain_for_ip`
    scan with a prebuilt first-match dict.
    """

    our_domains: Tuple[str, ...]
    ip_to_domain: Dict[str, Optional[str]] = field(default_factory=dict)
    funnel_config: Optional[FunnelConfig] = None
    enabled_layers: Tuple[int, ...] = (1, 2, 3, 4, 5)
    process_non_spam: bool = True
    retain_original: bool = True
    #: build the message-lane feature matrix alongside each stage-A chunk
    #: (the learned detector's featurization rides the same pool fan-out)
    featurize: bool = False

    def build_funnel(self) -> FilterFunnel:
        return FilterFunnel(self.our_domains, config=self.funnel_config,
                            enabled_layers=self.enabled_layers)

    @staticmethod
    def ip_map(infra) -> Dict[str, str]:
        """First-match ip→domain dict equivalent to ``domain_for_ip``."""
        mapping: Dict[str, str] = {}
        for domain, ip in infra.domain_to_ip.items():
            mapping.setdefault(ip, domain)
        return mapping


class _Attribution:
    """The researchers' domain attribution (no ground truth), hoisted.

    Receiver candidates attribute by recipient domain; SMTP candidates
    only by the VPS IP the mail arrived on — the paper's one-to-one IP
    mapping exists for exactly this.  Match order (exact domain, then
    suffixes in corpus order) mirrors the serial implementation.
    """

    __slots__ = ("domain_set", "suffixes", "suffix_of", "ip_to_domain")

    def __init__(self, our_domains: Sequence[str],
                 ip_to_domain: Dict[str, str]) -> None:
        self.domain_set = frozenset(our_domains)
        self.suffix_of = {"." + d: d for d in our_domains}
        self.suffixes = tuple(self.suffix_of)
        self.ip_to_domain = ip_to_domain

    def study_domain(self, tok: TokenizedEmail,
                     kind: str) -> Optional[str]:
        if kind == "receiver":
            for recipient in tok.metadata.envelope_to:
                domain = recipient.rpartition("@")[2].lower()
                if domain in self.domain_set:
                    return domain
                if domain.endswith(self.suffixes):
                    # rare path: recover *which* suffix matched, in the
                    # corpus order the serial implementation used
                    for suffix in self.suffixes:
                        if domain.endswith(suffix):
                            return self.suffix_of[suffix]
            return None
        ip = tok.metadata.received_by_ip
        if ip is None:
            return None
        return self.ip_to_domain.get(ip)


class StageAItem:
    """One message's stage-A output: everything stage B consumes.

    ``processed`` is only pre-filled by the parallel workers (speculative
    scrub of every Layer-1/2 survivor); the serial paths leave it None
    and process after the fold, skipping mail Layer 3 condemns.
    """

    __slots__ = ("tokenized", "summary", "study_domain", "processed")

    def __init__(self, tokenized: TokenizedEmail, summary: MessageSummary,
                 study_domain: Optional[str],
                 processed=None) -> None:
        self.tokenized = tokenized
        self.summary = summary
        self.study_domain = study_domain
        self.processed = processed

    def __getstate__(self):
        return (self.tokenized, self.summary, self.study_domain,
                self.processed)

    def __setstate__(self, state):
        (self.tokenized, self.summary, self.study_domain,
         self.processed) = state


@dataclass
class StageAChunk:
    """One worker's share of the corpus: a contiguous day-ordered slice."""

    messages: List[EmailMessage]
    context: ClassifyContext


@dataclass
class StageAChunkResult:
    """A completed chunk: items in input order plus worker-side timings."""

    items: List[StageAItem]
    tokenize_seconds: float
    score_seconds: float
    process_seconds: float
    #: message-lane feature matrix (rows aligned with ``items``); only
    #: populated when the context asked stage A to featurize
    features: Optional[object] = None
    featurize_seconds: float = 0.0


def run_stage_a_chunk(chunk: StageAChunk) -> StageAChunkResult:
    """Stage A over one chunk (module-level so pools ship it by name).

    Workers speculatively process every Layer-1/2 survivor — Layer-3
    verdicts are not knowable here, and scrubbing in the worker is the
    point of fanning out.  Stage B discards the speculative result for
    mail the collaborative layer later condemns.
    """
    context = chunk.context
    funnel = context.build_funnel()
    attribution = _Attribution(context.our_domains, context.ip_to_domain)
    processor = EmailProcessor() if context.process_non_spam else None
    retain = context.retain_original

    clock = time.perf_counter
    with paused_gc():
        start = clock()
        tokenized = [tokenize(message, retain_original=retain)
                     for message in chunk.messages]
        tokenize_seconds = clock() - start

        start = clock()
        summaries = [funnel.summarize(tok, sequence=message.sequence)
                     for message, tok in zip(chunk.messages, tokenized)]
        score_seconds = clock() - start

        start = clock()
        items: List[StageAItem] = []
        for tok, summary in zip(tokenized, summaries):
            processed = None
            if (processor is not None and summary.layer1 is None
                    and summary.layer2 is None):
                processed = processor.process(tok.original, tokenized=tok)
            items.append(StageAItem(
                tok, summary, attribution.study_domain(tok, summary.kind),
                processed))
        process_seconds = clock() - start

        features = None
        featurize_seconds = 0.0
        if context.featurize:
            from repro.features.messages import message_feature_matrix

            start = clock()
            features = message_feature_matrix(
                [(item.tokenized, item.summary) for item in items])
            featurize_seconds = clock() - start

    return StageAChunkResult(items=items, tokenize_seconds=tokenize_seconds,
                             score_seconds=score_seconds,
                             process_seconds=process_seconds,
                             features=features,
                             featurize_seconds=featurize_seconds)


def partition_messages_by_day(messages: Sequence[EmailMessage],
                              jobs: int) -> List[List[EmailMessage]]:
    """Contiguous day-aligned chunks of the arrival-ordered corpus.

    Chunks never split a simulated day, so each worker sees whole days in
    order; the partition is a pure function of ``(messages, jobs)`` and
    concatenating chunk outputs reproduces the arrival order exactly.
    Aims for ~2 chunks per worker to smooth out uneven day sizes.
    """
    if not messages:
        return []
    target = max(1, (len(messages) + jobs * 2 - 1) // (jobs * 2))
    chunks: List[List[EmailMessage]] = []
    current: List[EmailMessage] = []
    current_day: Optional[int] = None
    for message in messages:
        day = int(message.received_at // SECONDS_PER_DAY)
        if current and day != current_day and len(current) >= target:
            chunks.append(current)
            current = []
        current.append(message)
        current_day = day
    chunks.append(current)
    return chunks


def _emit_records(items: Sequence[StageAItem],
                  results: Sequence[FilterResult],
                  true_kind_by_seq: Dict[int, TypoEmailKind],
                  processor: Optional[EmailProcessor]
                  ) -> List[CollectedRecord]:
    """Stage-B tail: final verdicts → the record stream, in fold order."""
    records: List[CollectedRecord] = []
    append = records.append
    new = CollectedRecord.__new__
    get_kind = true_kind_by_seq.get
    spam = Verdict.SPAM
    for item, result in zip(items, results):
        tok = item.tokenized
        processed = item.processed
        if result.verdict is spam:
            processed = None       # discard any speculative scrub
        elif processed is None and processor is not None:
            processed = processor.process(tok.original, tokenized=tok)
        # one dict assignment instead of the dataclass __init__'s six
        # field stores — this loop runs once per delivered email
        record = new(CollectedRecord)
        record.__dict__ = {
            "tokenized": tok,
            "result": result,
            "study_domain": item.study_domain,
            "timestamp": tok.metadata.received_at,
            "true_kind": get_kind(item.summary.sequence),
            "processed": processed,
        }
        append(record)
    return records


def apply_learned_detector(results: Sequence[FilterResult],
                           learned_spam: Sequence[bool],
                           detector: str) -> List[FilterResult]:
    """Overlay the learned lane's verdicts on the funnel's result stream.

    * ``"learned"`` — the model owns the spam arm: mail it flags becomes
      SPAM regardless of the funnel, and funnel SPAM it disputes is
      released as TRUE_TYPO (a downstream consumer sees exactly what the
      learned detector alone would have delivered);
    * ``"both"`` — union: SPAM iff either detector says so.

    Non-spam funnel verdicts (reflection, frequency) survive untouched
    unless the model flags the mail — those layers answer questions the
    spam arm never asked.
    """
    adjusted: List[FilterResult] = []
    spam = Verdict.SPAM
    for result, flagged in zip(results, learned_spam):
        if flagged and result.verdict is not spam:
            result = FilterResult(verdict=spam, kind=result.kind,
                                  layer=None, reason="learned")
        elif (not flagged and result.verdict is spam
                and detector == "learned"):
            result = FilterResult(verdict=Verdict.TRUE_TYPO,
                                  kind=result.kind, layer=None,
                                  reason="learned-override")
        adjusted.append(result)
    return adjusted


def _score_learned(items: Sequence[StageAItem], model, perf: PerfRegistry,
                   features=None) -> List[bool]:
    """Vectorized message-lane scoring: one matmul + stump pass per batch."""
    from repro.features.messages import message_feature_matrix
    from repro.learned.evaluate import SCORE_THRESHOLD

    if features is None:
        with perf.timer("classify.featurize"):
            features = message_feature_matrix(
                [(item.tokenized, item.summary) for item in items])
    with perf.timer("classify.learned_score"):
        flags = model.message.scores(features) >= SCORE_THRESHOLD
    return [bool(f) for f in flags]


def classify_corpus_records(messages: Sequence[EmailMessage],
                            context: ClassifyContext,
                            true_kind_by_seq: Dict[int, TypoEmailKind],
                            perf: PerfRegistry,
                            jobs: Optional[int] = None,
                            detector: str = "funnel",
                            model=None) -> List[CollectedRecord]:
    """Batch classification of a delivered corpus, serial or fanned out.

    ``jobs<=1`` runs stage A inline (tokenize → summarize → fold →
    emit, each under its own ``classify.*`` timer); ``jobs>1`` fans
    stage A over worker processes in day-ordered chunks and folds the
    returned summaries in arrival order.  Either way the record stream
    is byte-identical.

    ``detector`` selects the spam arm: ``"funnel"`` (rules only, the
    default), ``"learned"`` (the model replaces the funnel's spam
    verdicts), or ``"both"`` (union).  The non-funnel modes need a
    loaded :class:`~repro.learned.model.TypoModel`; featurization rides
    the stage-A chunks (set ``context.featurize``) or runs inline, and
    scoring is one vectorized pass over the whole corpus either way.
    """
    if detector not in ("funnel", "learned", "both"):
        from repro.util.errors import ConfigError
        raise ConfigError(f"unknown detector {detector!r}; expected "
                          "funnel, learned, or both")
    if detector != "funnel" and model is None:
        from repro.util.errors import ConfigError
        raise ConfigError(f"detector {detector!r} requires a trained "
                          "typo model (see `repro train`)")
    funnel = context.build_funnel()
    processor = (EmailProcessor() if context.process_non_spam else None)

    if jobs is not None and jobs > 1 and len(messages) > 1:
        chunks = [StageAChunk(messages=chunk, context=context)
                  for chunk in partition_messages_by_day(messages, jobs)]
        chunk_results = parallel_map(run_stage_a_chunk, chunks, jobs=jobs,
                                     perf=perf)
        items: List[StageAItem] = []
        feature_parts = []
        for result in chunk_results:
            items.extend(result.items)
            if result.features is not None:
                feature_parts.append(result.features)
            perf.add_seconds("classify.tokenize", result.tokenize_seconds)
            perf.add_seconds("classify.score", result.score_seconds)
            perf.add_seconds("classify.process", result.process_seconds)
            perf.add_seconds("classify.featurize", result.featurize_seconds)
        with paused_gc(), perf.timer("classify.fold"):
            fold = SummaryFold(funnel)
            for item in items:
                fold.feed(item.summary)
            results = fold.finalize()
        if detector != "funnel":
            features = None
            if feature_parts and len(feature_parts) == len(chunk_results):
                import numpy as np
                features = np.vstack(feature_parts)
            flags = _score_learned(items, model, perf, features=features)
            results = apply_learned_detector(results, flags, detector)
        with paused_gc(), perf.timer("classify.emit"):
            return _emit_records(items, results, true_kind_by_seq, processor)

    with paused_gc():
        attribution = _Attribution(context.our_domains, context.ip_to_domain)
        retain = context.retain_original
        with perf.timer("classify.tokenize"):
            tokenized = [tokenize(message, retain_original=retain)
                         for message in messages]
        with perf.timer("classify.score"):
            summarize = funnel.summarize
            study_domain = attribution.study_domain
            items = []
            append = items.append
            for message, tok in zip(messages, tokenized):
                summary = summarize(tok, sequence=message.sequence)
                append(StageAItem(tok, summary,
                                  study_domain(tok, summary.kind)))
        with perf.timer("classify.fold"):
            fold = SummaryFold(funnel)
            for item in items:
                fold.feed(item.summary)
            results = fold.finalize()
        if detector != "funnel":
            flags = _score_learned(items, model, perf)
            results = apply_learned_detector(results, flags, detector)
        with perf.timer("classify.emit"):
            return _emit_records(items, results, true_kind_by_seq, processor)


class StreamingClassifier:
    """Day-by-day classification inside the window loop (bounded memory).

    Feed each day's delivered mail as it arrives; layers 1–4 verdicts are
    final immediately and their records are emitted (and, with a
    ``record_sink``, handed off) on the spot.  Survivors wait as compact
    stage-A items for :meth:`finalize`, which runs the retroactive and
    frequency passes — the resulting record stream is byte-identical to
    the batch classifier's for the same corpus.

    Memory model: with ``retain_messages=True`` the tokenized originals
    ride along and the full record list is returned, so only the work is
    restructured.  With ``retain_messages=False`` each message is
    released once summarised (``tokenize(..., retain_original=False)``)
    and records carry ``tokenized.original=None`` — compare them with the
    content digests in :mod:`repro.experiment.parallel`, which exclude
    the original by construction.  With a ``record_sink`` on top, even
    terminal records are handed off instead of retained; only the
    per-survivor items and the result list remain, which is what the
    scale bench's peak-memory gate measures.
    """

    def __init__(self, context: ClassifyContext,
                 true_kind_by_seq: Dict[int, TypoEmailKind],
                 perf: PerfRegistry,
                 record_sink: Optional[RecordSink] = None) -> None:
        self.context = context
        self.funnel = context.build_funnel()
        self.fold = SummaryFold(self.funnel)
        self.processor = (EmailProcessor() if context.process_non_spam
                          else None)
        self._attribution = _Attribution(context.our_domains,
                                         context.ip_to_domain)
        self._true_kind_by_seq = true_kind_by_seq
        self._perf = perf
        self._sink = record_sink
        #: in-order record slots (None = awaiting finalize); unused in
        #: sink mode, where terminal records are handed off immediately
        self._records: List[Optional[CollectedRecord]] = []
        self._pending: List[Tuple[int, StageAItem]] = []
        self.emitted_count = 0

    def feed(self, messages: Sequence[EmailMessage]) -> None:
        """Classify one day's (or any in-order batch of) deliveries."""
        if not messages:
            return
        perf = self._perf
        context = self.context
        retain = context.retain_original
        with paused_gc():
            with perf.timer("classify.tokenize"):
                tokenized = [tokenize(message, retain_original=retain)
                             for message in messages]
            with perf.timer("classify.score"):
                summarize = self.funnel.summarize
                study_domain = self._attribution.study_domain
                items = []
                append = items.append
                for message, tok in zip(messages, tokenized):
                    summary = summarize(tok, sequence=message.sequence)
                    append(StageAItem(tok, summary,
                                      study_domain(tok, summary.kind)))
            terminal: List[Tuple[int, StageAItem, FilterResult]] = []
            with perf.timer("classify.fold"):
                for item in items:
                    index = len(self.fold.results)
                    result = self.fold.feed(item.summary)
                    if self._sink is None:
                        self._records.append(None)
                    if result is None:
                        self._pending.append((index, item))
                    else:
                        terminal.append((index, item, result))
            with perf.timer("classify.emit"):
                for index, item, result in terminal:
                    self._emit(index, item, result)

    def _emit(self, index: int, item: StageAItem,
              result: FilterResult) -> None:
        tok = item.tokenized
        processed = None
        if result.verdict is not Verdict.SPAM and self.processor is not None:
            processed = self.processor.process(tok.original, tokenized=tok)
        record = CollectedRecord(
            tokenized=tok,
            result=result,
            study_domain=item.study_domain,
            timestamp=tok.metadata.received_at,
            true_kind=self._true_kind_by_seq.get(item.summary.sequence),
            processed=processed,
        )
        self.emitted_count += 1
        if self._sink is not None:
            self._sink(record)
        else:
            self._records[index] = record

    # -- durable state (the study checkpoint's classifier payload) -----------

    def state_dict(self) -> Dict:
        """Compact mid-window classifier state, JSON-ready (sink mode only).

        Covers the funnel's learned state, the fold's emitted results,
        the retained provisional stage-A items (whose ``tokenized`` has
        already dropped the raw original in bounded-memory mode), and the
        emitted-record count.  Retaining modes never call this — a
        resumed run re-feeds the serialized corpus in ingest order
        instead, which reproduces the same state for far fewer bytes.
        """
        if self._sink is None:
            raise RuntimeError(
                "classifier state capture requires a record sink; "
                "retaining modes re-feed the corpus on resume")
        return {
            "funnel": self.funnel.state_dict(),
            "fold": self.fold.state_dict(),
            "pending": [
                [index,
                 {"tokenized": item.tokenized.to_canonical_dict(),
                  "summary": item.summary.to_canonical_dict(),
                  "study_domain": item.study_domain}]
                for index, item in self._pending],
            "emitted_count": self.emitted_count,
        }

    def restore_state(self, data: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a fresh classifier."""
        self.funnel.restore_state(data["funnel"])
        self.fold.restore_state(data["fold"])
        self._pending = [
            (index, StageAItem(
                TokenizedEmail.from_canonical_dict(entry["tokenized"]),
                MessageSummary.from_canonical_dict(entry["summary"]),
                entry["study_domain"]))
            for index, entry in data["pending"]]
        self.emitted_count = data["emitted_count"]

    def finalize(self) -> List[CollectedRecord]:
        """Retroactive + frequency passes; emit the waiting records.

        Returns the full in-order record list, or ``[]`` in sink mode
        (terminal records were already handed off in decision order, and
        the previously-provisional ones follow in arrival order).
        """
        with paused_gc():
            with self._perf.timer("classify.fold"):
                results = self.fold.finalize()
            with self._perf.timer("classify.emit"):
                for index, item in self._pending:
                    self._emit(index, item, results[index])
                self._pending.clear()
        if self._sink is not None:
            return []
        records = self._records
        self._records = []
        return records  # type: ignore[return-value]
