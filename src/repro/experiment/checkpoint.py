"""Crash-safe, day-granular checkpointing for the study engine.

The paper's collection ran for seven months on infrastructure that *did*
die mid-window; a reproduction at that scale needs the same property the
original pipeline had — kill it on any day, restart it, and lose nothing.
:class:`StudyCheckpoint` persists the full simulation state at a day
boundary as one canonical-JSON file:

* **atomic**: written to a temp file, fsync'd, then ``os.replace``d, so a
  crash mid-write leaves the previous checkpoint intact, never a torn one;
* **self-verifying**: the payload carries a SHA-256 digest of its own
  canonical encoding, so bit rot and truncation are detected on load (and
  by the ``doctor`` CLI command) instead of surfacing as weird downstream
  divergence;
* **identity-checked**: the ``config`` block is the canonical identity of
  every knob that shapes the record stream; resuming under a different
  config is a :class:`~repro.util.errors.CheckpointMismatchError`, not a
  silently different experiment.

What goes in the ``state`` block is the runner's business (RNG stream
positions, retry queue, collector accounting, classifier fold, … — see
``StudyRunner._capture_state``); this module owns only the envelope:
format versioning, digests, atomic persistence, and validation.

``crash_attempts`` rides outside ``state``: it counts how many times each
:class:`~repro.faultsim.plan.StudyCrashSpec` day has been reached *across
process restarts*, which is what lets a ``failures=N`` spec kill the run
exactly N times and then let the resumed run through.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.util.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
)

__all__ = [
    "STUDY_CHECKPOINT_FORMAT",
    "canonical_json",
    "payload_digest",
    "config_identity",
    "StudyCheckpoint",
]

#: Bump the suffix when the payload layout changes incompatibly; loaders
#: reject other versions loudly instead of misreading them.
STUDY_CHECKPOINT_FORMAT = "repro-study-checkpoint@1"


def canonical_json(payload) -> str:
    """The one JSON encoding used for digests and on-disk bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload) -> str:
    """SHA-256 of the canonical encoding — the self-check stored on disk."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def config_identity(config) -> Dict:
    """Canonical identity of every config knob that shapes the run.

    ``classify_jobs`` is deliberately excluded: stage-A parallelism never
    changes the record stream (the classify-pipeline tests pin that), so
    a checkpoint written at ``--jobs 1`` is legitimately resumable at
    ``--jobs 4`` and vice versa.  Everything else — seed, scales, window
    outages, fault plan, memory mode — must match exactly.
    """
    return {
        "seed": config.seed,
        "ham_scale": config.ham_scale,
        "spam_scale": config.spam_scale,
        "outage_spans": [list(span) for span in config.outage_spans],
        "yearly_true_typos": config.yearly_true_typos,
        "smtp_domain_leak_rate": config.smtp_domain_leak_rate,
        "smtp_typo_events_per_year": config.smtp_typo_events_per_year,
        "reflection_signups_per_domain":
            config.reflection_signups_per_domain,
        "spam": asdict(config.spam),
        "process_non_spam": config.process_non_spam,
        "smtp_forwarding": config.smtp_forwarding,
        "fault_plan": (config.fault_plan.to_dict()
                       if config.fault_plan is not None else None),
        "streaming_classify": config.streaming_classify,
        "retain_messages": config.retain_messages,
        **({"scenario": config.scenario.to_dict()}
           if getattr(config, "scenario", None) is not None else {}),
    }


class StudyCheckpoint:
    """One study run's durable state file (the write-ahead day snapshot).

    The file is a single JSON object::

        {"format": ..., "config": ..., "next_day": N,
         "crash_attempts": {day: count}, "state": {...},
         "payload_sha256": ...}

    ``next_day`` is the first day that still needs simulating: the state
    reflects every day strictly before it, so a resume re-enters the day
    loop at exactly that index.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    # -- persistence ---------------------------------------------------------

    def save(self, identity: Dict, next_day: int,
             crash_attempts: Dict[int, int], state: Dict) -> None:
        """Atomically replace the checkpoint with a new day snapshot."""
        payload = {
            "format": STUDY_CHECKPOINT_FORMAT,
            "config": identity,
            "next_day": next_day,
            "crash_attempts": {str(day): count for day, count
                               in sorted(crash_attempts.items())},
            "state": state,
        }
        payload["payload_sha256"] = payload_digest(payload)
        tmp = self.path.with_name(self.path.name + ".tmp")
        # fsync before the rename: os.replace is atomic against other
        # writers, but without the flush a crash can still publish a
        # torn file (the rename survives, the data blocks may not)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def load(self, expected_identity: Optional[Dict] = None) -> Dict:
        """Read and fully validate the checkpoint; return its payload.

        Raises :class:`CheckpointCorruptError` for anything unreadable
        (torn write, truncation, missing fields, digest mismatch) and
        :class:`CheckpointMismatchError` when the file is a valid
        checkpoint for a *different* run (format version or config
        identity).
        """
        if not self.path.exists():
            raise CheckpointCorruptError(
                f"study checkpoint {self.path} does not exist")
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                raise ValueError("checkpoint root is not an object")
        except (ValueError, UnicodeDecodeError) as error:
            raise CheckpointCorruptError(
                f"study checkpoint {self.path} is unreadable ({error}); "
                f"delete it to start fresh") from error
        fmt = data.get("format")
        if fmt != STUDY_CHECKPOINT_FORMAT:
            raise CheckpointMismatchError(
                f"{self.path} has format {fmt!r}, this build reads "
                f"{STUDY_CHECKPOINT_FORMAT!r}")
        stored = data.get("payload_sha256")
        body = {key: value for key, value in data.items()
                if key != "payload_sha256"}
        actual = payload_digest(body)
        if stored != actual:
            raise CheckpointCorruptError(
                f"study checkpoint {self.path} failed its digest check "
                f"(stored {str(stored)[:12]}…, computed {actual[:12]}…); "
                f"the file is corrupt — delete it to start fresh")
        for key in ("config", "next_day", "crash_attempts", "state"):
            if key not in data:
                raise CheckpointCorruptError(
                    f"study checkpoint {self.path} is missing {key!r}")
        if (expected_identity is not None
                and data["config"] != expected_identity):
            raise CheckpointMismatchError(
                f"study checkpoint {self.path} was written for a "
                f"different configuration (seed/scales/plan/mode differ); "
                f"refusing to resume a different experiment")
        return data

    # -- convenience views ---------------------------------------------------

    @staticmethod
    def crash_attempts_from(payload: Dict) -> Dict[str, int]:
        """The persisted study-crash attempt counters.

        Keys are strings: ``"12"`` for a day-boundary crash spec and
        ``"12:retrain"`` for a retrain-phase spec on day 12 (see
        :class:`~repro.faultsim.plan.StudyCrashSpec`).
        """
        return {str(day): count for day, count
                in payload["crash_attempts"].items()}
