"""Report rendering and figure-data export for a completed study run.

``render_study_report`` produces a self-contained Markdown report with
every §4.4 analysis; ``export_figure_data`` writes the plotting-ready
series behind each figure as CSV files, so downstream users can regenerate
the paper's plots with whatever toolchain they prefer (this repository
deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis import (
    daily_series,
    extension_histogram,
    figure5_curve,
    funnel_layer_report,
    malware_lookup,
    sensitive_heatmap,
    smtp_persistence,
    volume_feature_correlations,
)
from repro.analysis.volume import descaled_volume_report
from repro.experiment.runner import StudyResults
from repro.spamfilter import Verdict

__all__ = ["render_study_report", "export_figure_data"]


def render_study_report(results: StudyResults) -> str:
    """A Markdown report covering every §4.4 analysis of one run."""
    config = results.config
    smtp_domains = [d.domain for d in results.corpus.by_purpose("smtp")]
    report = descaled_volume_report(results.records, results.window,
                                    config.ham_scale, config.spam_scale,
                                    smtp_domains)
    correct, total = results.funnel_accuracy()

    lines: List[str] = []
    push = lines.append
    push("# Email typosquatting study report")
    push("")
    push(f"* seed `{config.seed}`, spam scale `{config.spam_scale}`, "
         f"ham scale `{config.ham_scale}`")
    push(f"* window: {results.window.total_days} days, "
         f"{results.window.effective_days} effective")
    push(f"* collected: {results.delivered_count} emails "
         f"({results.sent_count} sent)")
    push(f"* funnel/ground-truth agreement: {correct / max(1, total):.1%}")
    push("")

    push("## Yearly projections (scale-corrected)")
    push("")
    push("| quantity | per year |")
    push("|---|---:|")
    push(f"| total received | {report.total_received:,.0f} |")
    push(f"| receiver/reflection candidates | "
         f"{report.receiver_candidates:,.0f} |")
    push(f"| SMTP candidates | {report.smtp_candidates:,.0f} |")
    push(f"| genuine typo emails | {report.passed_all_filters:,.0f} |")
    low, high = report.smtp_typo_range()
    push(f"| SMTP-typo band | {low:,.0f} – {high:,.0f} |")
    push(f"| receiver typos at SMTP-purpose domains | "
         f"{report.receiver_typos_at_smtp_domains:,.0f} |")
    push("")

    push("## Filtering funnel attribution (§4.3)")
    push("")
    funnel = funnel_layer_report(results.records)
    push("| stage | emails claimed | cumulative removed |")
    push("|---|---:|---:|")
    for label, claimed, fraction in funnel.cumulative_removal():
        push(f"| {label} | {claimed} | {fraction:.1%} |")
    push("")

    push("## Per-domain concentration (Figure 5)")
    push("")
    table = figure5_curve(results.records, results.corpus)
    push("| domain | receiver typos | cumulative |")
    push("|---|---:|---:|")
    shares = table.cumulative_shares()
    for (domain, count), share in list(zip(table.entries, shares))[:12]:
        push(f"| {domain} | {count} | {share:.1%} |")
    push("")
    push(f"{table.domains_for_share(0.5)} domains hold half the volume; "
         f"{table.domains_for_share(0.99)} hold 99%.")
    push("")

    push("## Sensitive information among true typos (Figure 6)")
    push("")
    heatmap = sensitive_heatmap(results.records)
    totals = heatmap.totals_by_label()
    if totals:
        push("| label | occurrences |")
        push("|---|---:|")
        for label, count in sorted(totals.items(), key=lambda kv: -kv[1]):
            push(f"| {label} | {count} |")
    else:
        push("(none found)")
    push("")

    push("## Attachments (Figure 7)")
    push("")
    histogram = extension_histogram(results.records,
                                    verdicts=[Verdict.TRUE_TYPO])
    lookup = malware_lookup(results.records, results.malicious_hashes)
    ordered = sorted(histogram.items(), key=lambda kv: -kv[1])
    push("true-typo extensions: "
         + ", ".join(f"{ext} ({count})" for ext, count in ordered[:10]))
    push("")
    push(f"malware database hits: {lookup.hashes_known_malicious} of "
         f"{lookup.hashes_checked} hashes; all inside spam-classified "
         f"email: {lookup.malicious_emails_all_spam}")
    push("")

    push("## SMTP-typo persistence")
    push("")
    stats = smtp_persistence(results.records,
                             include_frequency_filtered=True)
    push(f"{stats.sender_count} victims; "
         f"{stats.single_email_fraction:.0%} sent one email, "
         f"{stats.under_one_day_fraction:.0%} fixed within a day, "
         f"{stats.under_one_week_fraction:.0%} within a week "
         f"(max {stats.max_persistence_days:.0f} days).")
    push("")

    push("## Feature correlations (§4.4.2)")
    push("")
    push("| feature | Spearman rho | p | significant |")
    push("|---|---:|---:|---|")
    volumes = results.per_domain_yearly_true_typos()
    for correlation in volume_feature_correlations(volumes, results.corpus):
        push(f"| {correlation.feature} | {correlation.rho:+.2f} | "
             f"{correlation.p_value:.3g} | "
             f"{'yes' if correlation.significant else 'no'} |")
    push("")

    robustness = results.robustness
    if robustness is not None and "plan_digest" in robustness:
        push("## Robustness (injected faults)")
        push("")
        push(f"* fault plan digest `{robustness['plan_digest']}` "
             f"(seed `{robustness['plan_seed']}`)")
        faults = robustness.get("faults", {})
        injected = sum(faults.values())
        if injected:
            detail = ", ".join(f"{name} {count}"
                               for name, count in sorted(faults.items())
                               if count)
            push(f"* faults injected: {injected} ({detail})")
        else:
            push("* faults injected: 0")
        retry = robustness.get("retry", {})
        if retry:
            push(f"* retry queue: {retry.get('enqueued', 0)} queued, "
                 f"{retry.get('recovered', 0)} recovered by retry, "
                 f"{retry.get('gave_up', 0)} gave up "
                 f"({retry.get('dsn_sent', 0)} DSNs sent)")
        coverage = robustness.get("collector", {})
        if coverage:
            gap_days = coverage.get("gap_days", [])
            push(f"* collector gaps: {len(gap_days)} down days, "
                 f"{coverage.get('dropped_outage', 0)} messages lost to "
                 f"outage, {coverage.get('dropped_overload', 0)} to overload")
        push("")

    durability = (robustness or {}).get("durability")
    if durability is not None:
        push("## Durability (checkpointed run)")
        push("")
        push(f"* checkpoint file: `{durability.get('checkpoint_path')}`")
        push(f"* checkpoints written: "
             f"{durability.get('checkpoints_written', 0)}")
        resumed = durability.get("resumed_from_day")
        if resumed is not None:
            push(f"* resumed from day {resumed}")
        else:
            push("* ran uninterrupted (no resume)")
        attempts = durability.get("crash_attempts") or {}
        if attempts:
            # keys are "12" (day boundary) or "12:retrain" (mid-retrain);
            # sort by day first, phase second
            detail = ", ".join(f"day {day}: {count}"
                               for day, count in sorted(
                                   attempts.items(), key=lambda kv:
                                   (int(str(kv[0]).split(":")[0]),
                                    str(kv[0]))))
            push(f"* injected crash attempts survived: {detail}")
        push("")

    timeline = (robustness or {}).get("scenario")
    if timeline is not None:
        push("## Living internet (scenario run)")
        push("")
        push(f"* scenario: `{timeline.get('name')}` "
             f"(digest `{str(timeline.get('digest'))[:12]}…`), "
             f"{timeline.get('days')} days stepped")
        push(f"* timeline digest: "
             f"`{str(timeline.get('timeline_digest'))[:12]}…` "
             f"(the byte-identical replay pin)")
        for sample in timeline.get("samples", []):
            if not sample.get("events"):
                continue
            metrics = ", ".join(
                f"{name}={value}" for name, value
                in sorted(sample.get("metrics", {}).items()))
            line = (f"* day {sample.get('day')}: "
                    f"{', '.join(sample['events'])}")
            if metrics:
                line += f" — {metrics}"
            push(line)
        lifecycle = timeline.get("lifecycle")
        if lifecycle:
            push("* model lifecycle "
                 f"(active `{str(lifecycle.get('active_digest'))[:12]}…`, "
                 f"decisions "
                 f"`{str(lifecycle.get('decisions_digest'))[:12]}…`):")
            for entry in lifecycle.get("events", []):
                decision = entry.get("decision", {})
                drift = decision.get("drift", {})
                detail = (f"drift {drift.get('drift_score', 0):.3f}"
                          f" → {decision.get('action')}")
                gate = decision.get("gate")
                if gate:
                    detail += (f" (held-out recall "
                               f"{gate.get('incumbent_recall', 0):.3f}"
                               f" → {gate.get('candidate_recall', 0):.3f})")
                disagreement = entry.get("disagreement", {})
                if disagreement.get("rolled_back"):
                    detail += "; live disagreement spiked — rolled back"
                push(f"  * `{entry.get('event')}` "
                     f"(scenario day {entry.get('scenario_day')}): "
                     f"{detail}")
        push("")

    perf = results.perf
    if perf:
        timers = perf.get("timers", {})
        counters = perf.get("counters", {})
        classify_seconds = timers.get("classify", {}).get("seconds", 0.0)
        if classify_seconds > 0:
            push("## Classification pipeline")
            push("")
            rate = results.delivered_count / classify_seconds
            push(f"* classify phase: {classify_seconds:.2f}s over "
                 f"{results.delivered_count} delivered emails "
                 f"({rate:,.0f} emails/s)")
            sub_phases = [("classify.tokenize", "tokenize"),
                          ("classify.score", "layer scoring"),
                          ("classify.fold", "stateful fold"),
                          ("classify.process", "speculative scrub"),
                          ("classify.emit", "record emit")]
            parts = [f"{label} {timers[name]['seconds']:.2f}s"
                     for name, label in sub_phases if name in timers]
            if parts:
                push(f"* sub-phases: {', '.join(parts)}")
            hits = counters.get("classify.text_cache_hits", 0)
            misses = counters.get("classify.text_cache_misses", 0)
            if hits or misses:
                push(f"* text caches: {hits:,} hits / {misses:,} misses "
                     f"({hits / max(1, hits + misses):.0%} hit rate)")
            push("")
    return "\n".join(lines)


def export_figure_data(results: StudyResults,
                       directory: Union[str, Path]) -> Dict[str, Path]:
    """Write the per-figure series as CSV (and a manifest JSON).

    Returns a mapping of figure id to written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    for figure_id, kind in (("fig3_receiver", "receiver"),
                            ("fig4_smtp", "smtp")):
        series = daily_series(results.records, kind, results.window)
        path = directory / f"{figure_id}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["day"] + list(series.categories))
            for day in series.days:
                writer.writerow([day] + [series.categories[c][day]
                                         for c in series.categories])
        written[figure_id] = path

    table = figure5_curve(results.records, results.corpus)
    path = directory / "fig5_cumulative.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["domain", "count", "cumulative_share"])
        for (domain, count), share in zip(table.entries,
                                          table.cumulative_shares()):
            writer.writerow([domain, count, f"{share:.6f}"])
    written["fig5"] = path

    heatmap = sensitive_heatmap(results.records)
    path = directory / "fig6_heatmap.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["domain", "label", "count"])
        for domain, label, count in heatmap.rows():
            writer.writerow([domain, label, count])
    written["fig6"] = path

    histogram = extension_histogram(results.records,
                                    verdicts=[Verdict.TRUE_TYPO])
    path = directory / "fig7_extensions.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["extension", "count"])
        for extension, count in sorted(histogram.items(),
                                       key=lambda kv: -kv[1]):
            writer.writerow([extension, count])
    written["fig7"] = path

    manifest = directory / "manifest.json"
    manifest.write_text(json.dumps(
        {figure_id: str(path.name) for figure_id, path in written.items()},
        indent=2))
    written["manifest"] = manifest
    return written
