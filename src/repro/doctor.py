"""Artifact integrity doctor: validate on-disk run artifacts.

A long campaign leaves a trail of durable files — study checkpoints,
scan checkpoints, delta-scan baselines, the performance baseline,
fault-plan schedules, persisted typo-risk indexes — and
each of them can rot: torn writes from a crash mid-save, manual edits,
copies from a different run.  ``repro doctor`` examines each file,
detects what kind of artifact it is, and validates it against its own
schema and self-check digest, reporting problems through the
:mod:`repro.util.errors` taxonomy instead of raw tracebacks.

The validators are the *same* code paths the runtime uses to load each
artifact (:class:`~repro.experiment.checkpoint.StudyCheckpoint`,
:class:`~repro.experiment.parallel.ScanCheckpoint`,
:class:`~repro.ecosystem.delta.ScanBaseline`,
:class:`~repro.faultsim.plan.FaultPlan`,
:class:`~repro.service.index.TypoRiskIndex`), so a file the doctor passes is
a file the engine will accept — there is no second, drifting schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.util.errors import (
    EXIT_BAD_INPUT,
    EXIT_CORRUPT_CHECKPOINT,
    CheckpointError,
    ReproError,
)

__all__ = ["Diagnosis", "diagnose_file", "diagnose_paths", "exit_code_for"]

#: artifact kinds :func:`diagnose_file` can identify
KIND_STUDY_CHECKPOINT = "study-checkpoint"
KIND_SCAN_CHECKPOINT = "scan-checkpoint"
KIND_SCAN_BASELINE = "scan-baseline"
KIND_FAULT_PLAN = "fault-plan"
KIND_PERF_BASELINE = "perf-baseline"
KIND_RISK_INDEX = "risk-index"
KIND_TYPO_MODEL = "typo-model"
KIND_SCENARIO = "scenario"
KIND_UNKNOWN = "unknown"


@dataclass
class Diagnosis:
    """One examined file: what it is and whether it is healthy."""

    path: Path
    kind: str
    ok: bool
    problems: List[str] = field(default_factory=list)
    #: small artifact facts worth showing (day counts, digests, shards…)
    details: Dict[str, object] = field(default_factory=dict)
    #: the taxonomy exit code this failure maps to (0 when healthy)
    exit_code: int = 0

    def summary_line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        extra = ""
        if self.ok and self.details:
            extra = " (" + ", ".join(f"{key}={value}" for key, value
                                     in sorted(self.details.items())) + ")"
        elif self.problems:
            extra = f": {self.problems[0]}"
        return f"{status:4s} {self.kind:17s} {self.path}{extra}"


def diagnose_file(path: Union[str, Path]) -> Diagnosis:
    """Identify and validate one artifact file."""
    path = Path(path)
    if not path.exists():
        return Diagnosis(path=path, kind=KIND_UNKNOWN, ok=False,
                         problems=["file does not exist"],
                         exit_code=EXIT_BAD_INPUT)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        # can't even parse it, so kind detection falls back to the
        # filename; a torn study/scan checkpoint should still exit 3
        kind, code = _kind_from_name(path)
        return Diagnosis(path=path, kind=kind, ok=False,
                         problems=[f"not valid JSON ({error}); the file "
                                   f"is torn or truncated"],
                         exit_code=code)
    if not isinstance(data, dict):
        return Diagnosis(path=path, kind=KIND_UNKNOWN, ok=False,
                         problems=["JSON root is not an object"],
                         exit_code=EXIT_BAD_INPUT)
    kind = _detect_kind(data)
    validator = {
        KIND_STUDY_CHECKPOINT: _check_study_checkpoint,
        KIND_SCAN_CHECKPOINT: _check_scan_checkpoint,
        KIND_SCAN_BASELINE: _check_scan_baseline,
        KIND_FAULT_PLAN: _check_fault_plan,
        KIND_PERF_BASELINE: _check_perf_baseline,
        KIND_RISK_INDEX: _check_risk_index,
        KIND_TYPO_MODEL: _check_typo_model,
        KIND_SCENARIO: _check_scenario,
    }.get(kind)
    if validator is None:
        return Diagnosis(path=path, kind=KIND_UNKNOWN, ok=False,
                         problems=["not a recognized repro artifact "
                                   "(study/scan checkpoint, scan "
                                   "baseline, fault plan, perf "
                                   "baseline, risk index, typo "
                                   "model, or scenario)"],
                         exit_code=EXIT_BAD_INPUT)
    return validator(path, data)


def diagnose_paths(paths) -> List[Diagnosis]:
    return [diagnose_file(path) for path in paths]


def exit_code_for(diagnoses: List[Diagnosis]) -> int:
    """The doctor's process exit code: the worst finding wins.

    Corrupt checkpoints (3) outrank bad input files (2) outrank healthy
    (0) — a supervisor script keying on the exit code learns the most
    severe category it must deal with.
    """
    codes = [d.exit_code for d in diagnoses if not d.ok]
    if not codes:
        return 0
    if EXIT_CORRUPT_CHECKPOINT in codes:
        return EXIT_CORRUPT_CHECKPOINT
    return max(codes)


# -- kind detection -----------------------------------------------------------


def _detect_kind(data: Dict) -> str:
    from repro.ecosystem.delta import SCAN_BASELINE_FORMAT
    from repro.experiment.checkpoint import STUDY_CHECKPOINT_FORMAT
    from repro.learned.model import LEARNED_MODEL_FORMAT
    from repro.scenario.timeline import SCENARIO_FORMAT
    from repro.service.index import RISK_INDEX_FORMAT

    if data.get("format") == SCENARIO_FORMAT:
        return KIND_SCENARIO
    if data.get("format") == STUDY_CHECKPOINT_FORMAT:
        return KIND_STUDY_CHECKPOINT
    # the scan baseline, risk index, and typo model carry explicit
    # format tags, so test them before the schema-shape heuristics
    # (they also share generic keys like seed)
    if data.get("format") == SCAN_BASELINE_FORMAT:
        return KIND_SCAN_BASELINE
    if data.get("format") == RISK_INDEX_FORMAT:
        return KIND_RISK_INDEX
    if data.get("format") == LEARNED_MODEL_FORMAT:
        return KIND_TYPO_MODEL
    if {"seed", "max_rank", "shards"} <= set(data):
        return KIND_SCAN_CHECKPOINT
    if "baseline" in data and isinstance(data["baseline"], dict):
        return KIND_PERF_BASELINE
    plan_keys = {"collector_outages", "dns_spells", "smtp_spells",
                 "shard_crashes", "study_crashes", "service_spells",
                 "retry"}
    if "seed" in data and plan_keys & set(data):
        return KIND_FAULT_PLAN
    return KIND_UNKNOWN


def _kind_from_name(path: Path) -> tuple:
    """Best-effort kind (and exit code) for an unparseable file."""
    name = path.name.lower()
    if "plan" in name:
        return KIND_FAULT_PLAN, EXIT_BAD_INPUT
    if "ckpt" in name or "checkpoint" in name:
        # can't tell study from scan without content; either way the
        # remedy (and exit code) is the same
        return KIND_STUDY_CHECKPOINT, EXIT_CORRUPT_CHECKPOINT
    if "baseline" in name:
        # a torn scan baseline is corrupt durable state, like a torn
        # checkpoint: the remedy is a rebuild, the exit code is 3
        return KIND_SCAN_BASELINE, EXIT_CORRUPT_CHECKPOINT
    if "index" in name:
        # same story for a torn persisted risk index: durable state
        # the service would refuse, so exit 3
        return KIND_RISK_INDEX, EXIT_CORRUPT_CHECKPOINT
    if "model" in name:
        # a torn typo-model artifact is the same durable-state story
        return KIND_TYPO_MODEL, EXIT_CORRUPT_CHECKPOINT
    if "scenario" in name:
        # a torn scenario timeline can't be trusted to replay; exit 3
        return KIND_SCENARIO, EXIT_CORRUPT_CHECKPOINT
    return KIND_UNKNOWN, EXIT_BAD_INPUT


# -- per-kind validators ------------------------------------------------------


def _check_study_checkpoint(path: Path, data: Dict) -> Diagnosis:
    from repro.experiment.checkpoint import StudyCheckpoint

    try:
        payload = StudyCheckpoint(path).load()
    except ReproError as error:
        return Diagnosis(path=path, kind=KIND_STUDY_CHECKPOINT, ok=False,
                         problems=[str(error)],
                         exit_code=error.exit_code)
    details = {
        "next_day": payload["next_day"],
        "mode": payload["state"].get("mode"),
        "sent": payload["state"].get("sent"),
        "digest": str(payload["payload_sha256"])[:12],
    }
    return Diagnosis(path=path, kind=KIND_STUDY_CHECKPOINT, ok=True,
                     details=details)


def _check_scan_checkpoint(path: Path, data: Dict) -> Diagnosis:
    from repro.experiment.parallel import ScanCheckpoint

    try:
        # loading through the engine's own class revalidates every
        # shard payload; seed/max_rank come from the file itself, so
        # only structural corruption can fail here
        checkpoint = ScanCheckpoint(path, seed=data["seed"],
                                    max_rank=data["max_rank"])
    except CheckpointError as error:
        return Diagnosis(path=path, kind=KIND_SCAN_CHECKPOINT, ok=False,
                         problems=[str(error)],
                         exit_code=error.exit_code)
    bad_keys = [key for key in data["shards"]
                if not _valid_shard_key(key, data["max_rank"])]
    if bad_keys:
        return Diagnosis(
            path=path, kind=KIND_SCAN_CHECKPOINT, ok=False,
            problems=[f"shard keys outside ranks 1..{data['max_rank']}: "
                      f"{', '.join(sorted(bad_keys)[:3])}"],
            exit_code=EXIT_CORRUPT_CHECKPOINT)
    details = {
        "seed": data["seed"],
        "max_rank": data["max_rank"],
        "shards_done": checkpoint.completed_count,
    }
    return Diagnosis(path=path, kind=KIND_SCAN_CHECKPOINT, ok=True,
                     details=details)


def _valid_shard_key(key: str, max_rank: int) -> bool:
    start_text, sep, stop_text = key.partition("-")
    if not sep:
        return False
    try:
        start, stop = int(start_text), int(stop_text)
    except ValueError:
        return False
    return 1 <= start < stop <= max_rank + 1


def _check_scan_baseline(path: Path, data: Dict) -> Diagnosis:
    from repro.ecosystem.delta import ScanBaseline

    try:
        # the engine's own loader revalidates the format tag, every
        # per-range aggregates digest, and the merged total digest
        baseline = ScanBaseline.load(path)
    except ReproError as error:
        return Diagnosis(path=path, kind=KIND_SCAN_BASELINE, ok=False,
                         problems=[str(error)],
                         exit_code=error.exit_code)
    details = {
        "seed": baseline.seed,
        "max_rank": baseline.max_rank,
        "day": baseline.day,
        "ranges": len(baseline.ranges),
        "digest": baseline.total_digest()[:12],
    }
    return Diagnosis(path=path, kind=KIND_SCAN_BASELINE, ok=True,
                     details=details)


def _check_fault_plan(path: Path, data: Dict) -> Diagnosis:
    from repro.faultsim.plan import FaultPlan

    try:
        plan = FaultPlan.from_dict(data)
    except (ValueError, TypeError, KeyError) as error:
        return Diagnosis(path=path, kind=KIND_FAULT_PLAN, ok=False,
                         problems=[f"invalid fault plan: {error}"],
                         exit_code=EXIT_BAD_INPUT)
    details = {
        "digest": plan.digest()[:12],
        "empty": plan.is_empty,
        "service_spells": len(plan.service_spells),
    }
    return Diagnosis(path=path, kind=KIND_FAULT_PLAN, ok=True,
                     details=details)


def _check_risk_index(path: Path, data: Dict) -> Diagnosis:
    from repro.service.index import TypoRiskIndex

    try:
        # the service's own loader revalidates the format tag, the
        # payload self-digest, the config digest, and re-derives the
        # candidate buckets from (seed, max_rank) to catch tampering
        index = TypoRiskIndex.load(path)
    except ReproError as error:
        return Diagnosis(path=path, kind=KIND_RISK_INDEX, ok=False,
                         problems=[str(error)],
                         exit_code=error.exit_code)
    details = {
        "seed": index.seed,
        "max_rank": index.max_rank,
        "day": index.day,
        "head_buckets": index.head_bucket_count,
    }
    return Diagnosis(path=path, kind=KIND_RISK_INDEX, ok=True,
                     details=details)


def _check_typo_model(path: Path, data: Dict) -> Diagnosis:
    from repro.learned.model import load_model

    try:
        # the learned package's own loader re-verifies the self-digest,
        # parameter shapes, and the feature-schema version; corruption
        # exits 3, an unknown schema version exits 2 (intact artifact,
        # wrong vintage — the remedy is a retrain, not a restore)
        model = load_model(path)
    except ReproError as error:
        return Diagnosis(path=path, kind=KIND_TYPO_MODEL, ok=False,
                         problems=[str(error)],
                         exit_code=error.exit_code)
    details = {
        "seed": model.seed,
        "schema": model.schema_version,
        "stumps": len(model.domain.stumps) + len(model.message.stumps),
        "digest": model.digest()[:12],
    }
    return Diagnosis(path=path, kind=KIND_TYPO_MODEL, ok=True,
                     details=details)


def _check_scenario(path: Path, data: Dict) -> Diagnosis:
    from repro.scenario.timeline import Scenario

    try:
        # the scenario package's own loader re-verifies the format tag
        # and self-digest (corruption exits 3) and re-validates every
        # event through the schema (an unknown event kind is an intact
        # file this build can't drive — a one-line exit 2)
        scenario = Scenario.load(path)
    except ReproError as error:
        return Diagnosis(path=path, kind=KIND_SCENARIO, ok=False,
                         problems=[str(error)],
                         exit_code=error.exit_code)
    details = {
        "seed": scenario.seed,
        "name": scenario.name,
        "events": len(scenario.events),
        "last_day": scenario.last_event_day(),
        "digest": scenario.digest()[:12],
    }
    return Diagnosis(path=path, kind=KIND_SCENARIO, ok=True,
                     details=details)


def _check_perf_baseline(path: Path, data: Dict) -> Diagnosis:
    problems: List[str] = []
    baseline = data["baseline"]
    study = baseline.get("study")
    if not isinstance(study, dict):
        problems.append("baseline.study section missing")
    else:
        for key in ("wall_seconds", "emails_sent", "records"):
            value = study.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"baseline.study.{key} missing or negative")
    for section in ("scan", "streaming_scan"):
        block = baseline.get(section)
        if block is not None and not isinstance(block, dict):
            problems.append(f"baseline.{section} is not an object")
    if problems:
        return Diagnosis(path=path, kind=KIND_PERF_BASELINE, ok=False,
                         problems=problems, exit_code=EXIT_BAD_INPUT)
    details = {"sections": len([k for k in baseline
                                if isinstance(baseline[k], dict)])}
    return Diagnosis(path=path, kind=KIND_PERF_BASELINE, ok=True,
                     details=details)
