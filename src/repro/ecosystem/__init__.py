"""The wild email-typosquatting ecosystem: synthetic Internet, scans, clustering."""

from repro.ecosystem.aggregates import ScanAggregates
from repro.ecosystem.delta import (
    SCAN_BASELINE_FORMAT,
    ChurnSchedule,
    DeltaScanResult,
    RangeRecord,
    ScanBaseline,
    WorldEvent,
    WorldEvolution,
    build_scan_baseline,
    delta_scan,
    world_range_digest,
)
from repro.ecosystem.clustering import (
    ConcentrationCurve,
    RegistrantCluster,
    cluster_registrants,
    concentration_curve,
    smallest_fraction_covering,
    top_share,
)
from repro.ecosystem.internet import (
    AlexaEntry,
    InternetConfig,
    OwnerType,
    SQUATTER_MX_POOL,
    SimulatedInternet,
    SmtpSupport,
    WildDomain,
    build_internet,
)
from repro.ecosystem.nameservers import (
    NameServerStats,
    analyze_nameservers,
    suspicious_nameservers,
)
from repro.ecosystem.scanner import EcosystemScan, EcosystemScanner, ScanResult
from repro.ecosystem.subdomain_typos import (
    SERVICE_PREFIXES,
    SubdomainTypo,
    SubdomainTypoReport,
    find_registered_subdomain_typos,
    generate_subdomain_typos,
)
from repro.ecosystem.world import DomainState, WorldModel
from repro.ecosystem.whois import (
    CLUSTER_FIELDS,
    PRIVACY_PROXIES,
    RegistrantPersona,
    WhoisDatabase,
    WhoisRecord,
    fields_match_count,
    make_registrant,
)

__all__ = [
    "build_internet",
    "SimulatedInternet",
    "InternetConfig",
    "AlexaEntry",
    "WildDomain",
    "OwnerType",
    "SmtpSupport",
    "SQUATTER_MX_POOL",
    "EcosystemScanner",
    "EcosystemScan",
    "ScanResult",
    "ScanAggregates",
    "WorldModel",
    "DomainState",
    "SCAN_BASELINE_FORMAT",
    "ChurnSchedule",
    "WorldEvent",
    "WorldEvolution",
    "DeltaScanResult",
    "RangeRecord",
    "ScanBaseline",
    "build_scan_baseline",
    "delta_scan",
    "world_range_digest",
    "cluster_registrants",
    "RegistrantCluster",
    "concentration_curve",
    "ConcentrationCurve",
    "top_share",
    "smallest_fraction_covering",
    "analyze_nameservers",
    "suspicious_nameservers",
    "NameServerStats",
    "WhoisDatabase",
    "WhoisRecord",
    "RegistrantPersona",
    "make_registrant",
    "fields_match_count",
    "CLUSTER_FIELDS",
    "PRIVACY_PROXIES",
    "SubdomainTypo",
    "SubdomainTypoReport",
    "SERVICE_PREFIXES",
    "generate_subdomain_typos",
    "find_registered_subdomain_typos",
]
