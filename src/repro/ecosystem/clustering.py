"""Registrant clustering and infrastructure concentration (paper §5.2).

Two concentration analyses feed Figure 8:

* **registrants** — WHOIS records with at least four of six fields filled
  are clustered; two domains belong to one entity when four or more
  fields match (Halvorson et al.).  The paper finds 2.3% of registrants
  owning the majority of typosquatting domains, top-14 owning 20%.
* **mail servers** — MX target domains ranked by how many ctypos they
  serve; the top 11 serve over a third, 51 a majority, and <1% of hosts
  serve >74%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ecosystem.whois import (
    CLUSTER_FIELDS,
    WhoisDatabase,
    WhoisRecord,
    fields_match_count,
)
from repro.util.stats import cumulative_share

__all__ = [
    "RegistrantCluster",
    "cluster_registrants",
    "ConcentrationCurve",
    "concentration_curve",
    "top_share",
    "smallest_fraction_covering",
]


@dataclass
class RegistrantCluster:
    """A set of domains attributed to one registrant entity."""

    cluster_id: int
    domains: List[str] = field(default_factory=list)
    representative: Optional[WhoisRecord] = None

    def __len__(self) -> int:
        return len(self.domains)


class _UnionFind:
    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, index: int) -> int:
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def cluster_registrants(whois: WhoisDatabase,
                        domains: Optional[Sequence[str]] = None,
                        min_matching_fields: int = 4) -> List[RegistrantCluster]:
    """Cluster the clusterable WHOIS records of ``domains``.

    Private registrations and records with fewer than four filled fields
    are excluded, exactly as in the paper.  Candidate pairs are found via
    a field-value index (two records matching on >= 4 fields necessarily
    share each individual value), keeping the pass near-linear.
    """
    if domains is None:
        records = whois.clusterable_records()
    else:
        records = []
        for domain in domains:
            record = whois.lookup(domain)
            if record is not None and record.clusterable():
                records.append(record)

    union_find = _UnionFind(len(records))
    buckets: Dict[Tuple[str, str], List[int]] = {}
    for index, record in enumerate(records):
        for field_name in CLUSTER_FIELDS:
            value = getattr(record, field_name)
            if value is None:
                continue
            buckets.setdefault((field_name, value), []).append(index)

    compared: set = set()
    for indices in buckets.values():
        if len(indices) < 2:
            continue
        anchor = indices[0]
        for other in indices[1:]:
            pair = (anchor, other) if anchor < other else (other, anchor)
            if pair in compared:
                continue
            compared.add(pair)
            if fields_match_count(records[anchor], records[other]) \
                    >= min_matching_fields:
                union_find.union(anchor, other)

    by_root: Dict[int, RegistrantCluster] = {}
    next_id = 0
    for index, record in enumerate(records):
        root = union_find.find(index)
        if root not in by_root:
            by_root[root] = RegistrantCluster(cluster_id=next_id,
                                              representative=records[root])
            next_id += 1
        by_root[root].domains.append(record.domain)
    clusters = sorted(by_root.values(), key=len, reverse=True)
    for new_id, cluster in enumerate(clusters):
        cluster.cluster_id = new_id
    return clusters


@dataclass(frozen=True)
class ConcentrationCurve:
    """A Figure-8-style cumulative ownership curve."""

    entity_counts: Tuple[int, ...]   # domains per entity, descending
    cumulative: Tuple[float, ...]    # running share of all domains

    @property
    def entities(self) -> int:
        return len(self.entity_counts)

    @property
    def total_domains(self) -> int:
        return sum(self.entity_counts)


def concentration_curve(counts: Sequence[int]) -> ConcentrationCurve:
    """Build the Figure-8 cumulative curve from per-entity counts."""
    ordered = tuple(sorted((int(c) for c in counts), reverse=True))
    return ConcentrationCurve(entity_counts=ordered,
                              cumulative=tuple(cumulative_share(ordered)))


def top_share(curve: ConcentrationCurve, top_n: int) -> float:
    """Share of all domains held by the ``top_n`` largest entities."""
    if not curve.cumulative:
        return 0.0
    index = min(top_n, len(curve.cumulative)) - 1
    return curve.cumulative[index]


def smallest_fraction_covering(curve: ConcentrationCurve,
                               share: float) -> float:
    """Smallest fraction of entities that jointly hold >= ``share``.

    The paper's "2.3% of registrants own the majority" and "<1% of SMTP
    servers support >74% of domains" statements are instances of this.
    """
    for index, cum in enumerate(curve.cumulative):
        if cum >= share:
            return (index + 1) / curve.entities
    return 1.0
